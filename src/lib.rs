//! Workspace-root crate for the LotusX reproduction.
//!
//! This crate only exists so that the top-level `examples/` and `tests/`
//! directories build with plain cargo; all functionality lives in the
//! `lotusx*` crates under `crates/`. It re-exports the public facade so
//! examples can simply `use lotusx_repro as _;` or go through [`lotusx`].

pub use lotusx;
