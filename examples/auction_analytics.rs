//! Deep-twig analytics over an XMark-like auction site, comparing the five
//! join algorithms on the same queries.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use lotusx::{Algorithm, LotusX};
use lotusx_datagen::{generate, Dataset};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = generate(Dataset::XmarkLike, 2, 7);
    let mut system = LotusX::load_document(doc);
    let stats = system.index().stats();
    println!(
        "auction site: {} elements, max depth {}, {} distinct tags\n",
        stats.element_count, stats.max_depth, stats.distinct_tags
    );

    let queries = [
        ("auctions with bidders", "//open_auction[bidder]/current"),
        ("big bids", "//open_auction[bidder/increase >= 25]/itemref"),
        (
            "rich bidders' names",
            "//person[profile[income >= 100000]]/name",
        ),
        ("keyword'd items", "//item[description//text/keyword]/name"),
    ];

    for (label, query) in queries {
        println!("{label}: {query}");
        let outcome = system.search(query)?;
        println!("  {} matches", outcome.total_matches);
        if let Some(best) = outcome.results.first() {
            println!("  best: [{:.3}] {}", best.score, best.snippet);
        }
    }

    // Same query through every algorithm — identical answers, different
    // costs (run with --release to see the spread clearly).
    println!("\nalgorithm comparison on //open_auction[bidder/increase >= 25]/itemref:");
    for algo in Algorithm::ALL {
        system.set_algorithm(algo);
        let start = Instant::now();
        let outcome = system.search("//open_auction[bidder/increase >= 25]/itemref")?;
        println!(
            "  {:<16} {:>6} matches in {:>9.3?}",
            algo.to_string(),
            outcome.total_matches,
            start.elapsed()
        );
    }
    Ok(())
}
