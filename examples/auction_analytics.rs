//! Deep-twig analytics over an XMark-like auction site, comparing the five
//! join algorithms on the same queries.
//!
//! ```sh
//! cargo run --release --example auction_analytics
//! ```

use lotusx::{Algorithm, LotusX, QueryRequest};
use lotusx_datagen::{generate, Dataset};
use std::time::Instant;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let doc = generate(Dataset::XmarkLike, 2, 7);
    let system = LotusX::load_document(doc);
    let stats = system.index().stats();
    println!(
        "auction site: {} elements, max depth {}, {} distinct tags\n",
        stats.element_count, stats.max_depth, stats.distinct_tags
    );

    let queries = [
        ("auctions with bidders", "//open_auction[bidder]/current"),
        ("big bids", "//open_auction[bidder/increase >= 25]/itemref"),
        (
            "rich bidders' names",
            "//person[profile[income >= 100000]]/name",
        ),
        ("keyword'd items", "//item[description//text/keyword]/name"),
    ];

    for (label, query) in queries {
        println!("{label}: {query}");
        let response = system.query(&QueryRequest::twig(query))?;
        println!("  {} matches", response.total_matches);
        if let Some(best) = response.matches.first() {
            println!("  best: [{:.3}] {}", best.score, best.snippet);
        }
    }

    // Same query through every algorithm — identical answers, different
    // costs (run with --release to see the spread clearly). The override
    // rides on the request, so no engine reconfiguration is needed.
    println!("\nalgorithm comparison on //open_auction[bidder/increase >= 25]/itemref:");
    for algo in Algorithm::ALL {
        let request =
            QueryRequest::twig("//open_auction[bidder/increase >= 25]/itemref").algorithm(algo);
        let start = Instant::now();
        let response = system.query(&request)?;
        println!(
            "  {:<16} {:>6} matches in {:>9.3?}",
            algo.to_string(),
            response.total_matches,
            start.elapsed()
        );
    }
    Ok(())
}
