//! Searching several documents behind one interface: the demo's multiple
//! corpora (bibliography + auction site) served by a [`lotusx::Corpus`],
//! with twig and keyword results merged by score.
//!
//! ```sh
//! cargo run --example corpus_search
//! ```

use lotusx::Corpus;
use lotusx_datagen::{generate, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut corpus = Corpus::new();
    corpus.add_document("dblp", generate(Dataset::DblpLike, 1, 11));
    corpus.add_document("auctions", generate(Dataset::XmarkLike, 1, 11));
    println!(
        "corpus: {:?} ({} documents)\n",
        corpus.names(),
        corpus.len()
    );

    // A structural query that only one corpus can answer.
    let hits = corpus.search("//person[profile/income >= 100000]/name")?;
    println!("rich people ({} hits, all from one document):", hits.len());
    for h in hits.iter().take(3) {
        println!(
            "  [{}] [{:.3}] {}",
            h.document, h.result.score, h.result.snippet
        );
    }

    // `name` exists in the auction data; dblp has no such tag, so there
    // the per-document auto-rewrite kicks in (name → its synonym `title`)
    // and both corpora contribute, interleaved by score.
    let hits = corpus.search("//name")?;
    let docs: std::collections::HashSet<&str> = hits.iter().map(|h| h.document.as_str()).collect();
    println!(
        "\n//name across the corpus: {} hits from {:?} (dblp via rewrite)",
        hits.len(),
        docs
    );

    // Keyword search spans everything.
    let hits = corpus.search_keywords("data query");
    println!("\nkeyword 'data query': {} answers; top 3:", hits.len());
    for h in hits.iter().take(3) {
        let snippet: String = h.result.snippet.chars().take(70).collect();
        println!("  [{}] [{:.3}] {snippet}", h.document, h.result.score);
    }
    Ok(())
}
