//! The paper's motivating scenario: a user who knows neither XQuery nor
//! the schema searches a bibliography, building the query incrementally
//! with position-aware auto-completion, then refines it with order
//! sensitivity, and recovers from a typo through automatic rewriting.
//!
//! ```sh
//! cargo run --example bibliography_search
//! ```

use lotusx::{Axis, LotusX, QueryRequest, Session};
use lotusx_datagen::{generate, Dataset};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A DBLP-like bibliography (~3k elements, seeded and reproducible).
    let doc = generate(Dataset::DblpLike, 1, 2012);
    let system = LotusX::load_document(doc);
    println!(
        "loaded a DBLP-like bibliography: {} elements, {} distinct tags\n",
        system.index().stats().element_count,
        system.index().stats().distinct_tags
    );

    // --- Scene 1: incremental query building with auto-completion -----
    let mut session = Session::new(&system);
    let root = session.canvas_mut().add_root()?;
    session.focus(root)?;
    println!("user types 'a' into the root node; candidates:");
    for c in session.keystroke('a')? {
        println!("  {} ({})", c.name, c.count);
    }
    session.keystroke('r')?; // "ar"
    session.accept_top()?; // → article
    println!("accepted: article\n");

    let author = session.canvas_mut().add_node(root, Axis::Child)?;
    session.focus(author)?;
    println!("inside //article, the user types 'a'; position-aware candidates:");
    for c in session.keystroke('a')? {
        println!("  {} ({} at this position)", c.name, c.count);
    }
    session.keystroke('u')?;
    session.accept_top()?; // → author
    let title = session.canvas_mut().add_node(root, Axis::Child)?;
    session.canvas_mut().set_tag(title, "title")?;
    session.canvas_mut().set_output(title, true)?;

    let pattern = session.canvas().to_pattern()?;
    println!("\ncanvas compiles to: {pattern}");
    let outcome = session.run()?;
    println!("→ {} matches; top 3:", outcome.total_matches);
    for r in outcome.results.iter().take(3) {
        println!("  [{:.3}] {}", r.score, r.snippet);
    }

    // --- Scene 2: order-sensitive refinement ---------------------------
    // Only publications where an author appears BEFORE the title (the
    // generator emits authors first, so this keeps all matches; flipping
    // the sibling order would drop them all).
    session.canvas_mut().set_ordered(true);
    let ordered = session.run()?;
    println!(
        "\norder-sensitive variant keeps {} of {} matches",
        ordered.total_matches, outcome.total_matches
    );

    // --- Scene 3: typo recovery via rewriting --------------------------
    let broken = system.query(&QueryRequest::twig("//artcle/author"))?;
    if let Some(info) = &broken.rewrite {
        println!(
            "\nuser typo '//artcle/author' → rewritten to {} ({:?}), {} matches",
            info.pattern, info.ops, broken.total_matches
        );
    }

    // --- Scene 4: value search with ranking -----------------------------
    let response = system.query(&QueryRequest::twig(
        r#"//article[author ~ "smith"][year >= 2000]/title"#,
    ))?;
    println!(
        "\npost-2000 articles by Smith: {} matches; best: {}",
        response.total_matches,
        response
            .matches
            .first()
            .map(|r| r.snippet.as_str())
            .unwrap_or("(none)")
    );
    Ok(())
}
