//! Quickstart: load a document, run a twig query, read ranked results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lotusx::{LotusX, QueryRequest};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load & index an XML document (one call builds labels, tag
    //    streams, value indexes, completion tries and the DataGuide).
    let system = LotusX::load_str(
        r#"<bib>
             <book year="1999"><title>Data on the Web</title><author>Abiteboul</author></book>
             <book year="2003"><title>XML Handbook</title><author>Goldfarb</author></book>
             <article year="2002"><title>Holistic Twig Joins</title><author>Bruno</author></article>
           </bib>"#,
    )?;

    // 2. Run a twig query: books with a title, output the title.
    let response = system.query(&QueryRequest::twig("//book/title"))?;
    println!("query //book/title → {} matches", response.total_matches);
    for result in &response.matches {
        println!("  [{:.3}] {}", result.score, result.snippet);
    }

    // 3. Value predicates: equality, containment, numeric ranges.
    let response = system.query(&QueryRequest::twig(r#"//book[title ~ "web"]/author"#))?;
    println!(
        "\nbooks about the web → author: {}",
        response.matches[0].snippet
    );

    // 4. Queries that come back empty are rewritten automatically:
    //    "writer" is not a tag in this document, but its synonym is.
    let response = system.query(&QueryRequest::twig("//book/writer"))?;
    if let Some(rewrite) = &response.rewrite {
        println!(
            "\n//book/writer was empty — rewritten to {} (penalty {:.1}), {} matches",
            rewrite.pattern, rewrite.cost, response.total_matches
        );
    }

    // 5. Position-aware auto-completion: what can follow //book ?
    let completion = system.completion_engine();
    let ctx = lotusx::PositionContext::from_tag_path(&["bib", "book"], lotusx::Axis::Child);
    let candidates = completion.complete_tag(&ctx, "", 5);
    println!("\ntags possible under //bib/book:");
    for c in candidates {
        println!("  {} ({} occurrences at this position)", c.name, c.count);
    }

    // 6. Keyword search: no structure at all — the smallest subtrees
    //    covering every term, ranked.
    let response = system.query(&QueryRequest::keyword("holistic bruno"))?;
    println!("\nkeyword search 'holistic bruno':");
    for h in &response.matches {
        println!("  [{:.3}] {}", h.score, h.snippet);
    }

    // 7. Per-request knobs ride on the request: top-k, algorithm, and an
    //    execution profile showing where the time went.
    let request = QueryRequest::twig("//book[@year >= 2000]/title")
        .top_k(5)
        .profiled(true);
    let response = system.query(&request)?;
    println!(
        "\npost-2000 books (by attribute): {} match",
        response.total_matches
    );
    let profile = response.profile.expect("requested with .profiled(true)");
    print!("{}", profile.render());

    // 8. Binary snapshots.
    let path = std::env::temp_dir().join("quickstart.ltsx");
    system.save_snapshot(&path)?;
    let reopened = lotusx::LotusX::load_file(&path)?;
    println!(
        "\nsnapshot reopened: {} elements",
        reopened.index().stats().element_count
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
