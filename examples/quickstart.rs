//! Quickstart: load a document, run a twig query, read ranked results.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lotusx::LotusX;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Load & index an XML document (one call builds labels, tag
    //    streams, value indexes, completion tries and the DataGuide).
    let system = LotusX::load_str(
        r#"<bib>
             <book year="1999"><title>Data on the Web</title><author>Abiteboul</author></book>
             <book year="2003"><title>XML Handbook</title><author>Goldfarb</author></book>
             <article year="2002"><title>Holistic Twig Joins</title><author>Bruno</author></article>
           </bib>"#,
    )?;

    // 2. Run a twig query: books with a title, output the title.
    let outcome = system.search("//book/title")?;
    println!("query //book/title → {} matches", outcome.total_matches);
    for result in &outcome.results {
        println!("  [{:.3}] {}", result.score, result.snippet);
    }

    // 3. Value predicates: equality, containment, numeric ranges.
    let outcome = system.search(r#"//book[title ~ "web"]/author"#)?;
    println!(
        "\nbooks about the web → author: {}",
        outcome.results[0].snippet
    );

    // 4. Queries that come back empty are rewritten automatically:
    //    "writer" is not a tag in this document, but its synonym is.
    let outcome = system.search("//book/writer")?;
    if let Some(rewrite) = &outcome.rewrite {
        println!(
            "\n//book/writer was empty — rewritten to {} (penalty {:.1}), {} matches",
            rewrite.pattern, rewrite.cost, outcome.total_matches
        );
    }

    // 5. Position-aware auto-completion: what can follow //book ?
    let completion = system.completion_engine();
    let ctx = lotusx::PositionContext::from_tag_path(&["bib", "book"], lotusx::Axis::Child);
    let candidates = completion.complete_tag(&ctx, "", 5);
    println!("\ntags possible under //bib/book:");
    for c in candidates {
        println!("  {} ({} occurrences at this position)", c.name, c.count);
    }

    // 6. Keyword search: no structure at all — the smallest subtrees
    //    covering every term, ranked.
    let hits = system.search_keywords("holistic bruno");
    println!("\nkeyword search 'holistic bruno':");
    for h in &hits {
        println!("  [{:.3}] {}", h.score, h.snippet);
    }

    // 7. Attribute predicates and binary snapshots.
    let outcome = system.search("//book[@year >= 2000]/title")?;
    println!(
        "\npost-2000 books (by attribute): {} match",
        outcome.total_matches
    );
    let path = std::env::temp_dir().join("quickstart.ltsx");
    system.save_snapshot(&path)?;
    let reopened = lotusx::LotusX::load_file(&path)?;
    println!(
        "snapshot reopened: {} elements",
        reopened.index().stats().element_count
    );
    std::fs::remove_file(&path)?;
    Ok(())
}
