//! Replays keystroke traces to show position-aware completion against the
//! global (position-blind) baseline, side by side — the paper's central
//! claim made visible.
//!
//! ```sh
//! cargo run --example autocomplete_repl
//! ```

use lotusx::{Axis, CompletionEngine, LotusX, PositionContext};
use lotusx_datagen::{generate, queries::completion_traces, Dataset};

fn main() {
    for dataset in [Dataset::DblpLike, Dataset::XmarkLike] {
        let doc = generate(dataset, 1, 42);
        let system = LotusX::load_document(doc);
        let engine: CompletionEngine<'_> = system.completion_engine();
        println!("=== {dataset} ===");

        for trace in completion_traces(dataset) {
            let ctx = PositionContext::from_tag_path(trace.context_path, Axis::Child);
            println!(
                "\ncontext /{} , intended tag {:?}:",
                trace.context_path.join("/"),
                trace.intended
            );
            // Type the intended tag one keystroke at a time; report how
            // many candidates each mode still offers and where the
            // intended tag ranks.
            for end in 1..=trace.intended.len().min(3) {
                let prefix = &trace.intended[..end];
                let aware = engine.complete_tag(&ctx, prefix, 50);
                let global = engine.complete_tag_global(prefix, 50);
                let rank_aware = aware.iter().position(|c| c.name == trace.intended);
                let rank_global = global.iter().position(|c| c.name == trace.intended);
                println!(
                    "  typed {prefix:<4} position-aware: {:>2} candidates (intended at #{})   global: {:>2} candidates (intended at #{})",
                    aware.len(),
                    rank_aware.map(|r| (r + 1).to_string()).unwrap_or_else(|| "-".into()),
                    global.len(),
                    rank_global.map(|r| (r + 1).to_string()).unwrap_or_else(|| "-".into()),
                );
            }
        }
        println!();
    }
}
