//! Property tests: the indexed SLCA algorithm agrees with the bitmask
//! ground truth on random documents and keyword sets, and the classic
//! set relations (SLCA ⊆ ELCA, anti-chain property) always hold.

use lotusx_index::IndexedDocument;
use lotusx_keyword::{bitmask, indexed};
use lotusx_xml::{Document, NodeId};
use proptest::prelude::*;

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const WORDS: [&str; 5] = ["k1", "k2", "k3", "k4", "k5"];

#[derive(Clone, Debug)]
struct GenTree {
    tag: usize,
    words: Vec<usize>,
    children: Vec<GenTree>,
}

fn tree_strategy() -> impl Strategy<Value = GenTree> {
    let leaf = ((0usize..TAGS.len()), prop::collection::vec(0usize..WORDS.len(), 0..3))
        .prop_map(|(tag, words)| GenTree {
            tag,
            words,
            children: vec![],
        });
    leaf.prop_recursive(5, 60, 4, |inner| {
        (
            (0usize..TAGS.len()),
            prop::collection::vec(0usize..WORDS.len(), 0..2),
            prop::collection::vec(inner, 0..4),
        )
            .prop_map(|(tag, words, children)| GenTree {
                tag,
                words,
                children,
            })
    })
}

fn build(doc: &mut Document, parent: NodeId, t: &GenTree) {
    let e = doc.append_element(parent, TAGS[t.tag]);
    if !t.words.is_empty() {
        let text: Vec<&str> = t.words.iter().map(|&w| WORDS[w]).collect();
        doc.append_text(e, text.join(" "));
    }
    for c in &t.children {
        build(doc, e, c);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn indexed_slca_matches_bitmask(root in tree_strategy(),
                                    kw_mask in 1usize..(1 << WORDS.len())) {
        let mut doc = Document::new();
        build(&mut doc, NodeId::DOCUMENT, &root);
        let idx = IndexedDocument::build(doc);
        let keywords: Vec<&str> = WORDS
            .iter()
            .enumerate()
            .filter(|(i, _)| kw_mask & (1 << i) != 0)
            .map(|(_, w)| *w)
            .collect();

        let mut truth = bitmask::slca(&idx, &keywords);
        truth.sort();
        let got = indexed::slca_indexed(&idx, &keywords);
        prop_assert_eq!(got, truth);
    }

    #[test]
    fn slca_answers_form_an_antichain_and_subset_elca(root in tree_strategy(),
                                                      kw_mask in 1usize..(1 << WORDS.len())) {
        let mut doc = Document::new();
        build(&mut doc, NodeId::DOCUMENT, &root);
        let idx = IndexedDocument::build(doc);
        let keywords: Vec<&str> = WORDS
            .iter()
            .enumerate()
            .filter(|(i, _)| kw_mask & (1 << i) != 0)
            .map(|(_, w)| *w)
            .collect();

        let slca = bitmask::slca(&idx, &keywords);
        let elca = bitmask::elca(&idx, &keywords);
        let labels = idx.labels();
        // No SLCA answer is an ancestor of another.
        for &x in &slca {
            for &y in &slca {
                if x != y {
                    prop_assert!(!labels.is_ancestor(x, y), "{x:?} contains {y:?}");
                }
            }
            // Every SLCA is an ELCA.
            prop_assert!(elca.contains(&x));
            // Every answer actually contains all keywords.
            let text = idx.document().full_text(x).to_lowercase();
            let attrs: String = idx
                .document()
                .descendants_or_self(x)
                .flat_map(|n| idx.document().attributes(n))
                .map(|(_, v)| format!(" {v}"))
                .collect();
            for kw in &keywords {
                prop_assert!(
                    text.contains(kw) || attrs.to_lowercase().contains(kw),
                    "answer lacks {kw}"
                );
            }
        }
    }
}
