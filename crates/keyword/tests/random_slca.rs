//! Randomized tests (seeded, deterministic): the indexed SLCA algorithm
//! agrees with the bitmask ground truth on random documents and keyword
//! sets, and the classic set relations (SLCA ⊆ ELCA, anti-chain property)
//! always hold. Ported from proptest to plain seeded loops so the
//! workspace builds offline.

use lotusx_datagen::rng::XorShiftRng;
use lotusx_index::IndexedDocument;
use lotusx_keyword::{bitmask, indexed};
use lotusx_xml::{Document, NodeId};

const TAGS: [&str; 4] = ["a", "b", "c", "d"];
const WORDS: [&str; 5] = ["k1", "k2", "k3", "k4", "k5"];

#[derive(Clone, Debug)]
struct GenTree {
    tag: usize,
    words: Vec<usize>,
    children: Vec<GenTree>,
}

fn random_tree(rng: &mut XorShiftRng, depth: u32, budget: &mut u32) -> GenTree {
    let tag = rng.gen_range(0..TAGS.len());
    if depth == 0 || *budget == 0 || rng.gen_bool(0.3) {
        let words = (0..rng.gen_range(0..3usize))
            .map(|_| rng.gen_range(0..WORDS.len()))
            .collect();
        return GenTree {
            tag,
            words,
            children: vec![],
        };
    }
    let words = (0..rng.gen_range(0..2usize))
        .map(|_| rng.gen_range(0..WORDS.len()))
        .collect();
    let n = rng.gen_range(0..4usize);
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        children.push(random_tree(rng, depth - 1, budget));
    }
    GenTree {
        tag,
        words,
        children,
    }
}

fn build(doc: &mut Document, parent: NodeId, t: &GenTree) {
    let e = doc.append_element(parent, TAGS[t.tag]);
    if !t.words.is_empty() {
        let text: Vec<&str> = t.words.iter().map(|&w| WORDS[w]).collect();
        doc.append_text(e, text.join(" "));
    }
    for c in &t.children {
        build(doc, e, c);
    }
}

fn random_case(rng: &mut XorShiftRng) -> (IndexedDocument, Vec<&'static str>) {
    let mut budget = 60u32;
    let root = random_tree(rng, 5, &mut budget);
    let mut doc = Document::new();
    build(&mut doc, NodeId::DOCUMENT, &root);
    let idx = IndexedDocument::build(doc);
    let kw_mask = rng.gen_range(1..(1usize << WORDS.len()));
    let keywords: Vec<&str> = WORDS
        .iter()
        .enumerate()
        .filter(|(i, _)| kw_mask & (1 << i) != 0)
        .map(|(_, w)| *w)
        .collect();
    (idx, keywords)
}

#[test]
fn indexed_slca_matches_bitmask() {
    let mut rng = XorShiftRng::seed_from_u64(0x51CA);
    for case in 0..128 {
        let (idx, keywords) = random_case(&mut rng);
        let mut truth = bitmask::slca(&idx, &keywords);
        truth.sort();
        let got = indexed::slca_indexed(&idx, &keywords);
        assert_eq!(got, truth, "case {case}: keywords {keywords:?}");
    }
}

#[test]
fn slca_answers_form_an_antichain_and_subset_elca() {
    let mut rng = XorShiftRng::seed_from_u64(0xE1CA);
    for case in 0..128 {
        let (idx, keywords) = random_case(&mut rng);
        let slca = bitmask::slca(&idx, &keywords);
        let elca = bitmask::elca(&idx, &keywords);
        let labels = idx.labels();
        // No SLCA answer is an ancestor of another.
        for &x in &slca {
            for &y in &slca {
                if x != y {
                    assert!(
                        !labels.is_ancestor(x, y),
                        "case {case}: {x:?} contains {y:?}"
                    );
                }
            }
            // Every SLCA is an ELCA.
            assert!(elca.contains(&x), "case {case}");
            // Every answer actually contains all keywords.
            let text = idx.document().full_text(x).to_lowercase();
            let attrs: String = idx
                .document()
                .descendants_or_self(x)
                .flat_map(|n| idx.document().attributes(n))
                .map(|(_, v)| format!(" {v}"))
                .collect();
            for kw in &keywords {
                assert!(
                    text.contains(kw) || attrs.to_lowercase().contains(kw),
                    "case {case}: answer lacks {kw}"
                );
            }
        }
    }
}
