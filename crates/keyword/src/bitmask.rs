//! Ground-truth SLCA/ELCA via bottom-up containment bitmasks.
//!
//! One post-order pass computes, per node, which keywords occur in its
//! subtree (a bitmask, so up to 64 keywords per word); SLCA and ELCA fall
//! out of the masks directly. Linear in document size and independent of
//! keyword selectivity — the baseline the indexed algorithm is measured
//! against, and the oracle the property tests trust.

use lotusx_index::IndexedDocument;
use lotusx_xml::NodeId;

/// Maximum number of keywords the bitmask representation supports.
pub const MAX_KEYWORDS: usize = 64;

/// Per-node keyword containment masks for one query.
pub struct ContainmentMasks {
    /// `masks[node]` has bit i set iff keyword i occurs in the subtree.
    masks: Vec<u64>,
    /// Bits for keywords occurring *directly* at the node.
    direct: Vec<u64>,
    full: u64,
}

impl ContainmentMasks {
    /// Computes the masks for `keywords` (lowercased terms).
    ///
    /// # Panics
    /// Panics if more than [`MAX_KEYWORDS`] keywords are given.
    pub fn compute(idx: &IndexedDocument, keywords: &[&str]) -> Self {
        assert!(
            keywords.len() <= MAX_KEYWORDS,
            "at most {MAX_KEYWORDS} keywords"
        );
        let n = idx.document().node_count();
        let mut direct = vec![0u64; n];
        for (i, kw) in keywords.iter().enumerate() {
            for posting in idx.values().postings(kw) {
                direct[posting.node.index()] |= 1 << i;
            }
        }
        // Propagate to ancestors. Node ids are assigned in document
        // (pre-)order by the parser and the generators, so a reverse sweep
        // visits children before parents; we don't rely on that though —
        // an explicit post-order accumulation via the parent pointer is
        // correct for any id assignment.
        let mut masks = direct.clone();
        let doc = idx.document();
        // Collect nodes in preorder once, then fold backwards.
        let order: Vec<NodeId> = doc.all_nodes().collect();
        for &node in order.iter().rev() {
            if node == NodeId::DOCUMENT {
                continue;
            }
            let m = masks[node.index()];
            if m != 0 {
                if let Some(parent) = doc.parent(node) {
                    masks[parent.index()] |= m;
                }
            }
        }
        let full = if keywords.is_empty() {
            0
        } else {
            u64::MAX >> (64 - keywords.len() as u32)
        };
        ContainmentMasks {
            masks,
            direct,
            full,
        }
    }

    /// True if the subtree of `node` contains every keyword.
    pub fn is_full(&self, node: NodeId) -> bool {
        self.full != 0 && self.masks[node.index()] & self.full == self.full
    }

    /// The subtree mask of `node`.
    pub fn mask(&self, node: NodeId) -> u64 {
        self.masks[node.index()]
    }

    /// The direct-occurrence mask of `node`.
    pub fn direct_mask(&self, node: NodeId) -> u64 {
        self.direct[node.index()]
    }

    /// The all-keywords mask.
    pub fn full_mask(&self) -> u64 {
        self.full
    }
}

/// SLCA by masks: elements whose subtree is full while no element child's
/// subtree is.
pub fn slca(idx: &IndexedDocument, keywords: &[&str]) -> Vec<NodeId> {
    let masks = ContainmentMasks::compute(idx, keywords);
    if masks.full_mask() == 0 {
        return Vec::new();
    }
    let doc = idx.document();
    doc.all_nodes()
        .filter(|&n| n != NodeId::DOCUMENT && doc.is_element(n))
        .filter(|&n| masks.is_full(n))
        .filter(|&n| !doc.children(n).any(|c| masks.is_full(c)))
        .collect()
}

/// ELCA by masks: elements that remain full after carving out the
/// subtrees of their full descendants.
pub fn elca(idx: &IndexedDocument, keywords: &[&str]) -> Vec<NodeId> {
    let masks = ContainmentMasks::compute(idx, keywords);
    if masks.full_mask() == 0 {
        return Vec::new();
    }
    let doc = idx.document();
    let n = doc.node_count();
    // excl[node] = keywords witnessed in subtree(node) excluding the
    // subtrees of *full* children (recursively: a full child contributes
    // nothing; a non-full child contributes its own exclusive mask, which
    // for non-full nodes equals its subtree mask since a deeper full node
    // would have made it full too... not true for masks — a non-full
    // child can still contain a full grandchild ONLY if the child were
    // full as well (containment is monotone up the tree). So: exclusive
    // mask = direct | OR over non-full children of their subtree masks.
    let mut exclusive = vec![0u64; n];
    let order: Vec<NodeId> = doc.all_nodes().collect();
    for &node in order.iter().rev() {
        if node == NodeId::DOCUMENT {
            continue;
        }
        let mut m = masks.direct_mask(node);
        for c in doc.children(node) {
            if !masks.is_full(c) {
                m |= masks.mask(c);
            }
        }
        exclusive[node.index()] = m;
    }
    doc.all_nodes()
        .filter(|&node| node != NodeId::DOCUMENT && doc.is_element(node))
        .filter(|&node| exclusive[node.index()] & masks.full_mask() == masks.full_mask())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<r>\
               <a><x>alpha</x><y>beta</y></a>\
               <b><x>alpha</x></b>\
               <c>alpha beta</c>\
             </r>",
        )
        .unwrap()
    }

    fn names(idx: &IndexedDocument, nodes: &[NodeId]) -> Vec<String> {
        let mut out: Vec<String> = nodes
            .iter()
            .map(|&n| idx.document().tag_name(n).unwrap().to_string())
            .collect();
        out.sort();
        out
    }

    #[test]
    fn slca_finds_smallest_containers() {
        let idx = idx();
        // alpha+beta: contained in a (via x,y) and c (directly); r also
        // contains both but has full descendants → not smallest.
        let hits = slca(&idx, &["alpha", "beta"]);
        assert_eq!(names(&idx, &hits), vec!["a", "c"]);
    }

    #[test]
    fn single_keyword_slca_is_the_occurrence_elements() {
        let idx = idx();
        let hits = slca(&idx, &["alpha"]);
        assert_eq!(names(&idx, &hits), vec!["c", "x", "x"]);
    }

    #[test]
    fn missing_keyword_gives_no_hits() {
        let idx = idx();
        assert!(slca(&idx, &["alpha", "nonexistent"]).is_empty());
        assert!(slca(&idx, &[]).is_empty());
        assert!(elca(&idx, &[]).is_empty());
    }

    #[test]
    fn elca_is_a_superset_of_slca() {
        let idx = idx();
        let s = slca(&idx, &["alpha", "beta"]);
        let e = elca(&idx, &["alpha", "beta"]);
        for n in &s {
            assert!(e.contains(n));
        }
        // r contains alpha in b/x and beta nowhere outside full subtrees
        // (its only beta witnesses are inside a and c, both full) → r is
        // NOT an ELCA here.
        assert_eq!(names(&idx, &e), vec!["a", "c"]);
    }

    #[test]
    fn elca_keeps_outer_answers_with_own_witnesses() {
        // r has its own alpha (under b) and its own beta (direct child
        // text of d), so it is an ELCA even though a is one too.
        let idx = IndexedDocument::from_str(
            "<r><a><x>alpha</x><y>beta</y></a><b>alpha</b><d>beta</d></r>",
        )
        .unwrap();
        let e = elca(&idx, &["alpha", "beta"]);
        assert_eq!(names(&idx, &e), vec!["a", "r"]);
        let s = slca(&idx, &["alpha", "beta"]);
        assert_eq!(names(&idx, &s), vec!["a"]);
    }

    #[test]
    fn case_insensitive_matching_via_value_index() {
        let idx = IndexedDocument::from_str("<r><a>Alpha BETA</a></r>").unwrap();
        let hits = slca(&idx, &["alpha", "beta"]);
        assert_eq!(hits.len(), 1);
    }

    #[test]
    fn attribute_values_count_as_occurrences() {
        let idx = IndexedDocument::from_str(r#"<r><a key="alpha"><x>beta</x></a></r>"#).unwrap();
        let hits = slca(&idx, &["alpha", "beta"]);
        assert_eq!(names(&idx, &hits), vec!["a"]);
    }

    #[test]
    #[should_panic(expected = "at most 64")]
    fn too_many_keywords_panics() {
        let idx = idx();
        let kws: Vec<String> = (0..65).map(|i| format!("k{i}")).collect();
        let refs: Vec<&str> = kws.iter().map(String::as_str).collect();
        slca(&idx, &refs);
    }
}
