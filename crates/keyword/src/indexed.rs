//! Indexed SLCA over Dewey-sorted keyword lists (XKSearch's indexed
//! lookup, Xu & Papakonstantinou, SIGMOD 2005).
//!
//! Rather than touching the whole tree, the algorithm scans only the
//! posting list of the rarest keyword. For each of its occurrences `v`
//! and every other keyword list `S`, the deepest ancestor of `v` whose
//! subtree contains an `S`-occurrence is `max(lca(v, pred_S(v)),
//! lca(v, succ_S(v)))` — the closest occurrences in document order are
//! found by binary search on the document-ordered list. Folding this over
//! all lists yields, per `v`, the deepest node containing `v` plus every
//! keyword; dropping candidates that are proper ancestors of other
//! candidates leaves exactly the SLCA set.
//!
//! Cost: `O(|S_min| · Σ_i (log|S_i| + depth))` — independent of document
//! size, unlike the bitmask oracle's `O(n)` pass.

use lotusx_index::IndexedDocument;
use lotusx_labeling::DocumentLabels;
use lotusx_xml::{Document, NodeId};

/// One keyword's occurrence list in document order, with region starts
/// for binary search.
struct KeywordList {
    starts: Vec<u32>,
    nodes: Vec<NodeId>,
}

impl KeywordList {
    fn build(idx: &IndexedDocument, keyword: &str) -> Self {
        let labels = idx.labels();
        // Value-index postings are built in one preorder pass, so they are
        // already in document order; assert in debug builds.
        let postings = idx.values().postings(keyword);
        let starts: Vec<u32> = postings
            .iter()
            .map(|p| labels.region(p.node).start)
            .collect();
        debug_assert!(starts.windows(2).all(|w| w[0] < w[1]));
        KeywordList {
            starts,
            nodes: postings.iter().map(|p| p.node).collect(),
        }
    }

    /// Closest occurrence at or before `start` in document order, and the
    /// closest strictly after.
    fn neighbours(&self, start: u32) -> (Option<NodeId>, Option<NodeId>) {
        let pos = self.starts.partition_point(|&s| s <= start);
        let pred = pos.checked_sub(1).map(|i| self.nodes[i]);
        let succ = self.nodes.get(pos).copied();
        (pred, succ)
    }
}

/// Lowest common ancestor of two elements by parent-walking (O(depth)).
fn lca(doc: &Document, labels: &DocumentLabels, a: NodeId, b: NodeId) -> Option<NodeId> {
    let mut x = a;
    let mut y = b;
    let mut dx = labels.region(x).level;
    let mut dy = labels.region(y).level;
    while dx > dy {
        x = doc.parent(x)?;
        dx -= 1;
    }
    while dy > dx {
        y = doc.parent(y)?;
        dy -= 1;
    }
    while x != y {
        x = doc.parent(x)?;
        y = doc.parent(y)?;
    }
    if x == NodeId::DOCUMENT {
        None
    } else {
        Some(x)
    }
}

/// SLCA via indexed lookup on the keyword posting lists.
///
/// Agrees with [`crate::bitmask::slca`] on every input (property-tested).
pub fn slca_indexed(idx: &IndexedDocument, keywords: &[&str]) -> Vec<NodeId> {
    if keywords.is_empty() {
        return Vec::new();
    }
    let mut lists: Vec<KeywordList> = keywords
        .iter()
        .map(|kw| KeywordList::build(idx, kw))
        .collect();
    if lists.iter().any(|l| l.nodes.is_empty()) {
        return Vec::new();
    }
    // Scan the rarest list.
    let min_idx = (0..lists.len())
        .min_by_key(|&i| lists[i].nodes.len())
        .expect("non-empty keyword set");
    let scan = lists.swap_remove(min_idx);

    let doc = idx.document();
    let labels = idx.labels();
    let mut candidates: Vec<NodeId> = Vec::new();
    'occurrences: for &v in &scan.nodes {
        // Fold: the deepest ancestor of v whose subtree has a hit from
        // every remaining list.
        let mut current = v;
        for list in &lists {
            let start = labels.region(current).start;
            let (pred, succ) = list.neighbours(start);
            let lca_pred = pred.and_then(|p| lca(doc, labels, current, p));
            let lca_succ = succ.and_then(|s| lca(doc, labels, current, s));
            current = match (lca_pred, lca_succ) {
                (Some(a), Some(b)) => {
                    if labels.region(a).level >= labels.region(b).level {
                        a
                    } else {
                        b
                    }
                }
                (Some(a), None) => a,
                (None, Some(b)) => b,
                (None, None) => continue 'occurrences,
            };
        }
        candidates.push(current);
    }

    // Sort in document order, dedup, and drop proper ancestors of other
    // candidates: in document order an ancestor sorts before all its
    // descendants, so a stack-less sweep against the last kept entry
    // suffices.
    candidates.sort_by_key(|&n| labels.region(n).start);
    candidates.dedup();
    let mut kept: Vec<NodeId> = Vec::new();
    for c in candidates {
        while let Some(&last) = kept.last() {
            if labels.is_ancestor(last, c) {
                kept.pop();
            } else {
                break;
            }
        }
        kept.push(c);
    }
    kept.sort();
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bitmask;

    fn check(xml: &str, keywords: &[&str]) {
        let idx = IndexedDocument::from_str(xml).unwrap();
        let mut truth = bitmask::slca(&idx, keywords);
        truth.sort();
        let got = slca_indexed(&idx, keywords);
        assert_eq!(got, truth, "keywords {keywords:?} on {xml}");
    }

    #[test]
    fn agrees_with_bitmask_on_hand_cases() {
        let xml = "<r><a><x>alpha</x><y>beta</y></a><b><x>alpha</x></b><c>alpha beta</c></r>";
        check(xml, &["alpha", "beta"]);
        check(xml, &["alpha"]);
        check(xml, &["beta"]);
        check(xml, &["alpha", "beta", "missing"]);
    }

    #[test]
    fn nested_containers() {
        let xml = "<r><a>k1<b>k1 k2<c>k1</c></b></a></r>";
        check(xml, &["k1", "k2"]);
        check(xml, &["k1"]);
    }

    #[test]
    fn witnesses_split_across_siblings() {
        let xml = "<r><p><l>k1</l><m><n>k2</n></m></p><q>k1</q></r>";
        check(xml, &["k1", "k2"]);
    }

    #[test]
    fn three_keywords() {
        let xml = "<r><a>x y<b>z</b></a><c>x<d>y z</d></c><e>x y z</e></r>";
        check(xml, &["x", "y", "z"]);
        check(xml, &["x", "z"]);
        check(xml, &["y", "z"]);
    }

    #[test]
    fn root_level_answers() {
        let xml = "<r><a>k1</a><b>k2</b></r>";
        let idx = IndexedDocument::from_str(xml).unwrap();
        let hits = slca_indexed(&idx, &["k1", "k2"]);
        assert_eq!(hits.len(), 1);
        assert_eq!(idx.document().tag_name(hits[0]), Some("r"));
    }

    #[test]
    fn empty_inputs() {
        let idx = IndexedDocument::from_str("<r><a>k</a></r>").unwrap();
        assert!(slca_indexed(&idx, &[]).is_empty());
        assert!(slca_indexed(&idx, &["missing"]).is_empty());
    }
}
