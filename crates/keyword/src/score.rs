//! Scoring of keyword hits: smaller, term-rich subtrees first.

use lotusx_index::IndexedDocument;
use lotusx_xml::NodeId;

/// Scores one SLCA/ELCA answer subtree for ranking.
///
/// Combines (a) keyword weight — the TF-IDF mass of the query keywords
/// inside the answer subtree — and (b) compactness — smaller answers are
/// more specific and rank higher (the intuition behind preferring SLCAs
/// over arbitrary LCAs in the first place).
pub fn score_hit(idx: &IndexedDocument, node: NodeId, keywords: &[&str]) -> f64 {
    let doc = idx.document();
    let values = idx.values();
    let n = values.content_element_count().max(1) as f64;

    let mut weight = 0.0;
    for kw in keywords {
        let postings = values.postings(kw);
        if postings.is_empty() {
            continue;
        }
        let idf = (1.0 + n / postings.len() as f64).ln();
        // Occurrences inside the answer subtree.
        let labels = idx.labels();
        let region = labels.region(node);
        let tf: u32 = postings
            .iter()
            .filter(|p| p.node == node || region.is_ancestor_of(&labels.region(p.node)))
            .map(|p| p.tf)
            .sum();
        if tf > 0 {
            weight += (1.0 + f64::from(tf).ln_1p()) * idf;
        }
    }

    let subtree_size = doc.descendants_or_self(node).count() as f64;
    let compactness = 1.0 / (1.0 + subtree_size.ln_1p());
    weight * compactness
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smaller_subtrees_with_same_terms_score_higher() {
        let idx = IndexedDocument::from_str(
            "<r><small>alpha beta</small>\
             <big>alpha beta<p1>x</p1><p2>y</p2><p3>z</p3><p4>w</p4></big></r>",
        )
        .unwrap();
        let doc = idx.document();
        let small = doc
            .all_nodes()
            .find(|&n| doc.tag_name(n) == Some("small"))
            .unwrap();
        let big = doc
            .all_nodes()
            .find(|&n| doc.tag_name(n) == Some("big"))
            .unwrap();
        let kws = ["alpha", "beta"];
        assert!(score_hit(&idx, small, &kws) > score_hit(&idx, big, &kws));
    }

    #[test]
    fn more_keyword_mass_scores_higher_at_same_size() {
        let idx = IndexedDocument::from_str(
            "<r><one>alpha beta</one><two>alpha alpha alpha beta</two></r>",
        )
        .unwrap();
        let doc = idx.document();
        let one = doc
            .all_nodes()
            .find(|&n| doc.tag_name(n) == Some("one"))
            .unwrap();
        let two = doc
            .all_nodes()
            .find(|&n| doc.tag_name(n) == Some("two"))
            .unwrap();
        let kws = ["alpha", "beta"];
        assert!(score_hit(&idx, two, &kws) > score_hit(&idx, one, &kws));
    }

    #[test]
    fn missing_keywords_contribute_nothing() {
        let idx = IndexedDocument::from_str("<r><a>alpha</a></r>").unwrap();
        let doc = idx.document();
        let a = doc
            .all_nodes()
            .find(|&n| doc.tag_name(n) == Some("a"))
            .unwrap();
        assert_eq!(score_hit(&idx, a, &["missing"]), 0.0);
        assert!(score_hit(&idx, a, &["alpha", "missing"]) > 0.0);
    }
}
