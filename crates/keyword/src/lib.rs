//! # lotusx-keyword
//!
//! Keyword search over indexed XML: the zero-knowledge entry point of a
//! search UI. A user who cannot even place nodes on the canvas types plain
//! keywords; the system returns the *smallest meaningful subtrees* that
//! cover all of them.
//!
//! Two classic answer semantics are implemented:
//!
//! * **SLCA** (smallest lowest common ancestor, XKSearch — Xu &
//!   Papakonstantinou, SIGMOD 2005): elements whose subtree contains all
//!   keywords while no descendant's subtree does.
//! * **ELCA** (exhaustive LCA, XRank lineage): elements that still contain
//!   all keywords after the subtrees of their all-keyword descendants are
//!   carved out — a superset of SLCA that keeps "outer" answers with
//!   their own witnesses.
//!
//! Each semantics has two evaluators: a bottom-up containment-bitmask pass
//! over the whole tree (simple, linear, the ground truth) and, for SLCA,
//! the indexed lookup algorithm over Dewey-sorted keyword lists that only
//! touches the posting lists (sub-linear in document size for selective
//! keywords). Property tests pin them to each other.
//!
//! ```
//! use lotusx_index::IndexedDocument;
//! use lotusx_keyword::KeywordEngine;
//!
//! let idx = IndexedDocument::from_str(
//!     "<bib><book><title>xml search</title><author>lu</author></book>\
//!      <book><title>databases</title><author>lu</author></book></bib>").unwrap();
//! let engine = KeywordEngine::new(&idx);
//! let hits = engine.slca(&["xml", "lu"]);
//! // The first book covers both keywords; the second lacks "xml", so the
//! // SLCA is the first book element, not the whole <bib>.
//! assert_eq!(hits.len(), 1);
//! assert_eq!(idx.document().tag_name(hits[0]), Some("book"));
//! ```

#![warn(missing_docs)]

pub mod bitmask;
pub mod engine;
pub mod indexed;
pub mod score;

pub use engine::{KeywordEngine, KeywordHit};
