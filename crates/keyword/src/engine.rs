//! The keyword-search facade.

use crate::{bitmask, indexed, score};
use lotusx_index::IndexedDocument;
use lotusx_xml::NodeId;

/// One ranked keyword-search answer.
#[derive(Clone, Debug)]
pub struct KeywordHit {
    /// The answer subtree's root element.
    pub node: NodeId,
    /// Its score (higher = better).
    pub score: f64,
}

/// Keyword search over one indexed document.
pub struct KeywordEngine<'a> {
    idx: &'a IndexedDocument,
}

impl<'a> KeywordEngine<'a> {
    /// Creates an engine over `idx`.
    pub fn new(idx: &'a IndexedDocument) -> Self {
        KeywordEngine { idx }
    }

    /// SLCA answers via the indexed-lookup algorithm, unranked, in
    /// document order.
    pub fn slca(&self, keywords: &[&str]) -> Vec<NodeId> {
        indexed::slca_indexed(self.idx, keywords)
    }

    /// SLCA answers via the full-tree bitmask pass (the baseline the
    /// scalability experiment compares against).
    pub fn slca_bitmask(&self, keywords: &[&str]) -> Vec<NodeId> {
        bitmask::slca(self.idx, keywords)
    }

    /// ELCA answers (bitmask pass), in document order.
    pub fn elca(&self, keywords: &[&str]) -> Vec<NodeId> {
        bitmask::elca(self.idx, keywords)
    }

    /// Parses a free-text query into lowercase terms and returns ranked
    /// SLCA answers.
    pub fn search(&self, query: &str) -> Vec<KeywordHit> {
        let terms = lotusx_index::tokenize(query);
        let refs: Vec<&str> = terms.iter().map(String::as_str).collect();
        if refs.is_empty() {
            return Vec::new();
        }
        let mut hits: Vec<KeywordHit> = self
            .slca(&refs)
            .into_iter()
            .map(|node| KeywordHit {
                node,
                score: score::score_hit(self.idx, node, &refs),
            })
            .collect();
        hits.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.node.cmp(&b.node))
        });
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>xml twig search</title><author>lu ling</author></book>\
               <book><title>relational databases</title><author>codd</author></book>\
               <article><title>xml keyword search</title><author>xu</author></article>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn search_ranks_compact_relevant_answers_first() {
        let idx = idx();
        let engine = KeywordEngine::new(&idx);
        let hits = engine.search("xml search");
        assert_eq!(
            hits.len(),
            2,
            "both xml publications' titles cover the terms"
        );
        for h in &hits {
            assert_eq!(idx.document().tag_name(h.node), Some("title"));
            assert!(h.score > 0.0);
        }
    }

    #[test]
    fn search_crossing_element_boundaries() {
        let idx = idx();
        let engine = KeywordEngine::new(&idx);
        // "twig" is in a title, "lu" in the sibling author → SLCA = book.
        let hits = engine.search("twig lu");
        assert_eq!(hits.len(), 1);
        assert_eq!(idx.document().tag_name(hits[0].node), Some("book"));
    }

    #[test]
    fn empty_and_unknown_queries() {
        let idx = idx();
        let engine = KeywordEngine::new(&idx);
        assert!(engine.search("").is_empty());
        assert!(engine.search("zzz qqq").is_empty());
    }

    #[test]
    fn indexed_and_bitmask_slca_agree_here() {
        let idx = idx();
        let engine = KeywordEngine::new(&idx);
        for q in [
            vec!["xml"],
            vec!["xml", "search"],
            vec!["lu", "twig"],
            vec!["codd"],
        ] {
            let mut a = engine.slca(&q);
            let mut b = engine.slca_bitmask(&q);
            a.sort();
            b.sort();
            assert_eq!(a, b, "{q:?}");
        }
    }

    #[test]
    fn elca_superset_relation() {
        let idx = idx();
        let engine = KeywordEngine::new(&idx);
        let s = engine.slca(&["xml", "search"]);
        let e = engine.elca(&["xml", "search"]);
        for n in &s {
            assert!(e.contains(n));
        }
    }
}
