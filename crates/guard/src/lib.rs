//! Query budgets and cooperative cancellation.
//!
//! Twig-join workloads have super-linear blowup cases (the intermediate
//! path-solution product can dwarf the final result), so an interactive
//! engine cannot rely on every query finishing quickly. This crate
//! provides the *guard* threaded through the whole query path:
//!
//! * [`Budget`] — the per-request spec: an optional wall-clock deadline,
//!   optional node-visit / candidate-count quotas, and an optional
//!   external [`CancelToken`];
//! * [`QueryGuard`] — the shared runtime handle the pipeline charges
//!   work against. Once any limit trips, the guard stays tripped and
//!   every stage unwinds cooperatively, keeping whatever partial results
//!   it has already proven valid;
//! * [`Ticker`] — the amortized checkpoint used inside hot loops: a
//!   plain local counter that consults the guard only every
//!   `stride` steps, so an unbudgeted query pays one branch per step
//!   and zero atomics.
//!
//! The contract for partial results is *prefix consistency*: a stage
//! that observes a tripped guard may stop early, but everything it has
//! already emitted must be a true answer (never a half-verified
//! candidate). The engine surfaces the outcome as a
//! [`Completeness`] on the response — partial results are marked,
//! never silently truncated.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Why a query was cut short.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum TruncationReason {
    /// The wall-clock deadline expired.
    DeadlineExceeded,
    /// The node-visit quota was exhausted.
    NodeQuotaExceeded,
    /// The candidate-count quota was exhausted.
    CandidateQuotaExceeded,
    /// The external [`CancelToken`] was cancelled.
    Cancelled,
}

impl TruncationReason {
    /// Stable snake-case name (used in stats and CLI output).
    pub fn name(&self) -> &'static str {
        match self {
            TruncationReason::DeadlineExceeded => "deadline_exceeded",
            TruncationReason::NodeQuotaExceeded => "node_quota_exceeded",
            TruncationReason::CandidateQuotaExceeded => "candidate_quota_exceeded",
            TruncationReason::Cancelled => "cancelled",
        }
    }
}

impl std::fmt::Display for TruncationReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Whether a response covers the full answer set or a valid prefix of it.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Completeness {
    /// Every answer was considered; the response is exact.
    Complete,
    /// The budget tripped: the response holds the best valid partial
    /// top-k found before the cutoff.
    Truncated {
        /// Which limit tripped first.
        reason: TruncationReason,
    },
}

impl Completeness {
    /// True when the response is exact.
    pub fn is_complete(&self) -> bool {
        matches!(self, Completeness::Complete)
    }

    /// The truncation reason, if any.
    pub fn truncation_reason(&self) -> Option<TruncationReason> {
        match self {
            Completeness::Complete => None,
            Completeness::Truncated { reason } => Some(*reason),
        }
    }
}

/// A shareable cancellation flag: cloneable, settable from any thread.
///
/// Cancellation is cooperative — setting the token never interrupts a
/// worker mid-step; the next [`Ticker`] checkpoint observes it.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Has cancellation been requested?
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// The per-request budget spec. `Budget::default()` is unlimited.
#[derive(Clone, Debug, Default)]
pub struct Budget {
    /// Maximum wall-clock time from guard creation.
    pub deadline: Option<Duration>,
    /// Maximum index entries / tree nodes the join may visit.
    pub node_quota: Option<u64>,
    /// Maximum candidate matches the pipeline may materialize.
    pub candidate_quota: Option<u64>,
    /// External cancellation handle.
    pub cancel: Option<CancelToken>,
}

impl Budget {
    /// The unlimited budget (same as `Budget::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Is every limit absent?
    pub fn is_unlimited(&self) -> bool {
        self.deadline.is_none()
            && self.node_quota.is_none()
            && self.candidate_quota.is_none()
            && self.cancel.is_none()
    }

    /// Sets a wall-clock deadline.
    pub fn with_deadline(mut self, d: Duration) -> Self {
        self.deadline = Some(d);
        self
    }

    /// Sets a node-visit quota.
    pub fn with_node_quota(mut self, n: u64) -> Self {
        self.node_quota = Some(n);
        self
    }

    /// Sets a candidate-count quota.
    pub fn with_candidate_quota(mut self, n: u64) -> Self {
        self.candidate_quota = Some(n);
        self
    }

    /// Attaches an external cancellation token.
    pub fn with_cancel(mut self, token: CancelToken) -> Self {
        self.cancel = Some(token);
        self
    }
}

/// Per-tenant guard policy for a multi-tenant server.
///
/// Two independent knobs live here:
///
/// * `max_inflight` — an admission quota: how many requests the tenant
///   may have in flight at once. The serving layer enforces it on the
///   event-loop thread (exactly, no races) and answers 429 beyond it.
/// * `default_*` budgets — per-request [`Budget`] fields applied when
///   the request itself did not set them. A request's own explicit
///   budget always wins; defaults only fill the gaps, so a tenant
///   configured with `default_deadline` still lets a caller ask for a
///   tighter (or looser) deadline per query.
///
/// `TenantLimits::default()` is fully unlimited and is what a
/// single-tenant server uses for its implicit `default` tenant.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantLimits {
    /// Admission quota: maximum concurrently in-flight requests.
    pub max_inflight: Option<u32>,
    /// Deadline applied to requests that did not set one.
    pub default_deadline: Option<Duration>,
    /// Node-visit quota applied to requests that did not set one.
    pub default_node_quota: Option<u64>,
    /// Candidate quota applied to requests that did not set one.
    pub default_candidate_quota: Option<u64>,
}

impl TenantLimits {
    /// The unlimited policy (same as `TenantLimits::default()`).
    pub fn unlimited() -> Self {
        Self::default()
    }

    /// Is every knob absent?
    pub fn is_unlimited(&self) -> bool {
        self.max_inflight.is_none()
            && self.default_deadline.is_none()
            && self.default_node_quota.is_none()
            && self.default_candidate_quota.is_none()
    }

    /// Fills the unset fields of `budget` from this tenant's defaults.
    /// Fields the request set explicitly are left untouched.
    pub fn apply_defaults(&self, mut budget: Budget) -> Budget {
        if budget.deadline.is_none() {
            budget.deadline = self.default_deadline;
        }
        if budget.node_quota.is_none() {
            budget.node_quota = self.default_node_quota;
        }
        if budget.candidate_quota.is_none() {
            budget.candidate_quota = self.default_candidate_quota;
        }
        budget
    }
}

/// Encoded `TruncationReason` for the tripped-state atomic: 0 = not
/// tripped, 1.. = reason discriminant + 1.
fn encode(reason: TruncationReason) -> u8 {
    match reason {
        TruncationReason::DeadlineExceeded => 1,
        TruncationReason::NodeQuotaExceeded => 2,
        TruncationReason::CandidateQuotaExceeded => 3,
        TruncationReason::Cancelled => 4,
    }
}

fn decode(code: u8) -> Option<TruncationReason> {
    match code {
        1 => Some(TruncationReason::DeadlineExceeded),
        2 => Some(TruncationReason::NodeQuotaExceeded),
        3 => Some(TruncationReason::CandidateQuotaExceeded),
        4 => Some(TruncationReason::Cancelled),
        _ => None,
    }
}

struct GuardInner {
    deadline: Option<Instant>,
    node_quota: Option<u64>,
    candidate_quota: Option<u64>,
    cancel: Option<CancelToken>,
    nodes_visited: AtomicU64,
    candidates_seen: AtomicU64,
    /// 0 = live; otherwise the encoded first trip reason (sticky).
    tripped: AtomicU8,
    /// The trace `QueryId` this guard belongs to (0 = untraced), so the
    /// first trip can be emitted as a structured trace event.
    trace_id: AtomicU64,
    active: bool,
}

/// The shared runtime handle the pipeline charges work against.
///
/// Cloning is an `Arc` clone — the engine creates one guard per request
/// and every stage (including parallel workers) shares it. The first
/// limit to trip wins and is sticky; later checks only observe it.
#[derive(Clone)]
pub struct QueryGuard {
    inner: Arc<GuardInner>,
}

impl std::fmt::Debug for QueryGuard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueryGuard")
            .field("active", &self.inner.active)
            .field("tripped", &self.trip_reason())
            .field("nodes_visited", &self.nodes_visited())
            .field("candidates_seen", &self.candidates_seen())
            .finish()
    }
}

impl QueryGuard {
    /// Creates a guard for `budget`, starting the deadline clock now.
    ///
    /// A budget that is already exhausted at creation (zero deadline,
    /// zero quota, pre-cancelled token) trips immediately, so callers
    /// can bail out before doing any work.
    pub fn new(budget: &Budget) -> Self {
        if budget.is_unlimited() {
            return Self::unlimited();
        }
        let guard = QueryGuard {
            inner: Arc::new(GuardInner {
                deadline: budget.deadline.map(|d| Instant::now() + d),
                node_quota: budget.node_quota,
                candidate_quota: budget.candidate_quota,
                cancel: budget.cancel.clone(),
                nodes_visited: AtomicU64::new(0),
                candidates_seen: AtomicU64::new(0),
                tripped: AtomicU8::new(0),
                trace_id: AtomicU64::new(0),
                active: true,
            }),
        };
        // Zero-budget requests trip before any work runs.
        if budget.deadline == Some(Duration::ZERO) {
            guard.trip(TruncationReason::DeadlineExceeded);
        }
        if budget.node_quota == Some(0) {
            guard.trip(TruncationReason::NodeQuotaExceeded);
        }
        if budget.candidate_quota == Some(0) {
            guard.trip(TruncationReason::CandidateQuotaExceeded);
        }
        guard.check_cancelled();
        guard
    }

    /// The shared no-op guard for unbudgeted requests: inactive, never
    /// trips, and every charge short-circuits before touching atomics.
    pub fn unlimited() -> Self {
        static UNLIMITED: OnceLock<QueryGuard> = OnceLock::new();
        UNLIMITED
            .get_or_init(|| QueryGuard {
                inner: Arc::new(GuardInner {
                    deadline: None,
                    node_quota: None,
                    candidate_quota: None,
                    cancel: None,
                    nodes_visited: AtomicU64::new(0),
                    candidates_seen: AtomicU64::new(0),
                    tripped: AtomicU8::new(0),
                    trace_id: AtomicU64::new(0),
                    active: false,
                }),
            })
            .clone()
    }

    /// True when any limit is actually configured. Inactive guards let
    /// tickers skip all bookkeeping.
    #[inline]
    pub fn is_active(&self) -> bool {
        self.inner.active
    }

    /// Has any limit tripped?
    #[inline]
    pub fn is_tripped(&self) -> bool {
        self.inner.active && self.inner.tripped.load(Ordering::Relaxed) != 0
    }

    /// The first limit that tripped, if any.
    pub fn trip_reason(&self) -> Option<TruncationReason> {
        decode(self.inner.tripped.load(Ordering::Relaxed))
    }

    /// The outcome as a [`Completeness`].
    pub fn completeness(&self) -> Completeness {
        match self.trip_reason() {
            None => Completeness::Complete,
            Some(reason) => Completeness::Truncated { reason },
        }
    }

    /// Total node visits charged so far.
    pub fn nodes_visited(&self) -> u64 {
        self.inner.nodes_visited.load(Ordering::Relaxed)
    }

    /// Total candidates charged so far.
    pub fn candidates_seen(&self) -> u64 {
        self.inner.candidates_seen.load(Ordering::Relaxed)
    }

    /// How far past the deadline the query ran, if it had one.
    pub fn deadline_overshoot(&self) -> Option<Duration> {
        let deadline = self.inner.deadline?;
        Some(Instant::now().saturating_duration_since(deadline))
    }

    /// Tags this guard with the trace `QueryId` of the request it
    /// belongs to, so a budget trip shows up in the event trace
    /// attributed to the right query. No-op on the shared unlimited
    /// guard (it is process-global and never trips anyway).
    pub fn set_trace_id(&self, id: u64) {
        if self.inner.active {
            self.inner.trace_id.store(id, Ordering::Relaxed);
        }
    }

    fn trip(&self, reason: TruncationReason) {
        // First writer wins; later trips keep the original reason.
        let won = self
            .inner
            .tripped
            .compare_exchange(0, encode(reason), Ordering::Relaxed, Ordering::Relaxed)
            .is_ok();
        if won {
            // Only the first trip is an event; sticky re-observations
            // are not. `emit` is one relaxed load when tracing is off.
            lotusx_obs::emit(
                lotusx_obs::QueryId(self.inner.trace_id.load(Ordering::Relaxed)),
                lotusx_obs::EventKind::BudgetTrip {
                    reason: reason.name(),
                },
            );
        }
    }

    fn check_cancelled(&self) {
        if let Some(token) = &self.inner.cancel {
            if token.is_cancelled() {
                self.trip(TruncationReason::Cancelled);
            }
        }
    }

    /// Charges `n` node visits and re-checks every limit. Returns true
    /// when the query should stop. This is the "slow path" a [`Ticker`]
    /// calls once per stride; hot loops must not call it per step.
    pub fn charge_nodes(&self, n: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let total = self.inner.nodes_visited.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(quota) = self.inner.node_quota {
            if total > quota {
                self.trip(TruncationReason::NodeQuotaExceeded);
            }
        }
        self.check_time_and_cancel();
        self.is_tripped()
    }

    /// Charges `n` materialized candidates and re-checks every limit.
    /// Returns true when the query should stop.
    pub fn charge_candidates(&self, n: u64) -> bool {
        if !self.inner.active {
            return false;
        }
        let total = self.inner.candidates_seen.fetch_add(n, Ordering::Relaxed) + n;
        if let Some(quota) = self.inner.candidate_quota {
            if total > quota {
                self.trip(TruncationReason::CandidateQuotaExceeded);
            }
        }
        self.check_time_and_cancel();
        self.is_tripped()
    }

    /// Re-checks the deadline and cancellation without charging work.
    /// Returns true when the query should stop.
    pub fn checkpoint(&self) -> bool {
        if !self.inner.active {
            return false;
        }
        self.check_time_and_cancel();
        self.is_tripped()
    }

    fn check_time_and_cancel(&self) {
        if let Some(deadline) = self.inner.deadline {
            if Instant::now() >= deadline {
                self.trip(TruncationReason::DeadlineExceeded);
            }
        }
        self.check_cancelled();
    }

    /// A [`Ticker`] with the default stride, bound to this guard.
    pub fn ticker(&self) -> Ticker {
        Ticker::new(self.clone(), DEFAULT_STRIDE)
    }
}

/// Default checkpoint stride: consult the guard every this many steps.
/// Small enough that a 1 ms deadline overshoots by well under a
/// millisecond on realistic per-step costs, large enough that the
/// amortized cost (one local decrement per step) is noise.
pub const DEFAULT_STRIDE: u64 = 1024;

/// The amortized hot-loop checkpoint.
///
/// `tick(n)` charges `n` steps to a plain local counter and consults
/// the shared guard only when the counter crosses the stride — so the
/// hot loop pays one subtraction and one predictable branch per call.
/// For an inactive (unbudgeted) guard, `tick` is a single bool test.
///
/// Once the guard trips, `tick` keeps returning true without further
/// atomics — stages use that to unwind.
pub struct Ticker {
    guard: QueryGuard,
    stride: u64,
    pending: u64,
    tripped: bool,
}

impl Ticker {
    /// A ticker flushing to `guard` every `stride` steps. Strides are
    /// clamped to the quota when one is tighter, so a `budget nodes 10`
    /// request trips after ~10 steps, not after 1024.
    pub fn new(guard: QueryGuard, stride: u64) -> Self {
        let mut stride = stride.max(1);
        if let Some(q) = guard.inner.node_quota {
            stride = stride.min(q.max(1));
        }
        if let Some(q) = guard.inner.candidate_quota {
            stride = stride.min(q.max(1));
        }
        let tripped = guard.is_tripped();
        Ticker {
            guard,
            stride,
            pending: 0,
            tripped,
        }
    }

    /// Charges `n` node-visit steps; returns true when the stage should
    /// stop (budget tripped).
    #[inline]
    pub fn tick(&mut self, n: u64) -> bool {
        if !self.guard.is_active() {
            return false;
        }
        if self.tripped {
            return true;
        }
        self.pending += n;
        if self.pending >= self.stride {
            let pending = std::mem::take(&mut self.pending);
            self.tripped = self.guard.charge_nodes(pending);
        }
        self.tripped
    }

    /// Charges `n` materialized candidates; returns true when the stage
    /// should stop. Flushes immediately — candidate quotas are coarse
    /// (per emitted match), not per inner-loop step.
    #[inline]
    pub fn tick_candidates(&mut self, n: u64) -> bool {
        if !self.guard.is_active() {
            return false;
        }
        if self.tripped {
            return true;
        }
        self.tripped = self.guard.charge_candidates(n);
        self.tripped
    }

    /// Flushes any locally buffered steps to the guard and returns the
    /// stop decision. Call on loop exit so counts stay accurate.
    pub fn flush(&mut self) -> bool {
        if !self.guard.is_active() || self.tripped {
            return self.tripped;
        }
        if self.pending > 0 {
            let pending = std::mem::take(&mut self.pending);
            self.tripped = self.guard.charge_nodes(pending);
        } else {
            self.tripped = self.guard.checkpoint();
        }
        self.tripped
    }

    /// Has the underlying guard tripped (as of the last flush)?
    #[inline]
    pub fn stopped(&self) -> bool {
        self.tripped
    }

    /// The guard this ticker charges.
    pub fn guard(&self) -> &QueryGuard {
        &self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_guard_never_trips() {
        let g = QueryGuard::unlimited();
        assert!(!g.is_active());
        assert!(!g.charge_nodes(1_000_000));
        assert!(!g.charge_candidates(1_000_000));
        assert!(!g.checkpoint());
        assert_eq!(g.completeness(), Completeness::Complete);
        // The shared handle stays clean: charges short-circuit.
        assert_eq!(g.nodes_visited(), 0);
    }

    #[test]
    fn default_budget_is_unlimited() {
        assert!(Budget::default().is_unlimited());
        assert!(!QueryGuard::new(&Budget::default()).is_active());
    }

    #[test]
    fn node_quota_trips_and_is_sticky() {
        let g = QueryGuard::new(&Budget::unlimited().with_node_quota(10));
        assert!(!g.charge_nodes(5));
        assert!(!g.charge_nodes(5), "exactly at quota is still fine");
        assert!(g.charge_nodes(1), "crossing the quota trips");
        assert!(g.is_tripped());
        assert_eq!(g.trip_reason(), Some(TruncationReason::NodeQuotaExceeded));
        // A later deadline check cannot overwrite the first reason.
        assert!(g.charge_candidates(1));
        assert_eq!(
            g.completeness(),
            Completeness::Truncated {
                reason: TruncationReason::NodeQuotaExceeded
            }
        );
    }

    #[test]
    fn candidate_quota_trips() {
        let g = QueryGuard::new(&Budget::unlimited().with_candidate_quota(3));
        assert!(!g.charge_candidates(3));
        assert!(g.charge_candidates(1));
        assert_eq!(
            g.trip_reason(),
            Some(TruncationReason::CandidateQuotaExceeded)
        );
    }

    #[test]
    fn zero_budget_trips_at_creation() {
        for budget in [
            Budget::unlimited().with_deadline(Duration::ZERO),
            Budget::unlimited().with_node_quota(0),
            Budget::unlimited().with_candidate_quota(0),
        ] {
            let g = QueryGuard::new(&budget);
            assert!(g.is_tripped(), "{budget:?} must trip immediately");
        }
    }

    #[test]
    fn deadline_trips_on_checkpoint() {
        let g = QueryGuard::new(&Budget::unlimited().with_deadline(Duration::from_millis(1)));
        std::thread::sleep(Duration::from_millis(5));
        assert!(g.checkpoint());
        assert_eq!(g.trip_reason(), Some(TruncationReason::DeadlineExceeded));
        assert!(g.deadline_overshoot().unwrap() > Duration::ZERO);
    }

    #[test]
    fn cancel_token_trips_guard() {
        let token = CancelToken::new();
        let g = QueryGuard::new(&Budget::unlimited().with_cancel(token.clone()));
        assert!(!g.checkpoint());
        token.cancel();
        assert!(g.checkpoint());
        assert_eq!(g.trip_reason(), Some(TruncationReason::Cancelled));
    }

    #[test]
    fn precancelled_token_trips_at_creation() {
        let token = CancelToken::new();
        token.cancel();
        let g = QueryGuard::new(&Budget::unlimited().with_cancel(token));
        assert!(g.is_tripped());
    }

    #[test]
    fn ticker_amortizes_but_stays_accurate() {
        let g = QueryGuard::new(&Budget::unlimited().with_node_quota(10_000_000));
        let mut t = Ticker::new(g.clone(), 100);
        for _ in 0..250 {
            assert!(!t.tick(1));
        }
        // 200 of the 250 steps have been flushed (two full strides).
        assert_eq!(g.nodes_visited(), 200);
        assert!(!t.flush());
        assert_eq!(g.nodes_visited(), 250);
    }

    #[test]
    fn ticker_stride_clamps_to_small_quota() {
        let g = QueryGuard::new(&Budget::unlimited().with_node_quota(8));
        let mut t = Ticker::new(g.clone(), 1024);
        let mut steps = 0u64;
        while !t.tick(1) {
            steps += 1;
            assert!(steps < 100, "small quota must trip promptly");
        }
        assert!(steps <= 16, "stride clamped near the quota, got {steps}");
    }

    #[test]
    fn ticker_on_unlimited_guard_is_free() {
        let g = QueryGuard::unlimited();
        let mut t = g.ticker();
        for _ in 0..10_000 {
            assert!(!t.tick(1));
        }
        assert_eq!(g.nodes_visited(), 0, "inactive guard never charged");
    }

    #[test]
    fn ticker_sticks_after_trip() {
        let g = QueryGuard::new(&Budget::unlimited().with_node_quota(5));
        let mut t = Ticker::new(g, 1);
        let mut stopped = 0;
        for _ in 0..20 {
            if t.tick(1) {
                stopped += 1;
            }
        }
        assert!(stopped >= 14, "once tripped, every later tick stops");
        assert!(t.stopped());
    }

    #[test]
    fn trace_id_tags_active_guards_only() {
        let g = QueryGuard::new(&Budget::unlimited().with_node_quota(1));
        g.set_trace_id(42);
        assert!(g.charge_nodes(2), "tagged guard still trips normally");
        // The shared unlimited guard ignores tagging: it is process-wide
        // and must never carry one query's id into another's.
        let u = QueryGuard::unlimited();
        u.set_trace_id(7);
        assert_eq!(u.inner.trace_id.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn tenant_limits_fill_only_unset_budget_fields() {
        let limits = TenantLimits {
            max_inflight: Some(2),
            default_deadline: Some(Duration::from_millis(50)),
            default_node_quota: Some(1_000),
            default_candidate_quota: None,
        };
        assert!(!limits.is_unlimited());

        // An empty budget picks up every configured default.
        let filled = limits.apply_defaults(Budget::unlimited());
        assert_eq!(filled.deadline, Some(Duration::from_millis(50)));
        assert_eq!(filled.node_quota, Some(1_000));
        assert_eq!(filled.candidate_quota, None, "no default, stays unset");

        // Explicit request fields always win over tenant defaults.
        let explicit = Budget::unlimited()
            .with_deadline(Duration::from_secs(5))
            .with_node_quota(7);
        let kept = limits.apply_defaults(explicit);
        assert_eq!(kept.deadline, Some(Duration::from_secs(5)));
        assert_eq!(kept.node_quota, Some(7));

        // The unlimited policy is a no-op.
        let untouched = TenantLimits::unlimited().apply_defaults(Budget::unlimited());
        assert!(untouched.is_unlimited());
        assert!(TenantLimits::default().is_unlimited());
    }

    #[test]
    fn completeness_helpers() {
        assert!(Completeness::Complete.is_complete());
        let t = Completeness::Truncated {
            reason: TruncationReason::DeadlineExceeded,
        };
        assert!(!t.is_complete());
        assert_eq!(
            t.truncation_reason(),
            Some(TruncationReason::DeadlineExceeded)
        );
        assert_eq!(
            TruncationReason::DeadlineExceeded.to_string(),
            "deadline_exceeded"
        );
    }
}
