//! The LotusX engine: load, search, rank, rewrite.
//!
//! The engine is driven through one typed request/response pair:
//! [`QueryRequest`] (twig or keyword text plus per-request overrides, an
//! optional execution [`Budget`], and an opt-in profiling flag) and
//! [`QueryResponse`] (ranked matches, a [`Completeness`] marker, plus an
//! optional [`QueryProfile`] with the stage-timing tree). Configuration
//! travels as a validated [`EngineConfig`] value applied atomically with
//! [`LotusX::reconfigure`].
//!
//! Budgeted queries degrade gracefully: when a deadline or quota trips
//! mid-query the engine stops at the next cooperative checkpoint and
//! returns the best results found so far, marked
//! [`Completeness::Truncated`] — never an error, and never silently
//! passed off as a complete answer. Truncated outcomes are not cached.

use lotusx_autocomplete::{CompletionEngine, ValueTrieCache};
use lotusx_guard::{Budget, Completeness, QueryGuard, TruncationReason};
use lotusx_index::{BuildOptions, IndexedDocument};
use lotusx_obs::{EventKind, QueryId, QueryProfile, Span, Stage};
use lotusx_par::{
    default_threads, par_map_isolated, CacheStats, ShardLoad, ShardedLru, WorkerPanic,
};
use lotusx_rank::{RankWeights, Ranker};
use lotusx_rewrite::{Rewriter, RewriterConfig};
use lotusx_twig::exec::{execute_budgeted, Algorithm};
use lotusx_twig::matcher::TwigMatch;
use lotusx_twig::pattern::TwigPattern;
use lotusx_twig::xpath::{parse_query, ParseError};
use lotusx_xml::{Document, NodeId, SerializeOptions};
use std::fmt;
use std::sync::Arc;
use std::time::Instant;

/// Errors surfaced by the engine.
#[derive(Debug)]
#[non_exhaustive]
pub enum LotusError {
    /// The XML input failed to parse.
    Xml(lotusx_xml::Error),
    /// The query text failed to parse (the message carries the byte
    /// offset and a caret snippet of the offending input).
    Query(ParseError),
    /// The file could not be read.
    Io(std::io::Error),
    /// A binary snapshot could not be read or written. Carries the
    /// structured [`lotusx_storage::StorageError`] so callers can
    /// distinguish corruption from version skew from I/O failure.
    Storage(lotusx_storage::StorageError),
    /// An [`EngineConfig`] failed validation.
    Config(String),
    /// A worker thread panicked while running this query in a batch. Only
    /// the panicking slot fails; sibling queries in the same
    /// [`LotusX::query_batch`] call still return their results.
    WorkerPanic(WorkerPanic),
}

impl fmt::Display for LotusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotusError::Xml(e) => write!(f, "XML error: {e}"),
            LotusError::Query(e) => write!(f, "query error: {e}"),
            LotusError::Io(e) => write!(f, "I/O error: {e}"),
            LotusError::Storage(e) => write!(f, "snapshot error: {e}"),
            LotusError::Config(e) => write!(f, "configuration error: {e}"),
            LotusError::WorkerPanic(e) => write!(f, "worker panic: {e}"),
        }
    }
}

impl std::error::Error for LotusError {}

impl From<lotusx_xml::Error> for LotusError {
    fn from(e: lotusx_xml::Error) -> Self {
        LotusError::Xml(e)
    }
}
impl From<ParseError> for LotusError {
    fn from(e: ParseError) -> Self {
        LotusError::Query(e)
    }
}
impl From<std::io::Error> for LotusError {
    fn from(e: std::io::Error) -> Self {
        LotusError::Io(e)
    }
}
impl From<WorkerPanic> for LotusError {
    fn from(e: WorkerPanic) -> Self {
        LotusError::WorkerPanic(e)
    }
}
impl From<lotusx_storage::StorageError> for LotusError {
    fn from(e: lotusx_storage::StorageError) -> Self {
        LotusError::Storage(e)
    }
}

/// The engine's full configuration as one validated value.
///
/// Build one with the fluent setters and apply it atomically with
/// [`LotusX::reconfigure`]; read the active one back with
/// [`LotusX::config`]:
///
/// ```
/// use lotusx::{engine::EngineConfig, Algorithm, LotusX};
///
/// let mut system = LotusX::load_str("<a><b/></a>").unwrap();
/// let config = system
///     .config()
///     .clone()
///     .algorithm(Algorithm::TJFast)
///     .result_limit(10);
/// system.reconfigure(config).unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct EngineConfig {
    algorithm: Option<Algorithm>,
    weights: RankWeights,
    rewriter: RewriterConfig,
    auto_rewrite: bool,
    result_limit: usize,
    threads: usize,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            algorithm: Some(Algorithm::TwigStack),
            weights: RankWeights::default(),
            rewriter: RewriterConfig::default(),
            auto_rewrite: true,
            result_limit: 100,
            threads: default_threads(),
        }
    }
}

impl EngineConfig {
    /// The default configuration (TwigStack pinned, auto-rewrite on,
    /// 100 results, the host's available parallelism).
    pub fn new() -> Self {
        Self::default()
    }

    /// Pins the join algorithm.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Lets the engine pick an algorithm per query from its shape and the
    /// streams' selectivity (see `lotusx_twig::select_algorithm`).
    pub fn auto_algorithm(mut self) -> Self {
        self.algorithm = None;
        self
    }

    /// Sets the ranking weights.
    pub fn rank_weights(mut self, weights: RankWeights) -> Self {
        self.weights = weights;
        self
    }

    /// Sets the empty-result rewriter's search budget.
    pub fn rewriter(mut self, config: RewriterConfig) -> Self {
        self.rewriter = config;
        self
    }

    /// Enables/disables automatic rewriting of empty-result queries.
    pub fn auto_rewrite(mut self, on: bool) -> Self {
        self.auto_rewrite = on;
        self
    }

    /// Sets how many ranked results a search returns.
    pub fn result_limit(mut self, limit: usize) -> Self {
        self.result_limit = limit;
        self
    }

    /// Sets the worker-thread count for partitioned search and ranking
    /// (`1` = fully serial). Outcomes are identical for every thread
    /// count, so changing only this never invalidates the query cache.
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// The pinned algorithm (`None` = per-query auto-selection).
    pub fn pinned_algorithm(&self) -> Option<Algorithm> {
        self.algorithm
    }

    /// The ranking weights.
    pub fn weights(&self) -> RankWeights {
        self.weights
    }

    /// The rewriter budget.
    pub fn rewriter_config(&self) -> RewriterConfig {
        self.rewriter
    }

    /// Whether empty-result queries are rewritten automatically.
    pub fn auto_rewrite_enabled(&self) -> bool {
        self.auto_rewrite
    }

    /// The ranked-result limit.
    pub fn result_limit_value(&self) -> usize {
        self.result_limit
    }

    /// The worker-thread count.
    pub fn threads_value(&self) -> usize {
        self.threads
    }

    /// Checks the configuration for nonsensical values.
    pub fn validate(&self) -> Result<(), LotusError> {
        if self.threads == 0 {
            return Err(LotusError::Config(
                "threads must be at least 1 (1 = serial)".into(),
            ));
        }
        for (name, w) in [
            ("structure", self.weights.structure),
            ("content", self.weights.content),
            ("specificity", self.weights.specificity),
        ] {
            if !w.is_finite() || w < 0.0 {
                return Err(LotusError::Config(format!(
                    "rank weight `{name}` must be finite and non-negative, got {w}"
                )));
            }
        }
        if !self.rewriter.max_cost.is_finite() || self.rewriter.max_cost < 0.0 {
            return Err(LotusError::Config(format!(
                "rewriter max_cost must be finite and non-negative, got {}",
                self.rewriter.max_cost
            )));
        }
        Ok(())
    }

    /// Whether `self` and `other` can produce different query outcomes
    /// (everything except the thread count, which never changes results).
    fn affects_results_differently(&self, other: &EngineConfig) -> bool {
        let w = |x: RankWeights| {
            (
                x.structure.to_bits(),
                x.content.to_bits(),
                x.specificity.to_bits(),
            )
        };
        let r = |x: RewriterConfig| {
            (
                x.max_rewrites,
                x.max_expansions,
                x.max_cost.to_bits(),
                x.spell_distance,
                x.guide_pruning,
            )
        };
        self.algorithm != other.algorithm
            || w(self.weights) != w(other.weights)
            || r(self.rewriter) != r(other.rewriter)
            || self.auto_rewrite != other.auto_rewrite
            || self.result_limit != other.result_limit
    }
}

/// What a [`QueryRequest`] asks the engine to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum QueryKind {
    /// A twig (XPath-like) pattern, parsed from the request text.
    Twig,
    /// Free-text keyword (SLCA) search.
    Keyword,
}

/// One query as the engine runs it: the text, what kind of search it is,
/// per-request overrides, and whether to profile the execution.
#[derive(Clone, Debug)]
pub struct QueryRequest {
    /// The query text (twig syntax or whitespace-separated keywords).
    pub text: String,
    /// Twig pattern or keyword search.
    pub kind: QueryKind,
    /// Per-request result limit (`None` = the engine's configured limit).
    pub top_k: Option<usize>,
    /// Per-request join algorithm (`None` = the engine's configuration;
    /// ignored by keyword searches).
    pub algorithm: Option<Algorithm>,
    /// Execution budget: wall-clock deadline, work quotas and/or a
    /// cancellation token. The default is unlimited. When a limit trips
    /// the response carries the best results found so far and is marked
    /// [`Completeness::Truncated`].
    pub budget: Budget,
    /// Ask for a [`QueryProfile`] in the response. Profiling never
    /// changes the computed matches.
    pub profile: bool,
}

impl QueryRequest {
    /// A twig query over `text` with engine-default settings.
    pub fn twig(text: impl Into<String>) -> Self {
        QueryRequest {
            text: text.into(),
            kind: QueryKind::Twig,
            top_k: None,
            algorithm: None,
            budget: Budget::unlimited(),
            profile: false,
        }
    }

    /// A keyword (SLCA) query over `text`.
    pub fn keyword(text: impl Into<String>) -> Self {
        QueryRequest {
            kind: QueryKind::Keyword,
            ..Self::twig(text)
        }
    }

    /// Limits this request to the best `k` results.
    pub fn top_k(mut self, k: usize) -> Self {
        self.top_k = Some(k);
        self
    }

    /// Pins the join algorithm for this request only.
    pub fn algorithm(mut self, algorithm: Algorithm) -> Self {
        self.algorithm = Some(algorithm);
        self
    }

    /// Caps this request's execution with `budget`.
    pub fn budget(mut self, budget: Budget) -> Self {
        self.budget = budget;
        self
    }

    /// Shorthand: caps this request at a wall-clock deadline of `ms`
    /// milliseconds.
    pub fn deadline_ms(self, ms: u64) -> Self {
        let budget = self
            .budget
            .clone()
            .with_deadline(std::time::Duration::from_millis(ms));
        self.budget(budget)
    }

    /// Asks for (or suppresses) a per-query profile.
    pub fn profiled(mut self, on: bool) -> Self {
        self.profile = on;
        self
    }
}

/// The engine's answer to one [`QueryRequest`].
#[derive(Clone, Debug)]
pub struct QueryResponse {
    /// Ranked results (best first), truncated to the effective limit.
    pub matches: Vec<SearchResult>,
    /// Total number of matches before truncation.
    pub total_matches: usize,
    /// If the original query was empty and a rewrite produced these
    /// results: the rewritten query and what was changed.
    pub rewrite: Option<RewriteInfo>,
    /// Whether the query ran to completion or was cut short by its
    /// [`Budget`]. Truncated responses still hold valid matches — every
    /// result returned is a true answer — but the set may be a prefix of
    /// what an unbudgeted run would find.
    pub completeness: Completeness,
    /// The join algorithm that produced these matches — the chooser's
    /// pick when the configuration or request said [`Algorithm::Auto`].
    /// Cache hits report the algorithm of the original execution;
    /// keyword searches report `None`. Not part of the wire encoding:
    /// identical answers stay byte-identical regardless of which
    /// algorithm produced them.
    pub algorithm: Option<Algorithm>,
    /// The execution profile, present iff the request asked for one.
    pub profile: Option<QueryProfile>,
}

/// One ranked search result.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The LotusScore (higher = better).
    pub score: f64,
    /// The full binding vector (query node index → element).
    pub bindings: Vec<NodeId>,
    /// Bindings of the pattern's output nodes.
    pub output: Vec<NodeId>,
    /// Serialized subtree of the first output node.
    pub snippet: String,
}

/// The outcome of one search: ranked results plus rewrite provenance.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Ranked results (best first), truncated to the configured limit.
    pub results: Vec<SearchResult>,
    /// Total number of matches before truncation.
    pub total_matches: usize,
    /// If the original query was empty and a rewrite produced these
    /// results: the rewritten query and what was changed.
    pub rewrite: Option<RewriteInfo>,
    /// Whether the search ran to completion or was cut short by a budget.
    pub completeness: Completeness,
    /// The join algorithm that produced these results (`None` when no
    /// join ran, e.g. an exhausted budget). Memoized with the outcome, so
    /// a cache hit reports the algorithm of the original execution.
    pub algorithm: Option<Algorithm>,
}

/// Provenance of an automatic rewrite.
#[derive(Clone, Debug)]
pub struct RewriteInfo {
    /// The query that was actually executed.
    pub pattern: TwigPattern,
    /// Total relaxation penalty.
    pub cost: f64,
    /// Human-readable descriptions of the applied operators.
    pub ops: Vec<String>,
}

/// Number of hottest tags whose value-completion tries are prebuilt at
/// load time.
const HOT_TAG_TRIES: usize = 8;

/// Capacity of the query-result LRU cache.
const QUERY_CACHE_CAPACITY: usize = 128;

/// Shard count of the query-result LRU cache: enough that concurrent
/// queries rarely contend on one shard mutex, few enough that per-shard
/// stats stay readable.
const QUERY_CACHE_SHARDS: usize = 8;

/// Runs one pipeline stage: `f` gets a child span when the query is
/// profiled, the stage's wall time lands in the global histogram when
/// recording is on, and stage begin/end events tagged with `qid` go to
/// the trace ring when tracing is on. With all three off this is the
/// bare call.
fn run_stage<T>(
    span: Option<&Span>,
    stage: Stage,
    recording: bool,
    qid: QueryId,
    f: impl FnOnce(Option<&Span>) -> T,
) -> T {
    lotusx_obs::emit(
        qid,
        EventKind::StageBegin {
            stage: stage.name(),
        },
    );
    let started = recording.then(Instant::now);
    let out = match span {
        Some(parent) => {
            let child = parent.child(stage.name());
            f(Some(&child))
        }
        None => f(None),
    };
    if let Some(t0) = started {
        lotusx_obs::metrics().record_stage(stage, t0.elapsed().as_nanos() as u64);
    }
    lotusx_obs::emit(
        qid,
        EventKind::StageEnd {
            stage: stage.name(),
        },
    );
    out
}

/// Stable counter name for one chooser decision (`algo_chosen_*` in the
/// metrics snapshot, `stats`, and the `top` live view).
fn chosen_counter(algorithm: Algorithm) -> &'static str {
    match algorithm {
        Algorithm::Naive => "algo_chosen_naive",
        Algorithm::StructuralJoin => "algo_chosen_structural_join",
        Algorithm::PathStack => "algo_chosen_pathstack",
        Algorithm::TwigStack => "algo_chosen_twigstack",
        Algorithm::TJFast => "algo_chosen_tjfast",
        Algorithm::TwigStackGuided => "algo_chosen_twigstack_guided",
        Algorithm::Auto => "algo_chosen_auto",
    }
}

/// Records degradation metrics (degraded-response and deadline counters,
/// the deadline-overshoot histogram) for a truncated outcome. A no-op for
/// complete outcomes or when recording is off.
fn note_degradation(recording: bool, guard: &QueryGuard, completeness: Completeness) {
    let Some(reason) = completeness.truncation_reason() else {
        return;
    };
    if !recording {
        return;
    }
    let m = lotusx_obs::metrics();
    m.incr("degraded_responses", 1);
    if reason == TruncationReason::DeadlineExceeded {
        m.incr("queries_deadline_exceeded", 1);
        if let Some(overshoot) = guard.deadline_overshoot() {
            m.record_named("deadline_overshoot", overshoot.as_nanos() as u64);
        }
    }
}

/// The LotusX system over one loaded document.
///
/// `LotusX` is `Send + Sync`: searches and completions take `&self` and
/// may run concurrently from many threads. The two internal caches (query
/// results, per-tag value tries) are thread-safe and shared across all
/// callers.
pub struct LotusX {
    idx: IndexedDocument,
    config: EngineConfig,
    /// Per-tag value-completion tries, shared with every engine handed
    /// out by [`Self::completion_engine`].
    value_cache: Arc<ValueTrieCache>,
    /// Memoized outcomes keyed by normalized pattern + effective limit +
    /// per-request algorithm + config generation. Sharded so concurrent
    /// queries on different keys never contend on one mutex.
    query_cache: ShardedLru<String, SearchOutcome>,
    /// Bumped by every result-affecting reconfiguration; stale cache keys
    /// never match again and age out of the LRU.
    config_generation: u64,
}

impl LotusX {
    /// Parses and indexes an XML string.
    pub fn load_str(xml: &str) -> Result<Self, LotusError> {
        Ok(Self::load_document(Document::parse_str(xml)?))
    }

    /// Reads, parses and indexes an XML file. Files with the `.ltsx`
    /// extension are opened as LotusX binary snapshots instead.
    ///
    /// This is a thin shim over [`Self::open`] with
    /// [`CorpusSource::from_path`].
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self, LotusError> {
        Self::open(&crate::source::CorpusSource::from_path(path.as_ref()))
    }

    /// Opens any corpus source — XML file, `.ltsx` snapshot, generated
    /// dataset spec or inline XML — through one entry point. See
    /// [`CorpusSource`](crate::source::CorpusSource) for the accepted
    /// forms.
    pub fn open(source: &crate::source::CorpusSource) -> Result<Self, LotusError> {
        use crate::source::CorpusSource;
        match source {
            CorpusSource::XmlFile(path) => {
                let xml = std::fs::read_to_string(path)?;
                Self::load_str(&xml)
            }
            CorpusSource::Snapshot(path) => Self::open_snapshot(path),
            CorpusSource::Spec {
                dataset,
                scale,
                seed,
            } => Ok(Self::load_document(lotusx_datagen::generate(
                *dataset, *scale, *seed,
            ))),
            CorpusSource::Inline(xml) => Self::load_str(xml),
        }
    }

    /// Saves the **entire index set** — document tree, labels, tag/value
    /// indexes, completion tries, DataGuide and statistics tables — as a
    /// sectioned, checksummed binary snapshot that [`Self::open_snapshot`]
    /// reopens with bulk reads instead of a rebuild. The write is atomic:
    /// the snapshot is staged in a temp file beside the target, fsynced
    /// and renamed into place, so a crash never leaves a torn file.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), LotusError> {
        let mut sections = lotusx_index::snapshot::encode_sections(&self.idx);
        // The warm value-trie cache rides along so a reopened snapshot
        // starts with the same hot completion set instead of rebuilding it.
        sections.push(lotusx_storage::Section {
            id: lotusx_storage::snapshot::section::VALUE_TRIES,
            bytes: self.value_cache.encode(),
        });
        lotusx_storage::write_snapshot_file(path, &sections)?;
        Ok(())
    }

    /// Opens a binary snapshot written by [`Self::save_snapshot`].
    ///
    /// Version negotiation: v2 snapshots deserialize every index
    /// structure directly into place (no re-parsing, re-labeling or stats
    /// re-walks); legacy v1 document-only snapshots still open by
    /// decoding the tree and rebuilding the indexes.
    pub fn open_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, LotusError> {
        let snapshot = lotusx_storage::read_snapshot_file(path)?;
        if snapshot.version == 1 {
            let payload = snapshot
                .section(lotusx_storage::snapshot::section::DOCUMENT)
                .ok_or(LotusError::Storage(lotusx_storage::StorageError::Corrupt(
                    "v1 snapshot without document payload",
                )))?;
            let doc = lotusx_storage::decode_document_payload(payload)?;
            return Ok(Self::load_document(doc));
        }
        let idx = lotusx_index::snapshot::decode_sections(&snapshot.sections)?;
        // Restore the shipped value-trie cache when present (duplicates
        // are corruption); snapshots without one rebuild the hot set.
        let mut vtries = snapshot
            .sections
            .iter()
            .filter(|s| s.id == lotusx_storage::snapshot::section::VALUE_TRIES);
        match (vtries.next(), vtries.next()) {
            (Some(s), None) => {
                let cache = ValueTrieCache::decode(&s.bytes, idx.document().symbols().len())?;
                Ok(Self::assemble(idx, cache))
            }
            (None, None) => Ok(Self::from_indexed(idx)),
            _ => Err(LotusError::Storage(lotusx_storage::StorageError::Corrupt(
                "duplicate snapshot section",
            ))),
        }
    }

    /// Wraps an already-indexed document in a fresh engine (new caches,
    /// default configuration), pre-building the value tries of the
    /// hottest tags exactly as [`Self::load_document`] does.
    pub fn from_indexed(idx: IndexedDocument) -> Self {
        let value_cache = ValueTrieCache::new();
        value_cache.precompute_hottest(&idx, HOT_TAG_TRIES, EngineConfig::default().threads);
        Self::assemble(idx, value_cache)
    }

    /// Pairs an index with an already-warm value-trie cache (the snapshot
    /// fast path: no trie rebuilds at all).
    fn assemble(idx: IndexedDocument, value_cache: ValueTrieCache) -> Self {
        LotusX {
            idx,
            config: EngineConfig::default(),
            value_cache: Arc::new(value_cache),
            query_cache: ShardedLru::new(QUERY_CACHE_CAPACITY, QUERY_CACHE_SHARDS),
            config_generation: 0,
        }
    }

    /// Consumes the engine, returning the indexed document.
    pub fn into_index(self) -> IndexedDocument {
        self.idx
    }

    /// Indexes an already-parsed document, partitioning index construction
    /// across the host's worker threads and pre-building the value tries
    /// of the hottest tags.
    pub fn load_document(doc: Document) -> Self {
        Self::from_indexed(IndexedDocument::build_with(
            doc,
            &BuildOptions {
                threads: default_threads(),
            },
        ))
    }

    /// The underlying indexed document.
    pub fn index(&self) -> &IndexedDocument {
        &self.idx
    }

    /// The active configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Validates and applies `config` atomically. The query cache is
    /// invalidated iff a result-affecting knob changed (everything except
    /// the thread count). On error nothing changes.
    pub fn reconfigure(&mut self, config: EngineConfig) -> Result<(), LotusError> {
        config.validate()?;
        if self.config.affects_results_differently(&config) {
            self.config_generation += 1;
        }
        self.config = config;
        Ok(())
    }

    /// The pinned join algorithm (the default when auto-selection is on).
    pub fn algorithm(&self) -> Algorithm {
        self.config.algorithm.unwrap_or(Algorithm::TwigStack)
    }

    /// Resolves the effective join algorithm for one execution. A pinned
    /// concrete algorithm passes through; `Algorithm::Auto` (per request
    /// or configuration) and an unset configuration run the cost-model
    /// chooser, recording the decision as an `algo_chosen_*` counter and
    /// an [`EventKind::AlgoChosen`] trace event.
    fn algorithm_for(
        &self,
        pattern: &TwigPattern,
        request_override: Option<Algorithm>,
        recording: bool,
        qid: QueryId,
    ) -> Algorithm {
        match request_override.or(self.config.algorithm) {
            Some(Algorithm::Auto) | None => {
                let choice = lotusx_twig::choose_algorithm(&self.idx, pattern);
                if recording {
                    lotusx_obs::metrics().incr(chosen_counter(choice.algorithm), 1);
                }
                lotusx_obs::emit(
                    qid,
                    EventKind::AlgoChosen {
                        algorithm: choice.algorithm.name(),
                    },
                );
                choice.algorithm
            }
            Some(pinned) => pinned,
        }
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.config.threads
    }

    /// Aggregate hit/miss statistics of the query-result cache.
    pub fn query_cache_stats(&self) -> CacheStats {
        self.query_cache.stats()
    }

    /// Per-shard hit/miss statistics of the query-result cache, in shard
    /// order — a hot query hammering one shard shows up as an outlier.
    pub fn query_cache_shard_stats(&self) -> Vec<CacheStats> {
        self.query_cache.per_shard_stats()
    }

    /// Number of per-tag value-completion tries currently cached.
    pub fn value_trie_cache_len(&self) -> usize {
        self.value_cache.len()
    }

    /// Per-shard hit/miss/occupancy counters of the value-trie cache.
    pub fn value_trie_shard_stats(&self) -> Vec<ShardLoad> {
        self.value_cache.shard_stats()
    }

    /// Runs one [`QueryRequest`].
    ///
    /// Twig outcomes are memoized in a thread-safe LRU keyed by the
    /// normalized pattern text plus the request's effective limit and
    /// algorithm override, so repeating a query (even spelled differently,
    /// e.g. with extra whitespace) is a cache hit until a result-affecting
    /// reconfiguration invalidates the cache. Keyword searches are not
    /// cached. Profiling ([`QueryRequest::profile`]) never changes the
    /// matches — responses are identical with it on or off.
    pub fn query(&self, request: &QueryRequest) -> Result<QueryResponse, LotusError> {
        match request.kind {
            QueryKind::Twig => self.query_twig(request),
            QueryKind::Keyword => Ok(self.query_keyword(request)),
        }
    }

    /// Runs many requests, partitioned across the worker threads. The
    /// result at position `i` is exactly `self.query(&requests[i])`.
    ///
    /// Worker panics are isolated: a panic while running one request
    /// surfaces as [`LotusError::WorkerPanic`] in that slot (after a
    /// serial retry of the affected chunk narrows it to the poisoned
    /// request) while every sibling request still completes normally.
    pub fn query_batch(&self, requests: &[QueryRequest]) -> Vec<Result<QueryResponse, LotusError>> {
        par_map_isolated(requests, self.config.threads, |r| self.query(r))
            .into_iter()
            .map(|slot| match slot {
                Ok(response) => response,
                Err(panic) => {
                    lotusx_obs::metrics().incr("worker_panics", 1);
                    Err(LotusError::WorkerPanic(panic))
                }
            })
            .collect()
    }

    /// Profiles one twig query: shorthand for a profiled [`Self::query`],
    /// returning just the [`QueryProfile`] the CLI renders as `explain`.
    pub fn explain(&self, query: &str) -> Result<QueryProfile, LotusError> {
        let request = QueryRequest::twig(query).profiled(true);
        let response = self.query(&request)?;
        Ok(response
            .profile
            .expect("profiled requests always carry a profile"))
    }

    fn query_twig(&self, request: &QueryRequest) -> Result<QueryResponse, LotusError> {
        let recording = lotusx_obs::enabled();
        let tracing = lotusx_obs::tracing();
        let qid = if tracing {
            lotusx_obs::next_query_id()
        } else {
            QueryId::NONE
        };
        lotusx_obs::emit(qid, EventKind::QueryBegin);
        let started = recording.then(Instant::now);
        // Sampled always-on profiling: 1-in-N queries build the full span
        // tree even without `request.profile`, feeding the exemplar store.
        // The profile is attached to the response only when asked for, so
        // sampling never changes what the caller sees.
        let sampled = request.profile || lotusx_obs::sampler().should_sample();
        let root = sampled.then(|| Span::new("query"));
        let span = root.as_ref();
        let guard = QueryGuard::new(&request.budget);
        guard.set_trace_id(qid.0);

        let parsed = run_stage(span, Stage::Parse, recording, qid, |_| {
            parse_query(&request.text)
        });
        let pattern = match parsed {
            Ok(p) => p,
            Err(e) => {
                if recording {
                    lotusx_obs::metrics().incr("query_errors", 1);
                }
                lotusx_obs::emit(
                    qid,
                    EventKind::QueryEnd {
                        cache_hit: false,
                        truncated: false,
                        results: 0,
                    },
                );
                return Err(e.into());
            }
        };

        let limit = request.top_k.unwrap_or(self.config.result_limit);
        let key = format!(
            "g{}|k{}|a{}|{}",
            self.config_generation,
            limit,
            request.algorithm.map(|a| a.name()).unwrap_or("-"),
            pattern
        );

        let cached = self.query_cache.get(&key);
        let hit = cached.is_some();
        if recording {
            let m = lotusx_obs::metrics();
            m.incr("queries", 1);
            m.incr(if hit { "cache_hit" } else { "cache_miss" }, 1);
        }
        if tracing {
            lotusx_obs::emit(
                qid,
                EventKind::CacheAccess {
                    shard: self.query_cache.shard_for(&key) as u32,
                    hit,
                },
            );
        }

        let (outcome, executed_algorithm) = match cached {
            // Cache hits are always complete answers (truncated outcomes
            // are never inserted), so they satisfy any budget as-is.
            Some(outcome) => ((*outcome).clone(), None),
            // Exhausted before any work ran (zero budget, pre-cancelled
            // token, or the deadline already passed): nothing but the
            // truncation marker.
            None if guard.checkpoint() => (
                SearchOutcome {
                    results: Vec::new(),
                    total_matches: 0,
                    rewrite: None,
                    completeness: guard.completeness(),
                    algorithm: None,
                },
                None,
            ),
            None => {
                let (outcome, algorithm) = self.run_pattern(
                    &pattern,
                    limit,
                    request.algorithm,
                    span,
                    recording,
                    qid,
                    &guard,
                );
                if outcome.completeness.is_complete() {
                    self.query_cache.insert(key, outcome.clone());
                }
                (outcome, Some(algorithm))
            }
        };
        note_degradation(recording, &guard, outcome.completeness);

        if let Some(t0) = started {
            let total_ns = t0.elapsed().as_nanos() as u64;
            let m = lotusx_obs::metrics();
            m.record_stage(Stage::Total, total_ns);
            m.slow_queries().record(&request.text, total_ns);
        }

        let profile = root.map(|r| {
            r.annotate("cache", if hit { "hit" } else { "miss" });
            if let Some(reason) = outcome.completeness.truncation_reason() {
                r.annotate("truncated", reason.name());
            }
            QueryProfile {
                query: request.text.clone(),
                executed: pattern.to_string(),
                algorithm: executed_algorithm.map(|a| a.name().to_string()),
                cache_hit: hit,
                threads: self.config.threads,
                candidates: outcome.total_matches,
                results: outcome.results.len(),
                rewritten: outcome.rewrite.as_ref().map(|i| i.pattern.to_string()),
                span: r.finish(),
            }
        });
        if let Some(p) = profile.as_ref() {
            lotusx_obs::metrics().exemplars().observe(p);
        }

        lotusx_obs::emit(
            qid,
            EventKind::QueryEnd {
                cache_hit: hit,
                truncated: !outcome.completeness.is_complete(),
                results: outcome.results.len() as u32,
            },
        );

        Ok(QueryResponse {
            algorithm: outcome.algorithm,
            matches: outcome.results,
            total_matches: outcome.total_matches,
            rewrite: outcome.rewrite,
            completeness: outcome.completeness,
            profile: if request.profile { profile } else { None },
        })
    }

    fn query_keyword(&self, request: &QueryRequest) -> QueryResponse {
        let recording = lotusx_obs::enabled();
        let tracing = lotusx_obs::tracing();
        let qid = if tracing {
            lotusx_obs::next_query_id()
        } else {
            QueryId::NONE
        };
        lotusx_obs::emit(qid, EventKind::QueryBegin);
        let started = recording.then(Instant::now);
        let sampled = request.profile || lotusx_obs::sampler().should_sample();
        let root = sampled.then(|| Span::new("query"));
        let limit = request.top_k.unwrap_or(self.config.result_limit);
        // Keyword (SLCA) search runs to completion once started, so the
        // budget gates only whether it starts at all: an exhausted budget
        // yields an empty truncated response, anything else a complete
        // one.
        let guard = QueryGuard::new(&request.budget);
        guard.set_trace_id(qid.0);
        let exhausted = guard.checkpoint();

        let (results, total_matches) = if exhausted {
            (Vec::new(), 0)
        } else {
            run_stage(root.as_ref(), Stage::Keyword, recording, qid, |span| {
                let engine = lotusx_keyword::KeywordEngine::new(&self.idx);
                let doc = self.idx.document();
                let hits = engine.search(&request.text);
                let total = hits.len();
                if let Some(s) = span {
                    s.annotate("hits", total);
                }
                let results: Vec<SearchResult> = hits
                    .into_iter()
                    .take(limit)
                    .map(|hit| SearchResult {
                        score: hit.score,
                        bindings: vec![hit.node],
                        output: vec![hit.node],
                        snippet: doc.serialize(hit.node, SerializeOptions::default()),
                    })
                    .collect();
                (results, total)
            })
        };
        note_degradation(recording, &guard, guard.completeness());

        if let Some(t0) = started {
            let total_ns = t0.elapsed().as_nanos() as u64;
            let m = lotusx_obs::metrics();
            m.incr("queries", 1);
            m.incr("keyword_queries", 1);
            m.record_stage(Stage::Total, total_ns);
            m.slow_queries().record(&request.text, total_ns);
        }

        let profile = root.map(|r| QueryProfile {
            query: request.text.clone(),
            executed: request.text.clone(),
            algorithm: None,
            cache_hit: false,
            threads: self.config.threads,
            candidates: total_matches,
            results: results.len(),
            rewritten: None,
            span: r.finish(),
        });
        if let Some(p) = profile.as_ref() {
            lotusx_obs::metrics().exemplars().observe(p);
        }

        let completeness = guard.completeness();
        lotusx_obs::emit(
            qid,
            EventKind::QueryEnd {
                cache_hit: false,
                truncated: !completeness.is_complete(),
                results: results.len() as u32,
            },
        );

        QueryResponse {
            matches: results,
            total_matches,
            rewrite: None,
            completeness,
            algorithm: None,
            profile: if request.profile { profile } else { None },
        }
    }

    /// Runs a twig pattern: execute → (rewrite if empty) → rank. This is
    /// the canvas-level entry (no query text, no cache) used by
    /// `Session::run`.
    pub fn search_pattern(&self, pattern: &TwigPattern) -> SearchOutcome {
        let recording = lotusx_obs::enabled();
        self.run_pattern(
            pattern,
            self.config.result_limit,
            None,
            None,
            recording,
            QueryId::NONE,
            &QueryGuard::unlimited(),
        )
        .0
    }

    /// Executes, possibly rewrites, ranks and serializes one pattern.
    /// Returns the outcome and the join algorithm of the last execution.
    #[allow(clippy::too_many_arguments)]
    fn run_pattern(
        &self,
        pattern: &TwigPattern,
        limit: usize,
        algorithm_override: Option<Algorithm>,
        span: Option<&Span>,
        recording: bool,
        qid: QueryId,
        guard: &QueryGuard,
    ) -> (SearchOutcome, Algorithm) {
        let algorithm = self.algorithm_for(pattern, algorithm_override, recording, qid);
        let matches = run_stage(span, Stage::Match, recording, qid, |s| {
            execute_budgeted(&self.idx, pattern, algorithm, self.config.threads, s, guard)
        });
        // A tripped guard suppresses rewriting: a truncated empty run says
        // nothing about whether the query is truly empty, and the budget
        // is spent anyway.
        if !matches.is_empty() || !self.config.auto_rewrite || guard.is_tripped() {
            let mut outcome =
                self.finish(pattern, matches, None, limit, span, recording, qid, guard);
            outcome.algorithm = Some(algorithm);
            return (outcome, algorithm);
        }
        // Empty: try rewriting.
        let rewrites = run_stage(span, Stage::Rewrite, recording, qid, |s| {
            let rewriter = Rewriter::with(
                &self.idx,
                lotusx_rewrite::SynonymTable::default_table(),
                self.config.rewriter,
            );
            rewriter.rewrite_spanned(pattern, s)
        });
        match rewrites.into_iter().next() {
            Some(best) => {
                lotusx_obs::emit(qid, EventKind::Rewrite { accepted: true });
                let algorithm =
                    self.algorithm_for(&best.pattern, algorithm_override, recording, qid);
                let matches = run_stage(span, Stage::Match, recording, qid, |s| {
                    execute_budgeted(
                        &self.idx,
                        &best.pattern,
                        algorithm,
                        self.config.threads,
                        s,
                        guard,
                    )
                });
                let info = RewriteInfo {
                    pattern: best.pattern.clone(),
                    cost: best.cost,
                    ops: best.ops,
                };
                let mut outcome = self.finish(
                    &best.pattern,
                    matches,
                    Some(info),
                    limit,
                    span,
                    recording,
                    qid,
                    guard,
                );
                outcome.algorithm = Some(algorithm);
                (outcome, algorithm)
            }
            None => {
                lotusx_obs::emit(qid, EventKind::Rewrite { accepted: false });
                let mut outcome = self.finish(
                    pattern,
                    Vec::new(),
                    None,
                    limit,
                    span,
                    recording,
                    qid,
                    guard,
                );
                outcome.algorithm = Some(algorithm);
                (outcome, algorithm)
            }
        }
    }

    #[allow(clippy::too_many_arguments)]
    fn finish(
        &self,
        pattern: &TwigPattern,
        matches: Vec<TwigMatch>,
        rewrite: Option<RewriteInfo>,
        limit: usize,
        span: Option<&Span>,
        recording: bool,
        qid: QueryId,
        guard: &QueryGuard,
    ) -> SearchOutcome {
        let total_matches = matches.len();
        let ranked = run_stage(span, Stage::Rank, recording, qid, |s| {
            let ranker = Ranker::with_weights(&self.idx, self.config.weights);
            ranker.rank_top_k_budgeted(pattern, matches, limit, self.config.threads, s, guard)
        });
        let results = run_stage(span, Stage::Serialize, recording, qid, |s| {
            let doc = self.idx.document();
            if let Some(s) = s {
                s.annotate("snippets", ranked.len());
            }
            ranked
                .into_iter()
                .map(|sm| {
                    let output = sm.m.project(pattern);
                    let snippet = output
                        .first()
                        .map(|&n| doc.serialize(n, SerializeOptions::default()))
                        .unwrap_or_default();
                    SearchResult {
                        score: sm.score,
                        bindings: sm.m.bindings,
                        output,
                        snippet,
                    }
                })
                .collect()
        });
        SearchOutcome {
            results,
            total_matches,
            rewrite,
            completeness: guard.completeness(),
            algorithm: None,
        }
    }

    /// A position-aware completion engine over this document. All engines
    /// share one value-trie cache, so a trie built while serving one
    /// completion request is reused by every later engine.
    pub fn completion_engine(&self) -> CompletionEngine<'_> {
        CompletionEngine::with_cache(&self.idx, Arc::clone(&self.value_cache))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = "<bib>\
        <book><title>Data on the Web</title><author>Abiteboul</author><year>1999</year></book>\
        <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
        <article><title>TwigStack</title><author>Bruno</author><year>2002</year></article>\
    </bib>";

    fn twig(text: &str) -> QueryRequest {
        QueryRequest::twig(text)
    }

    #[test]
    fn query_returns_ranked_results_with_snippets() {
        let system = LotusX::load_str(BIB).unwrap();
        let response = system.query(&twig("//book/title")).unwrap();
        assert_eq!(response.total_matches, 2);
        assert_eq!(response.matches.len(), 2);
        assert!(response.rewrite.is_none());
        assert!(response.profile.is_none(), "not requested");
        assert!(response.matches[0].snippet.starts_with("<title>"));
        assert!(response.matches[0].score >= response.matches[1].score);
    }

    #[test]
    fn empty_query_triggers_auto_rewrite() {
        let system = LotusX::load_str(BIB).unwrap();
        // "writer" is a synonym of "author".
        let response = system.query(&twig("//book/writer")).unwrap();
        assert!(response.total_matches > 0);
        let info = response.rewrite.expect("rewrite applied");
        assert!(info.pattern.to_string().contains("author"));
        assert!(info.cost > 0.0);
        assert!(!info.ops.is_empty());
    }

    #[test]
    fn auto_rewrite_can_be_disabled() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let config = system.config().clone().auto_rewrite(false);
        system.reconfigure(config).unwrap();
        let response = system.query(&twig("//book/writer")).unwrap();
        assert_eq!(response.total_matches, 0);
        assert!(response.rewrite.is_none());
    }

    #[test]
    fn result_limit_truncates_but_total_is_kept() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let config = system.config().clone().result_limit(1);
        system.reconfigure(config).unwrap();
        let response = system.query(&twig("//author")).unwrap();
        assert_eq!(response.total_matches, 3);
        assert_eq!(response.matches.len(), 1);
    }

    #[test]
    fn per_request_top_k_overrides_the_limit() {
        let system = LotusX::load_str(BIB).unwrap();
        let all = system.query(&twig("//author")).unwrap();
        assert_eq!(all.matches.len(), 3);
        let one = system.query(&twig("//author").top_k(1)).unwrap();
        assert_eq!(one.matches.len(), 1);
        assert_eq!(one.total_matches, 3);
        assert_eq!(one.matches[0].bindings, all.matches[0].bindings);
        // Different top_k values key the cache separately: asking for all
        // again is not poisoned by the k=1 entry.
        assert_eq!(system.query(&twig("//author")).unwrap().matches.len(), 3);
    }

    #[test]
    fn algorithms_are_switchable_per_request() {
        let system = LotusX::load_str(BIB).unwrap();
        let reference = system
            .query(&twig("//book[author]/title"))
            .unwrap()
            .total_matches;
        for algo in Algorithm::ALL {
            let response = system
                .query(&twig("//book[author]/title").algorithm(algo))
                .unwrap();
            assert_eq!(response.total_matches, reference, "{algo}");
        }
    }

    #[test]
    fn reconfigure_validates() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let bad = system.config().clone().threads(0);
        assert!(matches!(
            system.reconfigure(bad),
            Err(LotusError::Config(_))
        ));
        assert_eq!(system.threads(), default_threads(), "unchanged on error");
        let bad = system.config().clone().rank_weights(RankWeights {
            structure: f64::NAN,
            ..RankWeights::default()
        });
        assert!(matches!(
            system.reconfigure(bad),
            Err(LotusError::Config(_))
        ));
    }

    #[test]
    fn bad_inputs_surface_errors() {
        assert!(matches!(
            LotusX::load_str("<a><b></a>"),
            Err(LotusError::Xml(_))
        ));
        let system = LotusX::load_str(BIB).unwrap();
        let err = system.query(&twig("//book[")).unwrap_err();
        assert!(matches!(err, LotusError::Query(_)));
        let rendered = err.to_string();
        assert!(
            rendered.contains('^'),
            "caret snippet in context: {rendered}"
        );
        assert!(matches!(
            LotusX::load_file("/nonexistent/path.xml"),
            Err(LotusError::Io(_))
        ));
    }

    #[test]
    fn output_marker_projects_results() {
        let system = LotusX::load_str(BIB).unwrap();
        let response = system.query(&twig("//book[author!]/title")).unwrap();
        assert!(response.matches[0].snippet.starts_with("<author>"));
    }

    #[test]
    fn responses_report_the_executed_algorithm() {
        let mut system = LotusX::load_str(BIB).unwrap();
        // Pinned configuration: the pin is reported.
        let response = system.query(&twig("//book[title][author]")).unwrap();
        assert_eq!(response.algorithm, Some(Algorithm::TwigStack));
        // Cache hits report the algorithm of the original execution.
        let hit = system.query(&twig("//book[title][author]")).unwrap();
        assert_eq!(hit.algorithm, Some(Algorithm::TwigStack));
        // Auto (via configuration) resolves to a concrete algorithm.
        let config = system.config().clone().auto_algorithm();
        system.reconfigure(config).unwrap();
        let auto = system.query(&twig("//book[title][author]")).unwrap();
        let resolved = auto.algorithm.expect("a join ran");
        assert_ne!(resolved, Algorithm::Auto, "always resolved");
        // Auto as a per-request override resolves too.
        let fresh = LotusX::load_str(BIB).unwrap();
        let via_request = fresh
            .query(&twig("//book/title").algorithm(Algorithm::Auto))
            .unwrap();
        assert!(via_request.algorithm.is_some());
        assert_ne!(via_request.algorithm, Some(Algorithm::Auto));
        // Keyword searches never run a join.
        let keyword = fresh.query(&QueryRequest::keyword("handbook")).unwrap();
        assert!(keyword.algorithm.is_none());
    }

    #[test]
    fn auto_algorithm_matches_pinned_results() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let pinned = system
            .query(&twig("//book[title][author]"))
            .unwrap()
            .total_matches;
        let config = system.config().clone().auto_algorithm();
        system.reconfigure(config).unwrap();
        assert_eq!(
            system
                .query(&twig("//book[title][author]"))
                .unwrap()
                .total_matches,
            pinned
        );
        assert_eq!(system.algorithm(), Algorithm::TwigStack, "reported default");
    }

    #[test]
    fn snapshot_save_and_reopen() {
        let system = LotusX::load_str(BIB).unwrap();
        let dir = std::env::temp_dir().join("lotusx-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bib.ltsx");
        system.save_snapshot(&path).unwrap();
        let reopened = LotusX::load_file(&path).unwrap();
        assert_eq!(
            reopened.query(&twig("//book/title")).unwrap().total_matches,
            system.query(&twig("//book/title")).unwrap().total_matches
        );
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            LotusX::open_snapshot("/nonexistent.ltsx"),
            Err(LotusError::Storage(_))
        ));
    }

    #[test]
    fn keyword_search_through_query() {
        let system = LotusX::load_str(BIB).unwrap();
        let response = system
            .query(&QueryRequest::keyword("twigstack bruno"))
            .unwrap();
        assert_eq!(response.matches.len(), 1);
        assert!(response.matches[0].snippet.starts_with("<article>"));
        assert!(response.rewrite.is_none());
        let empty = system.query(&QueryRequest::keyword("")).unwrap();
        assert!(empty.matches.is_empty());
        // Per-request top_k applies; total is kept.
        let limited = system
            .query(&QueryRequest::keyword("title").top_k(1))
            .unwrap();
        assert!(limited.matches.len() <= 1);
        assert!(limited.total_matches >= limited.matches.len());
    }

    #[test]
    fn ordered_query_through_engine() {
        let system = LotusX::load_str(BIB).unwrap();
        let unordered = system.query(&twig("//book[title][year]")).unwrap();
        let ordered = system.query(&twig("ordered //book[title][year]")).unwrap();
        assert!(ordered.total_matches <= unordered.total_matches);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LotusX>();
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let system = LotusX::load_str(BIB).unwrap();
        let first = system.query(&twig("//book/title")).unwrap();
        assert_eq!(system.query_cache_stats().hits, 0);
        // Same pattern, different spelling: still one normalized key.
        let second = system.query(&twig("  //book/title ")).unwrap();
        let stats = system.query_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(second.total_matches, first.total_matches);
        assert_eq!(second.matches.len(), first.matches.len());
    }

    #[test]
    fn profiles_report_cache_hits() {
        let system = LotusX::load_str(BIB).unwrap();
        let miss = system.query(&twig("//book/title").profiled(true)).unwrap();
        let p = miss.profile.expect("requested");
        assert!(!p.cache_hit);
        assert_eq!(p.algorithm.as_deref(), Some("twigstack"));
        assert_eq!(p.candidates, 2);
        assert_eq!(p.results, 2);
        assert!(p.stage_ns("match") > 0);
        assert!(p.stages_ns() <= p.total_ns());
        let hit = system.query(&twig("//book/title").profiled(true)).unwrap();
        let p = hit.profile.expect("requested");
        assert!(p.cache_hit);
        assert!(p.algorithm.is_none(), "cache hits never reach the join");
        assert!(p.render().contains("cache: hit"));
    }

    #[test]
    fn profiling_does_not_change_results() {
        let system = LotusX::load_str(BIB).unwrap();
        for q in ["//book/title", "//book[author]/title", "//book/writer"] {
            let plain = system.query(&twig(q)).unwrap();
            let fresh = LotusX::load_str(BIB).unwrap();
            let profiled = fresh.query(&twig(q).profiled(true)).unwrap();
            assert_eq!(plain.total_matches, profiled.total_matches, "{q}");
            assert_eq!(plain.matches.len(), profiled.matches.len(), "{q}");
            for (a, b) in plain.matches.iter().zip(&profiled.matches) {
                assert_eq!(a.bindings, b.bindings, "{q}");
                assert_eq!(a.score.to_bits(), b.score.to_bits(), "{q}");
                assert_eq!(a.snippet, b.snippet, "{q}");
            }
        }
    }

    #[test]
    fn explain_renders_a_stage_tree() {
        let system = LotusX::load_str(BIB).unwrap();
        let profile = system.explain("//book[author]/title").unwrap();
        let text = profile.render();
        assert!(text.contains("query: //book[author]/title"));
        assert!(text.contains("parse"));
        assert!(text.contains("match"));
        assert!(text.contains("rank"));
        assert!(text.contains("serialize"));
        assert!(text.contains("total:"));
        // Rewritten queries say so.
        let rewritten = system.explain("//book/writer").unwrap();
        assert!(rewritten.rewritten.is_some());
        assert!(rewritten.render().contains("rewritten to:"));
        assert!(rewritten.stage_ns("rewrite") > 0);
    }

    #[test]
    fn configuration_changes_invalidate_the_cache() {
        let mut system = LotusX::load_str(BIB).unwrap();
        assert_eq!(system.query(&twig("//author")).unwrap().matches.len(), 3);
        let config = system.config().clone().result_limit(1);
        system.reconfigure(config).unwrap();
        // A stale cached outcome would still hold 3 results.
        let response = system.query(&twig("//author")).unwrap();
        assert_eq!(response.matches.len(), 1);
        assert_eq!(response.total_matches, 3);
        assert_eq!(system.query_cache_stats().hits, 0);
    }

    #[test]
    fn thread_only_changes_keep_the_cache() {
        let mut system = LotusX::load_str(BIB).unwrap();
        system.query(&twig("//author")).unwrap();
        let config = system.config().clone().threads(2);
        system.reconfigure(config).unwrap();
        system.query(&twig("//author")).unwrap();
        assert_eq!(system.query_cache_stats().hits, 1, "cache survives");
    }

    #[test]
    fn batch_query_matches_individual_queries() {
        let system = LotusX::load_str(BIB).unwrap();
        let requests: Vec<QueryRequest> = [
            "//book/title",
            "//author",
            "//book[",
            "//book[year >= 2000]",
        ]
        .iter()
        .map(|q| QueryRequest::twig(*q))
        .collect();
        let batch = system.query_batch(&requests);
        assert_eq!(batch.len(), requests.len());
        for (request, response) in requests.iter().zip(&batch) {
            match response {
                Ok(got) => {
                    let expect = system.query(request).unwrap();
                    let q = &request.text;
                    assert_eq!(got.total_matches, expect.total_matches, "{q}");
                    assert_eq!(got.matches.len(), expect.matches.len(), "{q}");
                }
                Err(e) => assert!(matches!(e, LotusError::Query(_))),
            }
        }
        assert!(batch[2].is_err(), "malformed query surfaces its error");
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let mut serial = LotusX::load_str(BIB).unwrap();
        serial
            .reconfigure(serial.config().clone().threads(1))
            .unwrap();
        let mut parallel = LotusX::load_str(BIB).unwrap();
        for threads in [2, 8] {
            parallel
                .reconfigure(parallel.config().clone().threads(threads))
                .unwrap();
            assert_eq!(parallel.threads(), threads);
            for q in [
                "//book/title",
                "//book[title][author]",
                "ordered //book[title][year]",
            ] {
                let a = serial.query(&twig(q)).unwrap();
                let b = parallel.query(&twig(q)).unwrap();
                assert_eq!(a.total_matches, b.total_matches, "{q} at {threads}");
                let ka: Vec<_> = a
                    .matches
                    .iter()
                    .map(|r| (r.bindings.clone(), r.score.to_bits()))
                    .collect();
                let kb: Vec<_> = b
                    .matches
                    .iter()
                    .map(|r| (r.bindings.clone(), r.score.to_bits()))
                    .collect();
                assert_eq!(ka, kb, "{q} at {threads}");
            }
        }
    }

    #[test]
    fn value_trie_cache_is_precomputed_and_shared() {
        let system = LotusX::load_str(BIB).unwrap();
        // BIB has 5 distinct tags; all fit under the hot-tag budget.
        assert!(system.value_trie_cache_len() > 0);
        let before = system.value_trie_cache_len();
        let engine = system.completion_engine();
        let hits = engine.complete_value("title", "xm", 10);
        assert!(hits.iter().any(|c| c.term.starts_with("xm")));
        assert_eq!(
            system.value_trie_cache_len(),
            before,
            "served from shared cache"
        );
    }

    #[test]
    fn unbudgeted_queries_are_complete() {
        let system = LotusX::load_str(BIB).unwrap();
        let response = system.query(&twig("//book/title")).unwrap();
        assert!(response.completeness.is_complete());
        let keyword = system.query(&QueryRequest::keyword("twigstack")).unwrap();
        assert!(keyword.completeness.is_complete());
    }

    #[test]
    fn zero_budget_truncates_immediately() {
        use lotusx_guard::Budget;
        let system = LotusX::load_str(BIB).unwrap();
        let budget = Budget::default().with_node_quota(0);
        let response = system.query(&twig("//book/title").budget(budget)).unwrap();
        assert!(!response.completeness.is_complete());
        assert!(response.matches.is_empty());
        assert_eq!(response.total_matches, 0);
        // A zero deadline behaves the same, on both query kinds.
        let response = system.query(&twig("//author").deadline_ms(0)).unwrap();
        assert_eq!(
            response.completeness.truncation_reason(),
            Some(TruncationReason::DeadlineExceeded)
        );
        let keyword = system
            .query(&QueryRequest::keyword("twigstack").deadline_ms(0))
            .unwrap();
        assert!(!keyword.completeness.is_complete());
        assert!(keyword.matches.is_empty());
    }

    #[test]
    fn cancelled_token_truncates() {
        use lotusx_guard::{Budget, CancelToken};
        let system = LotusX::load_str(BIB).unwrap();
        let token = CancelToken::new();
        token.cancel();
        let budget = Budget::default().with_cancel(token);
        let response = system.query(&twig("//author").budget(budget)).unwrap();
        assert_eq!(
            response.completeness.truncation_reason(),
            Some(TruncationReason::Cancelled)
        );
    }

    #[test]
    fn generous_budget_matches_unbudgeted_run() {
        use lotusx_guard::Budget;
        let system = LotusX::load_str(BIB).unwrap();
        let plain = system.query(&twig("//book[author]/title")).unwrap();
        let fresh = LotusX::load_str(BIB).unwrap();
        let budget = Budget::default()
            .with_deadline(std::time::Duration::from_secs(60))
            .with_node_quota(1_000_000);
        let budgeted = fresh
            .query(&twig("//book[author]/title").budget(budget))
            .unwrap();
        assert!(budgeted.completeness.is_complete());
        assert_eq!(budgeted.total_matches, plain.total_matches);
        for (a, b) in plain.matches.iter().zip(&budgeted.matches) {
            assert_eq!(a.bindings, b.bindings);
            assert_eq!(a.score.to_bits(), b.score.to_bits());
        }
    }

    #[test]
    fn truncated_outcomes_are_not_cached() {
        use lotusx_guard::Budget;
        let system = LotusX::load_str(BIB).unwrap();
        let starved = Budget::default().with_node_quota(0);
        let first = system.query(&twig("//book/title").budget(starved)).unwrap();
        assert!(!first.completeness.is_complete());
        // The full-budget rerun must not be served the truncated outcome.
        let second = system.query(&twig("//book/title")).unwrap();
        assert!(second.completeness.is_complete());
        assert_eq!(second.total_matches, 2);
        let stats = system.query_cache_stats();
        assert_eq!(stats.hits, 0, "nothing to hit: truncation never cached");
        // And a cached complete answer satisfies a starved rerun.
        let starved = Budget::default().with_node_quota(0);
        let third = system.query(&twig("//book/title").budget(starved)).unwrap();
        assert!(third.completeness.is_complete(), "served from cache");
        assert_eq!(third.total_matches, 2);
    }

    #[test]
    fn truncated_profile_reports_the_reason() {
        use lotusx_guard::Budget;
        let system = LotusX::load_str(BIB).unwrap();
        let budget = Budget::default().with_node_quota(0);
        let response = system
            .query(&twig("//book/title").budget(budget).profiled(true))
            .unwrap();
        let profile = response.profile.expect("requested");
        assert!(
            profile.render().contains("truncated=node_quota_exceeded"),
            "{}",
            profile.render()
        );
    }
}
