//! The LotusX engine: load, search, rank, rewrite.

use lotusx_autocomplete::{CompletionEngine, ValueTrieCache};
use lotusx_index::{BuildOptions, IndexedDocument};
use lotusx_par::{default_threads, par_map, CacheStats, ConcurrentLru};
use lotusx_rank::{RankWeights, Ranker};
use lotusx_rewrite::{Rewriter, RewriterConfig};
use lotusx_twig::exec::{execute_parallel, Algorithm};
use lotusx_twig::matcher::TwigMatch;
use lotusx_twig::pattern::TwigPattern;
use lotusx_twig::xpath::{parse_query, ParseError};
use lotusx_xml::{Document, NodeId, SerializeOptions};
use std::fmt;
use std::sync::Arc;

/// Errors surfaced by the engine.
#[derive(Debug)]
pub enum LotusError {
    /// The XML input failed to parse.
    Xml(lotusx_xml::Error),
    /// The query text failed to parse.
    Query(ParseError),
    /// The file could not be read.
    Io(std::io::Error),
    /// A binary snapshot could not be read or written.
    Storage(String),
}

impl fmt::Display for LotusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotusError::Xml(e) => write!(f, "XML error: {e}"),
            LotusError::Query(e) => write!(f, "query error: {e}"),
            LotusError::Io(e) => write!(f, "I/O error: {e}"),
            LotusError::Storage(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for LotusError {}

impl From<lotusx_xml::Error> for LotusError {
    fn from(e: lotusx_xml::Error) -> Self {
        LotusError::Xml(e)
    }
}
impl From<ParseError> for LotusError {
    fn from(e: ParseError) -> Self {
        LotusError::Query(e)
    }
}
impl From<std::io::Error> for LotusError {
    fn from(e: std::io::Error) -> Self {
        LotusError::Io(e)
    }
}

/// One ranked search result.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The LotusScore (higher = better).
    pub score: f64,
    /// The full binding vector (query node index → element).
    pub bindings: Vec<NodeId>,
    /// Bindings of the pattern's output nodes.
    pub output: Vec<NodeId>,
    /// Serialized subtree of the first output node.
    pub snippet: String,
}

/// The outcome of one search: ranked results plus rewrite provenance.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Ranked results (best first), truncated to the configured limit.
    pub results: Vec<SearchResult>,
    /// Total number of matches before truncation.
    pub total_matches: usize,
    /// If the original query was empty and a rewrite produced these
    /// results: the rewritten query and what was changed.
    pub rewrite: Option<RewriteInfo>,
}

/// Provenance of an automatic rewrite.
#[derive(Clone, Debug)]
pub struct RewriteInfo {
    /// The query that was actually executed.
    pub pattern: TwigPattern,
    /// Total relaxation penalty.
    pub cost: f64,
    /// Human-readable descriptions of the applied operators.
    pub ops: Vec<String>,
}

/// Number of hottest tags whose value-completion tries are prebuilt at
/// load time.
const HOT_TAG_TRIES: usize = 8;

/// Capacity of the query-result LRU cache.
const QUERY_CACHE_CAPACITY: usize = 128;

/// The LotusX system over one loaded document.
///
/// `LotusX` is `Send + Sync`: searches and completions take `&self` and
/// may run concurrently from many threads. The two internal caches (query
/// results, per-tag value tries) are thread-safe and shared across all
/// callers.
pub struct LotusX {
    idx: IndexedDocument,
    /// `None` = pick per query via `lotusx_twig::select_algorithm`.
    algorithm_override: Option<Algorithm>,
    weights: RankWeights,
    rewriter_config: RewriterConfig,
    auto_rewrite: bool,
    result_limit: usize,
    /// Worker threads for the partitioned search/ranking phases.
    threads: usize,
    /// Per-tag value-completion tries, shared with every engine handed
    /// out by [`Self::completion_engine`].
    value_cache: Arc<ValueTrieCache>,
    /// Memoized outcomes keyed by normalized pattern + config generation.
    query_cache: ConcurrentLru<String, SearchOutcome>,
    /// Bumped by every configuration setter; stale cache keys never match
    /// again and age out of the LRU.
    config_generation: u64,
}

impl LotusX {
    /// Parses and indexes an XML string.
    pub fn load_str(xml: &str) -> Result<Self, LotusError> {
        Ok(Self::load_document(Document::parse_str(xml)?))
    }

    /// Reads, parses and indexes an XML file. Files with the `.ltsx`
    /// extension are opened as LotusX binary snapshots instead.
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self, LotusError> {
        let path = path.as_ref();
        if path.extension().is_some_and(|e| e == "ltsx") {
            return Self::open_snapshot(path);
        }
        let xml = std::fs::read_to_string(path)?;
        Self::load_str(&xml)
    }

    /// Saves the loaded document as a compact binary snapshot that
    /// [`Self::open_snapshot`] (or `load_file` with a `.ltsx` path)
    /// reopens without re-parsing XML.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), LotusError> {
        lotusx_storage::save_document_file(self.idx.document(), path)
            .map_err(|e| LotusError::Storage(e.to_string()))
    }

    /// Opens a binary snapshot written by [`Self::save_snapshot`].
    pub fn open_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, LotusError> {
        let doc = lotusx_storage::load_document_file(path)
            .map_err(|e| LotusError::Storage(e.to_string()))?;
        Ok(Self::load_document(doc))
    }

    /// Indexes an already-parsed document, partitioning index construction
    /// across the host's worker threads and pre-building the value tries
    /// of the hottest tags.
    pub fn load_document(doc: Document) -> Self {
        let threads = default_threads();
        let idx = IndexedDocument::build_with(doc, &BuildOptions { threads });
        let value_cache = Arc::new(ValueTrieCache::new());
        value_cache.precompute_hottest(&idx, HOT_TAG_TRIES, threads);
        LotusX {
            idx,
            algorithm_override: Some(Algorithm::TwigStack),
            weights: RankWeights::default(),
            rewriter_config: RewriterConfig::default(),
            auto_rewrite: true,
            result_limit: 100,
            threads,
            value_cache,
            query_cache: ConcurrentLru::new(QUERY_CACHE_CAPACITY),
            config_generation: 0,
        }
    }

    /// The underlying indexed document.
    pub fn index(&self) -> &IndexedDocument {
        &self.idx
    }

    /// Pins the join algorithm (default: TwigStack).
    pub fn set_algorithm(&mut self, algorithm: Algorithm) {
        self.algorithm_override = Some(algorithm);
        self.config_generation += 1;
    }

    /// Lets the engine pick an algorithm per query from its shape and the
    /// streams' selectivity (see `lotusx_twig::select_algorithm`).
    pub fn set_auto_algorithm(&mut self) {
        self.algorithm_override = None;
        self.config_generation += 1;
    }

    /// The pinned join algorithm, if any.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm_override.unwrap_or(Algorithm::TwigStack)
    }

    fn algorithm_for(&self, pattern: &TwigPattern) -> Algorithm {
        self.algorithm_override
            .unwrap_or_else(|| lotusx_twig::select_algorithm(&self.idx, pattern))
    }

    /// Sets the ranking weights.
    pub fn set_rank_weights(&mut self, weights: RankWeights) {
        self.weights = weights;
        self.config_generation += 1;
    }

    /// Enables/disables automatic rewriting of empty-result queries.
    pub fn set_auto_rewrite(&mut self, on: bool) {
        self.auto_rewrite = on;
        self.config_generation += 1;
    }

    /// Sets how many ranked results a search returns (default 100).
    pub fn set_result_limit(&mut self, limit: usize) {
        self.result_limit = limit;
        self.config_generation += 1;
    }

    /// Sets the worker-thread count for partitioned search and ranking
    /// (default: the host's available parallelism). `1` means fully
    /// serial. Outcomes are identical for every thread count, so the
    /// query cache is not invalidated.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker-thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Hit/miss statistics of the query-result cache.
    pub fn query_cache_stats(&self) -> CacheStats {
        self.query_cache.stats()
    }

    /// Number of per-tag value-completion tries currently cached.
    pub fn value_trie_cache_len(&self) -> usize {
        self.value_cache.len()
    }

    /// Parses and runs a textual query. Outcomes are memoized in a
    /// thread-safe LRU keyed by the normalized pattern text, so repeating
    /// a query (even spelled differently, e.g. with extra whitespace) is
    /// a cache hit until a configuration setter invalidates the cache.
    pub fn search(&self, query: &str) -> Result<SearchOutcome, LotusError> {
        let pattern = parse_query(query)?;
        let key = format!("g{}|{}", self.config_generation, pattern);
        if let Some(hit) = self.query_cache.get(&key) {
            return Ok((*hit).clone());
        }
        let outcome = self.search_pattern(&pattern);
        self.query_cache.insert(key, outcome.clone());
        Ok(outcome)
    }

    /// Runs many queries, partitioned across the worker threads. The
    /// result at position `i` is exactly `self.search(queries[i])`.
    pub fn search_batch(&self, queries: &[&str]) -> Vec<Result<SearchOutcome, LotusError>> {
        par_map(queries, self.threads, |q| self.search(q))
    }

    /// Runs a twig pattern: execute → (rewrite if empty) → rank.
    pub fn search_pattern(&self, pattern: &TwigPattern) -> SearchOutcome {
        let matches = self.execute(pattern);
        if !matches.is_empty() || !self.auto_rewrite {
            return self.finish(pattern, matches, None);
        }
        // Empty: try rewriting.
        let rewriter = Rewriter::with(
            &self.idx,
            lotusx_rewrite::SynonymTable::default_table(),
            self.rewriter_config,
        );
        let rewrites = rewriter.rewrite(pattern);
        match rewrites.into_iter().next() {
            Some(best) => {
                let matches = self.execute(&best.pattern);
                let info = RewriteInfo {
                    pattern: best.pattern.clone(),
                    cost: best.cost,
                    ops: best.ops,
                };
                self.finish(&best.pattern, matches, Some(info))
            }
            None => self.finish(pattern, Vec::new(), None),
        }
    }

    fn execute(&self, pattern: &TwigPattern) -> Vec<TwigMatch> {
        execute_parallel(
            &self.idx,
            pattern,
            self.algorithm_for(pattern),
            self.threads,
        )
    }

    fn finish(
        &self,
        pattern: &TwigPattern,
        matches: Vec<TwigMatch>,
        rewrite: Option<RewriteInfo>,
    ) -> SearchOutcome {
        let total_matches = matches.len();
        let ranker = Ranker::with_weights(&self.idx, self.weights);
        let ranked = ranker.rank_top_k(pattern, matches, self.result_limit, self.threads);
        let doc = self.idx.document();
        let results = ranked
            .into_iter()
            .map(|sm| {
                let output = sm.m.project(pattern);
                let snippet = output
                    .first()
                    .map(|&n| doc.serialize(n, SerializeOptions::default()))
                    .unwrap_or_default();
                SearchResult {
                    score: sm.score,
                    bindings: sm.m.bindings,
                    output,
                    snippet,
                }
            })
            .collect();
        SearchOutcome {
            results,
            total_matches,
            rewrite,
        }
    }

    /// A position-aware completion engine over this document. All engines
    /// share one value-trie cache, so a trie built while serving one
    /// completion request is reused by every later engine.
    pub fn completion_engine(&self) -> CompletionEngine<'_> {
        CompletionEngine::with_cache(&self.idx, Arc::clone(&self.value_cache))
    }

    /// Free-text keyword search: ranked smallest subtrees (SLCA) covering
    /// every query term — the zero-knowledge entry point for users who
    /// haven't placed a single node on the canvas yet.
    pub fn search_keywords(&self, query: &str) -> Vec<SearchResult> {
        let engine = lotusx_keyword::KeywordEngine::new(&self.idx);
        let doc = self.idx.document();
        engine
            .search(query)
            .into_iter()
            .take(self.result_limit)
            .map(|hit| SearchResult {
                score: hit.score,
                bindings: vec![hit.node],
                output: vec![hit.node],
                snippet: doc.serialize(hit.node, SerializeOptions::default()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = "<bib>\
        <book><title>Data on the Web</title><author>Abiteboul</author><year>1999</year></book>\
        <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
        <article><title>TwigStack</title><author>Bruno</author><year>2002</year></article>\
    </bib>";

    #[test]
    fn search_returns_ranked_results_with_snippets() {
        let system = LotusX::load_str(BIB).unwrap();
        let outcome = system.search("//book/title").unwrap();
        assert_eq!(outcome.total_matches, 2);
        assert_eq!(outcome.results.len(), 2);
        assert!(outcome.rewrite.is_none());
        assert!(outcome.results[0].snippet.starts_with("<title>"));
        assert!(outcome.results[0].score >= outcome.results[1].score);
    }

    #[test]
    fn empty_query_triggers_auto_rewrite() {
        let system = LotusX::load_str(BIB).unwrap();
        // "writer" is a synonym of "author".
        let outcome = system.search("//book/writer").unwrap();
        assert!(outcome.total_matches > 0);
        let info = outcome.rewrite.expect("rewrite applied");
        assert!(info.pattern.to_string().contains("author"));
        assert!(info.cost > 0.0);
        assert!(!info.ops.is_empty());
    }

    #[test]
    fn auto_rewrite_can_be_disabled() {
        let mut system = LotusX::load_str(BIB).unwrap();
        system.set_auto_rewrite(false);
        let outcome = system.search("//book/writer").unwrap();
        assert_eq!(outcome.total_matches, 0);
        assert!(outcome.rewrite.is_none());
    }

    #[test]
    fn result_limit_truncates_but_total_is_kept() {
        let mut system = LotusX::load_str(BIB).unwrap();
        system.set_result_limit(1);
        let outcome = system.search("//author").unwrap();
        assert_eq!(outcome.total_matches, 3);
        assert_eq!(outcome.results.len(), 1);
    }

    #[test]
    fn algorithms_are_switchable() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let reference = system.search("//book[author]/title").unwrap().total_matches;
        for algo in Algorithm::ALL {
            system.set_algorithm(algo);
            assert_eq!(
                system.search("//book[author]/title").unwrap().total_matches,
                reference,
                "{algo}"
            );
        }
    }

    #[test]
    fn bad_inputs_surface_errors() {
        assert!(matches!(
            LotusX::load_str("<a><b></a>"),
            Err(LotusError::Xml(_))
        ));
        let system = LotusX::load_str(BIB).unwrap();
        assert!(matches!(
            system.search("//book["),
            Err(LotusError::Query(_))
        ));
        assert!(matches!(
            LotusX::load_file("/nonexistent/path.xml"),
            Err(LotusError::Io(_))
        ));
    }

    #[test]
    fn output_marker_projects_results() {
        let system = LotusX::load_str(BIB).unwrap();
        let outcome = system.search("//book[author!]/title").unwrap();
        assert!(outcome.results[0].snippet.starts_with("<author>"));
    }

    #[test]
    fn auto_algorithm_matches_pinned_results() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let pinned = system
            .search("//book[title][author]")
            .unwrap()
            .total_matches;
        system.set_auto_algorithm();
        assert_eq!(
            system
                .search("//book[title][author]")
                .unwrap()
                .total_matches,
            pinned
        );
        assert_eq!(system.algorithm(), Algorithm::TwigStack, "reported default");
    }

    #[test]
    fn snapshot_save_and_reopen() {
        let system = LotusX::load_str(BIB).unwrap();
        let dir = std::env::temp_dir().join("lotusx-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bib.ltsx");
        system.save_snapshot(&path).unwrap();
        let reopened = LotusX::load_file(&path).unwrap();
        assert_eq!(
            reopened.search("//book/title").unwrap().total_matches,
            system.search("//book/title").unwrap().total_matches
        );
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            LotusX::open_snapshot("/nonexistent.ltsx"),
            Err(LotusError::Storage(_))
        ));
    }

    #[test]
    fn keyword_search_through_engine() {
        let system = LotusX::load_str(BIB).unwrap();
        let hits = system.search_keywords("twigstack bruno");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].snippet.starts_with("<article>"));
        assert!(system.search_keywords("").is_empty());
        // Result limit applies.
        let mut limited = LotusX::load_str(BIB).unwrap();
        limited.set_result_limit(1);
        assert!(limited.search_keywords("title").len() <= 1);
    }

    #[test]
    fn ordered_query_through_engine() {
        let system = LotusX::load_str(BIB).unwrap();
        let unordered = system.search("//book[title][year]").unwrap();
        let ordered = system.search("ordered //book[title][year]").unwrap();
        assert!(ordered.total_matches <= unordered.total_matches);
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LotusX>();
    }

    #[test]
    fn repeated_queries_hit_the_cache() {
        let system = LotusX::load_str(BIB).unwrap();
        let first = system.search("//book/title").unwrap();
        assert_eq!(system.query_cache_stats().hits, 0);
        // Same pattern, different spelling: still one normalized key.
        let second = system.search("  //book/title ").unwrap();
        let stats = system.query_cache_stats();
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert_eq!(second.total_matches, first.total_matches);
        assert_eq!(second.results.len(), first.results.len());
    }

    #[test]
    fn configuration_changes_invalidate_the_cache() {
        let mut system = LotusX::load_str(BIB).unwrap();
        assert_eq!(system.search("//author").unwrap().results.len(), 3);
        system.set_result_limit(1);
        // A stale cached outcome would still hold 3 results.
        let outcome = system.search("//author").unwrap();
        assert_eq!(outcome.results.len(), 1);
        assert_eq!(outcome.total_matches, 3);
        assert_eq!(system.query_cache_stats().hits, 0);
    }

    #[test]
    fn batch_search_matches_individual_searches() {
        let system = LotusX::load_str(BIB).unwrap();
        let queries = [
            "//book/title",
            "//author",
            "//book[",
            "//book[year >= 2000]",
        ];
        let batch = system.search_batch(&queries);
        assert_eq!(batch.len(), queries.len());
        for (q, outcome) in queries.iter().zip(&batch) {
            match outcome {
                Ok(got) => {
                    let expect = system.search(q).unwrap();
                    assert_eq!(got.total_matches, expect.total_matches, "{q}");
                    assert_eq!(got.results.len(), expect.results.len(), "{q}");
                }
                Err(e) => assert!(matches!(e, LotusError::Query(_)), "{q}"),
            }
        }
        assert!(batch[2].is_err(), "malformed query surfaces its error");
    }

    #[test]
    fn thread_count_does_not_change_outcomes() {
        let mut serial = LotusX::load_str(BIB).unwrap();
        serial.set_threads(1);
        let mut parallel = LotusX::load_str(BIB).unwrap();
        for threads in [2, 8] {
            parallel.set_threads(threads);
            assert_eq!(parallel.threads(), threads);
            for q in [
                "//book/title",
                "//book[title][author]",
                "ordered //book[title][year]",
            ] {
                let a = serial.search(q).unwrap();
                let b = parallel.search(q).unwrap();
                assert_eq!(a.total_matches, b.total_matches, "{q} at {threads}");
                let ka: Vec<_> = a
                    .results
                    .iter()
                    .map(|r| (r.bindings.clone(), r.score.to_bits()))
                    .collect();
                let kb: Vec<_> = b
                    .results
                    .iter()
                    .map(|r| (r.bindings.clone(), r.score.to_bits()))
                    .collect();
                assert_eq!(ka, kb, "{q} at {threads}");
            }
        }
    }

    #[test]
    fn value_trie_cache_is_precomputed_and_shared() {
        let system = LotusX::load_str(BIB).unwrap();
        // BIB has 5 distinct tags; all fit under the hot-tag budget.
        assert!(system.value_trie_cache_len() > 0);
        let before = system.value_trie_cache_len();
        let engine = system.completion_engine();
        let hits = engine.complete_value("title", "xm", 10);
        assert!(hits.iter().any(|c| c.term.starts_with("xm")));
        assert_eq!(
            system.value_trie_cache_len(),
            before,
            "served from shared cache"
        );
    }
}
