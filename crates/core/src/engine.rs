//! The LotusX engine: load, search, rank, rewrite.

use lotusx_autocomplete::CompletionEngine;
use lotusx_index::IndexedDocument;
use lotusx_rank::{RankWeights, Ranker};
use lotusx_rewrite::{Rewriter, RewriterConfig};
use lotusx_twig::exec::{execute, Algorithm};
use lotusx_twig::matcher::TwigMatch;
use lotusx_twig::pattern::TwigPattern;
use lotusx_twig::xpath::{parse_query, ParseError};
use lotusx_xml::{Document, NodeId, SerializeOptions};
use std::fmt;

/// Errors surfaced by the engine.
#[derive(Debug)]
pub enum LotusError {
    /// The XML input failed to parse.
    Xml(lotusx_xml::Error),
    /// The query text failed to parse.
    Query(ParseError),
    /// The file could not be read.
    Io(std::io::Error),
    /// A binary snapshot could not be read or written.
    Storage(String),
}

impl fmt::Display for LotusError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LotusError::Xml(e) => write!(f, "XML error: {e}"),
            LotusError::Query(e) => write!(f, "query error: {e}"),
            LotusError::Io(e) => write!(f, "I/O error: {e}"),
            LotusError::Storage(e) => write!(f, "snapshot error: {e}"),
        }
    }
}

impl std::error::Error for LotusError {}

impl From<lotusx_xml::Error> for LotusError {
    fn from(e: lotusx_xml::Error) -> Self {
        LotusError::Xml(e)
    }
}
impl From<ParseError> for LotusError {
    fn from(e: ParseError) -> Self {
        LotusError::Query(e)
    }
}
impl From<std::io::Error> for LotusError {
    fn from(e: std::io::Error) -> Self {
        LotusError::Io(e)
    }
}

/// One ranked search result.
#[derive(Clone, Debug)]
pub struct SearchResult {
    /// The LotusScore (higher = better).
    pub score: f64,
    /// The full binding vector (query node index → element).
    pub bindings: Vec<NodeId>,
    /// Bindings of the pattern's output nodes.
    pub output: Vec<NodeId>,
    /// Serialized subtree of the first output node.
    pub snippet: String,
}

/// The outcome of one search: ranked results plus rewrite provenance.
#[derive(Clone, Debug)]
pub struct SearchOutcome {
    /// Ranked results (best first), truncated to the configured limit.
    pub results: Vec<SearchResult>,
    /// Total number of matches before truncation.
    pub total_matches: usize,
    /// If the original query was empty and a rewrite produced these
    /// results: the rewritten query and what was changed.
    pub rewrite: Option<RewriteInfo>,
}

/// Provenance of an automatic rewrite.
#[derive(Clone, Debug)]
pub struct RewriteInfo {
    /// The query that was actually executed.
    pub pattern: TwigPattern,
    /// Total relaxation penalty.
    pub cost: f64,
    /// Human-readable descriptions of the applied operators.
    pub ops: Vec<String>,
}

/// The LotusX system over one loaded document.
pub struct LotusX {
    idx: IndexedDocument,
    /// `None` = pick per query via `lotusx_twig::select_algorithm`.
    algorithm_override: Option<Algorithm>,
    weights: RankWeights,
    rewriter_config: RewriterConfig,
    auto_rewrite: bool,
    result_limit: usize,
}

impl LotusX {
    /// Parses and indexes an XML string.
    pub fn load_str(xml: &str) -> Result<Self, LotusError> {
        Ok(Self::load_document(Document::parse_str(xml)?))
    }

    /// Reads, parses and indexes an XML file. Files with the `.ltsx`
    /// extension are opened as LotusX binary snapshots instead.
    pub fn load_file(path: impl AsRef<std::path::Path>) -> Result<Self, LotusError> {
        let path = path.as_ref();
        if path.extension().is_some_and(|e| e == "ltsx") {
            return Self::open_snapshot(path);
        }
        let xml = std::fs::read_to_string(path)?;
        Self::load_str(&xml)
    }

    /// Saves the loaded document as a compact binary snapshot that
    /// [`Self::open_snapshot`] (or `load_file` with a `.ltsx` path)
    /// reopens without re-parsing XML.
    pub fn save_snapshot(&self, path: impl AsRef<std::path::Path>) -> Result<(), LotusError> {
        lotusx_storage::save_document_file(self.idx.document(), path)
            .map_err(|e| LotusError::Storage(e.to_string()))
    }

    /// Opens a binary snapshot written by [`Self::save_snapshot`].
    pub fn open_snapshot(path: impl AsRef<std::path::Path>) -> Result<Self, LotusError> {
        let doc = lotusx_storage::load_document_file(path)
            .map_err(|e| LotusError::Storage(e.to_string()))?;
        Ok(Self::load_document(doc))
    }

    /// Indexes an already-parsed document.
    pub fn load_document(doc: Document) -> Self {
        LotusX {
            idx: IndexedDocument::build(doc),
            algorithm_override: Some(Algorithm::TwigStack),
            weights: RankWeights::default(),
            rewriter_config: RewriterConfig::default(),
            auto_rewrite: true,
            result_limit: 100,
        }
    }

    /// The underlying indexed document.
    pub fn index(&self) -> &IndexedDocument {
        &self.idx
    }

    /// Pins the join algorithm (default: TwigStack).
    pub fn set_algorithm(&mut self, algorithm: Algorithm) {
        self.algorithm_override = Some(algorithm);
    }

    /// Lets the engine pick an algorithm per query from its shape and the
    /// streams' selectivity (see `lotusx_twig::select_algorithm`).
    pub fn set_auto_algorithm(&mut self) {
        self.algorithm_override = None;
    }

    /// The pinned join algorithm, if any.
    pub fn algorithm(&self) -> Algorithm {
        self.algorithm_override.unwrap_or(Algorithm::TwigStack)
    }

    fn algorithm_for(&self, pattern: &TwigPattern) -> Algorithm {
        self.algorithm_override
            .unwrap_or_else(|| lotusx_twig::select_algorithm(&self.idx, pattern))
    }

    /// Sets the ranking weights.
    pub fn set_rank_weights(&mut self, weights: RankWeights) {
        self.weights = weights;
    }

    /// Enables/disables automatic rewriting of empty-result queries.
    pub fn set_auto_rewrite(&mut self, on: bool) {
        self.auto_rewrite = on;
    }

    /// Sets how many ranked results a search returns (default 100).
    pub fn set_result_limit(&mut self, limit: usize) {
        self.result_limit = limit;
    }

    /// Parses and runs a textual query.
    pub fn search(&self, query: &str) -> Result<SearchOutcome, LotusError> {
        Ok(self.search_pattern(&parse_query(query)?))
    }

    /// Runs a twig pattern: execute → (rewrite if empty) → rank.
    pub fn search_pattern(&self, pattern: &TwigPattern) -> SearchOutcome {
        let matches = execute(&self.idx, pattern, self.algorithm_for(pattern));
        if !matches.is_empty() || !self.auto_rewrite {
            return self.finish(pattern, matches, None);
        }
        // Empty: try rewriting.
        let rewriter =
            Rewriter::with(&self.idx, lotusx_rewrite::SynonymTable::default_table(), self.rewriter_config);
        let rewrites = rewriter.rewrite(pattern);
        match rewrites.into_iter().next() {
            Some(best) => {
                let matches =
                    execute(&self.idx, &best.pattern, self.algorithm_for(&best.pattern));
                let info = RewriteInfo {
                    pattern: best.pattern.clone(),
                    cost: best.cost,
                    ops: best.ops,
                };
                self.finish(&best.pattern, matches, Some(info))
            }
            None => self.finish(pattern, Vec::new(), None),
        }
    }

    fn finish(
        &self,
        pattern: &TwigPattern,
        matches: Vec<TwigMatch>,
        rewrite: Option<RewriteInfo>,
    ) -> SearchOutcome {
        let total_matches = matches.len();
        let ranker = Ranker::with_weights(&self.idx, self.weights);
        let ranked = ranker.rank(pattern, matches);
        let doc = self.idx.document();
        let results = ranked
            .into_iter()
            .take(self.result_limit)
            .map(|sm| {
                let output = sm.m.project(pattern);
                let snippet = output
                    .first()
                    .map(|&n| doc.serialize(n, SerializeOptions::default()))
                    .unwrap_or_default();
                SearchResult {
                    score: sm.score,
                    bindings: sm.m.bindings,
                    output,
                    snippet,
                }
            })
            .collect();
        SearchOutcome {
            results,
            total_matches,
            rewrite,
        }
    }

    /// A position-aware completion engine over this document.
    pub fn completion_engine(&self) -> CompletionEngine<'_> {
        CompletionEngine::new(&self.idx)
    }

    /// Free-text keyword search: ranked smallest subtrees (SLCA) covering
    /// every query term — the zero-knowledge entry point for users who
    /// haven't placed a single node on the canvas yet.
    pub fn search_keywords(&self, query: &str) -> Vec<SearchResult> {
        let engine = lotusx_keyword::KeywordEngine::new(&self.idx);
        let doc = self.idx.document();
        engine
            .search(query)
            .into_iter()
            .take(self.result_limit)
            .map(|hit| SearchResult {
                score: hit.score,
                bindings: vec![hit.node],
                output: vec![hit.node],
                snippet: doc.serialize(hit.node, SerializeOptions::default()),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BIB: &str = "<bib>\
        <book><title>Data on the Web</title><author>Abiteboul</author><year>1999</year></book>\
        <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
        <article><title>TwigStack</title><author>Bruno</author><year>2002</year></article>\
    </bib>";

    #[test]
    fn search_returns_ranked_results_with_snippets() {
        let system = LotusX::load_str(BIB).unwrap();
        let outcome = system.search("//book/title").unwrap();
        assert_eq!(outcome.total_matches, 2);
        assert_eq!(outcome.results.len(), 2);
        assert!(outcome.rewrite.is_none());
        assert!(outcome.results[0].snippet.starts_with("<title>"));
        assert!(outcome.results[0].score >= outcome.results[1].score);
    }

    #[test]
    fn empty_query_triggers_auto_rewrite() {
        let system = LotusX::load_str(BIB).unwrap();
        // "writer" is a synonym of "author".
        let outcome = system.search("//book/writer").unwrap();
        assert!(outcome.total_matches > 0);
        let info = outcome.rewrite.expect("rewrite applied");
        assert!(info.pattern.to_string().contains("author"));
        assert!(info.cost > 0.0);
        assert!(!info.ops.is_empty());
    }

    #[test]
    fn auto_rewrite_can_be_disabled() {
        let mut system = LotusX::load_str(BIB).unwrap();
        system.set_auto_rewrite(false);
        let outcome = system.search("//book/writer").unwrap();
        assert_eq!(outcome.total_matches, 0);
        assert!(outcome.rewrite.is_none());
    }

    #[test]
    fn result_limit_truncates_but_total_is_kept() {
        let mut system = LotusX::load_str(BIB).unwrap();
        system.set_result_limit(1);
        let outcome = system.search("//author").unwrap();
        assert_eq!(outcome.total_matches, 3);
        assert_eq!(outcome.results.len(), 1);
    }

    #[test]
    fn algorithms_are_switchable() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let reference = system.search("//book[author]/title").unwrap().total_matches;
        for algo in Algorithm::ALL {
            system.set_algorithm(algo);
            assert_eq!(
                system.search("//book[author]/title").unwrap().total_matches,
                reference,
                "{algo}"
            );
        }
    }

    #[test]
    fn bad_inputs_surface_errors() {
        assert!(matches!(LotusX::load_str("<a><b></a>"), Err(LotusError::Xml(_))));
        let system = LotusX::load_str(BIB).unwrap();
        assert!(matches!(system.search("//book["), Err(LotusError::Query(_))));
        assert!(matches!(LotusX::load_file("/nonexistent/path.xml"), Err(LotusError::Io(_))));
    }

    #[test]
    fn output_marker_projects_results() {
        let system = LotusX::load_str(BIB).unwrap();
        let outcome = system.search("//book[author!]/title").unwrap();
        assert!(outcome.results[0].snippet.starts_with("<author>"));
    }

    #[test]
    fn auto_algorithm_matches_pinned_results() {
        let mut system = LotusX::load_str(BIB).unwrap();
        let pinned = system.search("//book[title][author]").unwrap().total_matches;
        system.set_auto_algorithm();
        assert_eq!(
            system.search("//book[title][author]").unwrap().total_matches,
            pinned
        );
        assert_eq!(system.algorithm(), Algorithm::TwigStack, "reported default");
    }

    #[test]
    fn snapshot_save_and_reopen() {
        let system = LotusX::load_str(BIB).unwrap();
        let dir = std::env::temp_dir().join("lotusx-engine-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bib.ltsx");
        system.save_snapshot(&path).unwrap();
        let reopened = LotusX::load_file(&path).unwrap();
        assert_eq!(
            reopened.search("//book/title").unwrap().total_matches,
            system.search("//book/title").unwrap().total_matches
        );
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(
            LotusX::open_snapshot("/nonexistent.ltsx"),
            Err(LotusError::Storage(_))
        ));
    }

    #[test]
    fn keyword_search_through_engine() {
        let system = LotusX::load_str(BIB).unwrap();
        let hits = system.search_keywords("twigstack bruno");
        assert_eq!(hits.len(), 1);
        assert!(hits[0].snippet.starts_with("<article>"));
        assert!(system.search_keywords("").is_empty());
        // Result limit applies.
        let mut limited = LotusX::load_str(BIB).unwrap();
        limited.set_result_limit(1);
        assert!(limited.search_keywords("title").len() <= 1);
    }

    #[test]
    fn ordered_query_through_engine() {
        let system = LotusX::load_str(BIB).unwrap();
        let unordered = system.search("//book[title][year]").unwrap();
        let ordered = system.search("ordered //book[title][year]").unwrap();
        assert!(ordered.total_matches <= unordered.total_matches);
    }
}
