//! Declarative request routing for the multi-tenant engine registry.
//!
//! A registry-backed server hosts N independent corpora; this module
//! decides which one a request belongs to. Routing is a first-match-wins
//! list of [`RouteRule`]s, each pairing a [`RoutePredicate`] tree
//! (prefix/exact matchers over the request path and headers, composed
//! with `all`/`any`/`not`) with a [`TenantSelector`] that names the
//! tenant — either statically, or extracted from the `/t/<tenant>/...`
//! path prefix or from a header value.
//!
//! Rule lists come from a JSON config (`--routes FILE`, hot-reloadable
//! via `POST /admin/routes`). The parser here is *spanned*: every value
//! remembers its byte offset in the source text, so malformed configs —
//! syntax errors, unknown keys, bad tenant names, rules naming
//! unregistered tenants — produce a typed [`RouteError`] pointing at
//! the exact byte, not a vague "invalid config".
//!
//! Contract used by the serving layer (documented in DESIGN.md):
//!
//! * a request no rule matches → **404 `unknown_tenant`**;
//! * a rule matches but its selector extracts nothing (no `/t/` prefix,
//!   missing header) or an invalid/unregistered name → also 404
//!   `unknown_tenant` — a matching rule decides, it never falls through;
//! * tenant names are restricted to `[A-Za-z0-9_-]` (max 64 bytes) at
//!   route-load time, so names flow into Prometheus label values and the
//!   access log without escaping surprises.

use std::collections::HashSet;
use std::time::Duration;

use lotusx_guard::TenantLimits;

/// What went wrong while loading a route config.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RouteErrorKind {
    /// The text is not well-formed JSON.
    Syntax,
    /// Well-formed JSON with the wrong shape (unknown key, wrong type,
    /// missing required field).
    Schema,
    /// A tenant name outside the `[A-Za-z0-9_-]{1,64}` alphabet.
    InvalidTenantName,
    /// A rule references a tenant the registry does not host.
    UnknownTenant,
}

impl RouteErrorKind {
    /// Stable snake-case name (used in error payloads and tests).
    pub fn name(&self) -> &'static str {
        match self {
            RouteErrorKind::Syntax => "syntax",
            RouteErrorKind::Schema => "schema",
            RouteErrorKind::InvalidTenantName => "invalid_tenant_name",
            RouteErrorKind::UnknownTenant => "unknown_tenant",
        }
    }
}

/// A typed route-config error carrying the byte offset of the offending
/// construct in the source text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteError {
    /// Byte offset into the config text where the problem starts.
    pub offset: usize,
    /// The error class.
    pub kind: RouteErrorKind,
    /// Human-readable detail.
    pub message: String,
}

impl RouteError {
    fn new(offset: usize, kind: RouteErrorKind, message: impl Into<String>) -> RouteError {
        RouteError {
            offset,
            kind,
            message: message.into(),
        }
    }
}

impl std::fmt::Display for RouteError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "route config error ({}) at byte {}: {}",
            self.kind.name(),
            self.offset,
            self.message
        )
    }
}

impl std::error::Error for RouteError {}

/// Is `name` a legal tenant name (`[A-Za-z0-9_-]{1,64}`)?
///
/// The alphabet is deliberately Prometheus-label-safe and access-log
/// safe: no quotes, backslashes, newlines or separators can ever arrive
/// via a tenant name.
pub fn valid_tenant_name(name: &str) -> bool {
    !name.is_empty()
        && name.len() <= 64
        && name
            .bytes()
            .all(|b| b.is_ascii_alphanumeric() || b == b'_' || b == b'-')
}

/// A boolean condition over a request's path and headers.
#[derive(Clone, Debug, PartialEq)]
pub enum RoutePredicate {
    /// Matches every request.
    Always,
    /// The path starts with the given prefix.
    PathPrefix(String),
    /// The path equals the given string exactly.
    PathExact(String),
    /// The named header is present and its value starts with the prefix.
    HeaderPrefix {
        /// Header name (stored lower-cased; matching is case-insensitive).
        name: String,
        /// Required value prefix.
        value: String,
    },
    /// The named header is present with exactly the given value.
    HeaderExact {
        /// Header name (stored lower-cased; matching is case-insensitive).
        name: String,
        /// Required value.
        value: String,
    },
    /// Every child matches (AND). Empty list matches.
    All(Vec<RoutePredicate>),
    /// At least one child matches (OR). Empty list never matches.
    Any(Vec<RoutePredicate>),
    /// The child does not match (NOT).
    Not(Box<RoutePredicate>),
}

impl RoutePredicate {
    /// Evaluates the predicate against a request's path and (lower-cased
    /// name, value) header list.
    pub fn matches(&self, path: &str, headers: &[(String, String)]) -> bool {
        match self {
            RoutePredicate::Always => true,
            RoutePredicate::PathPrefix(p) => path.starts_with(p.as_str()),
            RoutePredicate::PathExact(p) => path == p,
            RoutePredicate::HeaderPrefix { name, value } => {
                header_value(headers, name).is_some_and(|v| v.starts_with(value.as_str()))
            }
            RoutePredicate::HeaderExact { name, value } => {
                header_value(headers, name).is_some_and(|v| v == value)
            }
            RoutePredicate::All(children) => children.iter().all(|c| c.matches(path, headers)),
            RoutePredicate::Any(children) => children.iter().any(|c| c.matches(path, headers)),
            RoutePredicate::Not(child) => !child.matches(path, headers),
        }
    }
}

fn header_value<'a>(headers: &'a [(String, String)], name: &str) -> Option<&'a str> {
    headers
        .iter()
        .find(|(n, _)| n.eq_ignore_ascii_case(name))
        .map(|(_, v)| v.as_str())
}

/// How a matching rule names the tenant.
#[derive(Clone, Debug, PartialEq)]
pub enum TenantSelector {
    /// A fixed tenant name (validated at load time).
    Fixed(String),
    /// Extract from the `/t/<tenant>/...` path prefix; the resolved
    /// request continues with the prefix stripped (`/t/a/query` →
    /// tenant `a`, effective path `/query`).
    FromPath,
    /// Extract from the named header's value (name stored lower-cased).
    FromHeader(String),
}

/// One routing rule: `when` the predicate matches, `tenant` decides.
#[derive(Clone, Debug, PartialEq)]
pub struct RouteRule {
    /// The condition under which this rule applies.
    pub when: RoutePredicate,
    /// How the tenant is determined once it applies.
    pub tenant: TenantSelector,
}

/// A successful resolution: the tenant and the effective request path
/// (tenant prefix stripped for [`TenantSelector::FromPath`]).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct RouteMatch {
    /// The resolved tenant name.
    pub tenant: String,
    /// The path the tenant's endpoint handlers should see.
    pub path: String,
}

/// An ordered, first-match-wins rule list.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct RouteTable {
    rules: Vec<RouteRule>,
}

impl RouteTable {
    /// A table from an explicit rule list.
    pub fn new(rules: Vec<RouteRule>) -> RouteTable {
        RouteTable { rules }
    }

    /// The single-tenant table: every request routes to `tenant`
    /// unchanged. This is what `Server::run` uses for its implicit
    /// `default` tenant.
    pub fn catch_all(tenant: &str) -> RouteTable {
        RouteTable {
            rules: vec![RouteRule {
                when: RoutePredicate::Always,
                tenant: TenantSelector::Fixed(tenant.to_string()),
            }],
        }
    }

    /// The rules, in evaluation order.
    pub fn rules(&self) -> &[RouteRule] {
        &self.rules
    }

    /// Resolves a request. The *first* rule whose predicate matches
    /// decides: `Some` with the tenant and effective path when its
    /// selector extracts a valid name, `None` (→ 404 `unknown_tenant`)
    /// when extraction fails — a matching rule never falls through to
    /// later rules. `None` is also returned when no rule matches.
    ///
    /// Whether an extracted name is actually *registered* is the
    /// caller's check (the registry knows the tenant set; the table does
    /// not).
    pub fn resolve(&self, path: &str, headers: &[(String, String)]) -> Option<RouteMatch> {
        let rule = self.rules.iter().find(|r| r.when.matches(path, headers))?;
        match &rule.tenant {
            TenantSelector::Fixed(name) => Some(RouteMatch {
                tenant: name.clone(),
                path: path.to_string(),
            }),
            TenantSelector::FromPath => {
                let rest = path.strip_prefix("/t/")?;
                let (tenant, tail) = match rest.find('/') {
                    Some(i) => (&rest[..i], &rest[i..]),
                    None => (rest, "/"),
                };
                if !valid_tenant_name(tenant) {
                    return None;
                }
                Some(RouteMatch {
                    tenant: tenant.to_string(),
                    path: tail.to_string(),
                })
            }
            TenantSelector::FromHeader(name) => {
                let value = header_value(headers, name)?;
                if !valid_tenant_name(value) {
                    return None;
                }
                Some(RouteMatch {
                    tenant: value.to_string(),
                    path: path.to_string(),
                })
            }
        }
    }
}

/// One tenant's declaration in a registry config: a name, a corpus
/// source string (the `CorpusSource` grammar: `@dataset[:scale]`,
/// snapshot path, XML path, inline markup), and guard limits.
#[derive(Clone, Debug, PartialEq)]
pub struct TenantSpec {
    /// The tenant's name (`[A-Za-z0-9_-]{1,64}`).
    pub name: String,
    /// The corpus to open, in the `CorpusSource` grammar.
    pub source: String,
    /// Admission quota and default budgets.
    pub limits: TenantLimits,
}

/// A parsed `--routes` config: the tenant set plus the rule list.
#[derive(Clone, Debug, PartialEq)]
pub struct RegistryConfig {
    /// The corpora this process hosts.
    pub tenants: Vec<TenantSpec>,
    /// First-match-wins routing rules.
    pub rules: Vec<RouteRule>,
}

impl RegistryConfig {
    /// Parses and validates a full registry config:
    ///
    /// ```json
    /// {
    ///   "tenants": [
    ///     {"name": "dblp", "corpus": "@dblp:2", "max_inflight": 8,
    ///      "deadline_ms": 250, "node_budget": 200000}
    ///   ],
    ///   "rules": [
    ///     {"when": {"path_prefix": "/t/"}, "tenant": {"from_path": true}},
    ///     {"when": {"header_exact": {"name": "x-lotusx-tenant",
    ///                                "value": "dblp"}}, "tenant": "dblp"}
    ///   ]
    /// }
    /// ```
    ///
    /// Errors are typed with byte offsets: JSON syntax, unknown keys,
    /// wrong types, duplicate or invalid tenant names, and rules whose
    /// fixed tenant is not declared.
    pub fn parse(text: &str) -> Result<RegistryConfig, RouteError> {
        let doc = parse_spanned(text)?;
        let fields = want_obj(&doc, "config")?;
        let mut tenants: Option<Vec<TenantSpec>> = None;
        let mut rules: Option<(usize, Vec<RouteRule>)> = None;
        for (key_off, key, value) in fields {
            match key.as_str() {
                "tenants" => tenants = Some(decode_tenants(value)?),
                "rules" => rules = Some((value.off, decode_rules(value)?)),
                other => {
                    return Err(RouteError::new(
                        *key_off,
                        RouteErrorKind::Schema,
                        format!("unknown config key `{other}` (expected `tenants` or `rules`)"),
                    ));
                }
            }
        }
        let tenants = tenants.ok_or_else(|| {
            RouteError::new(doc.off, RouteErrorKind::Schema, "missing `tenants` section")
        })?;
        if tenants.is_empty() {
            return Err(RouteError::new(
                doc.off,
                RouteErrorKind::Schema,
                "`tenants` must declare at least one tenant",
            ));
        }
        let (rules_off, rules) = rules.ok_or_else(|| {
            RouteError::new(doc.off, RouteErrorKind::Schema, "missing `rules` section")
        })?;
        let names: Vec<&str> = tenants.iter().map(|t| t.name.as_str()).collect();
        check_rules_against(&rules, &names, rules_off)?;
        Ok(RegistryConfig { tenants, rules })
    }
}

/// Parses a rule list on its own — the `POST /admin/routes` payload.
/// Accepts either a bare JSON array of rules or `{"rules": [...]}`.
/// `known_tenants` is the registry's tenant set; rules naming anything
/// else are rejected ([`RouteErrorKind::UnknownTenant`]) so a hot
/// reload can never route traffic into the void.
pub fn parse_rules(text: &str, known_tenants: &[&str]) -> Result<Vec<RouteRule>, RouteError> {
    let doc = parse_spanned(text)?;
    let (off, rules) = match &doc.val {
        Val::Arr(_) => (doc.off, decode_rules(&doc)?),
        Val::Obj(fields) => {
            let mut found: Option<(usize, Vec<RouteRule>)> = None;
            for (key_off, key, value) in fields {
                if key == "rules" {
                    found = Some((value.off, decode_rules(value)?));
                } else {
                    return Err(RouteError::new(
                        *key_off,
                        RouteErrorKind::Schema,
                        format!("unknown key `{key}` (expected `rules`)"),
                    ));
                }
            }
            found.ok_or_else(|| {
                RouteError::new(doc.off, RouteErrorKind::Schema, "missing `rules` section")
            })?
        }
        _ => {
            return Err(RouteError::new(
                doc.off,
                RouteErrorKind::Schema,
                "expected a rule array or {\"rules\": [...]}",
            ));
        }
    };
    check_rules_against(&rules, known_tenants, off)?;
    Ok(rules)
}

/// Validates every fixed tenant reference in `rules` against the
/// registry's tenant set. Offsets are approximate here (the rule list's
/// start) — fixed-name *syntax* errors are caught earlier with exact
/// offsets during decoding.
fn check_rules_against(
    rules: &[RouteRule],
    known: &[&str],
    rules_off: usize,
) -> Result<(), RouteError> {
    for rule in rules {
        if let TenantSelector::Fixed(name) = &rule.tenant {
            if !known.contains(&name.as_str()) {
                return Err(RouteError::new(
                    rules_off,
                    RouteErrorKind::UnknownTenant,
                    format!("rule routes to undeclared tenant `{name}`"),
                ));
            }
        }
    }
    Ok(())
}

// ---------------------------------------------------------------------
// Spanned JSON reader
//
// The obs crate has a JSON reader already, but its errors are plain
// strings; typed byte-offset errors need every value to remember where
// it started, so the route config gets its own small reader. Grammar
// support matches what configs need (no surrogate-pair escapes).
// ---------------------------------------------------------------------

/// A JSON value tagged with its start offset in the source text.
struct Sp {
    off: usize,
    val: Val,
}

enum Val {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Sp>),
    /// Insertion-ordered `(key offset, key, value)` triples.
    Obj(Vec<(usize, String, Sp)>),
}

fn syntax(offset: usize, message: impl Into<String>) -> RouteError {
    RouteError::new(offset, RouteErrorKind::Syntax, message)
}

fn parse_spanned(input: &str) -> Result<Sp, RouteError> {
    let bytes = input.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(syntax(pos, "trailing data after document"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Sp, RouteError> {
    skip_ws(bytes, pos);
    let off = *pos;
    match bytes.get(*pos) {
        None => Err(syntax(off, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => {
            let s = parse_string(bytes, pos)?;
            Ok(Sp {
                off,
                val: Val::Str(s),
            })
        }
        Some(b't') => parse_literal(bytes, pos, "true", Val::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Val::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Val::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(bytes: &[u8], pos: &mut usize, lit: &str, val: Val) -> Result<Sp, RouteError> {
    let off = *pos;
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(Sp { off, val })
    } else {
        Err(syntax(off, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Sp, RouteError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(|n| Sp {
            off: start,
            val: Val::Num(n),
        })
        .ok_or_else(|| syntax(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, RouteError> {
    let start = *pos;
    if bytes.get(*pos) != Some(&b'"') {
        return Err(syntax(*pos, "expected '\"'"));
    }
    *pos += 1;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(syntax(start, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|_| syntax(start, "invalid UTF-8"));
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'b') => out.push(0x08),
                    Some(b'f') => out.push(0x0c),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| syntax(*pos - 1, "bad \\u escape"))?;
                        let c = char::from_u32(hex).unwrap_or('\u{fffd}');
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    _ => return Err(syntax(*pos - 1, "bad escape")),
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Sp, RouteError> {
    let off = *pos;
    *pos += 1; // consume '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Sp {
            off,
            val: Val::Arr(items),
        });
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Sp {
                    off,
                    val: Val::Arr(items),
                });
            }
            _ => return Err(syntax(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Sp, RouteError> {
    let off = *pos;
    *pos += 1; // consume '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Sp {
            off,
            val: Val::Obj(fields),
        });
    }
    loop {
        skip_ws(bytes, pos);
        let key_off = *pos;
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(syntax(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key_off, key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Sp {
                    off,
                    val: Val::Obj(fields),
                });
            }
            _ => return Err(syntax(*pos, "expected ',' or '}'")),
        }
    }
}

// ---------------------------------------------------------------------
// Schema decoding
// ---------------------------------------------------------------------

fn schema(offset: usize, message: impl Into<String>) -> RouteError {
    RouteError::new(offset, RouteErrorKind::Schema, message)
}

fn want_obj<'a>(sp: &'a Sp, what: &str) -> Result<&'a [(usize, String, Sp)], RouteError> {
    match &sp.val {
        Val::Obj(fields) => Ok(fields),
        _ => Err(schema(sp.off, format!("{what} must be an object"))),
    }
}

fn want_arr<'a>(sp: &'a Sp, what: &str) -> Result<&'a [Sp], RouteError> {
    match &sp.val {
        Val::Arr(items) => Ok(items),
        _ => Err(schema(sp.off, format!("{what} must be an array"))),
    }
}

fn want_str<'a>(sp: &'a Sp, what: &str) -> Result<&'a str, RouteError> {
    match &sp.val {
        Val::Str(s) => Ok(s),
        _ => Err(schema(sp.off, format!("{what} must be a string"))),
    }
}

fn want_u64(sp: &Sp, what: &str) -> Result<u64, RouteError> {
    match &sp.val {
        Val::Num(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => Ok(*n as u64),
        _ => Err(schema(
            sp.off,
            format!("{what} must be a non-negative integer"),
        )),
    }
}

/// Checks a declared tenant name, pointing the error at the name's own
/// offset in the config.
fn checked_tenant_name(sp: &Sp, what: &str) -> Result<String, RouteError> {
    let name = want_str(sp, what)?;
    if !valid_tenant_name(name) {
        return Err(RouteError::new(
            sp.off,
            RouteErrorKind::InvalidTenantName,
            format!(
                "{what} `{}` must match [A-Za-z0-9_-]{{1,64}}",
                name.escape_default()
            ),
        ));
    }
    Ok(name.to_string())
}

fn decode_tenants(sp: &Sp) -> Result<Vec<TenantSpec>, RouteError> {
    let items = want_arr(sp, "`tenants`")?;
    let mut tenants = Vec::with_capacity(items.len());
    let mut seen: HashSet<String> = HashSet::new();
    for item in items {
        let fields = want_obj(item, "tenant entry")?;
        let mut name: Option<(usize, String)> = None;
        let mut source: Option<String> = None;
        let mut limits = TenantLimits::unlimited();
        for (key_off, key, value) in fields {
            match key.as_str() {
                "name" => name = Some((value.off, checked_tenant_name(value, "tenant name")?)),
                "corpus" => source = Some(want_str(value, "`corpus`")?.to_string()),
                "max_inflight" => {
                    let n = want_u64(value, "`max_inflight`")?;
                    if n > u32::MAX as u64 {
                        return Err(schema(value.off, "`max_inflight` out of range"));
                    }
                    limits.max_inflight = Some(n as u32);
                }
                "deadline_ms" => {
                    limits.default_deadline =
                        Some(Duration::from_millis(want_u64(value, "`deadline_ms`")?));
                }
                "node_budget" => {
                    limits.default_node_quota = Some(want_u64(value, "`node_budget`")?);
                }
                "candidate_budget" => {
                    limits.default_candidate_quota = Some(want_u64(value, "`candidate_budget`")?);
                }
                other => {
                    return Err(schema(*key_off, format!("unknown tenant key `{other}`")));
                }
            }
        }
        let (name_off, name) =
            name.ok_or_else(|| schema(item.off, "tenant entry missing `name`"))?;
        let source = source.ok_or_else(|| schema(item.off, "tenant entry missing `corpus`"))?;
        if !seen.insert(name.clone()) {
            return Err(schema(name_off, format!("duplicate tenant name `{name}`")));
        }
        tenants.push(TenantSpec {
            name,
            source,
            limits,
        });
    }
    Ok(tenants)
}

fn decode_rules(sp: &Sp) -> Result<Vec<RouteRule>, RouteError> {
    let items = want_arr(sp, "`rules`")?;
    items.iter().map(decode_rule).collect()
}

fn decode_rule(sp: &Sp) -> Result<RouteRule, RouteError> {
    let fields = want_obj(sp, "rule")?;
    let mut when: Option<RoutePredicate> = None;
    let mut tenant: Option<TenantSelector> = None;
    for (key_off, key, value) in fields {
        match key.as_str() {
            "when" => when = Some(decode_predicate(value)?),
            "tenant" => tenant = Some(decode_selector(value)?),
            other => {
                return Err(schema(
                    *key_off,
                    format!("unknown rule key `{other}` (expected `when` or `tenant`)"),
                ));
            }
        }
    }
    Ok(RouteRule {
        when: when.ok_or_else(|| schema(sp.off, "rule missing `when`"))?,
        tenant: tenant.ok_or_else(|| schema(sp.off, "rule missing `tenant`"))?,
    })
}

fn decode_predicate(sp: &Sp) -> Result<RoutePredicate, RouteError> {
    let fields = want_obj(sp, "predicate")?;
    if fields.len() != 1 {
        return Err(schema(
            sp.off,
            "predicate must have exactly one key (always, path_prefix, path_exact, \
             header_prefix, header_exact, all, any, not)",
        ));
    }
    let (key_off, key, value) = &fields[0];
    match key.as_str() {
        "always" => match value.val {
            Val::Bool(true) => Ok(RoutePredicate::Always),
            _ => Err(schema(value.off, "`always` must be `true`")),
        },
        "path_prefix" => Ok(RoutePredicate::PathPrefix(
            want_str(value, "`path_prefix`")?.to_string(),
        )),
        "path_exact" => Ok(RoutePredicate::PathExact(
            want_str(value, "`path_exact`")?.to_string(),
        )),
        "header_prefix" => {
            let (name, v) = decode_header_matcher(value)?;
            Ok(RoutePredicate::HeaderPrefix { name, value: v })
        }
        "header_exact" => {
            let (name, v) = decode_header_matcher(value)?;
            Ok(RoutePredicate::HeaderExact { name, value: v })
        }
        "all" => Ok(RoutePredicate::All(decode_predicate_list(value)?)),
        "any" => Ok(RoutePredicate::Any(decode_predicate_list(value)?)),
        "not" => Ok(RoutePredicate::Not(Box::new(decode_predicate(value)?))),
        other => Err(schema(*key_off, format!("unknown predicate `{other}`"))),
    }
}

fn decode_predicate_list(sp: &Sp) -> Result<Vec<RoutePredicate>, RouteError> {
    want_arr(sp, "predicate list")?
        .iter()
        .map(decode_predicate)
        .collect()
}

fn decode_header_matcher(sp: &Sp) -> Result<(String, String), RouteError> {
    let fields = want_obj(sp, "header matcher")?;
    let mut name: Option<String> = None;
    let mut value: Option<String> = None;
    for (key_off, key, v) in fields {
        match key.as_str() {
            "name" => name = Some(want_str(v, "header `name`")?.to_ascii_lowercase()),
            "value" => value = Some(want_str(v, "header `value`")?.to_string()),
            other => {
                return Err(schema(
                    *key_off,
                    format!("unknown header-matcher key `{other}`"),
                ));
            }
        }
    }
    let name = name.ok_or_else(|| schema(sp.off, "header matcher missing `name`"))?;
    if name.is_empty() {
        return Err(schema(sp.off, "header `name` must be non-empty"));
    }
    let value = value.ok_or_else(|| schema(sp.off, "header matcher missing `value`"))?;
    Ok((name, value))
}

fn decode_selector(sp: &Sp) -> Result<TenantSelector, RouteError> {
    match &sp.val {
        Val::Str(_) => {
            let name = checked_tenant_name(sp, "tenant name")?;
            Ok(TenantSelector::Fixed(name))
        }
        Val::Obj(fields) => {
            if fields.len() != 1 {
                return Err(schema(
                    sp.off,
                    "tenant selector must have exactly one key (from_path or from_header)",
                ));
            }
            let (key_off, key, value) = &fields[0];
            match key.as_str() {
                "from_path" => match value.val {
                    Val::Bool(true) => Ok(TenantSelector::FromPath),
                    _ => Err(schema(value.off, "`from_path` must be `true`")),
                },
                "from_header" => {
                    let name = want_str(value, "`from_header`")?.to_ascii_lowercase();
                    if name.is_empty() {
                        return Err(schema(value.off, "`from_header` must be non-empty"));
                    }
                    Ok(TenantSelector::FromHeader(name))
                }
                other => Err(schema(*key_off, format!("unknown selector key `{other}`"))),
            }
        }
        _ => Err(schema(
            sp.off,
            "tenant selector must be a name string or {\"from_path\"|\"from_header\": ...}",
        )),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hdrs(pairs: &[(&str, &str)]) -> Vec<(String, String)> {
        pairs
            .iter()
            .map(|(n, v)| (n.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn tenant_name_alphabet() {
        assert!(valid_tenant_name("dblp"));
        assert!(valid_tenant_name("a-b_C9"));
        assert!(!valid_tenant_name(""));
        assert!(!valid_tenant_name("a b"));
        assert!(!valid_tenant_name("a\"b"));
        assert!(!valid_tenant_name("a\\b"));
        assert!(!valid_tenant_name("a\nb"));
        assert!(!valid_tenant_name(&"x".repeat(65)));
        assert!(valid_tenant_name(&"x".repeat(64)));
    }

    #[test]
    fn from_path_extracts_and_strips() {
        let table = RouteTable::new(vec![RouteRule {
            when: RoutePredicate::PathPrefix("/t/".to_string()),
            tenant: TenantSelector::FromPath,
        }]);
        let m = table.resolve("/t/dblp/query", &[]).unwrap();
        assert_eq!(m.tenant, "dblp");
        assert_eq!(m.path, "/query");
        // Bare /t/<tenant> resolves with an effective root path.
        let m = table.resolve("/t/dblp", &[]).unwrap();
        assert_eq!(m.path, "/");
        // Empty or invalid names are a miss, not a panic.
        assert!(table.resolve("/t//query", &[]).is_none());
        assert!(table.resolve("/query", &[]).is_none(), "no rule matches");
    }

    #[test]
    fn first_match_wins_and_never_falls_through() {
        let table = RouteTable::new(vec![
            RouteRule {
                when: RoutePredicate::PathPrefix("/t/".to_string()),
                tenant: TenantSelector::FromHeader("x-tenant".to_string()),
            },
            RouteRule {
                when: RoutePredicate::Always,
                tenant: TenantSelector::Fixed("fallback".to_string()),
            },
        ]);
        // The first rule matches but the header is absent: the rule
        // decides — miss, no fall-through to the catch-all.
        assert!(table.resolve("/t/dblp/query", &[]).is_none());
        // A non-matching path falls to the catch-all.
        assert_eq!(table.resolve("/query", &[]).unwrap().tenant, "fallback");
    }

    #[test]
    fn header_matching_is_case_insensitive_on_names() {
        let table = RouteTable::new(vec![RouteRule {
            when: RoutePredicate::HeaderExact {
                name: "x-tenant".to_string(),
                value: "dblp".to_string(),
            },
            tenant: TenantSelector::FromHeader("x-tenant".to_string()),
        }]);
        let headers = hdrs(&[("X-Tenant", "dblp")]);
        assert_eq!(table.resolve("/query", &headers).unwrap().tenant, "dblp");
        // Header *values* are exact-matched, case-sensitively.
        assert!(table
            .resolve("/query", &hdrs(&[("x-tenant", "DBLP2")]))
            .is_none());
    }

    #[test]
    fn config_parses_and_validates() {
        let cfg = RegistryConfig::parse(
            r#"{
              "tenants": [
                {"name": "dblp", "corpus": "@dblp:1", "max_inflight": 4, "deadline_ms": 250},
                {"name": "tb", "corpus": "@treebank:1", "node_budget": 1000}
              ],
              "rules": [
                {"when": {"path_prefix": "/t/"}, "tenant": {"from_path": true}},
                {"when": {"always": true}, "tenant": "dblp"}
              ]
            }"#,
        )
        .unwrap();
        assert_eq!(cfg.tenants.len(), 2);
        assert_eq!(cfg.tenants[0].limits.max_inflight, Some(4));
        assert_eq!(
            cfg.tenants[0].limits.default_deadline,
            Some(Duration::from_millis(250))
        );
        assert_eq!(cfg.tenants[1].limits.default_node_quota, Some(1000));
        assert_eq!(cfg.rules.len(), 2);
    }

    #[test]
    fn syntax_errors_carry_offsets() {
        let err = RegistryConfig::parse("{\"tenants\": [}").unwrap_err();
        assert_eq!(err.kind, RouteErrorKind::Syntax);
        assert_eq!(err.offset, 13, "points at the stray '}}'");
        // Display embeds both the kind and the offset.
        let text = err.to_string();
        assert!(text.contains("syntax"), "{text}");
        assert!(text.contains("byte 13"), "{text}");
    }

    #[test]
    fn invalid_tenant_names_are_typed_errors() {
        let text = r#"{"tenants": [{"name": "bad name", "corpus": "@dblp:1"}], "rules": []}"#;
        let err = RegistryConfig::parse(text).unwrap_err();
        assert_eq!(err.kind, RouteErrorKind::InvalidTenantName);
        assert_eq!(err.offset, text.find("\"bad name\"").unwrap());
    }

    #[test]
    fn rules_reject_undeclared_tenants() {
        let err = RegistryConfig::parse(
            r#"{"tenants": [{"name": "a", "corpus": "@dblp:1"}],
               "rules": [{"when": {"always": true}, "tenant": "ghost"}]}"#,
        )
        .unwrap_err();
        assert_eq!(err.kind, RouteErrorKind::UnknownTenant);

        let err = parse_rules(
            r#"[{"when": {"always": true}, "tenant": "ghost"}]"#,
            &["a", "b"],
        )
        .unwrap_err();
        assert_eq!(err.kind, RouteErrorKind::UnknownTenant);
    }

    #[test]
    fn parse_rules_accepts_bare_arrays_and_wrapped() {
        let bare = parse_rules(r#"[{"when": {"always": true}, "tenant": "a"}]"#, &["a"]).unwrap();
        let wrapped = parse_rules(
            r#"{"rules": [{"when": {"always": true}, "tenant": "a"}]}"#,
            &["a"],
        )
        .unwrap();
        assert_eq!(bare, wrapped);
    }
}
