//! Interactive sessions: canvas + engine + per-keystroke completion.
//!
//! A [`Session`] is what one demo visitor drives: they edit the canvas,
//! type into a focused node (receiving position-aware candidates on every
//! keystroke), and run the query at any point — complete or not.

use crate::canvas::{CanvasError, CanvasNodeId, QueryCanvas};
use crate::engine::{LotusX, SearchOutcome};
use lotusx_autocomplete::{CompletionEngine, CompletionState, TagCandidate, ValueCandidate};

/// An interactive query-building session over one loaded document.
pub struct Session<'a> {
    engine: &'a LotusX,
    completion: CompletionEngine<'a>,
    canvas: QueryCanvas,
    focus: Option<(CanvasNodeId, CompletionState)>,
    suggestion_k: usize,
}

impl<'a> Session<'a> {
    /// Starts a session.
    pub fn new(engine: &'a LotusX) -> Self {
        Session {
            completion: engine.completion_engine(),
            engine,
            canvas: QueryCanvas::new(),
            focus: None,
            suggestion_k: 8,
        }
    }

    /// The canvas being edited.
    pub fn canvas(&self) -> &QueryCanvas {
        &self.canvas
    }

    /// Mutable canvas access for structural edits.
    pub fn canvas_mut(&mut self) -> &mut QueryCanvas {
        &mut self.canvas
    }

    /// Sets how many candidates each keystroke returns (default 8).
    pub fn set_suggestion_count(&mut self, k: usize) {
        self.suggestion_k = k;
        if let Some((_, state)) = &mut self.focus {
            state.set_k(k);
        }
    }

    /// Focuses a canvas node for typing; returns the initial (empty-prefix)
    /// candidates for that position.
    pub fn focus(&mut self, node: CanvasNodeId) -> Result<Vec<TagCandidate>, CanvasError> {
        let ctx = self.canvas.context_of(node)?;
        let state = CompletionState::new(&self.completion, ctx, self.suggestion_k);
        let candidates = state.current(&self.completion);
        self.focus = Some((node, state));
        Ok(candidates)
    }

    /// The focused node, if any.
    pub fn focused(&self) -> Option<CanvasNodeId> {
        self.focus.as_ref().map(|(node, _)| *node)
    }

    /// Text typed into the focused node so far.
    pub fn typed(&self) -> &str {
        self.focus
            .as_ref()
            .map(|(_, state)| state.typed())
            .unwrap_or("")
    }

    /// Types one character into the focused node, returning the narrowed
    /// candidates.
    pub fn keystroke(&mut self, ch: char) -> Result<Vec<TagCandidate>, CanvasError> {
        let (node, state) = self.focus.as_mut().ok_or(CanvasError::NoSuchNode)?;
        let ctx = self.canvas.context_of(*node)?;
        state.ensure_context(&self.completion, &ctx);
        Ok(state.keystroke(&self.completion, ch))
    }

    /// Deletes the last typed character.
    pub fn backspace(&mut self) -> Result<Vec<TagCandidate>, CanvasError> {
        let (node, state) = self.focus.as_mut().ok_or(CanvasError::NoSuchNode)?;
        let ctx = self.canvas.context_of(*node)?;
        state.ensure_context(&self.completion, &ctx);
        Ok(state.backspace(&self.completion))
    }

    /// Accepts a candidate (or whatever has been typed) as the focused
    /// node's tag. With no candidate and nothing typed, the node's tag is
    /// left untouched.
    pub fn accept(&mut self, candidate: Option<&TagCandidate>) -> Result<(), CanvasError> {
        let (node, state) = self.focus.as_mut().ok_or(CanvasError::NoSuchNode)?;
        let tag = match candidate {
            Some(c) => c.name.clone(),
            None if state.typed().is_empty() => return Ok(()),
            None => state.typed().to_string(),
        };
        self.canvas.set_tag(*node, &tag)?;
        state.clear_typed();
        Ok(())
    }

    /// The candidates for the focused node at the current typed prefix
    /// (re-anchored if the canvas changed since the last keystroke).
    pub fn current_candidates(&mut self) -> Result<Vec<TagCandidate>, CanvasError> {
        let (node, state) = self.focus.as_mut().ok_or(CanvasError::NoSuchNode)?;
        let ctx = self.canvas.context_of(*node)?;
        state.ensure_context(&self.completion, &ctx);
        Ok(state.current(&self.completion))
    }

    /// Accepts the current top candidate (falling back to the typed text
    /// when no candidate is available).
    pub fn accept_top(&mut self) -> Result<(), CanvasError> {
        let top = self.current_candidates()?.into_iter().next();
        self.accept(top.as_ref())
    }

    /// Value-term suggestions for the focused node (after its tag is set).
    pub fn value_suggestions(&self, prefix: &str) -> Result<Vec<ValueCandidate>, CanvasError> {
        let (node, _) = self.focus.as_ref().ok_or(CanvasError::NoSuchNode)?;
        let node = *node;
        match self.canvas.tag(node)? {
            Some(tag) => Ok(self
                .completion
                .complete_value(tag, prefix, self.suggestion_k)),
            None => Ok(self
                .completion
                .complete_value_global(prefix, self.suggestion_k)),
        }
    }

    /// Runs the current canvas state (untyped nodes run as wildcards).
    pub fn run(&self) -> Result<SearchOutcome, CanvasError> {
        let pattern = self.canvas.to_pattern()?;
        Ok(self.engine.search_pattern(&pattern))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotusx_twig::Axis;

    const BIB: &str = "<bib>\
        <book><title>Data on the Web</title><author>Abiteboul</author></book>\
        <book><title>XML Handbook</title><author>Goldfarb</author></book>\
        <article><title>TwigStack</title><journal>tods</journal></article>\
    </bib>";

    #[test]
    fn full_demo_walkthrough() {
        let system = LotusX::load_str(BIB).unwrap();
        let mut s = Session::new(&system);

        // Drop a root node; candidates arrive immediately.
        let root = s.canvas_mut().add_root().unwrap();
        let initial = s.focus(root).unwrap();
        assert!(!initial.is_empty());

        // Type "b" → book; accept the top candidate.
        let cands = s.keystroke('b').unwrap();
        assert_eq!(cands[0].name, "book");
        let top = cands[0].clone();
        s.accept(Some(&top)).unwrap();

        // Add a child and watch position-aware filtering: journal is NOT
        // offered under book.
        let child = s.canvas_mut().add_node(root, Axis::Child).unwrap();
        let cands = s.focus(child).unwrap();
        let names: Vec<&str> = cands.iter().map(|c| c.name.as_str()).collect();
        assert!(names.contains(&"title"));
        assert!(!names.contains(&"journal"));

        let cands = s.keystroke('t').unwrap();
        assert_eq!(cands[0].name, "title");
        s.accept(Some(&cands[0].clone())).unwrap();

        // Run: //book/title → 2 results.
        let outcome = s.run().unwrap();
        assert_eq!(outcome.total_matches, 2);
    }

    #[test]
    fn half_built_query_is_runnable() {
        let system = LotusX::load_str(BIB).unwrap();
        let mut s = Session::new(&system);
        let root = s.canvas_mut().add_root().unwrap();
        s.canvas_mut().set_tag(root, "book").unwrap();
        // Untyped child runs as a wildcard.
        s.canvas_mut().add_node(root, Axis::Child).unwrap();
        let outcome = s.run().unwrap();
        assert_eq!(outcome.total_matches, 4, "book × each of its children");
    }

    #[test]
    fn value_suggestions_are_tag_scoped() {
        let system = LotusX::load_str(BIB).unwrap();
        let mut s = Session::new(&system);
        let root = s.canvas_mut().add_root().unwrap();
        s.canvas_mut().set_tag(root, "title").unwrap();
        s.focus(root).unwrap();
        s.accept(None).unwrap(); // nothing typed: the tag stays "title"
        assert_eq!(s.canvas().tag(root).unwrap(), Some("title"));
        let suggestions = s.value_suggestions("x").unwrap();
        assert_eq!(suggestions.len(), 1);
        assert_eq!(suggestions[0].term, "xml");
    }

    #[test]
    fn keystroke_without_focus_errors() {
        let system = LotusX::load_str(BIB).unwrap();
        let mut s = Session::new(&system);
        assert!(s.keystroke('x').is_err());
        assert!(s.run().is_err(), "empty canvas cannot run");
    }

    #[test]
    fn accept_top_takes_best_candidate() {
        let system = LotusX::load_str(BIB).unwrap();
        let mut s = Session::new(&system);
        let root = s.canvas_mut().add_root().unwrap();
        s.focus(root).unwrap();
        s.keystroke('b').unwrap();
        s.accept_top().unwrap();
        // "book" (freq 2) outranks "bib" (freq 1).
        assert_eq!(s.canvas().tag(root).unwrap(), Some("book"));
    }

    #[test]
    fn backspace_restores_candidates() {
        let system = LotusX::load_str(BIB).unwrap();
        let mut s = Session::new(&system);
        let root = s.canvas_mut().add_root().unwrap();
        s.focus(root).unwrap();
        let narrowed = s.keystroke('b').unwrap();
        let widened = s.backspace().unwrap();
        assert!(widened.len() >= narrowed.len());
        assert_eq!(s.typed(), "");
    }
}
