//! Randomized robustness stress for the LotusX engine.
//!
//! Usage: `lotusx-stress [queries] [seed]` (defaults: 200 queries, seed 1).
//!
//! Fires seeded random twig and keyword queries — random join algorithms,
//! random (often starvation-level) budgets, deliberately explosive
//! wildcard twigs — at synthetic corpora of every dataset family, each
//! query wrapped in `catch_unwind`. The run fails (exit 1) if any panic
//! escapes the engine; truncated responses are expected and counted.
//!
//! Set `LOTUSX_TRACE=<file>` to run the whole stress with structured
//! event tracing on and export the ring buffer as a Chrome/Perfetto
//! trace at exit — a quick way to get a trace full of budget trips.

use lotusx::{Algorithm, Budget, CorpusSource, LotusX, QueryRequest};
use lotusx_datagen::{queries::queries, rng::XorShiftRng, Dataset};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

fn tag_pool(dataset: Dataset) -> &'static [&'static str] {
    match dataset {
        Dataset::DblpLike => &[
            "article",
            "author",
            "title",
            "year",
            "book",
            "publisher",
            "*",
        ],
        Dataset::XmarkLike => &["item", "person", "name", "description", "keyword", "*"],
        Dataset::TreebankLike => &["s", "np", "vp", "pp", "nn", "dt", "*"],
    }
}

fn pick<'a>(rng: &mut XorShiftRng, pool: &[&'a str]) -> &'a str {
    pool[(rng.next_u64() % pool.len() as u64) as usize]
}

/// A random twig: 1–4 steps of random tags and axes, with an occasional
/// branch predicate.
fn random_twig(rng: &mut XorShiftRng, dataset: Dataset) -> String {
    let pool = tag_pool(dataset);
    let steps = 1 + rng.next_u64() % 4;
    let mut text = String::new();
    for _ in 0..steps {
        text.push_str(if rng.gen_bool(0.6) { "//" } else { "/" });
        text.push_str(pick(rng, pool));
        if rng.gen_bool(0.25) {
            text.push('[');
            text.push_str(pick(rng, pool));
            text.push(']');
        }
    }
    text
}

/// A deliberately explosive all-wildcard descendant chain.
fn explosive_twig(rng: &mut XorShiftRng) -> String {
    "//*".repeat(2 + (rng.next_u64() % 4) as usize)
}

/// A budget that frequently starves the query mid-flight.
fn random_budget(rng: &mut XorShiftRng) -> Budget {
    let mut budget = Budget::default();
    if rng.gen_bool(0.5) {
        budget = budget.with_deadline(Duration::from_micros(rng.next_u64() % 2_000));
    }
    if rng.gen_bool(0.5) {
        budget = budget.with_node_quota(rng.next_u64() % 5_000);
    }
    if rng.gen_bool(0.25) {
        budget = budget.with_candidate_quota(rng.next_u64() % 500);
    }
    budget
}

fn random_request(rng: &mut XorShiftRng, dataset: Dataset) -> QueryRequest {
    let mut request = match rng.next_u64() % 8 {
        0 => {
            let words = ["data", "query", "xml", "the", "time", "name"];
            let terms = format!("{} {}", pick(rng, &words), pick(rng, &words));
            QueryRequest::keyword(terms)
        }
        1 | 2 => {
            let canned = queries(dataset);
            let q = &canned[(rng.next_u64() % canned.len() as u64) as usize];
            QueryRequest::twig(q.text)
        }
        3 => QueryRequest::twig(explosive_twig(rng)),
        _ => QueryRequest::twig(random_twig(rng, dataset)),
    };
    request = request.budget(random_budget(rng));
    if rng.gen_bool(0.5) {
        let algo = Algorithm::ALL[(rng.next_u64() % Algorithm::ALL.len() as u64) as usize];
        request = request.algorithm(algo);
    }
    if rng.gen_bool(0.3) {
        request = request.top_k(1 + (rng.next_u64() % 20) as usize);
    }
    request
}

fn main() {
    let mut args = std::env::args().skip(1);
    let n: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(200);
    let seed: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(1);

    let trace_path = std::env::var("LOTUSX_TRACE").ok().filter(|p| !p.is_empty());
    if trace_path.is_some() {
        lotusx_obs::set_tracing(true);
    }

    let mut rng = XorShiftRng::seed_from_u64(seed);
    let systems: Vec<(Dataset, LotusX)> = Dataset::ALL
        .into_iter()
        .map(|ds| {
            let source = CorpusSource::Spec {
                dataset: ds,
                scale: 1,
                seed,
            };
            (
                ds,
                LotusX::open(&source).expect("generated corpora always open"),
            )
        })
        .collect();

    let (mut complete, mut truncated, mut errors, mut panics) = (0u64, 0u64, 0u64, 0u64);
    for i in 0..n {
        let (dataset, system) = &systems[(rng.next_u64() % systems.len() as u64) as usize];
        let request = random_request(&mut rng, *dataset);
        let text = request.text.clone();
        match catch_unwind(AssertUnwindSafe(|| system.query(&request))) {
            Ok(Ok(response)) => {
                if response.completeness.is_complete() {
                    complete += 1;
                } else {
                    truncated += 1;
                }
            }
            Ok(Err(_)) => errors += 1,
            Err(_) => {
                panics += 1;
                eprintln!("query {i} PANICKED on {dataset}: {text}");
            }
        }
    }

    println!(
        "{n} queries (seed {seed}): {complete} complete, {truncated} truncated, \
         {errors} errors, {panics} escaping panics"
    );
    if let Some(path) = trace_path {
        let events = lotusx_obs::drain_events();
        let counters = lotusx_obs::trace_counters();
        match std::fs::write(&path, lotusx_obs::chrome_trace_json(&events)) {
            Ok(()) => eprintln!(
                "trace: {} events exported to {path}, {} dropped",
                events.len(),
                counters.dropped
            ),
            Err(e) => eprintln!("trace: failed to write {path}: {e}"),
        }
    }
    if panics > 0 {
        std::process::exit(1);
    }
}
