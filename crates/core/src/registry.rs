//! The multi-tenant engine registry: one process, N independent corpora.
//!
//! An [`EngineRegistry`] owns a set of named tenants, each a fully
//! independent [`LotusX`] engine (its own document, indexes, caches and
//! stats — nothing is shared between tenants), plus the routing
//! [`RouteTable`] that maps requests onto them. Tenants and their
//! corpora are fixed at open time; the *rule list* is hot-swappable
//! (`POST /admin/routes` in the serving layer calls
//! [`EngineRegistry::reload_rules`]), so traffic can be re-routed
//! without reopening engines or dropping connections.
//!
//! The registry is deliberately engine-layer only: admission quotas,
//! per-tenant counters and endpoint semantics live in `lotusx-serve`,
//! which consumes this type through `Server::run_registry`.

use std::collections::HashMap;
use std::str::FromStr;
use std::sync::{Arc, RwLock};

use lotusx_guard::TenantLimits;

use crate::engine::{LotusError, LotusX};
use crate::routing::{parse_rules, valid_tenant_name, RegistryConfig, RouteRule, RouteTable};
use crate::source::CorpusSource;

/// One hosted corpus: a name, its engine, and its guard limits.
pub struct Tenant {
    name: String,
    limits: TenantLimits,
    engine: LotusX,
}

impl Tenant {
    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's admission quota and default budgets.
    pub fn limits(&self) -> &TenantLimits {
        &self.limits
    }

    /// The tenant's engine.
    pub fn engine(&self) -> &LotusX {
        &self.engine
    }
}

/// A process-wide registry of named engines with a hot-swappable
/// routing table. See the [module docs](self).
pub struct EngineRegistry {
    tenants: Vec<Tenant>,
    by_name: HashMap<String, usize>,
    routes: RwLock<Arc<RouteTable>>,
}

impl EngineRegistry {
    /// Opens every tenant in `config` (via the [`CorpusSource`] grammar
    /// — datasets, snapshots, XML files, inline markup) and installs its
    /// rule list. Config validation has already happened in
    /// [`RegistryConfig::parse`]; this is where corpora actually load.
    pub fn open(config: &RegistryConfig) -> Result<EngineRegistry, LotusError> {
        let mut parts = Vec::with_capacity(config.tenants.len());
        for spec in &config.tenants {
            let source = CorpusSource::from_str(&spec.source)?;
            let engine = LotusX::open(&source)?;
            parts.push((spec.name.clone(), engine, spec.limits.clone()));
        }
        EngineRegistry::from_parts(parts, config.rules.clone())
    }

    /// Builds a registry from already-opened engines (tests and
    /// harnesses that construct corpora programmatically).
    pub fn from_parts(
        parts: Vec<(String, LotusX, TenantLimits)>,
        rules: Vec<RouteRule>,
    ) -> Result<EngineRegistry, LotusError> {
        let mut tenants = Vec::with_capacity(parts.len());
        let mut by_name = HashMap::with_capacity(parts.len());
        for (name, engine, limits) in parts {
            if !valid_tenant_name(&name) {
                return Err(LotusError::Config(format!(
                    "tenant name `{}` must match [A-Za-z0-9_-]{{1,64}}",
                    name.escape_default()
                )));
            }
            if by_name.insert(name.clone(), tenants.len()).is_some() {
                return Err(LotusError::Config(format!(
                    "duplicate tenant name `{name}`"
                )));
            }
            tenants.push(Tenant {
                name,
                limits,
                engine,
            });
        }
        if tenants.is_empty() {
            return Err(LotusError::Config(
                "a registry needs at least one tenant".into(),
            ));
        }
        Ok(EngineRegistry {
            tenants,
            by_name,
            routes: RwLock::new(Arc::new(RouteTable::new(rules))),
        })
    }

    /// The hosted tenants, in declaration order.
    pub fn tenants(&self) -> &[Tenant] {
        &self.tenants
    }

    /// The index of the named tenant, if hosted.
    pub fn lookup(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// A snapshot of the current routing table (cheap `Arc` clone; a
    /// concurrent reload never tears an in-flight resolution).
    pub fn routes(&self) -> Arc<RouteTable> {
        self.routes.read().expect("routes lock poisoned").clone()
    }

    /// Validates `text` (a rule array or `{"rules": [...]}`) against the
    /// hosted tenant set and atomically swaps the routing table.
    /// Returns the new rule count. On error the previous table stays
    /// installed untouched.
    pub fn reload_rules(&self, text: &str) -> Result<usize, crate::routing::RouteError> {
        let names: Vec<&str> = self.tenants.iter().map(|t| t.name.as_str()).collect();
        let rules = parse_rules(text, &names)?;
        let count = rules.len();
        *self.routes.write().expect("routes lock poisoned") = Arc::new(RouteTable::new(rules));
        Ok(count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::routing::RouteErrorKind;

    fn tiny_engine() -> LotusX {
        LotusX::load_str("<bib><book><title>T</title></book></bib>").unwrap()
    }

    fn two_tenant_registry() -> EngineRegistry {
        EngineRegistry::from_parts(
            vec![
                ("alpha".into(), tiny_engine(), TenantLimits::unlimited()),
                ("beta".into(), tiny_engine(), TenantLimits::unlimited()),
            ],
            RouteTable::catch_all("alpha").rules().to_vec(),
        )
        .unwrap()
    }

    #[test]
    fn registry_hosts_independent_tenants() {
        let reg = two_tenant_registry();
        assert_eq!(reg.tenants().len(), 2);
        assert_eq!(reg.lookup("alpha"), Some(0));
        assert_eq!(reg.lookup("beta"), Some(1));
        assert_eq!(reg.lookup("ghost"), None);
        assert_eq!(reg.routes().rules().len(), 1);
    }

    #[test]
    fn duplicate_and_invalid_names_rejected() {
        let dup = EngineRegistry::from_parts(
            vec![
                ("a".into(), tiny_engine(), TenantLimits::unlimited()),
                ("a".into(), tiny_engine(), TenantLimits::unlimited()),
            ],
            vec![],
        );
        assert!(matches!(dup, Err(LotusError::Config(_))));
        let bad = EngineRegistry::from_parts(
            vec![("bad name".into(), tiny_engine(), TenantLimits::unlimited())],
            vec![],
        );
        assert!(matches!(bad, Err(LotusError::Config(_))));
        let empty = EngineRegistry::from_parts(vec![], vec![]);
        assert!(matches!(empty, Err(LotusError::Config(_))));
    }

    #[test]
    fn reload_swaps_rules_atomically() {
        let reg = two_tenant_registry();
        let before = reg.routes();
        let n = reg
            .reload_rules(
                r#"[{"when": {"path_prefix": "/t/"}, "tenant": {"from_path": true}},
                              {"when": {"always": true}, "tenant": "beta"}]"#,
            )
            .unwrap();
        assert_eq!(n, 2);
        let after = reg.routes();
        assert_eq!(after.rules().len(), 2);
        // The pre-reload snapshot is unchanged — readers never tear.
        assert_eq!(before.rules().len(), 1);
        // A bad reload (unknown tenant) leaves the table installed.
        let err = reg
            .reload_rules(r#"[{"when": {"always": true}, "tenant": "ghost"}]"#)
            .unwrap_err();
        assert_eq!(err.kind, RouteErrorKind::UnknownTenant);
        assert_eq!(reg.routes().rules().len(), 2, "previous table retained");
    }

    #[test]
    fn open_from_config_resolves_corpus_sources() {
        let cfg = RegistryConfig::parse(
            r#"{"tenants": [
                  {"name": "inline", "corpus": "<r><x>hello</x></r>", "max_inflight": 1}
                ],
                "rules": [{"when": {"always": true}, "tenant": "inline"}]}"#,
        )
        .unwrap();
        let reg = EngineRegistry::open(&cfg).unwrap();
        assert_eq!(reg.tenants()[0].name(), "inline");
        assert_eq!(reg.tenants()[0].limits().max_inflight, Some(1));
        let resp = reg.tenants()[0]
            .engine()
            .query(&crate::engine::QueryRequest::twig("//x"))
            .unwrap();
        assert_eq!(resp.matches.len(), 1);
    }
}
