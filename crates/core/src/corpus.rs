//! Multi-document corpora.
//!
//! The original demo serves several corpora (DBLP, XMark, …) behind one
//! interface; [`Corpus`] mirrors that: named documents, each fully
//! indexed, with twig and keyword search fanned out across all of them
//! and results merged by score.

use crate::engine::{LotusError, LotusX, QueryRequest, SearchResult};
use lotusx_xml::Document;

/// One search result together with the document it came from.
#[derive(Clone, Debug)]
pub struct CorpusResult {
    /// Name of the containing document.
    pub document: String,
    /// The result.
    pub result: SearchResult,
}

/// A named collection of indexed documents.
#[derive(Default)]
pub struct Corpus {
    systems: Vec<(String, LotusX)>,
}

impl Corpus {
    /// An empty corpus.
    pub fn new() -> Self {
        Self::default()
    }

    /// Parses and adds a document under `name`. Replaces any document
    /// already stored under the same name.
    pub fn add_str(&mut self, name: &str, xml: &str) -> Result<(), LotusError> {
        let system = LotusX::load_str(xml)?;
        self.insert(name, system);
        Ok(())
    }

    /// Adds an already-parsed document under `name`.
    pub fn add_document(&mut self, name: &str, doc: Document) {
        self.insert(name, LotusX::load_document(doc));
    }

    fn insert(&mut self, name: &str, system: LotusX) {
        if let Some(slot) = self.systems.iter_mut().find(|(n, _)| n == name) {
            slot.1 = system;
        } else {
            self.systems.push((name.to_string(), system));
        }
    }

    /// Removes the document stored under `name`, if present.
    pub fn remove(&mut self, name: &str) -> bool {
        let before = self.systems.len();
        self.systems.retain(|(n, _)| n != name);
        self.systems.len() != before
    }

    /// Number of documents.
    pub fn len(&self) -> usize {
        self.systems.len()
    }

    /// True when the corpus holds no documents.
    pub fn is_empty(&self) -> bool {
        self.systems.is_empty()
    }

    /// Document names, in insertion order.
    pub fn names(&self) -> Vec<&str> {
        self.systems.iter().map(|(n, _)| n.as_str()).collect()
    }

    /// The engine for one document.
    pub fn get(&self, name: &str) -> Option<&LotusX> {
        self.systems.iter().find(|(n, _)| n == name).map(|(_, s)| s)
    }

    /// Runs a twig query against every document, merging results by score.
    /// Per-document rewriting applies: a document where the query is empty
    /// contributes its best rewrite's results (scores are comparable
    /// because every document uses the same scoring model).
    pub fn search(&self, query: &str) -> Result<Vec<CorpusResult>, LotusError> {
        let mut merged = Vec::new();
        for (name, system) in &self.systems {
            let response = system.query(&QueryRequest::twig(query))?;
            merged.extend(response.matches.into_iter().map(|result| CorpusResult {
                document: name.clone(),
                result,
            }));
        }
        sort_by_score(&mut merged);
        Ok(merged)
    }

    /// Keyword search across every document, merged by score.
    pub fn search_keywords(&self, query: &str) -> Vec<CorpusResult> {
        let mut merged = Vec::new();
        for (name, system) in &self.systems {
            let response = system
                .query(&QueryRequest::keyword(query))
                .expect("keyword queries never fail to parse");
            merged.extend(response.matches.into_iter().map(|result| CorpusResult {
                document: name.clone(),
                result,
            }));
        }
        sort_by_score(&mut merged);
        merged
    }
}

fn sort_by_score(results: &mut [CorpusResult]) {
    results.sort_by(|a, b| {
        b.result
            .score
            .partial_cmp(&a.result.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.document.cmp(&b.document))
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn corpus() -> Corpus {
        let mut c = Corpus::new();
        c.add_str(
            "books",
            "<bib><book><title>xml data</title><author>lu</author></book></bib>",
        )
        .unwrap();
        c.add_str(
            "papers",
            "<proceedings><paper><title>twig joins on xml</title><author>bruno</author></paper>\
             <paper><title>unrelated</title><author>smith</author></paper></proceedings>",
        )
        .unwrap();
        c
    }

    #[test]
    fn registry_operations() {
        let mut c = corpus();
        assert_eq!(c.len(), 2);
        assert_eq!(c.names(), vec!["books", "papers"]);
        assert!(c.get("books").is_some());
        assert!(c.get("nope").is_none());
        assert!(c.remove("books"));
        assert!(!c.remove("books"));
        assert_eq!(c.len(), 1);
        assert!(!c.is_empty());
    }

    #[test]
    fn add_replaces_same_name() {
        let mut c = corpus();
        c.add_str("books", "<bib><book><title>replaced</title></book></bib>")
            .unwrap();
        assert_eq!(c.len(), 2);
        let hits = c.search("//book/title").unwrap();
        let from_books: Vec<&CorpusResult> =
            hits.iter().filter(|r| r.document == "books").collect();
        assert_eq!(from_books.len(), 1);
        assert!(from_books[0].result.snippet.contains("replaced"));
    }

    #[test]
    fn twig_search_fans_out_and_merges() {
        let c = corpus();
        let hits = c.search("//title").unwrap();
        assert_eq!(hits.len(), 3);
        let docs: std::collections::HashSet<&str> =
            hits.iter().map(|r| r.document.as_str()).collect();
        assert_eq!(docs.len(), 2);
        for w in hits.windows(2) {
            assert!(w[0].result.score >= w[1].result.score);
        }
    }

    #[test]
    fn keyword_search_spans_documents() {
        let c = corpus();
        let hits = c.search_keywords("xml");
        assert_eq!(hits.len(), 2, "one hit per document containing 'xml'");
    }

    #[test]
    fn bad_documents_are_rejected() {
        let mut c = Corpus::new();
        assert!(c.add_str("broken", "<a><b></a>").is_err());
        assert!(c.is_empty());
    }

    #[test]
    fn empty_corpus_searches_are_empty() {
        let c = Corpus::new();
        assert!(c.search("//x").unwrap().is_empty());
        assert!(c.search_keywords("x").is_empty());
    }
}
