//! One vocabulary for "where a corpus comes from".
//!
//! Every LotusX front end — the CLI, the HTTP server, the stress tool,
//! the benchmarks — needs to open a corpus from a user-supplied string,
//! and before [`CorpusSource`] each of them re-implemented the same
//! sniffing (`@` prefix → generated dataset, `.ltsx` suffix → snapshot,
//! otherwise an XML file). This module centralizes that grammar behind a
//! single [`FromStr`] and a single [`LotusX::open`](crate::LotusX::open)
//! entry point:
//!
//! | input | parses as |
//! |---|---|
//! | `@dataset[:scale[:seed]]` (e.g. `@dblp:2`) | [`CorpusSource::Spec`] |
//! | a path ending in `.ltsx` | [`CorpusSource::Snapshot`] |
//! | text starting with `<` | [`CorpusSource::Inline`] |
//! | anything else | [`CorpusSource::XmlFile`] |
//!
//! ```
//! use lotusx::{CorpusSource, LotusX};
//!
//! let source: CorpusSource = "@dblp:1:7".parse().unwrap();
//! let system = LotusX::open(&source).unwrap();
//! assert!(system.index().document().node_count() > 1);
//! ```

use crate::engine::LotusError;
use lotusx_datagen::Dataset;
use std::fmt;
use std::path::{Path, PathBuf};
use std::str::FromStr;

/// A place a corpus can be opened from. See the [module docs](self) for
/// the string grammar.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CorpusSource {
    /// An XML document on disk, parsed and indexed on open.
    XmlFile(PathBuf),
    /// A `.ltsx` binary snapshot; v2 snapshots open without a rebuild.
    Snapshot(PathBuf),
    /// A deterministic generated dataset (`@dataset[:scale[:seed]]`).
    Spec {
        /// Which built-in generator.
        dataset: Dataset,
        /// Size multiplier (the generators scale superlinearly with it).
        scale: u32,
        /// RNG seed; the same spec always yields the same document.
        seed: u64,
    },
    /// An XML document passed inline as a string.
    Inline(String),
}

impl CorpusSource {
    /// Classifies a filesystem path: `.ltsx` extensions open as
    /// snapshots, everything else as an XML file.
    pub fn from_path(path: impl AsRef<Path>) -> Self {
        let path = path.as_ref();
        if path.extension().is_some_and(|e| e == "ltsx") {
            CorpusSource::Snapshot(path.to_path_buf())
        } else {
            CorpusSource::XmlFile(path.to_path_buf())
        }
    }
}

impl FromStr for CorpusSource {
    type Err = LotusError;

    fn from_str(s: &str) -> Result<Self, LotusError> {
        if let Some(spec) = s.strip_prefix('@') {
            let (dataset, scale, seed) = lotusx_datagen::parse_spec(spec).ok_or_else(|| {
                LotusError::Config(format!(
                    "invalid corpus spec '@{spec}' (expected @dataset[:scale[:seed]] with \
                     dataset one of dblp, xmark, treebank)"
                ))
            })?;
            return Ok(CorpusSource::Spec {
                dataset,
                scale,
                seed,
            });
        }
        if s.trim_start().starts_with('<') {
            return Ok(CorpusSource::Inline(s.to_string()));
        }
        Ok(CorpusSource::from_path(s))
    }
}

impl fmt::Display for CorpusSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CorpusSource::XmlFile(p) => write!(f, "{}", p.display()),
            CorpusSource::Snapshot(p) => write!(f, "{}", p.display()),
            CorpusSource::Spec {
                dataset,
                scale,
                seed,
            } => {
                let token = match dataset {
                    Dataset::DblpLike => "dblp",
                    Dataset::XmarkLike => "xmark",
                    Dataset::TreebankLike => "treebank",
                };
                write!(f, "@{token}:{scale}:{seed}")
            }
            CorpusSource::Inline(_) => write!(f, "<inline XML>"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn string_grammar_covers_every_variant() {
        assert_eq!(
            "@dblp".parse::<CorpusSource>().unwrap(),
            CorpusSource::Spec {
                dataset: Dataset::DblpLike,
                scale: 1,
                seed: 42
            }
        );
        assert_eq!(
            "@treebank:3:9".parse::<CorpusSource>().unwrap(),
            CorpusSource::Spec {
                dataset: Dataset::TreebankLike,
                scale: 3,
                seed: 9
            }
        );
        assert_eq!(
            "corpus.ltsx".parse::<CorpusSource>().unwrap(),
            CorpusSource::Snapshot(PathBuf::from("corpus.ltsx"))
        );
        assert_eq!(
            "data/bib.xml".parse::<CorpusSource>().unwrap(),
            CorpusSource::XmlFile(PathBuf::from("data/bib.xml"))
        );
        assert_eq!(
            "<bib/>".parse::<CorpusSource>().unwrap(),
            CorpusSource::Inline("<bib/>".to_string())
        );
        assert!(matches!(
            "@nope:1".parse::<CorpusSource>(),
            Err(LotusError::Config(_))
        ));
        assert!(matches!(
            "@dblp:not-a-number".parse::<CorpusSource>(),
            Err(LotusError::Config(_))
        ));
    }

    #[test]
    fn display_roundtrips_reparseable_forms() {
        for text in ["@dblp:2:7", "corpus.ltsx", "data/bib.xml"] {
            let source: CorpusSource = text.parse().unwrap();
            assert_eq!(source.to_string().parse::<CorpusSource>().unwrap(), source);
        }
    }

    #[test]
    fn open_inline_and_spec() {
        let inline = crate::LotusX::open(&"<a><b>hi</b></a>".parse().unwrap()).unwrap();
        assert_eq!(inline.index().document().to_xml(), "<a><b>hi</b></a>");

        let spec = crate::LotusX::open(&"@dblp:1:7".parse().unwrap()).unwrap();
        let direct =
            crate::LotusX::load_document(lotusx_datagen::generate(Dataset::DblpLike, 1, 7));
        assert_eq!(
            spec.index().document().to_xml(),
            direct.index().document().to_xml()
        );
    }
}
