//! # LotusX
//!
//! A position-aware XML search system with auto-completion — the engine of
//! the ICDE 2012 demo, as a library. LotusX lets users who know neither
//! XQuery nor the document's schema build tree-shaped (twig) queries
//! incrementally, with the system suggesting what can exist at every
//! position, ranking the results, and rewriting queries that come back
//! empty.
//!
//! The three layers mirror the demo's architecture:
//!
//! * [`engine::LotusX`] — load & index a document, execute twig queries
//!   (five interchangeable join algorithms), rank matches, rewrite
//!   empty-result queries;
//! * [`canvas::QueryCanvas`] — the graphical canvas as an API: add nodes,
//!   connect edges, type into nodes, mark outputs;
//! * [`session::Session`] — an interactive session combining both with
//!   per-keystroke position-aware completion.
//!
//! ```
//! use lotusx::{LotusX, QueryRequest};
//!
//! let system = LotusX::load_str(
//!     "<bib><book><title>Data on the Web</title><year>1999</year></book></bib>").unwrap();
//! let response = system.query(&QueryRequest::twig("//book[year <= 2000]/title")).unwrap();
//! assert_eq!(response.matches.len(), 1);
//! assert!(response.matches[0].snippet.contains("Data on the Web"));
//! ```

#![warn(missing_docs)]

pub mod canvas;
pub mod corpus;
pub mod engine;
pub mod registry;
pub mod routing;
pub mod session;
pub mod source;

pub use canvas::{CanvasError, CanvasNodeId, QueryCanvas};
pub use corpus::{Corpus, CorpusResult};
pub use engine::{
    EngineConfig, LotusError, LotusX, QueryKind, QueryRequest, QueryResponse, SearchOutcome,
    SearchResult,
};
pub use registry::{EngineRegistry, Tenant};
pub use routing::{
    parse_rules, valid_tenant_name, RegistryConfig, RouteError, RouteErrorKind, RouteMatch,
    RoutePredicate, RouteRule, RouteTable, TenantSelector, TenantSpec,
};
pub use session::Session;
pub use source::CorpusSource;

// Re-export the vocabulary types callers need.
pub use lotusx_autocomplete::{
    CompletionEngine, CompletionState, ContextStep, PositionContext, TagCandidate, ValueCandidate,
};
pub use lotusx_guard::{
    Budget, CancelToken, Completeness, QueryGuard, TenantLimits, TruncationReason,
};
pub use lotusx_index::IndexedDocument;
pub use lotusx_obs::QueryProfile;
pub use lotusx_par::WorkerPanic;
pub use lotusx_rank::RankWeights;
pub use lotusx_rewrite::{RankedRewrite, RewriterConfig};
pub use lotusx_twig::{Algorithm, Axis, NodeTest, TwigPattern, ValuePredicate};
pub use lotusx_xml::{Document, NodeId};
