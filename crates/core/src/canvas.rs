//! The graphical query canvas as an API.
//!
//! The LotusX demo lets users drag nodes onto a canvas, connect them with
//! single (`/`) or double (`//`) edges, type tags and values into them,
//! and mark output nodes. [`QueryCanvas`] models exactly those
//! interactions; [`QueryCanvas::to_pattern`] compiles the canvas state
//! into an executable [`TwigPattern`]. Nodes whose tag has not been typed
//! yet compile to wildcards, so a half-built query is always runnable —
//! the behaviour the demo's on-the-fly preview relies on.

use lotusx_autocomplete::{ContextStep, PositionContext};
use lotusx_twig::pattern::{Axis, NodeTest, TwigPattern, ValuePredicate};
use std::fmt;

/// Identifier of a canvas node.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct CanvasNodeId(usize);

/// Errors from canvas manipulation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum CanvasError {
    /// The canvas has no nodes yet.
    Empty,
    /// The referenced node does not exist (or was removed).
    NoSuchNode,
    /// Adding this node/edge would create a second root.
    SecondRoot,
}

impl fmt::Display for CanvasError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CanvasError::Empty => write!(f, "the canvas is empty"),
            CanvasError::NoSuchNode => write!(f, "no such canvas node"),
            CanvasError::SecondRoot => write!(f, "the canvas already has a root node"),
        }
    }
}

impl std::error::Error for CanvasError {}

#[derive(Clone, Debug)]
struct CanvasNode {
    tag: Option<String>,
    predicate: Option<ValuePredicate>,
    output: bool,
    parent: Option<usize>,
    axis: Axis,
    children: Vec<usize>,
    removed: bool,
}

/// The query canvas: an editable twig under construction.
#[derive(Clone, Debug, Default)]
pub struct QueryCanvas {
    nodes: Vec<CanvasNode>,
    root: Option<usize>,
    ordered: bool,
}

impl QueryCanvas {
    /// An empty canvas.
    pub fn new() -> Self {
        Self::default()
    }

    /// Drops a root node onto the canvas (untyped: it compiles to a
    /// wildcard until a tag is set).
    pub fn add_root(&mut self) -> Result<CanvasNodeId, CanvasError> {
        if self.root.is_some() {
            return Err(CanvasError::SecondRoot);
        }
        let id = self.push(CanvasNode {
            tag: None,
            predicate: None,
            output: false,
            parent: None,
            axis: Axis::Descendant,
            children: Vec::new(),
            removed: false,
        });
        self.root = Some(id.0);
        Ok(id)
    }

    /// Adds a node connected to `parent` by `axis`.
    pub fn add_node(
        &mut self,
        parent: CanvasNodeId,
        axis: Axis,
    ) -> Result<CanvasNodeId, CanvasError> {
        self.check(parent)?;
        let id = self.push(CanvasNode {
            tag: None,
            predicate: None,
            output: false,
            parent: Some(parent.0),
            axis,
            children: Vec::new(),
            removed: false,
        });
        self.nodes[parent.0].children.push(id.0);
        Ok(id)
    }

    fn push(&mut self, node: CanvasNode) -> CanvasNodeId {
        self.nodes.push(node);
        CanvasNodeId(self.nodes.len() - 1)
    }

    fn check(&self, id: CanvasNodeId) -> Result<(), CanvasError> {
        if id.0 >= self.nodes.len() || self.nodes[id.0].removed {
            return Err(CanvasError::NoSuchNode);
        }
        Ok(())
    }

    /// Types a tag into a node (what accepting a completion does).
    pub fn set_tag(&mut self, id: CanvasNodeId, tag: &str) -> Result<(), CanvasError> {
        self.check(id)?;
        self.nodes[id.0].tag = Some(tag.to_string());
        Ok(())
    }

    /// Clears a node's tag (back to wildcard).
    pub fn clear_tag(&mut self, id: CanvasNodeId) -> Result<(), CanvasError> {
        self.check(id)?;
        self.nodes[id.0].tag = None;
        Ok(())
    }

    /// The tag currently typed into a node.
    pub fn tag(&self, id: CanvasNodeId) -> Result<Option<&str>, CanvasError> {
        self.check(id)?;
        Ok(self.nodes[id.0].tag.as_deref())
    }

    /// Attaches a value predicate to a node.
    pub fn set_predicate(
        &mut self,
        id: CanvasNodeId,
        predicate: Option<ValuePredicate>,
    ) -> Result<(), CanvasError> {
        self.check(id)?;
        self.nodes[id.0].predicate = predicate;
        Ok(())
    }

    /// Toggles a node's output (highlight) flag.
    pub fn set_output(&mut self, id: CanvasNodeId, output: bool) -> Result<(), CanvasError> {
        self.check(id)?;
        self.nodes[id.0].output = output;
        Ok(())
    }

    /// Changes the axis of the edge above a node.
    pub fn set_axis(&mut self, id: CanvasNodeId, axis: Axis) -> Result<(), CanvasError> {
        self.check(id)?;
        self.nodes[id.0].axis = axis;
        Ok(())
    }

    /// Removes a node and its whole subtree from the canvas.
    pub fn remove_subtree(&mut self, id: CanvasNodeId) -> Result<(), CanvasError> {
        self.check(id)?;
        let mut stack = vec![id.0];
        while let Some(n) = stack.pop() {
            self.nodes[n].removed = true;
            stack.extend(self.nodes[n].children.iter().copied());
        }
        if let Some(parent) = self.nodes[id.0].parent {
            self.nodes[parent].children.retain(|&c| c != id.0);
        }
        if self.root == Some(id.0) {
            self.root = None;
        }
        Ok(())
    }

    /// Marks the query order-sensitive.
    pub fn set_ordered(&mut self, ordered: bool) {
        self.ordered = ordered;
    }

    /// Number of live nodes on the canvas.
    pub fn len(&self) -> usize {
        self.nodes.iter().filter(|n| !n.removed).count()
    }

    /// True when the canvas has no live nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Compiles the canvas to an executable pattern. Untyped nodes become
    /// wildcards.
    pub fn to_pattern(&self) -> Result<TwigPattern, CanvasError> {
        let root = self.root.ok_or(CanvasError::Empty)?;
        let test = |n: &CanvasNode| match &n.tag {
            Some(t) => NodeTest::Tag(t.clone()),
            None => NodeTest::Wildcard,
        };
        let mut pattern = TwigPattern::new(test(&self.nodes[root]), self.nodes[root].axis);
        pattern.set_predicate(pattern.root(), self.nodes[root].predicate.clone());
        pattern.set_output(pattern.root(), self.nodes[root].output);
        pattern.set_ordered(self.ordered);
        // DFS copying children in canvas order.
        // Children are attached while their parent is processed, so the
        // canvas sibling order is preserved regardless of stack order.
        let mut stack = vec![(root, pattern.root())];
        while let Some((cn, qn)) = stack.pop() {
            for &child in &self.nodes[cn].children {
                if self.nodes[child].removed {
                    continue;
                }
                let c = &self.nodes[child];
                let id = pattern.add_child(qn, c.axis, test(c));
                pattern.set_predicate(id, c.predicate.clone());
                pattern.set_output(id, c.output);
                stack.push((child, id));
            }
        }
        Ok(pattern)
    }

    /// The position context of a canvas node — what completion needs while
    /// the user types into it.
    pub fn context_of(&self, id: CanvasNodeId) -> Result<PositionContext, CanvasError> {
        self.check(id)?;
        let mut steps = Vec::new();
        let mut cur = self.nodes[id.0].parent;
        while let Some(n) = cur {
            steps.push(ContextStep {
                tag: self.nodes[n].tag.clone(),
                axis: self.nodes[n].axis,
            });
            cur = self.nodes[n].parent;
        }
        steps.reverse();
        Ok(PositionContext {
            steps,
            axis_to_focus: self.nodes[id.0].axis,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_compile_a_twig() {
        let mut c = QueryCanvas::new();
        let root = c.add_root().unwrap();
        c.set_tag(root, "book").unwrap();
        let title = c.add_node(root, Axis::Child).unwrap();
        c.set_tag(title, "title").unwrap();
        c.set_output(title, true).unwrap();
        let author = c.add_node(root, Axis::Descendant).unwrap();
        c.set_tag(author, "author").unwrap();
        let p = c.to_pattern().unwrap();
        assert_eq!(p.to_string(), "//book[/title!][//author]");
    }

    #[test]
    fn untyped_nodes_compile_to_wildcards() {
        let mut c = QueryCanvas::new();
        let root = c.add_root().unwrap();
        let child = c.add_node(root, Axis::Child).unwrap();
        c.set_tag(child, "x").unwrap();
        let p = c.to_pattern().unwrap();
        assert_eq!(p.to_string(), "//*[/x]");
        c.set_tag(root, "r").unwrap();
        c.clear_tag(child).unwrap();
        assert_eq!(c.to_pattern().unwrap().to_string(), "//r[/*]");
    }

    #[test]
    fn canvas_guards_structure() {
        let mut c = QueryCanvas::new();
        assert_eq!(c.to_pattern().unwrap_err(), CanvasError::Empty);
        let root = c.add_root().unwrap();
        assert_eq!(c.add_root().unwrap_err(), CanvasError::SecondRoot);
        let child = c.add_node(root, Axis::Child).unwrap();
        c.remove_subtree(child).unwrap();
        assert_eq!(c.set_tag(child, "x").unwrap_err(), CanvasError::NoSuchNode);
    }

    #[test]
    fn remove_subtree_prunes_descendants() {
        let mut c = QueryCanvas::new();
        let root = c.add_root().unwrap();
        c.set_tag(root, "a").unwrap();
        let b = c.add_node(root, Axis::Child).unwrap();
        let _d = c.add_node(b, Axis::Child).unwrap();
        let e = c.add_node(root, Axis::Child).unwrap();
        c.set_tag(e, "e").unwrap();
        assert_eq!(c.len(), 4);
        c.remove_subtree(b).unwrap();
        assert_eq!(c.len(), 2);
        assert_eq!(c.to_pattern().unwrap().to_string(), "//a[/e]");
    }

    #[test]
    fn context_reflects_partial_twig() {
        let mut c = QueryCanvas::new();
        let root = c.add_root().unwrap();
        c.set_tag(root, "bib").unwrap();
        let book = c.add_node(root, Axis::Child).unwrap();
        c.set_tag(book, "book").unwrap();
        let focus = c.add_node(book, Axis::Descendant).unwrap();
        let ctx = c.context_of(focus).unwrap();
        assert_eq!(ctx.steps.len(), 2);
        assert_eq!(ctx.steps[1].tag.as_deref(), Some("book"));
        assert_eq!(ctx.axis_to_focus, Axis::Descendant);
        // An untyped ancestor appears as a wildcard step.
        c.clear_tag(book).unwrap();
        let ctx = c.context_of(focus).unwrap();
        assert_eq!(ctx.steps[1].tag, None);
    }

    #[test]
    fn predicates_and_order_survive_compilation() {
        let mut c = QueryCanvas::new();
        let root = c.add_root().unwrap();
        c.set_tag(root, "book").unwrap();
        let year = c.add_node(root, Axis::Child).unwrap();
        c.set_tag(year, "year").unwrap();
        c.set_predicate(
            year,
            Some(ValuePredicate::Range {
                low: 2000.0,
                high: f64::INFINITY,
            }),
        )
        .unwrap();
        c.set_ordered(true);
        let p = c.to_pattern().unwrap();
        assert!(p.is_ordered());
        assert!(p.to_string().contains(">= 2000"));
    }
}
