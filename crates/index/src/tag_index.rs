//! Per-tag, document-ordered element streams.

use lotusx_labeling::RegionLabel;
use lotusx_xml::{NodeId, Symbol};

/// One element occurrence in a tag stream.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ElementEntry {
    /// The element node.
    pub node: NodeId,
    /// Its region label (carried inline so joins never touch the tree).
    pub region: RegionLabel,
}

/// Inverted index from tag symbol to its document-ordered element stream.
#[derive(Clone, Debug, Default)]
pub struct TagIndex {
    postings: Vec<Vec<ElementEntry>>,
}

impl TagIndex {
    /// Creates an empty index sized for `tag_count` symbols.
    pub fn with_tag_count(tag_count: usize) -> Self {
        TagIndex {
            postings: vec![Vec::new(); tag_count],
        }
    }

    /// Appends an occurrence. Entries MUST be pushed in document order;
    /// this is checked in debug builds.
    pub fn push(&mut self, tag: Symbol, entry: ElementEntry) {
        if tag.index() >= self.postings.len() {
            self.postings.resize(tag.index() + 1, Vec::new());
        }
        let list = &mut self.postings[tag.index()];
        debug_assert!(
            list.last()
                .map(|prev| prev.region.start < entry.region.start)
                .unwrap_or(true),
            "tag stream must be built in document order"
        );
        list.push(entry);
    }

    /// Appends all streams of `other` after the streams of `self`.
    ///
    /// `other` must have been built over a later contiguous chunk of the
    /// same document, so that concatenation preserves document order per
    /// tag; this is checked in debug builds. Used by the parallel builder
    /// to merge per-chunk partial indexes.
    pub fn merge_append(&mut self, other: TagIndex) {
        if other.postings.len() > self.postings.len() {
            self.postings.resize(other.postings.len(), Vec::new());
        }
        for (i, list) in other.postings.into_iter().enumerate() {
            if list.is_empty() {
                continue;
            }
            let dst = &mut self.postings[i];
            debug_assert!(
                dst.last()
                    .map(|prev| prev.region.start < list[0].region.start)
                    .unwrap_or(true),
                "merged chunks must follow document order"
            );
            if dst.is_empty() {
                *dst = list;
            } else {
                dst.extend(list);
            }
        }
    }

    /// The document-ordered stream for `tag` (empty if never seen).
    pub fn stream(&self, tag: Symbol) -> &[ElementEntry] {
        self.postings
            .get(tag.index())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// A cursor over the stream for `tag`.
    pub fn cursor(&self, tag: Symbol) -> TagStream<'_> {
        TagStream {
            entries: self.stream(tag),
            pos: 0,
        }
    }

    /// Number of occurrences of `tag`.
    pub fn frequency(&self, tag: Symbol) -> usize {
        self.stream(tag).len()
    }

    /// Total number of indexed occurrences.
    pub fn total_entries(&self) -> usize {
        self.postings.iter().map(Vec::len).sum()
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.postings
            .iter()
            .map(|p| p.capacity() * std::mem::size_of::<ElementEntry>())
            .sum::<usize>()
            + self.postings.capacity() * std::mem::size_of::<Vec<ElementEntry>>()
    }
}

/// A forward-only cursor over one tag stream, in the style holistic twig
/// joins expect: `head`, `advance`, and order-based skipping.
#[derive(Clone, Copy, Debug)]
pub struct TagStream<'a> {
    entries: &'a [ElementEntry],
    pos: usize,
}

impl<'a> TagStream<'a> {
    /// Creates a cursor over a pre-sorted slice.
    pub fn new(entries: &'a [ElementEntry]) -> Self {
        TagStream { entries, pos: 0 }
    }

    /// True when the stream is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.entries.len()
    }

    /// The current head entry, if any.
    pub fn head(&self) -> Option<ElementEntry> {
        self.entries.get(self.pos).copied()
    }

    /// Advances past the head.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// Skips (binary search) to the first entry with `region.start >= start`.
    pub fn seek_start_at_least(&mut self, start: u32) {
        let rest = &self.entries[self.pos..];
        let offset = rest.partition_point(|e| e.region.start < start);
        self.pos += offset;
    }

    /// Remaining entries from the cursor position.
    pub fn remaining(&self) -> &'a [ElementEntry] {
        &self.entries[self.pos..]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u32, start: u32, end: u32, level: u16) -> ElementEntry {
        ElementEntry {
            node: NodeId::from_index(node as usize),
            region: RegionLabel::new(start, end, level),
        }
    }

    fn sample_index() -> (TagIndex, Symbol, Symbol) {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let mut idx = TagIndex::with_tag_count(2);
        idx.push(a, entry(1, 1, 20, 1));
        idx.push(a, entry(5, 8, 15, 2));
        idx.push(b, entry(3, 3, 6, 2));
        idx.push(b, entry(7, 10, 11, 3));
        idx.push(b, entry(9, 16, 17, 3));
        (idx, a, b)
    }

    #[test]
    fn streams_are_per_tag_and_ordered() {
        let (idx, a, b) = sample_index();
        assert_eq!(idx.frequency(a), 2);
        assert_eq!(idx.frequency(b), 3);
        assert_eq!(idx.total_entries(), 5);
        let starts: Vec<u32> = idx.stream(b).iter().map(|e| e.region.start).collect();
        assert_eq!(starts, vec![3, 10, 16]);
    }

    #[test]
    fn unknown_tag_yields_empty_stream() {
        let (idx, ..) = sample_index();
        assert!(idx.stream(Symbol::from_index(42)).is_empty());
        assert!(idx.cursor(Symbol::from_index(42)).is_exhausted());
    }

    #[test]
    fn cursor_advances_and_exhausts() {
        let (idx, _, b) = sample_index();
        let mut cur = idx.cursor(b);
        assert_eq!(cur.head().unwrap().region.start, 3);
        cur.advance();
        assert_eq!(cur.head().unwrap().region.start, 10);
        cur.advance();
        cur.advance();
        assert!(cur.is_exhausted());
        assert_eq!(cur.head(), None);
    }

    #[test]
    fn seek_skips_by_start() {
        let (idx, _, b) = sample_index();
        let mut cur = idx.cursor(b);
        cur.seek_start_at_least(9);
        assert_eq!(cur.head().unwrap().region.start, 10);
        cur.seek_start_at_least(17);
        assert!(cur.is_exhausted());
    }

    #[test]
    fn seek_to_present_value_lands_on_it() {
        let (idx, _, b) = sample_index();
        let mut cur = idx.cursor(b);
        cur.seek_start_at_least(10);
        assert_eq!(cur.head().unwrap().region.start, 10);
    }

    #[test]
    fn push_resizes_for_unseen_symbols() {
        let mut idx = TagIndex::default();
        let s = Symbol::from_index(7);
        idx.push(s, entry(1, 1, 2, 1));
        assert_eq!(idx.frequency(s), 1);
    }

    #[test]
    #[should_panic(expected = "document order")]
    #[cfg(debug_assertions)]
    fn out_of_order_push_is_caught_in_debug() {
        let mut idx = TagIndex::default();
        let s = Symbol::from_index(0);
        idx.push(s, entry(1, 10, 11, 1));
        idx.push(s, entry(2, 5, 6, 1));
    }
}
