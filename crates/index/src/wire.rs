//! Shared primitives for the snapshot section codecs.
//!
//! Every decoder here works on an untrusted byte slice: lengths are
//! bounds-checked against the remaining input *before* any allocation
//! (so a corrupt length can never demand terabytes), and every failure
//! is a typed [`StorageError::Corrupt`] — never a panic. The section
//! checksums in `lotusx-storage` catch accidental corruption first;
//! these checks are the second line against crafted files.

pub(crate) use lotusx_storage::codec::{get_string, get_varint, put_string, put_varint};
pub(crate) use lotusx_storage::StorageError;

/// Shorthand for a structural-corruption error.
pub(crate) fn corrupt(what: &'static str) -> StorageError {
    StorageError::Corrupt(what)
}

/// Reads a varint or fails with a `Corrupt` naming the field.
pub(crate) fn rd_varint(
    data: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<u64, StorageError> {
    get_varint(data, pos).ok_or(StorageError::Corrupt(what))
}

/// Reads a varint that must fit `usize`.
pub(crate) fn rd_len(
    data: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<usize, StorageError> {
    usize::try_from(rd_varint(data, pos, what)?).map_err(|_| corrupt(what))
}

/// Reads one raw byte.
pub(crate) fn rd_u8(data: &[u8], pos: &mut usize, what: &'static str) -> Result<u8, StorageError> {
    let b = *data.get(*pos).ok_or(StorageError::Corrupt(what))?;
    *pos += 1;
    Ok(b)
}

/// Reads a raw little-endian `f64` (bit-exact, including NaN payloads).
pub(crate) fn rd_f64(
    data: &[u8],
    pos: &mut usize,
    what: &'static str,
) -> Result<f64, StorageError> {
    let end = pos
        .checked_add(8)
        .filter(|&e| e <= data.len())
        .ok_or(corrupt(what))?;
    let bits = u64::from_le_bytes(data[*pos..end].try_into().expect("8 bytes"));
    *pos = end;
    Ok(f64::from_bits(bits))
}

/// Appends a `u32` slice as raw little-endian words (the bulk-load path:
/// arena columns deserialize with one pass, no per-element varints).
pub(crate) fn put_u32_slice(out: &mut Vec<u8>, values: &[u32]) {
    out.reserve(values.len() * 4);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reads `len` raw little-endian `u32`s, bounds-checked before allocating.
pub(crate) fn get_u32_slice(
    data: &[u8],
    pos: &mut usize,
    len: usize,
    what: &'static str,
) -> Result<Vec<u32>, StorageError> {
    let bytes = len.checked_mul(4).ok_or(corrupt(what))?;
    let end = pos
        .checked_add(bytes)
        .filter(|&e| e <= data.len())
        .ok_or(corrupt(what))?;
    let out = data[*pos..end]
        .chunks_exact(4)
        .map(|c| u32::from_le_bytes(c.try_into().expect("4 bytes")))
        .collect();
    *pos = end;
    Ok(out)
}

/// Appends a `u16` slice as raw little-endian words.
pub(crate) fn put_u16_slice(out: &mut Vec<u8>, values: &[u16]) {
    out.reserve(values.len() * 2);
    for &v in values {
        out.extend_from_slice(&v.to_le_bytes());
    }
}

/// Reads `len` raw little-endian `u16`s, bounds-checked before allocating.
pub(crate) fn get_u16_slice(
    data: &[u8],
    pos: &mut usize,
    len: usize,
    what: &'static str,
) -> Result<Vec<u16>, StorageError> {
    let bytes = len.checked_mul(2).ok_or(corrupt(what))?;
    let end = pos
        .checked_add(bytes)
        .filter(|&e| e <= data.len())
        .ok_or(corrupt(what))?;
    let out = data[*pos..end]
        .chunks_exact(2)
        .map(|c| u16::from_le_bytes(c.try_into().expect("2 bytes")))
        .collect();
    *pos = end;
    Ok(out)
}
