//! Corpus statistics used by ranking, the experiment harness, and the
//! adaptive join-algorithm chooser.

use crate::dataguide::{DataGuide, GuideNodeId};
use crate::tag_index::TagIndex;
use crate::wire::{corrupt, put_varint, rd_f64, rd_len, rd_varint, StorageError};
use lotusx_xml::{Document, NodeId, Symbol};
use std::collections::HashMap;

/// Aggregate statistics about one document.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of element nodes.
    pub element_count: usize,
    /// Number of text nodes.
    pub text_count: usize,
    /// Number of attributes across all elements.
    pub attribute_count: usize,
    /// Number of distinct tags.
    pub distinct_tags: usize,
    /// Maximum element depth (root element = 1).
    pub max_depth: u32,
    /// Histogram of element depths; index = depth.
    pub depth_histogram: Vec<usize>,
    /// Average number of element children per non-leaf element.
    pub avg_fanout: f64,
}

impl Stats {
    /// Computes statistics for `doc`.
    pub fn compute(doc: &Document) -> Self {
        let mut stats = Stats::default();
        let mut fanout_sum = 0usize;
        let mut internal = 0usize;
        for node in doc.all_nodes() {
            if node == NodeId::DOCUMENT {
                continue;
            }
            match doc.kind(node) {
                lotusx_xml::NodeKind::Element { attributes, .. } => {
                    stats.element_count += 1;
                    stats.attribute_count += attributes.len();
                    let depth = doc.depth(node);
                    stats.max_depth = stats.max_depth.max(depth);
                    if stats.depth_histogram.len() <= depth as usize {
                        stats.depth_histogram.resize(depth as usize + 1, 0);
                    }
                    stats.depth_histogram[depth as usize] += 1;
                    let kids = doc.element_children(node).count();
                    if kids > 0 {
                        fanout_sum += kids;
                        internal += 1;
                    }
                }
                lotusx_xml::NodeKind::Text(_) => stats.text_count += 1,
                _ => {}
            }
        }
        stats.distinct_tags = doc.symbols().len();
        stats.avg_fanout = if internal > 0 {
            fanout_sum as f64 / internal as f64
        } else {
            0.0
        };
        stats
    }

    /// Serializes the statistics for the snapshot `STATS` section.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.element_count as u64);
        put_varint(out, self.text_count as u64);
        put_varint(out, self.attribute_count as u64);
        put_varint(out, self.distinct_tags as u64);
        put_varint(out, u64::from(self.max_depth));
        put_varint(out, self.depth_histogram.len() as u64);
        for &d in &self.depth_histogram {
            put_varint(out, d as u64);
        }
        // f64 as raw bits: bit-exact round-trip, no text formatting drift.
        out.extend_from_slice(&self.avg_fanout.to_bits().to_le_bytes());
    }

    /// Deserializes statistics written by [`encode`](Self::encode).
    pub(crate) fn decode(data: &[u8], pos: &mut usize) -> Result<Stats, StorageError> {
        let element_count = rd_len(data, pos, "stats element count")?;
        let text_count = rd_len(data, pos, "stats text count")?;
        let attribute_count = rd_len(data, pos, "stats attribute count")?;
        let distinct_tags = rd_len(data, pos, "stats distinct tags")?;
        let max_depth = u32::try_from(rd_varint(data, pos, "stats max depth")?)
            .map_err(|_| corrupt("stats max depth"))?;
        let hist_len = rd_len(data, pos, "stats histogram length")?;
        if hist_len > data.len() {
            return Err(corrupt("stats histogram length"));
        }
        let mut depth_histogram = Vec::with_capacity(hist_len);
        for _ in 0..hist_len {
            depth_histogram.push(rd_len(data, pos, "stats histogram bucket")?);
        }
        let avg_fanout = rd_f64(data, pos, "stats avg fanout")?;
        Ok(Stats {
            element_count,
            text_count,
            attribute_count,
            distinct_tags,
            max_depth,
            depth_histogram,
            avg_fanout,
        })
    }
}

/// Selectivity statistics the adaptive algorithm chooser prices join
/// plans with: per-tag stream frequencies plus ancestor/descendant pair
/// estimates derived from the strong DataGuide.
///
/// The DataGuide collapses every distinct root-to-node tag path into one
/// summary node carrying an exact occurrence count, so "how many `d`
/// elements sit below an `a` ancestor" is answerable by summing the
/// counts of `d`-tagged guide nodes whose summary ancestor chain contains
/// an `a` — exact for structure-only edges (value predicates are invisible
/// here), and O(guide depth) per probed guide node, independent of
/// document size.
#[derive(Clone, Debug, Default)]
pub struct JoinStats {
    /// Per-tag element stream length; index = symbol index.
    tag_freq: Vec<u64>,
    /// Total number of element nodes.
    element_count: u64,
    /// Per-tag total number of direct element children under elements of
    /// the tag (the cost of one child-axis scan from every instance).
    children_total: Vec<u64>,
    /// Per-tag total subtree size under elements of the tag, counting an
    /// element once per enclosing instance (the cost of one
    /// descendant-axis rescan from every instance; recursion multiplies).
    subtree_weight: Vec<u64>,
    /// Precomputed `(anc, desc)` pair aggregates, built in one guide walk
    /// so chooser probes are O(1) instead of re-walking ancestor chains.
    pair_table: HashMap<(Symbol, Symbol), PairCounts>,
}

/// Aggregated containment counts for one `(anc, desc)` tag pair.
#[derive(Clone, Copy, Debug, Default)]
struct PairCounts {
    /// Descendants whose direct parent carries the ancestor tag.
    child: u64,
    /// Distinct descendants with at least one such ancestor.
    descendant: u64,
    /// Containment pairs with multiplicity (one per enclosing ancestor).
    multiplicity: u64,
}

impl JoinStats {
    /// Derives join statistics from the merged tag index and DataGuide.
    pub fn compute(tags: &TagIndex, guide: &DataGuide, tag_count: usize) -> Self {
        let mut stats = JoinStats {
            tag_freq: (0..tag_count)
                .map(|t| tags.frequency(Symbol::from_index(t)) as u64)
                .collect(),
            element_count: tags.total_entries() as u64,
            children_total: vec![0; tag_count],
            subtree_weight: vec![0; tag_count],
            pair_table: HashMap::new(),
        };
        let n = guide.node_count();
        let mut parent = Vec::with_capacity(n);
        let mut tag = Vec::with_capacity(n);
        let mut count = Vec::with_capacity(n);
        for i in 0..n {
            let id = GuideNodeId::from_index(i);
            parent.push(guide.parent(id));
            tag.push(guide.tag(id));
            count.push(guide.count(id));
        }
        // One walk up every guide node's summary-ancestor chain feeds all
        // aggregates: children_total / subtree_weight for navigation
        // costs, and the (anc, desc) pair table for join selectivities.
        // Doing this once at build time keeps per-query chooser probes
        // O(1); re-walking chains per probe costs tens of microseconds on
        // deep recursive guides, which would dwarf the joins it prices.
        let mut seen: Vec<Symbol> = Vec::new();
        for g in 0..n {
            let Some(d) = tag[g] else { continue };
            let c = count[g];
            if let Some(p) = parent[g] {
                if let Some(t) = tag[p.index()] {
                    stats.children_total[t.index()] += c;
                    stats.pair_table.entry((t, d)).or_default().child += c;
                }
            }
            seen.clear();
            let mut cur = parent[g];
            while let Some(a) = cur {
                if let Some(t) = tag[a.index()] {
                    stats.subtree_weight[t.index()] += c;
                    let entry = stats.pair_table.entry((t, d)).or_default();
                    entry.multiplicity += c;
                    if !seen.contains(&t) {
                        seen.push(t);
                        entry.descendant += c;
                    }
                }
                cur = parent[a.index()];
            }
        }
        stats
    }

    /// Serializes the join statistics for the snapshot `STATS` section.
    /// The pair table is emitted sorted by `(anc, desc)` symbol index so
    /// the encoding is deterministic regardless of hash-map order.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.tag_freq.len() as u64);
        for &f in &self.tag_freq {
            put_varint(out, f);
        }
        put_varint(out, self.element_count);
        for &c in &self.children_total {
            put_varint(out, c);
        }
        for &w in &self.subtree_weight {
            put_varint(out, w);
        }
        let mut pairs: Vec<(&(Symbol, Symbol), &PairCounts)> = self.pair_table.iter().collect();
        pairs.sort_by_key(|((a, d), _)| (a.index(), d.index()));
        put_varint(out, pairs.len() as u64);
        for ((anc, desc), counts) in pairs {
            put_varint(out, anc.index() as u64);
            put_varint(out, desc.index() as u64);
            put_varint(out, counts.child);
            put_varint(out, counts.descendant);
            put_varint(out, counts.multiplicity);
        }
    }

    /// Deserializes join statistics written by [`encode`](Self::encode).
    /// `tag_count` is the document's symbol count; the per-tag vectors
    /// must match it and every pair symbol must fall inside it.
    pub(crate) fn decode(
        data: &[u8],
        pos: &mut usize,
        tag_count: usize,
    ) -> Result<JoinStats, StorageError> {
        let n = rd_len(data, pos, "join-stats tag count")?;
        if n != tag_count {
            return Err(corrupt("join-stats tag count mismatch"));
        }
        let read_per_tag = |pos: &mut usize, what| -> Result<Vec<u64>, StorageError> {
            let mut v = Vec::with_capacity(n);
            for _ in 0..n {
                v.push(rd_varint(data, pos, what)?);
            }
            Ok(v)
        };
        let tag_freq = read_per_tag(pos, "join-stats tag frequency")?;
        let element_count = rd_varint(data, pos, "join-stats element count")?;
        let children_total = read_per_tag(pos, "join-stats children total")?;
        let subtree_weight = read_per_tag(pos, "join-stats subtree weight")?;
        let pair_count = rd_len(data, pos, "join-stats pair count")?;
        if pair_count > data.len() {
            return Err(corrupt("join-stats pair count"));
        }
        let mut pair_table = HashMap::with_capacity(pair_count);
        for _ in 0..pair_count {
            let anc = rd_len(data, pos, "join-stats pair ancestor")?;
            let desc = rd_len(data, pos, "join-stats pair descendant")?;
            if anc >= tag_count || desc >= tag_count {
                return Err(corrupt("join-stats pair symbol out of range"));
            }
            let child = rd_varint(data, pos, "join-stats pair child count")?;
            let descendant = rd_varint(data, pos, "join-stats pair descendant count")?;
            let multiplicity = rd_varint(data, pos, "join-stats pair multiplicity")?;
            pair_table.insert(
                (Symbol::from_index(anc), Symbol::from_index(desc)),
                PairCounts {
                    child,
                    descendant,
                    multiplicity,
                },
            );
        }
        Ok(JoinStats {
            tag_freq,
            element_count,
            children_total,
            subtree_weight,
            pair_table,
        })
    }

    /// Stream length of `tag` (0 for unseen symbols).
    pub fn tag_frequency(&self, tag: Symbol) -> u64 {
        self.tag_freq.get(tag.index()).copied().unwrap_or(0)
    }

    /// Total number of element nodes (the wildcard "stream" length).
    pub fn element_count(&self) -> u64 {
        self.element_count
    }

    /// Total direct element children under all elements of `tag` — what a
    /// navigational child-axis step from every instance scans.
    pub fn children_total(&self, tag: Symbol) -> u64 {
        self.children_total.get(tag.index()).copied().unwrap_or(0)
    }

    /// Total subtree size under all elements of `tag`, counting elements
    /// once per enclosing instance — what a navigational descendant-axis
    /// rescan from every instance visits (recursion multiplies).
    pub fn subtree_weight(&self, tag: Symbol) -> u64 {
        self.subtree_weight.get(tag.index()).copied().unwrap_or(0)
    }

    /// Exact number of `desc`-tagged elements with an `anc`-tagged proper
    /// ancestor (the output size of the A-D structural join's descendant
    /// side, ignoring value predicates).
    pub fn descendant_pairs(&self, anc: Symbol, desc: Symbol) -> u64 {
        self.pair(anc, desc).descendant
    }

    /// Exact number of `child`-tagged elements whose parent is tagged
    /// `parent` (the P-C analogue of [`Self::descendant_pairs`]).
    pub fn child_pairs(&self, parent: Symbol, child: Symbol) -> u64 {
        self.pair(parent, child).child
    }

    /// Exact number of `(anc, desc)` containment pairs counting
    /// multiplicity: a descendant nested under `k` `anc`-tagged ancestors
    /// contributes `k`. This is the true output cardinality of the binary
    /// stack-tree join, which exceeds [`Self::descendant_pairs`] on
    /// recursive data.
    pub fn descendant_pair_multiplicity(&self, anc: Symbol, desc: Symbol) -> u64 {
        self.pair(anc, desc).multiplicity
    }

    fn pair(&self, anc: Symbol, desc: Symbol) -> PairCounts {
        self.pair_table
            .get(&(anc, desc))
            .copied()
            .unwrap_or_default()
    }

    /// Fraction of the `desc` stream that survives the `anc//desc` (or
    /// `anc/desc` when `direct` is set) edge — in `[0, 1]`, and `0.0`
    /// when `desc` never occurs.
    pub fn edge_selectivity(&self, anc: Symbol, desc: Symbol, direct: bool) -> f64 {
        let freq = self.tag_frequency(desc);
        if freq == 0 {
            return 0.0;
        }
        let pairs = if direct {
            self.child_pairs(anc, desc)
        } else {
            self.descendant_pairs(anc, desc)
        };
        pairs as f64 / freq as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_counts_depths_and_fanout() {
        let doc = Document::parse_str("<a x=\"1\"><b><c>t</c><c>u</c></b><d>v</d></a>").unwrap();
        let s = Stats::compute(&doc);
        assert_eq!(s.element_count, 5);
        assert_eq!(s.text_count, 3);
        assert_eq!(s.attribute_count, 1);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.depth_histogram[1], 1);
        assert_eq!(s.depth_histogram[2], 2);
        assert_eq!(s.depth_histogram[3], 2);
        // Internal nodes: a (2 children), b (2 children) → avg 2.
        assert!((s.avg_fanout - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_element_document() {
        let doc = Document::parse_str("<only/>").unwrap();
        let s = Stats::compute(&doc);
        assert_eq!(s.element_count, 1);
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.avg_fanout, 0.0);
    }

    #[test]
    fn join_stats_pair_estimates_are_exact() {
        let idx = crate::IndexedDocument::from_str(
            "<bib>\
               <book><title>a</title><author>x</author></book>\
               <book><title>b</title></book>\
               <article><title>c</title><info><title>d</title></info></article>\
             </bib>",
        )
        .unwrap();
        let sym = |name: &str| idx.document().symbols().get(name).unwrap();
        let js = idx.join_stats();
        assert_eq!(js.tag_frequency(sym("book")), 2);
        assert_eq!(js.tag_frequency(sym("title")), 4);
        assert_eq!(js.element_count(), idx.stats().element_count as u64);
        // Titles below book (2), article (2 — one nested under info), bib (4).
        assert_eq!(js.descendant_pairs(sym("book"), sym("title")), 2);
        assert_eq!(js.descendant_pairs(sym("article"), sym("title")), 2);
        assert_eq!(js.descendant_pairs(sym("bib"), sym("title")), 4);
        // Direct children only: the nested title is not article/title.
        assert_eq!(js.child_pairs(sym("article"), sym("title")), 1);
        assert_eq!(js.child_pairs(sym("book"), sym("title")), 2);
        // Selectivities follow the counts.
        assert!((js.edge_selectivity(sym("book"), sym("title"), false) - 0.5).abs() < 1e-9);
        // Symbols the document never saw have empty streams.
        let unseen = Symbol::from_index(999);
        assert_eq!(js.tag_frequency(unseen), 0);
        assert_eq!(js.edge_selectivity(sym("book"), unseen, false), 0.0);
    }

    #[test]
    fn join_stats_handle_recursive_tags() {
        let idx = crate::IndexedDocument::from_str("<s><s><t>1</t><s><t>2</t></s></s><t>3</t></s>")
            .unwrap();
        let sym = |name: &str| idx.document().symbols().get(name).unwrap();
        let js = idx.join_stats();
        // Every t has an s ancestor; two s's have an s ancestor.
        assert_eq!(js.descendant_pairs(sym("s"), sym("t")), 3);
        assert_eq!(js.descendant_pairs(sym("s"), sym("s")), 2);
        assert_eq!(js.child_pairs(sym("s"), sym("t")), 3);
    }

    #[test]
    fn navigation_cost_aggregates_count_multiplicity() {
        let idx = crate::IndexedDocument::from_str(
            "<bib>\
               <book><title>a</title><author>x</author></book>\
               <book><title>b</title></book>\
             </bib>",
        )
        .unwrap();
        let sym = |name: &str| idx.document().symbols().get(name).unwrap();
        let js = idx.join_stats();
        // bib has 2 direct children; the 2 books have 3 children total.
        assert_eq!(js.children_total(sym("bib")), 2);
        assert_eq!(js.children_total(sym("book")), 3);
        assert_eq!(js.children_total(sym("title")), 0);
        // Subtree under bib = all 5 non-root elements; under books = 3.
        assert_eq!(js.subtree_weight(sym("bib")), 5);
        assert_eq!(js.subtree_weight(sym("book")), 3);
        // Unseen tags navigate nothing.
        assert_eq!(js.children_total(Symbol::from_index(999)), 0);
        assert_eq!(js.subtree_weight(Symbol::from_index(999)), 0);

        // Recursive nesting counts once per enclosing instance: the
        // innermost t sits under three s ancestors.
        let idx = crate::IndexedDocument::from_str("<s><s><s><t>x</t></s></s></s>").unwrap();
        let sym = |name: &str| idx.document().symbols().get(name).unwrap();
        let js = idx.join_stats();
        // Subtrees: outer s → {s, s, t}=3, middle → {s, t}=2, inner → {t}=1.
        assert_eq!(js.subtree_weight(sym("s")), 6);
        assert_eq!(js.children_total(sym("s")), 3);
    }
}
