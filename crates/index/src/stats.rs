//! Corpus statistics used by ranking and the experiment harness.

use lotusx_xml::{Document, NodeId};

/// Aggregate statistics about one document.
#[derive(Clone, Debug, Default)]
pub struct Stats {
    /// Number of element nodes.
    pub element_count: usize,
    /// Number of text nodes.
    pub text_count: usize,
    /// Number of attributes across all elements.
    pub attribute_count: usize,
    /// Number of distinct tags.
    pub distinct_tags: usize,
    /// Maximum element depth (root element = 1).
    pub max_depth: u32,
    /// Histogram of element depths; index = depth.
    pub depth_histogram: Vec<usize>,
    /// Average number of element children per non-leaf element.
    pub avg_fanout: f64,
}

impl Stats {
    /// Computes statistics for `doc`.
    pub fn compute(doc: &Document) -> Self {
        let mut stats = Stats::default();
        let mut fanout_sum = 0usize;
        let mut internal = 0usize;
        for node in doc.all_nodes() {
            if node == NodeId::DOCUMENT {
                continue;
            }
            match doc.kind(node) {
                lotusx_xml::NodeKind::Element { attributes, .. } => {
                    stats.element_count += 1;
                    stats.attribute_count += attributes.len();
                    let depth = doc.depth(node);
                    stats.max_depth = stats.max_depth.max(depth);
                    if stats.depth_histogram.len() <= depth as usize {
                        stats.depth_histogram.resize(depth as usize + 1, 0);
                    }
                    stats.depth_histogram[depth as usize] += 1;
                    let kids = doc.element_children(node).count();
                    if kids > 0 {
                        fanout_sum += kids;
                        internal += 1;
                    }
                }
                lotusx_xml::NodeKind::Text(_) => stats.text_count += 1,
                _ => {}
            }
        }
        stats.distinct_tags = doc.symbols().len();
        stats.avg_fanout = if internal > 0 {
            fanout_sum as f64 / internal as f64
        } else {
            0.0
        };
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn computes_counts_depths_and_fanout() {
        let doc = Document::parse_str("<a x=\"1\"><b><c>t</c><c>u</c></b><d>v</d></a>").unwrap();
        let s = Stats::compute(&doc);
        assert_eq!(s.element_count, 5);
        assert_eq!(s.text_count, 3);
        assert_eq!(s.attribute_count, 1);
        assert_eq!(s.max_depth, 3);
        assert_eq!(s.depth_histogram[1], 1);
        assert_eq!(s.depth_histogram[2], 2);
        assert_eq!(s.depth_histogram[3], 2);
        // Internal nodes: a (2 children), b (2 children) → avg 2.
        assert!((s.avg_fanout - 2.0).abs() < 1e-9);
    }

    #[test]
    fn single_element_document() {
        let doc = Document::parse_str("<only/>").unwrap();
        let s = Stats::compute(&doc);
        assert_eq!(s.element_count, 1);
        assert_eq!(s.max_depth, 1);
        assert_eq!(s.avg_fanout, 0.0);
    }
}
