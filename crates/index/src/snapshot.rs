//! Full-index snapshot codecs: the section payloads of the `LTSX` v2
//! container.
//!
//! [`encode_sections`] serializes every structure of an
//! [`IndexedDocument`] — the document tree, all label families, the
//! columnar arenas, the value index, both completion tries, the
//! DataGuide and the statistics tables — into the sections that
//! `lotusx-storage` frames and checksums. [`decode_sections`] is the
//! inverse: bulk reads straight into the arena layouts, with **no
//! re-parsing, no re-labeling and no stats re-walks**. The only derived
//! work on load is an O(n) transpose of the columnar arenas back into
//! the per-tag [`TagIndex`] posting vectors (the columns are the exact
//! same entries in the same order, so serializing both would double the
//! file for no information).
//!
//! ## Node-id canonicalization
//!
//! Sections embed [`NodeId`]s (columns, value postings). The document
//! section decoder assigns ids in strict preorder, but the *source*
//! document's ids need not be preorder-dense (e.g. after text
//! coalescing). Encoding therefore remaps every stored node id through
//! the canonical preorder numbering of the document walk, so decoded
//! sections always agree with the decoded tree. For documents built by
//! the parser or the generators the map is the identity.
//!
//! ## Determinism
//!
//! Every hash-map-backed structure is emitted under a sorted key order
//! and the tries are serialized structurally, so encoding the same
//! index twice yields byte-identical sections — and a loaded snapshot
//! answers every query, completion and chooser probe bit-identically to
//! the fresh build it was saved from.

use crate::builder::{IndexParts, IndexedDocument};
use crate::columns::TagColumns;
use crate::dataguide::{DataGuide, GuideNodeId};
use crate::stats::{JoinStats, Stats};
use crate::tag_index::{ElementEntry, TagIndex};
use crate::trie::Trie;
use crate::value_index::ValueIndex;
use crate::wire::{corrupt, get_string, put_string, put_varint, rd_len, StorageError};
use crate::wire::{get_u16_slice, get_u32_slice, put_u16_slice, put_u32_slice};
use lotusx_labeling::{DocumentLabels, RegionLabel, TagFst};
use lotusx_storage::snapshot::{section, Section};
use lotusx_xml::{Document, NodeId, NodeKind, Symbol};

/// Serializes the entire index set into v2 snapshot sections.
pub fn encode_sections(idx: &IndexedDocument) -> Vec<Section> {
    let doc = idx.document();
    let order = preorder(doc);
    let mut node_map = vec![u32::MAX; doc.node_count()];
    for (new_id, old) in order.iter().enumerate() {
        node_map[old.index()] = new_id as u32;
    }

    let mut document = Vec::new();
    encode_document(doc, &order, &node_map, &mut document);
    let mut labels = Vec::new();
    encode_labels(idx, &order, &mut labels);
    let mut columns = Vec::new();
    idx.columns().encode(&node_map, &mut columns);
    let mut values = Vec::new();
    idx.values().encode(&node_map, &mut values);
    let mut tries = Vec::new();
    encode_tries(idx, &mut tries);
    let mut guide = Vec::new();
    encode_guide(idx, &order, &mut guide);
    let mut stats = Vec::new();
    idx.stats().encode(&mut stats);
    idx.join_stats().encode(&mut stats);

    vec![
        Section {
            id: section::DOCUMENT,
            bytes: document,
        },
        Section {
            id: section::LABELS,
            bytes: labels,
        },
        Section {
            id: section::COLUMNS,
            bytes: columns,
        },
        Section {
            id: section::VALUES,
            bytes: values,
        },
        Section {
            id: section::TRIES,
            bytes: tries,
        },
        Section {
            id: section::GUIDE,
            bytes: guide,
        },
        Section {
            id: section::STATS,
            bytes: stats,
        },
    ]
}

/// Reassembles an [`IndexedDocument`] from v2 snapshot sections. Every
/// section must be present exactly once; every embedded id is
/// bounds-checked so a crafted payload yields a typed error, never a
/// panic.
pub fn decode_sections(sections: &[Section]) -> Result<IndexedDocument, StorageError> {
    let find = |id: u64| -> Result<&[u8], StorageError> {
        let mut matches = sections.iter().filter(|s| s.id == id);
        let first = matches.next().ok_or(corrupt("missing snapshot section"))?;
        if matches.next().is_some() {
            return Err(corrupt("duplicate snapshot section"));
        }
        Ok(&first.bytes)
    };

    let doc = decode_document(find(section::DOCUMENT)?)?;
    let n = doc.node_count();
    let tag_count = doc.symbols().len();

    let labels = decode_labels(find(section::LABELS)?, n, tag_count)?;

    let bytes = find(section::COLUMNS)?;
    let mut pos = 0;
    let columns = TagColumns::decode(bytes, &mut pos, n)?;
    ensure_consumed(bytes, pos, "columns")?;
    let (tags, all_elements) = rebuild_tag_index(&columns, tag_count)?;

    let bytes = find(section::VALUES)?;
    let mut pos = 0;
    let values = ValueIndex::decode(bytes, &mut pos, n)?;
    ensure_consumed(bytes, pos, "values")?;

    let (terms, tag_trie, term_trie) = decode_tries(find(section::TRIES)?, tag_count)?;

    let (guide, guide_of) = decode_guide(find(section::GUIDE)?, n, tag_count)?;

    let bytes = find(section::STATS)?;
    let mut pos = 0;
    let stats = Stats::decode(bytes, &mut pos)?;
    let join_stats = JoinStats::decode(bytes, &mut pos, tag_count)?;
    ensure_consumed(bytes, pos, "stats")?;

    Ok(IndexedDocument::from_parts(IndexParts {
        doc,
        labels,
        tags,
        columns,
        values,
        tag_trie,
        term_trie,
        terms,
        guide,
        guide_of,
        stats,
        join_stats,
        all_elements,
    }))
}

/// The canonical preorder node walk: the document root first, then every
/// node in the order the document-section decoder re-creates them.
fn preorder(doc: &Document) -> Vec<NodeId> {
    let mut order = Vec::with_capacity(doc.node_count());
    order.push(NodeId::DOCUMENT);
    let mut stack: Vec<NodeId> = doc.children(NodeId::DOCUMENT).collect();
    stack.reverse();
    while let Some(node) = stack.pop() {
        order.push(node);
        let children: Vec<NodeId> = doc.children(node).collect();
        for child in children.into_iter().rev() {
            stack.push(child);
        }
    }
    order
}

fn ensure_consumed(bytes: &[u8], pos: usize, _what: &'static str) -> Result<(), StorageError> {
    if pos != bytes.len() {
        return Err(corrupt("trailing bytes in snapshot section"));
    }
    Ok(())
}

/// `DOCUMENT` (v2 bulk form): the symbol table in exact insertion order,
/// then a kind column, a parent column, and the per-node payload stream —
/// all in canonical preorder. Unlike the v1 tree-walk payload this never
/// re-interns tag strings per node (symbols load with their original
/// dense indexes, which every other section's symbol references rely on)
/// and rebuilds sibling links in one forward pass.
fn encode_document(doc: &Document, order: &[NodeId], node_map: &[u32], out: &mut Vec<u8>) {
    let symbols = doc.symbols();
    put_varint(out, symbols.len() as u64);
    for (_, name) in symbols.iter() {
        put_string(out, name);
    }
    put_varint(out, order.len() as u64);
    for &old in order {
        out.push(match doc.kind(old) {
            NodeKind::Document => 0,
            NodeKind::Element { .. } => 1,
            NodeKind::Text(_) => 2,
            NodeKind::Comment(_) => 3,
            NodeKind::Pi { .. } => 4,
        });
    }
    // The parent column as raw u32s (0 = no parent, the root alone; else
    // new preorder id + 1) — a bulk read on load.
    let parents: Vec<u32> = order
        .iter()
        .map(|&old| {
            doc.parent(old)
                .map(|p| node_map[p.index()] + 1)
                .unwrap_or(0)
        })
        .collect();
    put_u32_slice(out, &parents);
    for &old in order {
        match doc.kind(old) {
            NodeKind::Document => {}
            NodeKind::Element { name, attributes } => {
                put_varint(out, name.index() as u64);
                put_varint(out, attributes.len() as u64);
                for (sym, value) in attributes {
                    put_varint(out, sym.index() as u64);
                    put_string(out, value);
                }
            }
            NodeKind::Text(t) | NodeKind::Comment(t) => put_string(out, t),
            NodeKind::Pi { target, data } => {
                put_string(out, target);
                put_string(out, data);
            }
        }
    }
}

fn decode_document(bytes: &[u8]) -> Result<Document, StorageError> {
    let pos = &mut 0;
    let sym_count = rd_len(bytes, pos, "symbol count")?;
    if sym_count > bytes.len() {
        return Err(corrupt("symbol count"));
    }
    let mut doc = Document::new();
    for _ in 0..sym_count {
        let name = get_string(bytes, pos).ok_or(corrupt("symbol name"))?;
        doc.symbols_mut().intern(&name);
    }
    if doc.symbols().len() != sym_count {
        return Err(corrupt("duplicate symbol in table"));
    }
    let n = rd_len(bytes, pos, "node count")?;
    if n == 0 || n > bytes.len() {
        return Err(corrupt("node count"));
    }
    let end = pos
        .checked_add(n)
        .filter(|&e| e <= bytes.len())
        .ok_or(corrupt("kind column"))?;
    let kinds = &bytes[*pos..end];
    *pos = end;
    if kinds[0] != 0 {
        return Err(corrupt("first node must be the document root"));
    }
    let raw_parents = get_u32_slice(bytes, pos, n, "parent column")?;
    let mut parents = Vec::with_capacity(n);
    for (i, &p) in raw_parents.iter().enumerate() {
        if i == 0 {
            if p != 0 {
                return Err(corrupt("document root with a parent"));
            }
            parents.push(0);
        } else {
            // Preorder guarantees every parent precedes its children, so
            // a single forward pass rebuilds the sibling links acyclically.
            if p == 0 || p as usize > i {
                return Err(corrupt("parent id out of preorder range"));
            }
            parents.push(p as usize - 1);
        }
    }
    let rd_sym = |bytes: &[u8], pos: &mut usize, what| -> Result<Symbol, StorageError> {
        let v = rd_len(bytes, pos, what)?;
        if v >= sym_count {
            return Err(corrupt(what));
        }
        Ok(Symbol::from_index(v))
    };
    for (i, &kind) in kinds.iter().enumerate().skip(1) {
        let id = match kind {
            1 => {
                let name = rd_sym(bytes, pos, "element tag symbol")?;
                let attr_count = rd_len(bytes, pos, "attribute count")?;
                if attr_count > bytes.len() {
                    return Err(corrupt("attribute count"));
                }
                let mut attributes = Vec::with_capacity(attr_count);
                for _ in 0..attr_count {
                    let sym = rd_sym(bytes, pos, "attribute name symbol")?;
                    let value = get_string(bytes, pos).ok_or(corrupt("attribute value"))?;
                    attributes.push((sym, value));
                }
                doc.new_element_with(name, attributes)
            }
            2 => {
                let t = get_string(bytes, pos).ok_or(corrupt("text payload"))?;
                doc.new_text(t)
            }
            3 => {
                let t = get_string(bytes, pos).ok_or(corrupt("comment payload"))?;
                doc.new_comment(t)
            }
            4 => {
                let target = get_string(bytes, pos).ok_or(corrupt("pi target"))?;
                let data = get_string(bytes, pos).ok_or(corrupt("pi data"))?;
                doc.new_pi(target, data)
            }
            _ => return Err(corrupt("unknown node kind")),
        };
        debug_assert_eq!(id.index(), i);
        doc.append_child(NodeId::from_index(parents[i]), id);
    }
    ensure_consumed(bytes, *pos, "document")?;
    Ok(doc)
}

/// `LABELS`: three raw region columns, then per-node Dewey and extended
/// Dewey component lists, then the tag transducer sorted by state.
fn encode_labels(idx: &IndexedDocument, order: &[NodeId], out: &mut Vec<u8>) {
    let labels = idx.labels();
    let n = order.len();
    put_varint(out, n as u64);
    let mut starts = Vec::with_capacity(n);
    let mut ends = Vec::with_capacity(n);
    let mut levels = Vec::with_capacity(n);
    for &old in order {
        let r = labels.region(old);
        starts.push(r.start);
        ends.push(r.end);
        levels.push(r.level);
    }
    put_u32_slice(out, &starts);
    put_u32_slice(out, &ends);
    put_u16_slice(out, &levels);
    // Dewey families as columns: per-node component counts (u16 — depth
    // is bounded by the u16 region level), then one flat component
    // arena. Decoding is two bulk reads plus a prefix sum, matching the
    // arena layout `DocumentLabels` uses in memory.
    fn put_family<'a>(
        out: &mut Vec<u8>,
        order: &[NodeId],
        components_of: impl Fn(NodeId) -> &'a [u32],
    ) {
        let lens: Vec<u16> = order
            .iter()
            .map(|&old| u16::try_from(components_of(old).len()).expect("depth fits in u16"))
            .collect();
        put_u16_slice(out, &lens);
        let mut flat = Vec::with_capacity(lens.iter().map(|&l| l as usize).sum());
        for &old in order {
            flat.extend_from_slice(components_of(old));
        }
        put_u32_slice(out, &flat);
    }
    put_family(out, order, |old| labels.dewey(old).components());
    put_family(out, order, |old| labels.extended(old).components());
    // Transducer states sorted by encoded key (None first) so hash-map
    // order never leaks into the bytes.
    let mut states: Vec<(Option<Symbol>, &[Symbol])> = labels.fst().states().collect();
    states.sort_by_key(|(s, _)| s.map(|t| t.index() as u64 + 1).unwrap_or(0));
    put_varint(out, states.len() as u64);
    for (state, alphabet) in states {
        put_varint(out, state.map(|t| t.index() as u64 + 1).unwrap_or(0));
        put_varint(out, alphabet.len() as u64);
        for &t in alphabet {
            put_varint(out, t.index() as u64);
        }
    }
}

fn decode_labels(
    bytes: &[u8],
    node_count: usize,
    tag_count: usize,
) -> Result<DocumentLabels, StorageError> {
    let pos = &mut 0;
    let n = rd_len(bytes, pos, "labels length")?;
    if n != node_count {
        return Err(corrupt("labels length mismatch with document"));
    }
    let starts = get_u32_slice(bytes, pos, n, "region starts")?;
    let ends = get_u32_slice(bytes, pos, n, "region ends")?;
    let levels = get_u16_slice(bytes, pos, n, "region levels")?;
    let mut region = Vec::with_capacity(n);
    for i in 0..n {
        if starts[i] >= ends[i] {
            return Err(corrupt("region label with start >= end"));
        }
        region.push(RegionLabel::new(starts[i], ends[i], levels[i]));
    }
    let mut rd_family = |what: &'static str| -> Result<(Vec<u32>, Vec<u32>), StorageError> {
        let lens = get_u16_slice(bytes, pos, n, what)?;
        let mut off = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        off.push(0);
        for &len in &lens {
            total = total.checked_add(u32::from(len)).ok_or(corrupt(what))?;
            off.push(total);
        }
        let flat = get_u32_slice(bytes, pos, total as usize, what)?;
        Ok((flat, off))
    };
    let dewey = rd_family("dewey labels")?;
    let extended = rd_family("extended dewey labels")?;
    let state_count = rd_len(bytes, pos, "fst state count")?;
    if state_count > bytes.len() {
        return Err(corrupt("fst state count"));
    }
    let rd_sym = |v: usize| -> Result<Symbol, StorageError> {
        if v >= tag_count {
            return Err(corrupt("fst symbol out of range"));
        }
        Ok(Symbol::from_index(v))
    };
    let mut states = Vec::with_capacity(state_count);
    for _ in 0..state_count {
        let state = match rd_len(bytes, pos, "fst state")? {
            0 => None,
            v => Some(rd_sym(v - 1)?),
        };
        let alpha_len = rd_len(bytes, pos, "fst alphabet length")?;
        if alpha_len > bytes.len() {
            return Err(corrupt("fst alphabet length"));
        }
        let mut alphabet = Vec::with_capacity(alpha_len);
        for _ in 0..alpha_len {
            alphabet.push(rd_sym(rd_len(bytes, pos, "fst alphabet symbol")?)?);
        }
        states.push((state, alphabet));
    }
    ensure_consumed(bytes, *pos, "labels")?;
    Ok(DocumentLabels::from_parts(
        region,
        dewey,
        extended,
        TagFst::from_states(states),
    ))
}

/// `TRIES`: the sorted term table, then both tries structurally.
fn encode_tries(idx: &IndexedDocument, out: &mut Vec<u8>) {
    let term_count = idx.term_trie().len() as u64;
    // The term table is exactly the sorted distinct-term list; its length
    // equals the term-trie key count by construction.
    put_varint(out, term_count);
    for i in 0..term_count {
        put_string(out, idx.term(i as u32));
    }
    idx.tag_trie().encode(out);
    idx.term_trie().encode(out);
}

fn decode_tries(bytes: &[u8], tag_count: usize) -> Result<(Vec<String>, Trie, Trie), StorageError> {
    let pos = &mut 0;
    let term_count = rd_len(bytes, pos, "term table length")?;
    if term_count > bytes.len() {
        return Err(corrupt("term table length"));
    }
    let mut terms = Vec::with_capacity(term_count);
    for _ in 0..term_count {
        terms.push(get_string(bytes, pos).ok_or(corrupt("term table entry"))?);
    }
    let tag_trie = Trie::decode(bytes, pos, tag_count as u32)?;
    let term_trie = Trie::decode(bytes, pos, terms.len() as u32)?;
    ensure_consumed(bytes, *pos, "tries")?;
    Ok((terms, tag_trie, term_trie))
}

/// `GUIDE`: the guide nodes, then the node → guide-node map in canonical
/// node order.
fn encode_guide(idx: &IndexedDocument, order: &[NodeId], out: &mut Vec<u8>) {
    idx.guide().encode(out);
    // The node → guide-node map as one raw u32 column (bulk read on load).
    let guide_of: Vec<u32> = order
        .iter()
        .map(|&old| idx.guide_node(old).index() as u32)
        .collect();
    put_u32_slice(out, &guide_of);
}

fn decode_guide(
    bytes: &[u8],
    node_count: usize,
    tag_count: usize,
) -> Result<(DataGuide, Vec<GuideNodeId>), StorageError> {
    let pos = &mut 0;
    let guide = DataGuide::decode(bytes, pos, tag_count)?;
    let raw = get_u32_slice(bytes, pos, node_count, "guide-of entries")?;
    let mut guide_of = Vec::with_capacity(node_count);
    for g in raw {
        if g as usize >= guide.node_count() {
            return Err(corrupt("guide-of entry out of range"));
        }
        guide_of.push(GuideNodeId::from_index(g as usize));
    }
    ensure_consumed(bytes, *pos, "guide")?;
    Ok((guide, guide_of))
}

/// Rebuilds the per-tag posting vectors and the all-elements stream from
/// the decoded columns — an O(n) transpose, the only derived work on the
/// snapshot load path.
fn rebuild_tag_index(
    columns: &TagColumns,
    tag_count: usize,
) -> Result<(TagIndex, Vec<ElementEntry>), StorageError> {
    let mut tags = TagIndex::with_tag_count(tag_count);
    for t in 0..tag_count {
        let sym = Symbol::from_index(t);
        let view = columns.view(sym);
        for i in 0..view.len() {
            tags.push(sym, view.entry(i));
        }
    }
    let all = columns.all_elements();
    let all_elements: Vec<ElementEntry> = (0..all.len()).map(|i| all.entry(i)).collect();
    Ok((tags, all_elements))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book year=\"1999\"><title>Data on the Web</title><author>Abiteboul</author></book>\
               <book year=\"2003\"><title>XML Handbook</title><author>Goldfarb</author></book>\
               <article><title>TwigStack</title><info><title>deep</title></info></article>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn sections_roundtrip_every_structure() {
        let idx = sample();
        let sections = encode_sections(&idx);
        let back = decode_sections(&sections).unwrap();

        assert_eq!(back.document().to_xml(), idx.document().to_xml());
        let doc = idx.document();
        for node in doc.all_nodes() {
            assert_eq!(back.labels().region(node), idx.labels().region(node));
            assert_eq!(back.labels().dewey(node), idx.labels().dewey(node));
            assert_eq!(back.labels().extended(node), idx.labels().extended(node));
            if doc.is_element(node) {
                assert_eq!(back.guide_node(node), idx.guide_node(node));
            }
        }
        for (sym, _) in doc.symbols().iter() {
            assert_eq!(back.tags().stream(sym), idx.tags().stream(sym));
            let (a, b) = (back.columns().view(sym), idx.columns().view(sym));
            assert_eq!(a.len(), b.len());
            for i in 0..a.len() {
                assert_eq!(a.entry(i), b.entry(i));
            }
        }
        assert_eq!(back.all_elements(), idx.all_elements());
        for (term, df) in idx.values().terms() {
            assert_eq!(back.values().df(term), df);
            assert_eq!(back.values().postings(term), idx.values().postings(term));
        }
        assert_eq!(
            back.values().exact_matches("twigstack"),
            idx.values().exact_matches("twigstack")
        );
        assert_eq!(
            back.values().range_matches(1990.0, 2005.0),
            idx.values().range_matches(1990.0, 2005.0)
        );
        assert_eq!(
            back.values().content_element_count(),
            idx.values().content_element_count()
        );
        assert_eq!(
            back.tag_trie().complete("", 100),
            idx.tag_trie().complete("", 100)
        );
        assert_eq!(
            back.term_trie().complete("", 1000),
            idx.term_trie().complete("", 1000)
        );
        for c in back.term_trie().complete("", 1000) {
            assert_eq!(back.term(c.payload), idx.term(c.payload));
        }
        assert_eq!(back.guide().node_count(), idx.guide().node_count());
        for i in 0..idx.guide().node_count() {
            let id = GuideNodeId::from_index(i);
            assert_eq!(back.guide().tag(id), idx.guide().tag(id));
            assert_eq!(back.guide().parent(id), idx.guide().parent(id));
            assert_eq!(back.guide().count(id), idx.guide().count(id));
            assert_eq!(back.guide().depth(id), idx.guide().depth(id));
            assert_eq!(back.guide().children(id), idx.guide().children(id));
        }
        assert_eq!(back.stats().element_count, idx.stats().element_count);
        assert_eq!(back.stats().depth_histogram, idx.stats().depth_histogram);
        assert_eq!(
            back.stats().avg_fanout.to_bits(),
            idx.stats().avg_fanout.to_bits()
        );
        for (a, _) in doc.symbols().iter() {
            assert_eq!(
                back.join_stats().tag_frequency(a),
                idx.join_stats().tag_frequency(a)
            );
            for (b, _) in doc.symbols().iter() {
                assert_eq!(
                    back.join_stats().descendant_pairs(a, b),
                    idx.join_stats().descendant_pairs(a, b)
                );
                assert_eq!(
                    back.join_stats().child_pairs(a, b),
                    idx.join_stats().child_pairs(a, b)
                );
                assert_eq!(
                    back.join_stats().descendant_pair_multiplicity(a, b),
                    idx.join_stats().descendant_pair_multiplicity(a, b)
                );
            }
        }
    }

    #[test]
    fn encoding_is_deterministic() {
        let idx = sample();
        assert_eq!(encode_sections(&idx), encode_sections(&idx));
        // And stable across decode: re-encoding the decoded index is a
        // fixpoint (hash maps rebuilt in a different order must not leak).
        let back = decode_sections(&encode_sections(&idx)).unwrap();
        assert_eq!(encode_sections(&back), encode_sections(&idx));
    }

    #[test]
    fn missing_and_duplicate_sections_are_typed_errors() {
        let idx = sample();
        let mut sections = encode_sections(&idx);
        let stats = sections.pop().unwrap();
        assert!(matches!(
            decode_sections(&sections),
            Err(StorageError::Corrupt(_))
        ));
        sections.push(stats.clone());
        sections.push(stats);
        assert!(matches!(
            decode_sections(&sections),
            Err(StorageError::Corrupt(_))
        ));
    }

    /// Flip one byte of every section in turn: decoding must fail with a
    /// typed error (or succeed only if the flip hit redundant slack, which
    /// these payloads do not have) — and must never panic.
    #[test]
    fn payload_tampering_never_panics() {
        let idx = sample();
        let sections = encode_sections(&idx);
        for (si, s) in sections.iter().enumerate() {
            let step = (s.bytes.len() / 23).max(1);
            for offset in (0..s.bytes.len()).step_by(step) {
                let mut tampered: Vec<Section> = sections.clone();
                tampered[si].bytes[offset] ^= 0x01;
                // Any outcome but a panic is acceptable; most flips must
                // surface as typed errors, a few land in value bytes
                // (counts, weights) that decode to different-but-valid data.
                let _ = decode_sections(&tampered);
            }
        }
    }

    #[test]
    fn truncated_sections_are_typed_errors() {
        let idx = sample();
        let sections = encode_sections(&idx);
        for si in 0..sections.len() {
            let mut truncated: Vec<Section> = sections.clone();
            let len = truncated[si].bytes.len();
            truncated[si].bytes.truncate(len / 2);
            assert!(
                matches!(
                    decode_sections(&truncated),
                    Err(StorageError::Corrupt(_)) | Err(StorageError::Io(_))
                ),
                "truncating section {} must fail decoding",
                sections[si].id
            );
        }
    }
}
