//! Struct-of-arrays region-label columns for the join engine.
//!
//! The [`TagIndex`] streams store `ElementEntry` records (node id + region
//! label) as an array of structs. The hot join loops, however, touch one
//! field at a time — a skip loop compares only `start`s, a containment
//! check only `end`s — so an AoS walk drags the unused fields through the
//! cache with every probe. [`TagColumns`] transposes every tag stream once
//! at build time into four contiguous per-tag arrays (`starts`, `ends`,
//! `levels`, `nodes`), packed back-to-back in one arena per column so a
//! stream scan is a pure sequential read at memory bandwidth.
//!
//! Two skip primitives ride on top:
//!
//! * `starts` is strictly increasing within a stream (document order), so
//!   "first element starting at or after X" is a gallop — exponential
//!   probe then binary search, O(log distance).
//! * `ends` is **not** monotonic (recursive elements nest: a child's end
//!   precedes its parent's even though its start follows), so "first
//!   element at or after the cursor whose subtree reaches past X" cannot
//!   be binary-searched directly. Each stream therefore carries a flat
//!   max-segment-tree over its `ends`: a leftmost-leaf-at-least descent
//!   answers the query in O(log n) from *any* cursor position. A plain
//!   prefix-maximum would not do — the maximum may come from an element
//!   the cursor has already consumed, and the query must ignore it.
//!
//! These two seeks are what turn the holistic joins' element-by-element
//! skip loops into logarithmic jumps.

use crate::tag_index::{ElementEntry, TagIndex};
use crate::wire::{
    corrupt, get_u16_slice, get_u32_slice, put_u16_slice, put_u32_slice, put_varint, rd_len,
    StorageError,
};
use lotusx_labeling::RegionLabel;
use lotusx_xml::{NodeId, Symbol};

/// Per-stream extent of one tag inside the column arenas.
#[derive(Clone, Copy, Debug, Default)]
struct StreamRange {
    /// Offset into the `starts`/`ends`/`levels`/`nodes` arenas.
    offset: u32,
    /// Number of elements.
    len: u32,
    /// Offset into the `end_tree` arena.
    tree_offset: u32,
    /// Padded leaf count of this stream's segment tree (power of two).
    tree_leaves: u32,
}

/// Columnar (struct-of-arrays) mirror of every tag stream, plus one extra
/// pseudo-stream covering all elements in document order (what wildcard
/// query nodes scan). Built once alongside the [`TagIndex`]; immutable.
#[derive(Clone, Debug, Default)]
pub struct TagColumns {
    starts: Vec<u32>,
    ends: Vec<u32>,
    levels: Vec<u16>,
    nodes: Vec<NodeId>,
    /// Concatenated per-stream max-segment-trees over `ends`.
    end_tree: Vec<u32>,
    /// Per-tag extents; index = symbol index.
    ranges: Vec<StreamRange>,
    /// Extent of the all-elements pseudo-stream.
    all_range: StreamRange,
}

impl TagColumns {
    /// Transposes `tags` (and the document-ordered `all_elements` stream)
    /// into columnar arenas.
    pub fn build(tags: &TagIndex, all_elements: &[ElementEntry], tag_count: usize) -> Self {
        let total: usize = tags.total_entries() + all_elements.len();
        let mut cols = TagColumns {
            starts: Vec::with_capacity(total),
            ends: Vec::with_capacity(total),
            levels: Vec::with_capacity(total),
            nodes: Vec::with_capacity(total),
            end_tree: Vec::new(),
            ranges: Vec::with_capacity(tag_count),
            all_range: StreamRange::default(),
        };
        for t in 0..tag_count {
            let stream = tags.stream(Symbol::from_index(t));
            let range = cols.append_stream(stream);
            cols.ranges.push(range);
        }
        cols.all_range = cols.append_stream(all_elements);
        cols
    }

    fn append_stream(&mut self, stream: &[ElementEntry]) -> StreamRange {
        let offset = self.starts.len() as u32;
        for e in stream {
            self.starts.push(e.region.start);
            self.ends.push(e.region.end);
            self.levels.push(e.region.level);
            self.nodes.push(e.node);
        }
        let tree_offset = self.end_tree.len() as u32;
        let ends = &self.ends[offset as usize..];
        let tree_leaves = build_max_tree(ends, &mut self.end_tree);
        StreamRange {
            offset,
            len: stream.len() as u32,
            tree_offset,
            tree_leaves,
        }
    }

    /// The columns of one tag's stream (empty view for unseen symbols).
    pub fn view(&self, tag: Symbol) -> ColumnView<'_> {
        match self.ranges.get(tag.index()) {
            Some(&range) => self.slice(range),
            None => ColumnView::empty(),
        }
    }

    /// The columns of the all-elements pseudo-stream.
    pub fn all_elements(&self) -> ColumnView<'_> {
        self.slice(self.all_range)
    }

    fn slice(&self, r: StreamRange) -> ColumnView<'_> {
        let (a, b) = (r.offset as usize, (r.offset + r.len) as usize);
        let (ta, tb) = (
            r.tree_offset as usize,
            r.tree_offset as usize + 2 * r.tree_leaves as usize,
        );
        ColumnView {
            starts: &self.starts[a..b],
            ends: &self.ends[a..b],
            levels: &self.levels[a..b],
            nodes: &self.nodes[a..b],
            end_tree: &self.end_tree[ta..tb],
        }
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.starts.capacity() * 4
            + self.ends.capacity() * 4
            + self.levels.capacity() * 2
            + self.nodes.capacity() * std::mem::size_of::<NodeId>()
            + self.end_tree.capacity() * 4
            + self.ranges.capacity() * std::mem::size_of::<StreamRange>()
    }

    /// Serializes the arenas for the snapshot `COLUMNS` section. Node ids
    /// are written through `node_map` (old id → canonical preorder id) so
    /// the decoded columns reference the decoded document's ids.
    pub(crate) fn encode(&self, node_map: &[u32], out: &mut Vec<u8>) {
        put_varint(out, self.starts.len() as u64);
        put_u32_slice(out, &self.starts);
        put_u32_slice(out, &self.ends);
        put_u16_slice(out, &self.levels);
        out.reserve(self.nodes.len() * 4);
        for &n in &self.nodes {
            out.extend_from_slice(&node_map[n.index()].to_le_bytes());
        }
        put_varint(out, self.end_tree.len() as u64);
        put_u32_slice(out, &self.end_tree);
        put_varint(out, self.ranges.len() as u64);
        for r in self.ranges.iter().chain(std::iter::once(&self.all_range)) {
            put_varint(out, r.offset as u64);
            put_varint(out, r.len as u64);
            put_varint(out, r.tree_offset as u64);
            put_varint(out, r.tree_leaves as u64);
        }
    }

    /// Deserializes arenas written by [`encode`](Self::encode) — a bulk
    /// read straight into the struct-of-arrays layout. Validates every
    /// invariant the join loops rely on: node ids within the document,
    /// range extents within the arenas, per-element `start < end`, and
    /// strictly increasing `starts` within each stream (document order).
    pub(crate) fn decode(
        data: &[u8],
        pos: &mut usize,
        node_count: usize,
    ) -> Result<TagColumns, StorageError> {
        let n = rd_len(data, pos, "columns length")?;
        if n > u32::MAX as usize {
            return Err(corrupt("columns length exceeds u32"));
        }
        let starts = get_u32_slice(data, pos, n, "columns starts")?;
        let ends = get_u32_slice(data, pos, n, "columns ends")?;
        let levels = get_u16_slice(data, pos, n, "columns levels")?;
        let raw_nodes = get_u32_slice(data, pos, n, "columns nodes")?;
        let mut nodes = Vec::with_capacity(n);
        for v in raw_nodes {
            if v as usize >= node_count {
                return Err(corrupt("columns node id out of range"));
            }
            nodes.push(NodeId::from_index(v as usize));
        }
        let tree_len = rd_len(data, pos, "columns end-tree length")?;
        if tree_len > u32::MAX as usize {
            return Err(corrupt("end-tree length exceeds u32"));
        }
        let end_tree = get_u32_slice(data, pos, tree_len, "columns end tree")?;
        let range_count = rd_len(data, pos, "columns range count")?;
        let mut ranges = Vec::new();
        for _ in 0..range_count + 1 {
            let offset = rd_len(data, pos, "range offset")? as u64;
            let len = rd_len(data, pos, "range length")? as u64;
            let tree_offset = rd_len(data, pos, "range tree offset")? as u64;
            let tree_leaves = rd_len(data, pos, "range tree leaves")? as u64;
            let end = offset.checked_add(len).ok_or(corrupt("range overflow"))?;
            if end > n as u64 {
                return Err(corrupt("range exceeds column arenas"));
            }
            let tree_end = tree_offset
                .checked_add(2 * tree_leaves)
                .ok_or(corrupt("range tree overflow"))?;
            if tree_end > tree_len as u64 {
                return Err(corrupt("range exceeds end-tree arena"));
            }
            let (a, b) = (offset as usize, end as usize);
            for i in a..b {
                if starts[i] >= ends[i] {
                    return Err(corrupt("column element with start >= end"));
                }
                if i > a && starts[i - 1] >= starts[i] {
                    return Err(corrupt("column stream not in document order"));
                }
            }
            ranges.push(StreamRange {
                offset: offset as u32,
                len: len as u32,
                tree_offset: tree_offset as u32,
                tree_leaves: tree_leaves as u32,
            });
        }
        let all_range = ranges.pop().expect("range_count + 1 ranges were read");
        Ok(TagColumns {
            starts,
            ends,
            levels,
            nodes,
            end_tree,
            ranges,
            all_range,
        })
    }
}

/// Appends the max-segment-tree of `ends` onto `arena` and returns the
/// padded leaf count. Layout: 1-indexed implicit binary tree of size
/// `2 * leaves` (slot 0 unused), leaves at `leaves..2 * leaves`, padding
/// leaves hold 0 (the neutral element for max).
fn build_max_tree(ends: &[u32], arena: &mut Vec<u32>) -> u32 {
    if ends.is_empty() {
        return 0;
    }
    let leaves = ends.len().next_power_of_two();
    let base = arena.len();
    arena.resize(base + 2 * leaves, 0);
    arena[base + leaves..base + leaves + ends.len()].copy_from_slice(ends);
    for i in (1..leaves).rev() {
        arena[base + i] = arena[base + 2 * i].max(arena[base + 2 * i + 1]);
    }
    leaves as u32
}

/// Leftmost leaf `>= from` with `value >= target` in a tree built by
/// [`build_max_tree`]; `usize::MAX` when none exists. O(log leaves).
fn tree_first_at_least(tree: &[u32], from: usize, target: u32) -> usize {
    let leaves = tree.len() / 2;
    if from >= leaves {
        return usize::MAX;
    }
    // Walk right from the `from` leaf over maximal aligned subtrees until
    // one's max reaches the target, then descend to its leftmost
    // qualifying leaf. Padding leaves hold 0 < target (target >= 1 here),
    // so the descent never lands in padding.
    let mut i = from + leaves;
    loop {
        if tree[i] >= target {
            while i < leaves {
                i <<= 1;
                if tree[i] < target {
                    i += 1;
                }
            }
            return i - leaves;
        }
        i += 1;
        if i.is_power_of_two() {
            // Walked off the right edge of the tree.
            return usize::MAX;
        }
        while i & 1 == 0 {
            i >>= 1;
        }
    }
}

/// Owned columnar form of an ad-hoc stream (a predicate-filtered stream the
/// index does not hold). Same layout as one [`TagColumns`] range.
#[derive(Clone, Debug, Default)]
pub struct OwnedColumns {
    starts: Vec<u32>,
    ends: Vec<u32>,
    levels: Vec<u16>,
    nodes: Vec<NodeId>,
    end_tree: Vec<u32>,
}

impl OwnedColumns {
    /// Transposes a document-ordered entry slice, including the end
    /// max-segment-tree (needed by `seek_end_at_least`).
    pub fn from_entries(entries: &[ElementEntry]) -> Self {
        Self::transpose(entries, true)
    }

    /// Transposes a document-ordered entry slice without building the end
    /// max-segment-tree. For per-query owned streams whose consumer never
    /// end-seeks (the holistic joins only gallop on `starts`), skipping
    /// the tree halves the transpose cost; `seek_end_at_least` on such
    /// columns falls back to a correct linear scan.
    pub fn from_entries_without_end_tree(entries: &[ElementEntry]) -> Self {
        Self::transpose(entries, false)
    }

    fn transpose(entries: &[ElementEntry], with_end_tree: bool) -> Self {
        let mut cols = OwnedColumns {
            starts: Vec::with_capacity(entries.len()),
            ends: Vec::with_capacity(entries.len()),
            levels: Vec::with_capacity(entries.len()),
            nodes: Vec::with_capacity(entries.len()),
            end_tree: Vec::new(),
        };
        for e in entries {
            debug_assert!(
                cols.starts
                    .last()
                    .map(|&s| s < e.region.start)
                    .unwrap_or(true),
                "columns must be built in document order"
            );
            cols.starts.push(e.region.start);
            cols.ends.push(e.region.end);
            cols.levels.push(e.region.level);
            cols.nodes.push(e.node);
        }
        if with_end_tree {
            build_max_tree(&cols.ends, &mut cols.end_tree);
        }
        cols
    }

    /// A borrowed view of the columns.
    pub fn view(&self) -> ColumnView<'_> {
        ColumnView {
            starts: &self.starts,
            ends: &self.ends,
            levels: &self.levels,
            nodes: &self.nodes,
            end_tree: &self.end_tree,
        }
    }
}

/// Borrowed column slices of one stream — the unit the join algorithms
/// scan. Copy-cheap (five fat pointers).
#[derive(Clone, Copy, Debug)]
pub struct ColumnView<'a> {
    starts: &'a [u32],
    ends: &'a [u32],
    levels: &'a [u16],
    nodes: &'a [NodeId],
    end_tree: &'a [u32],
}

impl<'a> ColumnView<'a> {
    /// The empty stream.
    pub fn empty() -> Self {
        ColumnView {
            starts: &[],
            ends: &[],
            levels: &[],
            nodes: &[],
            end_tree: &[],
        }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.starts.len()
    }

    /// True when the stream has no elements.
    pub fn is_empty(&self) -> bool {
        self.starts.is_empty()
    }

    /// Region starts column.
    pub fn starts(&self) -> &'a [u32] {
        self.starts
    }

    /// Region ends column.
    pub fn ends(&self) -> &'a [u32] {
        self.ends
    }

    /// Region levels column.
    pub fn levels(&self) -> &'a [u16] {
        self.levels
    }

    /// Node ids column.
    pub fn nodes(&self) -> &'a [NodeId] {
        self.nodes
    }

    /// Reassembles the `i`-th element as an [`ElementEntry`].
    pub fn entry(&self, i: usize) -> ElementEntry {
        ElementEntry {
            node: self.nodes[i],
            region: RegionLabel::new(self.starts[i], self.ends[i], self.levels[i]),
        }
    }

    /// A cursor positioned at the first element.
    pub fn cursor(self) -> ColumnCursor<'a> {
        ColumnCursor { view: self, pos: 0 }
    }

    /// First position `>= from` with `starts[pos] >= start`, galloping.
    fn first_start_at_least(&self, from: usize, start: u32) -> usize {
        gallop(self.starts, from, start)
    }

    /// First position `>= from` with `ends[pos] >= end`, by segment-tree
    /// descent (see module docs for why `ends` cannot be galloped). Owned
    /// columns built without an end tree scan linearly — still correct,
    /// just not logarithmic.
    fn first_end_at_least(&self, from: usize, end: u32) -> usize {
        if end == 0 {
            return from.min(self.len());
        }
        if self.end_tree.is_empty() && !self.is_empty() {
            return (from..self.len())
                .find(|&i| self.ends[i] >= end)
                .unwrap_or(self.len());
        }
        match tree_first_at_least(self.end_tree, from, end) {
            usize::MAX => self.len(),
            pos => pos,
        }
    }
}

/// First index `>= from` with `column[index] >= target`, by exponential
/// probe then binary search within the bracketed window. `column` must be
/// non-decreasing from `from` onward. O(log distance) — a skip over a few
/// elements costs a couple of probes, a skip over a million costs ~40.
fn gallop(column: &[u32], from: usize, target: u32) -> usize {
    let n = column.len();
    if from >= n || column[from] >= target {
        return from.min(n);
    }
    let mut step = 1usize;
    let mut lo = from; // greatest index known to hold a value < target
    while let Some(&v) = column.get(from + step) {
        if v >= target {
            break;
        }
        lo = from + step;
        step *= 2;
    }
    let hi = (from + step + 1).min(n);
    lo + 1 + column[lo + 1..hi].partition_point(|&v| v < target)
}

/// Forward-only cursor over a [`ColumnView`], mirroring the `TagStream`
/// head/advance contract and adding the galloping seeks.
#[derive(Clone, Copy, Debug)]
pub struct ColumnCursor<'a> {
    view: ColumnView<'a>,
    pos: usize,
}

impl<'a> ColumnCursor<'a> {
    /// True when the stream is exhausted.
    pub fn is_exhausted(&self) -> bool {
        self.pos >= self.view.len()
    }

    /// Region start of the head, or `u32::MAX` once exhausted — the
    /// sentinel the holistic merge loops compare against.
    pub fn head_start(&self) -> u32 {
        self.view.starts.get(self.pos).copied().unwrap_or(u32::MAX)
    }

    /// Region end of the head, or `u32::MAX` once exhausted.
    pub fn head_end(&self) -> u32 {
        self.view.ends.get(self.pos).copied().unwrap_or(u32::MAX)
    }

    /// The head element, if any.
    pub fn head(&self) -> Option<ElementEntry> {
        if self.is_exhausted() {
            None
        } else {
            Some(self.view.entry(self.pos))
        }
    }

    /// Advances past the head.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// Seeks to the first element with `start >= start`; returns how many
    /// elements were skipped (so callers can charge their budget).
    pub fn seek_start_at_least(&mut self, start: u32) -> usize {
        let to = self
            .view
            .first_start_at_least(self.pos.min(self.view.len()), start);
        let skipped = to.saturating_sub(self.pos);
        self.pos = to;
        skipped
    }

    /// Seeks to the first element at or after the cursor whose region end
    /// is `>= end`; returns how many elements were skipped.
    pub fn seek_end_at_least(&mut self, end: u32) -> usize {
        let to = self
            .view
            .first_end_at_least(self.pos.min(self.view.len()), end);
        let skipped = to.saturating_sub(self.pos);
        self.pos = to;
        skipped
    }

    /// The cursor position (index of the head within the stream).
    pub fn position(&self) -> usize {
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(node: u32, start: u32, end: u32, level: u16) -> ElementEntry {
        ElementEntry {
            node: NodeId::from_index(node as usize),
            region: RegionLabel::new(start, end, level),
        }
    }

    /// A recursive-nesting shape: ends are NOT monotonic.
    fn nested() -> Vec<ElementEntry> {
        vec![
            entry(0, 1, 100, 1),
            entry(1, 2, 40, 2),
            entry(2, 3, 10, 3),
            entry(3, 12, 30, 3),
            entry(4, 50, 60, 2),
            entry(5, 70, 71, 2),
        ]
    }

    #[test]
    fn owned_columns_round_trip_entries() {
        let entries = nested();
        let cols = OwnedColumns::from_entries(&entries);
        let view = cols.view();
        assert_eq!(view.len(), entries.len());
        for (i, e) in entries.iter().enumerate() {
            assert_eq!(view.entry(i), *e);
        }
    }

    #[test]
    fn tag_columns_mirror_tag_index() {
        let a = Symbol::from_index(0);
        let b = Symbol::from_index(1);
        let mut tags = TagIndex::with_tag_count(2);
        let all: Vec<ElementEntry> = nested();
        tags.push(a, all[0]);
        tags.push(a, all[2]);
        tags.push(b, all[1]);
        tags.push(b, all[4]);
        let cols = TagColumns::build(&tags, &all, 2);
        for (sym, stream) in [(a, tags.stream(a)), (b, tags.stream(b))] {
            let view = cols.view(sym);
            assert_eq!(view.len(), stream.len());
            for (i, e) in stream.iter().enumerate() {
                assert_eq!(view.entry(i), *e, "tag {sym:?} entry {i}");
            }
        }
        assert_eq!(cols.view(Symbol::from_index(9)).len(), 0);
        assert_eq!(cols.all_elements().len(), all.len());
        assert!(cols.size_bytes() > 0);
    }

    #[test]
    fn gallop_matches_linear_scan() {
        let column: Vec<u32> = vec![1, 3, 3, 7, 9, 9, 9, 20, 21, 40];
        for from in 0..=column.len() {
            for target in 0..45 {
                let expect = (from..column.len())
                    .find(|&i| column[i] >= target)
                    .unwrap_or(column.len());
                assert_eq!(
                    gallop(&column, from, target),
                    expect,
                    "from={from} target={target}"
                );
            }
        }
    }

    #[test]
    fn end_tree_finds_leftmost_from_any_position() {
        // Non-monotonic ends, including the trap a prefix-maximum falls
        // into: the early large end (100) must be ignored once passed.
        let ends: Vec<u32> = vec![100, 40, 10, 30, 60, 71];
        let mut arena = Vec::new();
        build_max_tree(&ends, &mut arena);
        for from in 0..=ends.len() {
            for target in 1..=110u32 {
                let expect = (from..ends.len())
                    .find(|&i| ends[i] >= target)
                    .map(|i| i as isize)
                    .unwrap_or(-1);
                let got = match tree_first_at_least(&arena, from, target) {
                    usize::MAX => -1,
                    i => i as isize,
                };
                assert_eq!(got, expect, "from={from} target={target}");
            }
        }
    }

    #[test]
    fn end_tree_handles_non_power_of_two_and_singleton() {
        for ends in [vec![5u32], vec![9, 2, 7], vec![3, 3, 3, 3, 3, 8, 1]] {
            let mut arena = Vec::new();
            build_max_tree(&ends, &mut arena);
            for from in 0..=ends.len() {
                for target in 1..=10u32 {
                    let expect = (from..ends.len())
                        .find(|&i| ends[i] >= target)
                        .unwrap_or(usize::MAX);
                    assert_eq!(
                        tree_first_at_least(&arena, from, target),
                        expect,
                        "ends={ends:?} from={from} target={target}"
                    );
                }
            }
        }
    }

    #[test]
    fn seek_end_agrees_with_element_by_element_skip() {
        // Equivalence with the scalar loop `while head.end < X { advance }`
        // on a nesting-heavy stream, from every position and threshold.
        let entries = nested();
        let cols = OwnedColumns::from_entries(&entries);
        for from in 0..=entries.len() {
            for target in 0..110u32 {
                let mut cur = cols.view().cursor();
                for _ in 0..from {
                    cur.advance();
                }
                let mut scalar = cur;
                while !scalar.is_exhausted() && scalar.head_end() < target {
                    scalar.advance();
                }
                let mut seek = cur;
                seek.seek_end_at_least(target);
                assert_eq!(
                    seek.position(),
                    scalar.position(),
                    "from={from} target={target}"
                );
            }
        }
    }

    #[test]
    fn treeless_columns_end_seek_falls_back_to_linear() {
        let entries = nested();
        let cheap = OwnedColumns::from_entries_without_end_tree(&entries);
        let full = OwnedColumns::from_entries(&entries);
        for from in 0..=entries.len() {
            for target in 0..110u32 {
                let mut a = cheap.view().cursor();
                let mut b = full.view().cursor();
                for _ in 0..from {
                    a.advance();
                    b.advance();
                }
                a.seek_end_at_least(target);
                b.seek_end_at_least(target);
                assert_eq!(a.position(), b.position(), "from={from} target={target}");
            }
        }
    }

    #[test]
    fn cursor_heads_and_sentinels() {
        let cols = OwnedColumns::from_entries(&nested());
        let mut cur = cols.view().cursor();
        assert_eq!(cur.head_start(), 1);
        assert_eq!(cur.seek_start_at_least(49), 4);
        assert_eq!(cur.head().unwrap().region.start, 50);
        cur.seek_start_at_least(u32::MAX);
        assert!(cur.is_exhausted());
        assert_eq!(cur.head_start(), u32::MAX);
        assert_eq!(cur.head_end(), u32::MAX);
        assert_eq!(cur.head(), None);
    }

    #[test]
    fn empty_view_is_safe() {
        let view = ColumnView::empty();
        assert!(view.is_empty());
        let mut cur = view.cursor();
        assert!(cur.is_exhausted());
        assert_eq!(cur.seek_start_at_least(5), 0);
        assert_eq!(cur.seek_end_at_least(5), 0);
    }
}
