//! One-pass construction of every index over a document.

use crate::dataguide::{DataGuide, GuideNodeId};
use crate::stats::Stats;
use crate::tag_index::{ElementEntry, TagIndex};
use crate::trie::Trie;
use crate::value_index::ValueIndex;
use lotusx_labeling::DocumentLabels;
use lotusx_xml::{Document, NodeId, NodeKind, Symbol};

/// A document together with its labels and all indexes — the unit LotusX
/// loads and queries.
///
/// ```
/// use lotusx_index::IndexedDocument;
///
/// let idx = IndexedDocument::from_str("<bib><book><title>XML</title></book></bib>").unwrap();
/// let title = idx.document().symbols().get("title").unwrap();
/// assert_eq!(idx.tags().frequency(title), 1);
/// assert_eq!(idx.values().df("xml"), 1);
/// ```
#[derive(Clone, Debug)]
pub struct IndexedDocument {
    doc: Document,
    labels: DocumentLabels,
    tags: TagIndex,
    values: ValueIndex,
    tag_trie: Trie,
    term_trie: Trie,
    terms: Vec<String>,
    guide: DataGuide,
    guide_of: Vec<GuideNodeId>,
    stats: Stats,
    all_elements: Vec<ElementEntry>,
}

impl IndexedDocument {
    /// Parses `xml` and builds all indexes.
    ///
    /// Named like (but deliberately not implementing) `FromStr`: the
    /// error type is crate-specific and callers always use it directly.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(xml: &str) -> lotusx_xml::Result<Self> {
        Ok(Self::build(Document::parse_str(xml)?))
    }

    /// Builds all indexes over an already-parsed document.
    pub fn build(doc: Document) -> Self {
        let labels = DocumentLabels::compute(&doc);
        let guide = DataGuide::from_document(&doc);
        let stats = Stats::compute(&doc);

        let mut tags = TagIndex::with_tag_count(doc.symbols().len());
        let mut values = ValueIndex::new();
        let mut guide_of = vec![GuideNodeId::ROOT; doc.node_count()];
        let mut all_elements = Vec::with_capacity(stats.element_count);

        // Single preorder pass: tag streams (document order is preorder),
        // value postings and the element→guide-node map.
        for node in doc.all_nodes() {
            if node == NodeId::DOCUMENT || !doc.is_element(node) {
                continue;
            }
            let tag = doc.tag(node).expect("element");
            let entry = ElementEntry {
                node,
                region: labels.region(node),
            };
            tags.push(tag, entry);
            all_elements.push(entry);
            let parent_guide = doc
                .parent(node)
                .map(|p| guide_of[p.index()])
                .unwrap_or(GuideNodeId::ROOT);
            guide_of[node.index()] = guide
                .child_by_tag(parent_guide, tag)
                .expect("guide derived from the same document");

            let direct_text = doc.direct_text(node);
            let attrs: Vec<&str> = match doc.kind(node) {
                NodeKind::Element { attributes, .. } => {
                    attributes.iter().map(|(_, v)| v.as_str()).collect()
                }
                _ => unreachable!(),
            };
            values.index_element(node, &direct_text, &attrs);
        }
        values.finish();

        // Tag trie: element tags only, weighted by occurrence count.
        let mut tag_trie = Trie::new();
        for (sym, name) in doc.symbols().iter() {
            let freq = tags.frequency(sym);
            if freq > 0 {
                tag_trie.insert(name, sym.index() as u32, freq as u64);
            }
        }

        // Term trie: payload is an id into `terms`, weighted by document
        // frequency.
        let mut terms: Vec<String> = values.terms().map(|(t, _)| t.to_string()).collect();
        terms.sort();
        let mut term_trie = Trie::new();
        for (i, term) in terms.iter().enumerate() {
            term_trie.insert(term, i as u32, values.df(term) as u64);
        }

        IndexedDocument {
            doc,
            labels,
            tags,
            values,
            tag_trie,
            term_trie,
            terms,
            guide,
            guide_of,
            stats,
            all_elements,
        }
    }

    /// The underlying document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// All positional labels.
    pub fn labels(&self) -> &DocumentLabels {
        &self.labels
    }

    /// The per-tag element streams.
    pub fn tags(&self) -> &TagIndex {
        &self.tags
    }

    /// The content index.
    pub fn values(&self) -> &ValueIndex {
        &self.values
    }

    /// The tag-name completion trie (payload = `Symbol` index).
    pub fn tag_trie(&self) -> &Trie {
        &self.tag_trie
    }

    /// The content-term completion trie (payload = index into [`Self::term`]).
    pub fn term_trie(&self) -> &Trie {
        &self.term_trie
    }

    /// Resolves a term-trie payload to the term string.
    pub fn term(&self, id: u32) -> &str {
        &self.terms[id as usize]
    }

    /// The DataGuide structural summary.
    pub fn guide(&self) -> &DataGuide {
        &self.guide
    }

    /// The guide node of a document element.
    pub fn guide_node(&self, id: NodeId) -> GuideNodeId {
        self.guide_of[id.index()]
    }

    /// Corpus statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Document-ordered stream of ALL elements (the stream a wildcard
    /// query node scans).
    pub fn all_elements(&self) -> &[ElementEntry] {
        &self.all_elements
    }

    /// Resolves a tag symbol to its name.
    pub fn tag_name(&self, sym: Symbol) -> &str {
        self.doc.symbols().resolve(sym)
    }

    /// Approximate total index size in bytes (labels + all indexes),
    /// excluding the document tree itself. Reported by experiment E1.
    pub fn index_size_bytes(&self) -> usize {
        self.labels.size_bytes()
            + self.tags.size_bytes()
            + self.values.size_bytes()
            + self.tag_trie.size_bytes()
            + self.term_trie.size_bytes()
            + self.guide.size_bytes()
            + self.guide_of.len() * std::mem::size_of::<GuideNodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book year=\"1999\"><title>Data on the Web</title><author>Abiteboul</author></book>\
               <book year=\"2003\"><title>XML Handbook</title><author>Goldfarb</author></book>\
               <article><title>TwigStack</title></article>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn tag_streams_are_document_ordered() {
        let idx = idx();
        let title = idx.document().symbols().get("title").unwrap();
        let stream = idx.tags().stream(title);
        assert_eq!(stream.len(), 3);
        for w in stream.windows(2) {
            assert!(w[0].region.start < w[1].region.start);
        }
    }

    #[test]
    fn value_index_sees_text_and_attributes() {
        let idx = idx();
        assert_eq!(idx.values().df("xml"), 1);
        assert_eq!(idx.values().df("1999"), 1, "attribute value indexed");
        assert_eq!(idx.values().exact_matches("twigstack").len(), 1);
    }

    #[test]
    fn tag_trie_completes_by_frequency() {
        let idx = idx();
        let completions = idx.tag_trie().complete("", 10);
        // book and title appear; heaviest first.
        assert_eq!(completions[0].weight, 3); // title ×3
        let keys: Vec<&str> = completions.iter().map(|c| c.key.as_str()).collect();
        assert!(keys.contains(&"book"));
        assert!(keys.contains(&"article"));
        assert!(!keys.contains(&"year"), "attribute names are not tags");
    }

    #[test]
    fn term_trie_payloads_resolve() {
        let idx = idx();
        let completions = idx.term_trie().complete("twig", 5);
        assert_eq!(completions.len(), 1);
        assert_eq!(idx.term(completions[0].payload), "twigstack");
    }

    #[test]
    fn guide_node_mapping_matches_paths() {
        let idx = idx();
        let doc = idx.document();
        for node in doc.all_nodes() {
            if !doc.is_element(node) {
                continue;
            }
            let gnode = idx.guide_node(node);
            let expected = idx.guide().lookup_path(&doc.tag_path(node)).unwrap();
            assert_eq!(gnode, expected);
        }
    }

    #[test]
    fn stats_and_sizes_are_consistent() {
        let idx = idx();
        assert_eq!(idx.stats().element_count, idx.tags().total_entries());
        assert!(idx.index_size_bytes() > 0);
    }
}
