//! One-pass construction of every index over a document.

use crate::columns::TagColumns;
use crate::dataguide::{DataGuide, GuideNodeId};
use crate::stats::{JoinStats, Stats};
use crate::tag_index::{ElementEntry, TagIndex};
use crate::trie::Trie;
use crate::value_index::ValueIndex;
use lotusx_labeling::DocumentLabels;
use lotusx_par::par_chunks;
use lotusx_xml::{Document, NodeId, NodeKind, Symbol};

/// Options controlling index construction.
#[derive(Clone, Copy, Debug)]
pub struct BuildOptions {
    /// Worker threads for the partitioned build phases. `1` runs every
    /// phase inline on the calling thread; the output is identical for
    /// any value (chunks are contiguous in preorder and merged in chunk
    /// order, so document order — and thus every index — is preserved).
    pub threads: usize,
}

impl Default for BuildOptions {
    fn default() -> Self {
        BuildOptions {
            threads: lotusx_par::default_threads(),
        }
    }
}

/// A document together with its labels and all indexes — the unit LotusX
/// loads and queries.
///
/// ```
/// use lotusx_index::IndexedDocument;
///
/// let idx = IndexedDocument::from_str("<bib><book><title>XML</title></book></bib>").unwrap();
/// let title = idx.document().symbols().get("title").unwrap();
/// assert_eq!(idx.tags().frequency(title), 1);
/// assert_eq!(idx.values().df("xml"), 1);
/// ```
#[derive(Clone, Debug)]
pub struct IndexedDocument {
    doc: Document,
    labels: DocumentLabels,
    tags: TagIndex,
    columns: TagColumns,
    values: ValueIndex,
    tag_trie: Trie,
    term_trie: Trie,
    terms: Vec<String>,
    guide: DataGuide,
    guide_of: Vec<GuideNodeId>,
    stats: Stats,
    join_stats: JoinStats,
    all_elements: Vec<ElementEntry>,
}

/// The full field set of an [`IndexedDocument`], used by the snapshot
/// decoder to reassemble one without running the build pipeline.
pub(crate) struct IndexParts {
    pub(crate) doc: Document,
    pub(crate) labels: DocumentLabels,
    pub(crate) tags: TagIndex,
    pub(crate) columns: TagColumns,
    pub(crate) values: ValueIndex,
    pub(crate) tag_trie: Trie,
    pub(crate) term_trie: Trie,
    pub(crate) terms: Vec<String>,
    pub(crate) guide: DataGuide,
    pub(crate) guide_of: Vec<GuideNodeId>,
    pub(crate) stats: Stats,
    pub(crate) join_stats: JoinStats,
    pub(crate) all_elements: Vec<ElementEntry>,
}

impl IndexedDocument {
    /// Parses `xml` and builds all indexes.
    ///
    /// Named like (but deliberately not implementing) `FromStr`: the
    /// error type is crate-specific and callers always use it directly.
    #[allow(clippy::should_implement_trait)]
    pub fn from_str(xml: &str) -> lotusx_xml::Result<Self> {
        Ok(Self::build(Document::parse_str(xml)?))
    }

    /// Builds all indexes over an already-parsed document, serially.
    ///
    /// Equivalent to [`Self::build_with`] at `threads: 1`; the parallel
    /// build produces identical indexes for any thread count.
    pub fn build(doc: Document) -> Self {
        Self::build_with(doc, &BuildOptions { threads: 1 })
    }

    /// Builds all indexes, partitioning the per-element work across
    /// `opts.threads` worker threads.
    ///
    /// The pipeline has four phases:
    ///
    /// 1. labels ∥ DataGuide ∥ stats — three independent whole-document
    ///    passes, one per thread;
    /// 2. a serial preorder walk computing the element list and the
    ///    element→guide-node map (each entry depends on its parent's, so
    ///    this is inherently sequential — and O(1) per node);
    /// 3. partitioned posting construction: contiguous preorder chunks
    ///    each build a partial [`TagIndex`]/[`ValueIndex`]/element stream,
    ///    merged in chunk order so document order is preserved exactly;
    /// 4. the two completion tries (tags ∥ terms), which only read the
    ///    merged indexes.
    pub fn build_with(doc: Document, opts: &BuildOptions) -> Self {
        let threads = opts.threads.max(1);

        // Phase 1: independent whole-document passes.
        let (labels, guide, stats) = if threads > 1 {
            std::thread::scope(|s| {
                let guide = s.spawn(|| DataGuide::from_document(&doc));
                let stats = s.spawn(|| Stats::compute(&doc));
                let labels = DocumentLabels::compute(&doc);
                (
                    labels,
                    guide.join().expect("guide pass"),
                    stats.join().expect("stats pass"),
                )
            })
        } else {
            (
                DocumentLabels::compute(&doc),
                DataGuide::from_document(&doc),
                Stats::compute(&doc),
            )
        };

        // Phase 2: preorder element list and the element→guide-node map.
        let mut guide_of = vec![GuideNodeId::ROOT; doc.node_count()];
        let mut elements = Vec::with_capacity(stats.element_count);
        for node in doc.all_nodes() {
            if node == NodeId::DOCUMENT || !doc.is_element(node) {
                continue;
            }
            let tag = doc.tag(node).expect("element");
            let parent_guide = doc
                .parent(node)
                .map(|p| guide_of[p.index()])
                .unwrap_or(GuideNodeId::ROOT);
            guide_of[node.index()] = guide
                .child_by_tag(parent_guide, tag)
                .expect("guide derived from the same document");
            elements.push(node);
        }

        // Phase 3: per-chunk partial postings, merged in chunk order.
        let tag_count = doc.symbols().len();
        let partials = par_chunks(&elements, threads, |_, chunk| {
            let mut tags = TagIndex::with_tag_count(tag_count);
            let mut values = ValueIndex::new();
            let mut stream = Vec::with_capacity(chunk.len());
            for &node in chunk {
                let tag = doc.tag(node).expect("element");
                let entry = ElementEntry {
                    node,
                    region: labels.region(node),
                };
                tags.push(tag, entry);
                stream.push(entry);
                let direct_text = doc.direct_text(node);
                let attrs: Vec<&str> = match doc.kind(node) {
                    NodeKind::Element { attributes, .. } => {
                        attributes.iter().map(|(_, v)| v.as_str()).collect()
                    }
                    _ => unreachable!(),
                };
                values.index_element(node, &direct_text, &attrs);
            }
            (tags, values, stream)
        });
        let mut tags = TagIndex::with_tag_count(tag_count);
        let mut values = ValueIndex::new();
        let mut all_elements = Vec::with_capacity(elements.len());
        for (t, v, stream) in partials {
            tags.merge_append(t);
            values.merge_append(v);
            all_elements.extend(stream);
        }
        values.finish();

        // Columnar (struct-of-arrays) mirror of the merged tag streams —
        // the layout the join engine scans. Derived entirely from the
        // merged postings, so it is identical for any thread count.
        let columns = TagColumns::build(&tags, &all_elements, tag_count);
        let join_stats = JoinStats::compute(&tags, &guide, tag_count);

        // Phase 4: the two completion tries are independent of each other.
        // Insertion order is fixed (symbol order / sorted terms), so the
        // tries are identical however the closures are scheduled.
        let build_tag_trie = || {
            // Tag trie: element tags only, weighted by occurrence count.
            let mut tag_trie = Trie::new();
            for (sym, name) in doc.symbols().iter() {
                let freq = tags.frequency(sym);
                if freq > 0 {
                    tag_trie.insert(name, sym.index() as u32, freq as u64);
                }
            }
            tag_trie
        };
        let build_term_trie = || {
            // Term trie: payload is an id into `terms`, weighted by
            // document frequency.
            let mut terms: Vec<String> = values.terms().map(|(t, _)| t.to_string()).collect();
            terms.sort();
            let mut term_trie = Trie::new();
            for (i, term) in terms.iter().enumerate() {
                term_trie.insert(term, i as u32, values.df(term) as u64);
            }
            (terms, term_trie)
        };
        let (tag_trie, (terms, term_trie)) = if threads > 1 {
            std::thread::scope(|s| {
                let term = s.spawn(build_term_trie);
                (build_tag_trie(), term.join().expect("term trie pass"))
            })
        } else {
            (build_tag_trie(), build_term_trie())
        };

        IndexedDocument {
            doc,
            labels,
            tags,
            columns,
            values,
            tag_trie,
            term_trie,
            terms,
            guide,
            guide_of,
            stats,
            join_stats,
            all_elements,
        }
    }

    /// Reassembles an `IndexedDocument` from deserialized parts (the
    /// snapshot load path). The parts must be mutually consistent — the
    /// snapshot decoder validates each structure against the document
    /// before calling this.
    pub(crate) fn from_parts(parts: IndexParts) -> Self {
        IndexedDocument {
            doc: parts.doc,
            labels: parts.labels,
            tags: parts.tags,
            columns: parts.columns,
            values: parts.values,
            tag_trie: parts.tag_trie,
            term_trie: parts.term_trie,
            terms: parts.terms,
            guide: parts.guide,
            guide_of: parts.guide_of,
            stats: parts.stats,
            join_stats: parts.join_stats,
            all_elements: parts.all_elements,
        }
    }

    /// The underlying document.
    pub fn document(&self) -> &Document {
        &self.doc
    }

    /// All positional labels.
    pub fn labels(&self) -> &DocumentLabels {
        &self.labels
    }

    /// The per-tag element streams.
    pub fn tags(&self) -> &TagIndex {
        &self.tags
    }

    /// The columnar (struct-of-arrays) mirror of the tag streams.
    pub fn columns(&self) -> &TagColumns {
        &self.columns
    }

    /// The content index.
    pub fn values(&self) -> &ValueIndex {
        &self.values
    }

    /// The tag-name completion trie (payload = `Symbol` index).
    pub fn tag_trie(&self) -> &Trie {
        &self.tag_trie
    }

    /// The content-term completion trie (payload = index into [`Self::term`]).
    pub fn term_trie(&self) -> &Trie {
        &self.term_trie
    }

    /// Resolves a term-trie payload to the term string.
    pub fn term(&self, id: u32) -> &str {
        &self.terms[id as usize]
    }

    /// The DataGuide structural summary.
    pub fn guide(&self) -> &DataGuide {
        &self.guide
    }

    /// The guide node of a document element.
    pub fn guide_node(&self, id: NodeId) -> GuideNodeId {
        self.guide_of[id.index()]
    }

    /// Corpus statistics.
    pub fn stats(&self) -> &Stats {
        &self.stats
    }

    /// Join-selectivity statistics (chooser inputs).
    pub fn join_stats(&self) -> &JoinStats {
        &self.join_stats
    }

    /// Document-ordered stream of ALL elements (the stream a wildcard
    /// query node scans).
    pub fn all_elements(&self) -> &[ElementEntry] {
        &self.all_elements
    }

    /// Resolves a tag symbol to its name.
    pub fn tag_name(&self, sym: Symbol) -> &str {
        self.doc.symbols().resolve(sym)
    }

    /// Approximate total index size in bytes (labels + all indexes),
    /// excluding the document tree itself. Reported by experiment E1.
    pub fn index_size_bytes(&self) -> usize {
        self.labels.size_bytes()
            + self.tags.size_bytes()
            + self.columns.size_bytes()
            + self.values.size_bytes()
            + self.tag_trie.size_bytes()
            + self.term_trie.size_bytes()
            + self.guide.size_bytes()
            + self.guide_of.len() * std::mem::size_of::<GuideNodeId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book year=\"1999\"><title>Data on the Web</title><author>Abiteboul</author></book>\
               <book year=\"2003\"><title>XML Handbook</title><author>Goldfarb</author></book>\
               <article><title>TwigStack</title></article>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn tag_streams_are_document_ordered() {
        let idx = idx();
        let title = idx.document().symbols().get("title").unwrap();
        let stream = idx.tags().stream(title);
        assert_eq!(stream.len(), 3);
        for w in stream.windows(2) {
            assert!(w[0].region.start < w[1].region.start);
        }
    }

    #[test]
    fn value_index_sees_text_and_attributes() {
        let idx = idx();
        assert_eq!(idx.values().df("xml"), 1);
        assert_eq!(idx.values().df("1999"), 1, "attribute value indexed");
        assert_eq!(idx.values().exact_matches("twigstack").len(), 1);
    }

    #[test]
    fn tag_trie_completes_by_frequency() {
        let idx = idx();
        let completions = idx.tag_trie().complete("", 10);
        // book and title appear; heaviest first.
        assert_eq!(completions[0].weight, 3); // title ×3
        let keys: Vec<&str> = completions.iter().map(|c| c.key.as_str()).collect();
        assert!(keys.contains(&"book"));
        assert!(keys.contains(&"article"));
        assert!(!keys.contains(&"year"), "attribute names are not tags");
    }

    #[test]
    fn term_trie_payloads_resolve() {
        let idx = idx();
        let completions = idx.term_trie().complete("twig", 5);
        assert_eq!(completions.len(), 1);
        assert_eq!(idx.term(completions[0].payload), "twigstack");
    }

    #[test]
    fn guide_node_mapping_matches_paths() {
        let idx = idx();
        let doc = idx.document();
        for node in doc.all_nodes() {
            if !doc.is_element(node) {
                continue;
            }
            let gnode = idx.guide_node(node);
            let expected = idx.guide().lookup_path(&doc.tag_path(node)).unwrap();
            assert_eq!(gnode, expected);
        }
    }

    #[test]
    fn parallel_build_is_identical_to_serial() {
        let xml = "<bib>\
               <book year=\"1999\"><title>Data on the Web</title><author>Abiteboul</author></book>\
               <book year=\"2003\"><title>XML Handbook</title><author>Goldfarb</author></book>\
               <article><title>TwigStack</title><author>Bruno</author></article>\
             </bib>";
        let serial = IndexedDocument::from_str(xml).unwrap();
        for threads in [2, 3, 8] {
            let par = IndexedDocument::build_with(
                Document::parse_str(xml).unwrap(),
                &BuildOptions { threads },
            );
            assert_eq!(par.all_elements(), serial.all_elements(), "{threads}");
            for (sym, _) in serial.document().symbols().iter() {
                assert_eq!(
                    par.tags().stream(sym),
                    serial.tags().stream(sym),
                    "{threads}"
                );
            }
            for node in serial.document().all_nodes() {
                if serial.document().is_element(node) {
                    assert_eq!(par.guide_node(node), serial.guide_node(node), "{threads}");
                }
            }
            for (term, df) in serial.values().terms() {
                assert_eq!(par.values().df(term), df, "{threads}");
            }
            assert_eq!(
                par.tag_trie().complete("", 100),
                serial.tag_trie().complete("", 100),
                "{threads}"
            );
            assert_eq!(
                par.term_trie().complete("", 1000),
                serial.term_trie().complete("", 1000),
                "{threads}"
            );
        }
    }

    #[test]
    fn stats_and_sizes_are_consistent() {
        let idx = idx();
        assert_eq!(idx.stats().element_count, idx.tags().total_entries());
        assert!(idx.index_size_bytes() > 0);
    }
}
