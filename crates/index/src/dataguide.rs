//! Strong DataGuide structural summary (Goldman & Widom, VLDB 1997).
//!
//! Every distinct root-to-node *tag path* of the document becomes exactly
//! one guide node, annotated with the number of document elements sharing
//! that path. The guide is typically minuscule compared to the document
//! (hundreds of nodes for millions of elements), which makes it the perfect
//! oracle for LotusX's two position-aware questions:
//!
//! 1. *auto-completion*: "which tags can occur at this position of the
//!    partial twig?" — answered by walking the guide instead of the data;
//! 2. *rewriting*: "can this twig match anything at all?" — a twig is
//!    structurally satisfiable iff it matches the guide tree.

use crate::wire::{corrupt, put_varint, rd_len, rd_varint, StorageError};
use lotusx_xml::{Document, NodeId, Symbol};
use std::collections::HashMap;

/// Index of a node within a [`DataGuide`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GuideNodeId(u32);

impl GuideNodeId {
    /// The virtual guide root (corresponding to the document node).
    pub const ROOT: GuideNodeId = GuideNodeId(0);

    /// Dense index of this guide node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Rebuilds an id from an index previously obtained via
    /// [`GuideNodeId::index`] on the same guide.
    pub fn from_index(index: usize) -> Self {
        GuideNodeId(index as u32)
    }
}

#[derive(Clone, Debug)]
struct GuideNode {
    tag: Option<Symbol>,
    parent: Option<GuideNodeId>,
    children: Vec<(Symbol, GuideNodeId)>,
    count: u64,
    depth: u16,
}

/// The structural summary.
#[derive(Clone, Debug)]
pub struct DataGuide {
    nodes: Vec<GuideNode>,
}

impl DataGuide {
    /// Builds the DataGuide of `doc` in one traversal.
    pub fn from_document(doc: &Document) -> Self {
        let mut guide = DataGuide {
            nodes: vec![GuideNode {
                tag: None,
                parent: None,
                children: Vec::new(),
                count: 1,
                depth: 0,
            }],
        };
        // DFS over (document node, guide node) pairs.
        let mut stack: Vec<(NodeId, GuideNodeId)> = vec![(NodeId::DOCUMENT, GuideNodeId::ROOT)];
        while let Some((node, gnode)) = stack.pop() {
            for child in doc.element_children(node) {
                let tag = doc.tag(child).expect("element");
                let gchild = guide.child_or_insert(gnode, tag);
                guide.nodes[gchild.index()].count += 1;
                stack.push((child, gchild));
            }
        }
        // Construction initializes counts to 0 via child_or_insert; the
        // root was seeded with 1 representing the single document node.
        guide
    }

    fn child_or_insert(&mut self, parent: GuideNodeId, tag: Symbol) -> GuideNodeId {
        if let Some(existing) = self.child_by_tag(parent, tag) {
            return existing;
        }
        let id = GuideNodeId(self.nodes.len() as u32);
        let depth = self.nodes[parent.index()].depth + 1;
        self.nodes.push(GuideNode {
            tag: Some(tag),
            parent: Some(parent),
            children: Vec::new(),
            count: 0,
            depth,
        });
        self.nodes[parent.index()].children.push((tag, id));
        id
    }

    /// The guide child of `parent` labelled `tag`.
    pub fn child_by_tag(&self, parent: GuideNodeId, tag: Symbol) -> Option<GuideNodeId> {
        self.nodes[parent.index()]
            .children
            .iter()
            .find(|(t, _)| *t == tag)
            .map(|(_, id)| *id)
    }

    /// The tag of a guide node (`None` for the root).
    pub fn tag(&self, id: GuideNodeId) -> Option<Symbol> {
        self.nodes[id.index()].tag
    }

    /// The parent of a guide node.
    pub fn parent(&self, id: GuideNodeId) -> Option<GuideNodeId> {
        self.nodes[id.index()].parent
    }

    /// Number of document elements sharing this guide node's path.
    pub fn count(&self, id: GuideNodeId) -> u64 {
        self.nodes[id.index()].count
    }

    /// Depth of the guide node (root = 0, root element = 1).
    pub fn depth(&self, id: GuideNodeId) -> u16 {
        self.nodes[id.index()].depth
    }

    /// Child guide nodes of `id` with their tags.
    pub fn children(&self, id: GuideNodeId) -> &[(Symbol, GuideNodeId)] {
        &self.nodes[id.index()].children
    }

    /// All guide nodes in the subtree of `id`, including `id`.
    pub fn descendants_or_self(&self, id: GuideNodeId) -> Vec<GuideNodeId> {
        let mut out = Vec::new();
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            out.push(n);
            for &(_, c) in self.children(n) {
                stack.push(c);
            }
        }
        out
    }

    /// All guide nodes whose tag is `tag`.
    pub fn nodes_with_tag(&self, tag: Symbol) -> Vec<GuideNodeId> {
        (0..self.nodes.len())
            .map(|i| GuideNodeId(i as u32))
            .filter(|id| self.tag(*id) == Some(tag))
            .collect()
    }

    /// The guide node for an exact root-to-node tag path, if present.
    pub fn lookup_path(&self, path: &[Symbol]) -> Option<GuideNodeId> {
        let mut cur = GuideNodeId::ROOT;
        for &tag in path {
            cur = self.child_by_tag(cur, tag)?;
        }
        Some(cur)
    }

    /// Distinct tags of children of `id` together with how many document
    /// elements each corresponds to (sorted by count descending).
    pub fn child_tag_counts(&self, id: GuideNodeId) -> Vec<(Symbol, u64)> {
        let mut out: Vec<(Symbol, u64)> = self
            .children(id)
            .iter()
            .map(|&(tag, c)| (tag, self.count(c)))
            .collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Distinct tags occurring anywhere strictly below `id`, with their
    /// total element counts (sorted by count descending).
    pub fn descendant_tag_counts(&self, id: GuideNodeId) -> Vec<(Symbol, u64)> {
        let mut acc: HashMap<Symbol, u64> = HashMap::new();
        for n in self.descendants_or_self(id) {
            if n == id {
                continue;
            }
            if let Some(tag) = self.tag(n) {
                *acc.entry(tag).or_insert(0) += self.count(n);
            }
        }
        let mut out: Vec<(Symbol, u64)> = acc.into_iter().collect();
        out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }

    /// Number of guide nodes (including the root).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Maximum path depth in the guide.
    pub fn max_depth(&self) -> u16 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }

    /// Materializes the guide as a small [`Document`] (one element per guide
    /// node). Used by the rewriter: a twig is structurally satisfiable on
    /// the data iff it matches this document.
    pub fn to_document(&self, symbols: &lotusx_xml::SymbolTable) -> Document {
        let mut doc = Document::new();
        let mut map: Vec<NodeId> = vec![NodeId::DOCUMENT; self.nodes.len()];
        // Guide nodes were pushed parent-before-child, so a forward sweep
        // can attach each node to its already-materialized parent.
        for i in 1..self.nodes.len() {
            let gid = GuideNodeId(i as u32);
            let tag = self.tag(gid).expect("non-root guide nodes have tags");
            let parent = map[self.parent(gid).expect("non-root").index()];
            map[i] = doc.append_element(parent, symbols.resolve(tag));
        }
        doc
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<GuideNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(Symbol, GuideNodeId)>())
                .sum::<usize>()
    }

    /// Serializes the guide for the snapshot `GUIDE` section. Children
    /// are written in their stored order — [`to_document`](Self::to_document)
    /// and the completion ranking depend on it being preserved exactly.
    pub(crate) fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.nodes.len() as u64);
        for node in &self.nodes {
            // 0 encodes None; symbols/ids are shifted by one.
            put_varint(out, node.tag.map(|t| t.index() as u64 + 1).unwrap_or(0));
            put_varint(out, node.parent.map(|p| p.index() as u64 + 1).unwrap_or(0));
            put_varint(out, node.children.len() as u64);
            for &(tag, child) in &node.children {
                put_varint(out, tag.index() as u64);
                put_varint(out, child.index() as u64);
            }
            put_varint(out, node.count);
            put_varint(out, u64::from(node.depth));
        }
    }

    /// Deserializes a guide written by [`encode`](Self::encode), checking
    /// the invariants consumers rely on: nodes are stored
    /// parent-before-child (children have larger indexes than their
    /// parent), the root has neither tag nor parent, every other node has
    /// both, and all symbols fall below `tag_count`.
    pub(crate) fn decode(
        data: &[u8],
        pos: &mut usize,
        tag_count: usize,
    ) -> Result<DataGuide, StorageError> {
        let node_count = rd_len(data, pos, "guide node count")?;
        if node_count == 0 || node_count > data.len() {
            return Err(corrupt("guide node count"));
        }
        let rd_tag = |v: usize, what| -> Result<Symbol, StorageError> {
            if v >= tag_count {
                return Err(corrupt(what));
            }
            Ok(Symbol::from_index(v))
        };
        let mut nodes = Vec::with_capacity(node_count);
        for i in 0..node_count {
            let tag = match rd_len(data, pos, "guide tag")? {
                0 if i == 0 => None,
                0 => return Err(corrupt("non-root guide node without tag")),
                v => Some(rd_tag(v - 1, "guide tag out of range")?),
            };
            let parent = match rd_len(data, pos, "guide parent")? {
                0 if i == 0 => None,
                0 => return Err(corrupt("non-root guide node without parent")),
                v if v - 1 < i => Some(GuideNodeId::from_index(v - 1)),
                _ => return Err(corrupt("guide parent not before child")),
            };
            let child_count = rd_len(data, pos, "guide child count")?;
            if child_count > data.len() {
                return Err(corrupt("guide child count"));
            }
            let mut children = Vec::with_capacity(child_count);
            for _ in 0..child_count {
                let tag = rd_tag(
                    rd_len(data, pos, "guide child tag")?,
                    "guide child tag out of range",
                )?;
                let child = rd_len(data, pos, "guide child id")?;
                if child <= i || child >= node_count {
                    return Err(corrupt("guide child id out of range"));
                }
                children.push((tag, GuideNodeId::from_index(child)));
            }
            let count = rd_varint(data, pos, "guide count")?;
            let depth = u16::try_from(rd_varint(data, pos, "guide depth")?)
                .map_err(|_| corrupt("guide depth"))?;
            nodes.push(GuideNode {
                tag,
                parent,
                children,
                count,
                depth,
            });
        }
        Ok(DataGuide { nodes })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc() -> Document {
        Document::parse_str(
            "<bib>\
               <book><title>a</title><author>x</author><author>y</author></book>\
               <book><title>b</title></book>\
               <article><title>c</title><author>z</author></article>\
             </bib>",
        )
        .unwrap()
    }

    fn sym(d: &Document, t: &str) -> Symbol {
        d.symbols().get(t).unwrap()
    }

    #[test]
    fn one_guide_node_per_distinct_path() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        // Paths: root, bib, bib/book, bib/book/title, bib/book/author,
        //        bib/article, bib/article/title, bib/article/author
        assert_eq!(g.node_count(), 8);
        assert_eq!(g.max_depth(), 3);
    }

    #[test]
    fn counts_aggregate_elements_per_path() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        let book_path = g.lookup_path(&[sym(&d, "bib"), sym(&d, "book")]).unwrap();
        assert_eq!(g.count(book_path), 2);
        let book_author = g
            .lookup_path(&[sym(&d, "bib"), sym(&d, "book"), sym(&d, "author")])
            .unwrap();
        assert_eq!(g.count(book_author), 2);
        let art_author = g
            .lookup_path(&[sym(&d, "bib"), sym(&d, "article"), sym(&d, "author")])
            .unwrap();
        assert_eq!(g.count(art_author), 1);
    }

    #[test]
    fn lookup_of_absent_path_fails() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        assert!(g
            .lookup_path(&[sym(&d, "bib"), sym(&d, "author")])
            .is_none());
    }

    #[test]
    fn child_tags_sorted_by_count() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        let bib = g.lookup_path(&[sym(&d, "bib")]).unwrap();
        let children = g.child_tag_counts(bib);
        let names: Vec<(&str, u64)> = children
            .iter()
            .map(|(s, c)| (d.symbols().resolve(*s), *c))
            .collect();
        assert_eq!(names, vec![("book", 2), ("article", 1)]);
    }

    #[test]
    fn descendant_tags_aggregate_across_paths() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        let bib = g.lookup_path(&[sym(&d, "bib")]).unwrap();
        let descendants = g.descendant_tag_counts(bib);
        let map: std::collections::HashMap<&str, u64> = descendants
            .iter()
            .map(|(s, c)| (d.symbols().resolve(*s), *c))
            .collect();
        assert_eq!(map["title"], 3);
        assert_eq!(map["author"], 3);
        assert_eq!(map["book"], 2);
    }

    #[test]
    fn nodes_with_tag_finds_all_contexts() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        assert_eq!(g.nodes_with_tag(sym(&d, "title")).len(), 2);
        assert_eq!(g.nodes_with_tag(sym(&d, "bib")).len(), 1);
    }

    #[test]
    fn to_document_materializes_every_path_once() {
        let d = doc();
        let g = DataGuide::from_document(&d);
        let gd = g.to_document(d.symbols());
        assert_eq!(gd.element_count(), g.node_count() - 1);
        // The guide document contains the path bib/book/title exactly once.
        let bib = gd.root_element().unwrap();
        assert_eq!(gd.tag_name(bib), Some("bib"));
        let books: Vec<NodeId> = gd
            .element_children(bib)
            .filter(|&c| gd.tag_name(c) == Some("book"))
            .collect();
        assert_eq!(books.len(), 1);
    }

    #[test]
    fn guide_is_small_relative_to_repetitive_documents() {
        let mut xml = String::from("<bib>");
        for i in 0..500 {
            xml.push_str(&format!("<book><title>t{i}</title></book>"));
        }
        xml.push_str("</bib>");
        let d = Document::parse_str(&xml).unwrap();
        let g = DataGuide::from_document(&d);
        assert_eq!(g.node_count(), 4); // root, bib, book, title
        assert_eq!(
            g.count(g.lookup_path(&[sym(&d, "bib"), sym(&d, "book")]).unwrap()),
            500
        );
    }
}
