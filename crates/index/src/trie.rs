//! A from-scratch byte trie with best-first top-k completion.
//!
//! Every terminal carries a `u32` payload (a tag symbol index or a term id)
//! and a weight (its corpus frequency). Each trie node caches the maximum
//! terminal weight in its subtree so that top-k completion can run
//! best-first and stop after emitting `k` results, independent of how many
//! other completions exist. [`TrieCursor`] supports the per-keystroke
//! narrowing of an auto-completion session.

use crate::wire::{corrupt, put_varint, rd_len, rd_u8, rd_varint, StorageError};
use std::collections::BinaryHeap;

#[derive(Clone, Debug, Default)]
struct TrieNode {
    /// Sorted outgoing edges (byte → child index).
    children: Vec<(u8, u32)>,
    /// Payload and weight if a key terminates here.
    terminal: Option<(u32, u64)>,
    /// Maximum terminal weight anywhere in this subtree.
    best: u64,
}

/// A completion produced by the trie.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Completion {
    /// The full key.
    pub key: String,
    /// The terminal payload.
    pub payload: u32,
    /// The terminal weight (corpus frequency).
    pub weight: u64,
}

/// The byte trie.
#[derive(Clone, Debug)]
pub struct Trie {
    nodes: Vec<TrieNode>,
    key_count: usize,
}

impl Default for Trie {
    fn default() -> Self {
        Self::new()
    }
}

/// A position inside the trie, used for incremental keystroke narrowing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TrieCursor {
    node: u32,
}

impl Trie {
    /// Creates an empty trie.
    pub fn new() -> Self {
        Trie {
            nodes: vec![TrieNode::default()],
            key_count: 0,
        }
    }

    /// Number of distinct keys.
    pub fn len(&self) -> usize {
        self.key_count
    }

    /// True if no key was inserted.
    pub fn is_empty(&self) -> bool {
        self.key_count == 0
    }

    /// Number of trie nodes (for size reporting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        self.nodes.len() * std::mem::size_of::<TrieNode>()
            + self
                .nodes
                .iter()
                .map(|n| n.children.capacity() * std::mem::size_of::<(u8, u32)>())
                .sum::<usize>()
    }

    fn child(&self, node: u32, byte: u8) -> Option<u32> {
        let edges = &self.nodes[node as usize].children;
        edges
            .binary_search_by_key(&byte, |(b, _)| *b)
            .ok()
            .map(|i| edges[i].1)
    }

    /// Inserts `key` with `payload` and `weight`; replaces the weight if the
    /// key already exists (keeping the max payload consistent).
    pub fn insert(&mut self, key: &str, payload: u32, weight: u64) {
        let mut node = 0u32;
        let mut path = vec![0u32];
        for &byte in key.as_bytes() {
            node = match self.child(node, byte) {
                Some(c) => c,
                None => {
                    let new_idx = self.nodes.len() as u32;
                    self.nodes.push(TrieNode::default());
                    let edges = &mut self.nodes[node as usize].children;
                    let pos = edges.partition_point(|(b, _)| *b < byte);
                    edges.insert(pos, (byte, new_idx));
                    new_idx
                }
            };
            path.push(node);
        }
        if self.nodes[node as usize].terminal.is_none() {
            self.key_count += 1;
        }
        self.nodes[node as usize].terminal = Some((payload, weight));
        // Refresh `best` along the path.
        for &n in path.iter().rev() {
            let node_ref = &self.nodes[n as usize];
            let mut best = node_ref.terminal.map(|(_, w)| w).unwrap_or(0);
            for &(_, c) in &node_ref.children {
                best = best.max(self.nodes[c as usize].best);
            }
            self.nodes[n as usize].best = best;
        }
    }

    /// Exact lookup.
    pub fn get(&self, key: &str) -> Option<(u32, u64)> {
        let cursor = self.cursor_at(key)?;
        self.nodes[cursor.node as usize].terminal
    }

    /// Cursor at the trie root (empty prefix).
    pub fn root_cursor(&self) -> TrieCursor {
        TrieCursor { node: 0 }
    }

    /// Cursor at `prefix`, or `None` if no key starts with it.
    pub fn cursor_at(&self, prefix: &str) -> Option<TrieCursor> {
        let mut node = 0u32;
        for &byte in prefix.as_bytes() {
            node = self.child(node, byte)?;
        }
        Some(TrieCursor { node })
    }

    /// Advances a cursor by one byte (one keystroke).
    pub fn descend(&self, cursor: TrieCursor, byte: u8) -> Option<TrieCursor> {
        self.child(cursor.node, byte)
            .map(|node| TrieCursor { node })
    }

    /// Top-k completions under `prefix`, heaviest first; ties broken by key.
    pub fn complete(&self, prefix: &str, k: usize) -> Vec<Completion> {
        match self.cursor_at(prefix) {
            Some(cursor) => self.complete_from(cursor, prefix, k),
            None => Vec::new(),
        }
    }

    /// Top-k completions from an existing cursor; `prefix` is the text the
    /// cursor was reached with (prepended to emitted keys).
    pub fn complete_from(&self, cursor: TrieCursor, prefix: &str, k: usize) -> Vec<Completion> {
        // Best-first search: a max-heap of frontier entries ordered by the
        // subtree's best weight; terminals are emitted when popped with a
        // weight no smaller than anything still on the frontier.
        #[derive(PartialEq, Eq)]
        struct Frontier {
            priority: u64,
            // None = an unexpanded subtree; Some = a ready-to-emit terminal.
            terminal: Option<(u32, u64)>,
            node: u32,
            // Key bytes; only terminal keys are complete UTF-8 sequences.
            key: Vec<u8>,
        }
        impl Ord for Frontier {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                self.priority
                    .cmp(&other.priority)
                    // Prefer shorter/lexicographically smaller keys on ties
                    // (BinaryHeap is a max-heap, so reverse the key order).
                    .then_with(|| other.key.cmp(&self.key))
            }
        }
        impl PartialOrd for Frontier {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }

        let mut out = Vec::new();
        if k == 0 {
            return out;
        }
        let mut heap = BinaryHeap::new();
        heap.push(Frontier {
            priority: self.nodes[cursor.node as usize].best,
            terminal: None,
            node: cursor.node,
            key: prefix.as_bytes().to_vec(),
        });
        while let Some(entry) = heap.pop() {
            match entry.terminal {
                Some((payload, weight)) => {
                    out.push(Completion {
                        key: String::from_utf8(entry.key).expect("inserted keys are valid UTF-8"),
                        payload,
                        weight,
                    });
                    if out.len() == k {
                        break;
                    }
                }
                None => {
                    let node = &self.nodes[entry.node as usize];
                    if let Some((payload, weight)) = node.terminal {
                        heap.push(Frontier {
                            priority: weight,
                            terminal: Some((payload, weight)),
                            node: entry.node,
                            key: entry.key.clone(),
                        });
                    }
                    for &(byte, child) in &node.children {
                        let mut key = entry.key.clone();
                        key.push(byte);
                        heap.push(Frontier {
                            priority: self.nodes[child as usize].best,
                            terminal: None,
                            node: child,
                            key,
                        });
                    }
                }
            }
        }
        out
    }

    /// All completions under `prefix` (unbounded; document order of keys).
    pub fn complete_all(&self, prefix: &str) -> Vec<Completion> {
        self.complete(prefix, usize::MAX)
    }

    /// Serializes the trie structurally (node array with edges, terminals
    /// and cached subtree maxima) for the snapshot `TRIES` section — the
    /// decoded trie is field-for-field identical, so completion order is
    /// bit-stable across a snapshot round-trip.
    pub fn encode(&self, out: &mut Vec<u8>) {
        put_varint(out, self.key_count as u64);
        put_varint(out, self.nodes.len() as u64);
        for node in &self.nodes {
            put_varint(out, node.children.len() as u64);
            for &(byte, child) in &node.children {
                out.push(byte);
                put_varint(out, u64::from(child));
            }
            match node.terminal {
                None => put_varint(out, 0),
                Some((payload, weight)) => {
                    put_varint(out, 1);
                    put_varint(out, u64::from(payload));
                    put_varint(out, weight);
                }
            }
            put_varint(out, node.best);
        }
    }

    /// Deserializes a trie written by [`encode`](Self::encode). Edge
    /// targets are bounds-checked against the node count and edges must be
    /// strictly sorted by byte (the lookup invariant); terminal payloads
    /// must be below `payload_bound` (a symbol or term-table index).
    pub fn decode(data: &[u8], pos: &mut usize, payload_bound: u32) -> Result<Trie, StorageError> {
        let key_count = rd_len(data, pos, "trie key count")?;
        let node_count = rd_len(data, pos, "trie node count")?;
        if node_count == 0 || node_count > data.len() {
            return Err(corrupt("trie node count"));
        }
        let mut nodes = Vec::with_capacity(node_count);
        for _ in 0..node_count {
            let edge_count = rd_len(data, pos, "trie edge count")?;
            if edge_count > data.len() {
                return Err(corrupt("trie edge count"));
            }
            let mut children = Vec::with_capacity(edge_count);
            for _ in 0..edge_count {
                let byte = rd_u8(data, pos, "trie edge byte")?;
                let child = rd_len(data, pos, "trie edge target")?;
                if child >= node_count {
                    return Err(corrupt("trie edge target out of range"));
                }
                if let Some(&(prev, _)) = children.last() {
                    if prev >= byte {
                        return Err(corrupt("trie edges not sorted"));
                    }
                }
                children.push((byte, child as u32));
            }
            let terminal = match rd_varint(data, pos, "trie terminal flag")? {
                0 => None,
                1 => {
                    let payload = u32::try_from(rd_varint(data, pos, "trie payload")?)
                        .map_err(|_| corrupt("trie payload"))?;
                    if payload >= payload_bound {
                        return Err(corrupt("trie payload out of range"));
                    }
                    let weight = rd_varint(data, pos, "trie weight")?;
                    Some((payload, weight))
                }
                _ => return Err(corrupt("trie terminal flag")),
            };
            let best = rd_varint(data, pos, "trie best weight")?;
            nodes.push(TrieNode {
                children,
                terminal,
                best,
            });
        }
        Ok(Trie { nodes, key_count })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Trie {
        let mut t = Trie::new();
        t.insert("author", 0, 50);
        t.insert("article", 1, 80);
        t.insert("art", 2, 10);
        t.insert("book", 3, 70);
        t.insert("booktitle", 4, 20);
        t
    }

    #[test]
    fn exact_lookup() {
        let t = sample();
        assert_eq!(t.get("book"), Some((3, 70)));
        assert_eq!(t.get("boo"), None);
        assert_eq!(t.get("bookt"), None);
        assert_eq!(t.get("missing"), None);
        assert_eq!(t.len(), 5);
    }

    #[test]
    fn insert_replaces_existing_key() {
        let mut t = sample();
        t.insert("book", 3, 99);
        assert_eq!(t.get("book"), Some((3, 99)));
        assert_eq!(t.len(), 5, "no new key added");
        // The new weight propagates to completion order.
        let top = t.complete("", 1);
        assert_eq!(top[0].key, "book");
    }

    #[test]
    fn completion_orders_by_weight() {
        let t = sample();
        let completions = t.complete("a", 10);
        let keys: Vec<&str> = completions.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, vec!["article", "author", "art"]);
    }

    #[test]
    fn completion_respects_k() {
        let t = sample();
        let top2 = t.complete("", 2);
        assert_eq!(top2.len(), 2);
        assert_eq!(top2[0].key, "article");
        assert_eq!(top2[1].key, "book");
    }

    #[test]
    fn prefix_that_is_itself_a_key_is_included() {
        let t = sample();
        let completions = t.complete("art", 10);
        let keys: Vec<&str> = completions.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, vec!["article", "art"]);
    }

    #[test]
    fn missing_prefix_gives_no_completions() {
        let t = sample();
        assert!(t.complete("zzz", 5).is_empty());
        assert!(t.cursor_at("zzz").is_none());
    }

    #[test]
    fn cursor_narrowing_matches_fresh_prefix_queries() {
        let t = sample();
        let mut cursor = t.root_cursor();
        for (i, byte) in "boo".bytes().enumerate() {
            cursor = t.descend(cursor, byte).unwrap();
            let prefix = &"boo"[..=i];
            assert_eq!(
                t.complete_from(cursor, prefix, 10),
                t.complete(prefix, 10),
                "prefix {prefix}"
            );
        }
        assert!(t.descend(cursor, b'z').is_none());
    }

    #[test]
    fn complete_all_enumerates_everything() {
        let t = sample();
        assert_eq!(t.complete_all("").len(), 5);
        assert_eq!(t.complete_all("b").len(), 2);
    }

    #[test]
    fn ties_broken_lexicographically() {
        let mut t = Trie::new();
        t.insert("beta", 0, 5);
        t.insert("alpha", 1, 5);
        let completions = t.complete("", 2);
        let keys: Vec<&str> = completions.iter().map(|c| c.key.as_str()).collect();
        assert_eq!(keys, vec!["alpha", "beta"]);
    }

    #[test]
    fn empty_trie_behaves() {
        let t = Trie::new();
        assert!(t.is_empty());
        assert!(t.complete("", 3).is_empty());
        assert_eq!(t.cursor_at(""), Some(t.root_cursor()));
    }
}
