//! # lotusx-index
//!
//! The index layer of LotusX. One pass over a parsed document builds:
//!
//! * [`tag_index::TagIndex`] — per-tag, document-ordered element streams
//!   (the inputs of structural and holistic twig joins);
//! * [`columns::TagColumns`] — a struct-of-arrays mirror of those streams
//!   (contiguous start/end/level columns plus a prefix-max-end column)
//!   that the join engine scans branch-light and skips with galloping
//!   binary search;
//! * [`value_index::ValueIndex`] — tokenized term postings with term
//!   frequencies, an exact-value index, and a numeric index for range
//!   predicates;
//! * [`trie::Trie`] — a from-scratch byte trie with best-first top-k
//!   completion (tags and content terms each get one);
//! * [`dataguide::DataGuide`] — a strong DataGuide structural summary,
//!   the engine behind *position-aware* candidate filtering and
//!   satisfiability pruning;
//! * [`stats::Stats`] — corpus statistics used by ranking — and
//!   [`stats::JoinStats`] — per-tag frequencies and DataGuide-derived
//!   pair selectivities, the cost-model inputs of the adaptive join
//!   algorithm chooser.
//!
//! [`IndexedDocument`] bundles the document, its labels and all indexes.

#![warn(missing_docs)]

pub mod builder;
pub mod columns;
pub mod dataguide;
pub mod snapshot;
pub mod stats;
pub mod tag_index;
pub mod trie;
pub mod value_index;
mod wire;

pub use builder::{BuildOptions, IndexedDocument};
pub use columns::{ColumnCursor, ColumnView, OwnedColumns, TagColumns};
pub use dataguide::{DataGuide, GuideNodeId};
pub use stats::{JoinStats, Stats};
pub use tag_index::{ElementEntry, TagIndex, TagStream};
pub use trie::{Trie, TrieCursor};
pub use value_index::{tokenize, ValueIndex};
