//! Content indexes: tokenized term postings, exact values, and numbers.
//!
//! Terms and exact values are attributed to the element that *directly*
//! contains the text (or carries the attribute): that is the node a value
//! predicate in a twig query attaches to.

use crate::wire::{
    corrupt, get_string, put_string, put_varint, rd_f64, rd_len, rd_varint, StorageError,
};
use lotusx_xml::NodeId;
use std::collections::HashMap;

/// Splits text into lowercase alphanumeric terms.
///
/// ```
/// use lotusx_index::tokenize;
/// assert_eq!(tokenize("Holistic Twig-Joins, 2002!"), vec!["holistic", "twig", "joins", "2002"]);
/// ```
pub fn tokenize(text: &str) -> Vec<String> {
    let mut terms = Vec::new();
    let mut current = String::new();
    for ch in text.chars() {
        if ch.is_alphanumeric() {
            current.extend(ch.to_lowercase());
        } else if !current.is_empty() {
            terms.push(std::mem::take(&mut current));
        }
    }
    if !current.is_empty() {
        terms.push(current);
    }
    terms
}

/// One posting: an element and the term's frequency within it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Posting {
    /// The element directly containing the term.
    pub node: NodeId,
    /// Occurrences of the term in that element's direct content.
    pub tf: u32,
}

/// Content index over a document.
#[derive(Clone, Debug, Default)]
pub struct ValueIndex {
    terms: HashMap<String, Vec<Posting>>,
    exact: HashMap<String, Vec<NodeId>>,
    numeric: Vec<(f64, NodeId)>,
    /// Number of elements carrying any content (the "document count" for IDF).
    content_elements: usize,
}

impl ValueIndex {
    /// Creates an empty index.
    pub fn new() -> Self {
        Self::default()
    }

    /// Indexes the direct content of `node`: its text plus attribute values.
    pub fn index_element(&mut self, node: NodeId, direct_text: &str, attr_values: &[&str]) {
        let mut any = false;
        let mut tf: HashMap<String, u32> = HashMap::new();
        for source in std::iter::once(direct_text).chain(attr_values.iter().copied()) {
            for term in tokenize(source) {
                *tf.entry(term).or_insert(0) += 1;
                any = true;
            }
        }
        for (term, count) in tf {
            self.terms
                .entry(term)
                .or_default()
                .push(Posting { node, tf: count });
        }
        let trimmed = direct_text.trim();
        if !trimmed.is_empty() {
            self.exact
                .entry(trimmed.to_lowercase())
                .or_default()
                .push(node);
            if let Ok(n) = trimmed.parse::<f64>() {
                self.numeric.push((n, node));
            }
            any = true;
        }
        if any {
            self.content_elements += 1;
        }
    }

    /// Appends all postings of `other` after the postings of `self`.
    ///
    /// `other` must have been indexed over a later contiguous chunk of the
    /// same document, so per-term posting lists stay in document order.
    /// Call [`Self::finish`] once after the last merge. Used by the
    /// parallel builder to merge per-chunk partial indexes.
    pub fn merge_append(&mut self, other: ValueIndex) {
        for (term, postings) in other.terms {
            self.terms.entry(term).or_default().extend(postings);
        }
        for (value, nodes) in other.exact {
            self.exact.entry(value).or_default().extend(nodes);
        }
        self.numeric.extend(other.numeric);
        self.content_elements += other.content_elements;
    }

    /// Finishes construction: sorts the numeric index.
    pub fn finish(&mut self) {
        self.numeric
            .sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap_or(std::cmp::Ordering::Equal));
    }

    /// Elements whose content contains `term` (case-insensitive).
    pub fn postings(&self, term: &str) -> &[Posting] {
        self.terms
            .get(&term.to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Document frequency of `term`.
    pub fn df(&self, term: &str) -> usize {
        self.postings(term).len()
    }

    /// Elements whose trimmed direct text equals `value` (case-insensitive).
    pub fn exact_matches(&self, value: &str) -> &[NodeId] {
        self.exact
            .get(&value.trim().to_lowercase())
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// Elements whose numeric value lies in `[low, high]`.
    pub fn range_matches(&self, low: f64, high: f64) -> Vec<NodeId> {
        let from = self.numeric.partition_point(|(v, _)| *v < low);
        self.numeric[from..]
            .iter()
            .take_while(|(v, _)| *v <= high)
            .map(|(_, n)| *n)
            .collect()
    }

    /// Number of elements carrying any content.
    pub fn content_element_count(&self) -> usize {
        self.content_elements
    }

    /// Number of distinct terms.
    pub fn term_count(&self) -> usize {
        self.terms.len()
    }

    /// Iterates over `(term, document frequency)` pairs (arbitrary order).
    pub fn terms(&self) -> impl Iterator<Item = (&str, usize)> {
        self.terms.iter().map(|(t, p)| (t.as_str(), p.len()))
    }

    /// Serializes the content index for the snapshot `VALUES` section.
    /// Term and exact-value maps are emitted with sorted keys so the
    /// encoding is deterministic regardless of hash-map order; node ids
    /// are written through `node_map` (old id → canonical preorder id).
    pub(crate) fn encode(&self, node_map: &[u32], out: &mut Vec<u8>) {
        let mut term_keys: Vec<&String> = self.terms.keys().collect();
        term_keys.sort();
        put_varint(out, term_keys.len() as u64);
        for key in term_keys {
            put_string(out, key);
            let postings = &self.terms[key];
            put_varint(out, postings.len() as u64);
            for p in postings {
                put_varint(out, u64::from(node_map[p.node.index()]));
                put_varint(out, u64::from(p.tf));
            }
        }
        let mut exact_keys: Vec<&String> = self.exact.keys().collect();
        exact_keys.sort();
        put_varint(out, exact_keys.len() as u64);
        for key in exact_keys {
            put_string(out, key);
            let nodes = &self.exact[key];
            put_varint(out, nodes.len() as u64);
            for n in nodes {
                put_varint(out, u64::from(node_map[n.index()]));
            }
        }
        put_varint(out, self.numeric.len() as u64);
        for (value, node) in &self.numeric {
            out.extend_from_slice(&value.to_bits().to_le_bytes());
            put_varint(out, u64::from(node_map[node.index()]));
        }
        put_varint(out, self.content_elements as u64);
    }

    /// Deserializes a content index written by [`encode`](Self::encode),
    /// bounds-checking every node id against `node_count`.
    pub(crate) fn decode(
        data: &[u8],
        pos: &mut usize,
        node_count: usize,
    ) -> Result<ValueIndex, StorageError> {
        let rd_node = |data: &[u8], pos: &mut usize| -> Result<NodeId, StorageError> {
            let id = rd_len(data, pos, "value-index node id")?;
            if id >= node_count {
                return Err(corrupt("value-index node id out of range"));
            }
            Ok(NodeId::from_index(id))
        };
        let term_count = rd_len(data, pos, "value-index term count")?;
        if term_count > data.len() {
            return Err(corrupt("value-index term count"));
        }
        let mut terms = HashMap::with_capacity(term_count);
        for _ in 0..term_count {
            let key = get_string(data, pos).ok_or(corrupt("value-index term key"))?;
            let posting_count = rd_len(data, pos, "value-index posting count")?;
            if posting_count > data.len() {
                return Err(corrupt("value-index posting count"));
            }
            let mut postings = Vec::with_capacity(posting_count);
            for _ in 0..posting_count {
                let node = rd_node(data, pos)?;
                let tf = u32::try_from(rd_varint(data, pos, "value-index tf")?)
                    .map_err(|_| corrupt("value-index tf"))?;
                postings.push(Posting { node, tf });
            }
            terms.insert(key, postings);
        }
        let exact_count = rd_len(data, pos, "value-index exact count")?;
        if exact_count > data.len() {
            return Err(corrupt("value-index exact count"));
        }
        let mut exact = HashMap::with_capacity(exact_count);
        for _ in 0..exact_count {
            let key = get_string(data, pos).ok_or(corrupt("value-index exact key"))?;
            let node_len = rd_len(data, pos, "value-index exact node count")?;
            if node_len > data.len() {
                return Err(corrupt("value-index exact node count"));
            }
            let mut nodes = Vec::with_capacity(node_len);
            for _ in 0..node_len {
                nodes.push(rd_node(data, pos)?);
            }
            exact.insert(key, nodes);
        }
        let numeric_count = rd_len(data, pos, "value-index numeric count")?;
        if numeric_count > data.len() {
            return Err(corrupt("value-index numeric count"));
        }
        let mut numeric = Vec::with_capacity(numeric_count);
        for _ in 0..numeric_count {
            let value = rd_f64(data, pos, "value-index numeric value")?;
            let node = rd_node(data, pos)?;
            numeric.push((value, node));
        }
        let content_elements = rd_len(data, pos, "value-index content elements")?;
        Ok(ValueIndex {
            terms,
            exact,
            numeric,
            content_elements,
        })
    }

    /// Approximate heap size in bytes.
    pub fn size_bytes(&self) -> usize {
        let terms: usize = self
            .terms
            .iter()
            .map(|(k, v)| k.capacity() + v.capacity() * std::mem::size_of::<Posting>())
            .sum();
        let exact: usize = self
            .exact
            .iter()
            .map(|(k, v)| k.capacity() + v.capacity() * std::mem::size_of::<NodeId>())
            .sum();
        terms + exact + self.numeric.capacity() * std::mem::size_of::<(f64, NodeId)>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(i: usize) -> NodeId {
        NodeId::from_index(i)
    }

    #[test]
    fn tokenize_splits_and_lowercases() {
        assert_eq!(tokenize("Hello, World"), vec!["hello", "world"]);
        assert_eq!(tokenize("  "), Vec::<String>::new());
        assert_eq!(tokenize("a1-b2"), vec!["a1", "b2"]);
        assert_eq!(tokenize("Éclair"), vec!["éclair"]);
    }

    #[test]
    fn term_postings_with_tf() {
        let mut idx = ValueIndex::new();
        idx.index_element(node(1), "xml twig xml", &[]);
        idx.index_element(node(2), "twig", &[]);
        idx.finish();
        let xml = idx.postings("XML");
        assert_eq!(xml.len(), 1);
        assert_eq!(xml[0].tf, 2);
        assert_eq!(idx.df("twig"), 2);
        assert_eq!(idx.df("missing"), 0);
    }

    #[test]
    fn attribute_values_are_indexed_as_terms() {
        let mut idx = ValueIndex::new();
        idx.index_element(node(1), "", &["Morgan Kaufmann"]);
        idx.finish();
        assert_eq!(idx.df("kaufmann"), 1);
        // But attributes do not create exact text values.
        assert!(idx.exact_matches("Morgan Kaufmann").is_empty());
    }

    #[test]
    fn exact_match_is_trimmed_case_insensitive() {
        let mut idx = ValueIndex::new();
        idx.index_element(node(3), "  Jiaheng Lu ", &[]);
        idx.finish();
        assert_eq!(idx.exact_matches("jiaheng lu"), &[node(3)]);
        assert_eq!(idx.exact_matches("JIAHENG LU  "), &[node(3)]);
        assert!(idx.exact_matches("jiaheng").is_empty());
    }

    #[test]
    fn numeric_range_queries() {
        let mut idx = ValueIndex::new();
        idx.index_element(node(1), "1999", &[]);
        idx.index_element(node(2), "2003", &[]);
        idx.index_element(node(3), "2010", &[]);
        idx.index_element(node(4), "not a number", &[]);
        idx.finish();
        assert_eq!(idx.range_matches(2000.0, 2010.0), vec![node(2), node(3)]);
        assert_eq!(idx.range_matches(1999.0, 1999.0), vec![node(1)]);
        assert!(idx.range_matches(2011.0, 3000.0).is_empty());
    }

    #[test]
    fn content_element_count_counts_elements_not_terms() {
        let mut idx = ValueIndex::new();
        idx.index_element(node(1), "a b c", &[]);
        idx.index_element(node(2), "", &[]);
        idx.index_element(node(3), "d", &[]);
        idx.finish();
        assert_eq!(idx.content_element_count(), 2);
        assert_eq!(idx.term_count(), 4);
    }
}
