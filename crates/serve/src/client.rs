//! A minimal blocking HTTP/1.1 client for tests, smoke checks, and the
//! `--probe`/`--stop` modes of the `lotusx-serve` binary.
//!
//! Like the server, it speaks a small subset of HTTP/1.1 and depends on
//! nothing outside `std::net`. [`get`]/[`post`] send `Connection:
//! close` one-shots; [`Conn`] holds a keep-alive connection open for
//! multiple (optionally pipelined) requests. It is *not* a
//! general-purpose client — it exists so the end-to-end test suite and
//! the CI smoke stage can exercise the real wire protocol without curl.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// A parsed HTTP response.
#[derive(Clone, Debug)]
pub struct Response {
    /// The status code from the status line.
    pub status: u16,
    /// Header `(name, value)` pairs, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// The response body, exactly as received.
    pub body: Vec<u8>,
}

impl Response {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (lossy).
    pub fn body_text(&self) -> String {
        String::from_utf8_lossy(&self.body).into_owned()
    }
}

/// Default client-side socket timeout.
pub const CLIENT_TIMEOUT: Duration = Duration::from_secs(10);

/// Sends one `GET` request and reads the full response.
pub fn get(addr: SocketAddr, path: &str) -> io::Result<Response> {
    request(addr, "GET", path, None)
}

/// Sends one `POST` request with a body and reads the full response.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> io::Result<Response> {
    request(addr, "POST", path, Some(body.as_bytes()))
}

/// Sends one request (body optional) and reads the full response.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&[u8]>,
) -> io::Result<Response> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(CLIENT_TIMEOUT))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    let mut head = format!("{method} {path} HTTP/1.1\r\nHost: lotusx\r\n");
    if let Some(body) = body {
        head.push_str(&format!("Content-Length: {}\r\n", body.len()));
    }
    head.push_str("Connection: close\r\n\r\n");
    let mut out = head.into_bytes();
    if let Some(body) = body {
        out.extend_from_slice(body);
    }
    stream.write_all(&out)?;
    read_response(&mut stream)
}

/// Writes raw byte `chunks` to a fresh connection, sleeping the paired
/// duration after each chunk, then reads whatever response comes back.
///
/// This is the hardening-suite workhorse: truncated request lines,
/// invalid bytes, and slow-loris drips are all just chunk schedules.
/// Returns `Ok(None)` when the server closed the connection without a
/// parseable response.
pub fn raw_request(
    addr: SocketAddr,
    chunks: &[(&[u8], Duration)],
    read_timeout: Duration,
) -> io::Result<Option<Response>> {
    let mut stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(read_timeout))?;
    stream.set_write_timeout(Some(CLIENT_TIMEOUT))?;
    for (bytes, pause) in chunks {
        if !bytes.is_empty() {
            // The server may have rejected us already; a write error
            // just means the response (if any) is ready to read.
            if stream
                .write_all(bytes)
                .and_then(|_| stream.flush())
                .is_err()
            {
                break;
            }
        }
        if !pause.is_zero() {
            std::thread::sleep(*pause);
        }
    }
    // Present EOF so a truncated request is seen as truncated (400)
    // rather than merely stalled (408).
    let _ = stream.shutdown(std::net::Shutdown::Write);
    match read_response(&mut stream) {
        Ok(response) => Ok(Some(response)),
        Err(_) => Ok(None),
    }
}

/// Reads one complete HTTP response from `stream` (the server always
/// closes after responding, so "read to EOF" terminates; the declared
/// `Content-Length` is honoured when present).
pub fn read_response(stream: &mut TcpStream) -> io::Result<Response> {
    let mut buf = Vec::new();
    let mut chunk = [0u8; 4096];
    let header_end = loop {
        if let Some(pos) = find_header_end(&buf) {
            break pos;
        }
        let n = stream.read(&mut chunk)?;
        if n == 0 {
            return Err(io::Error::new(
                io::ErrorKind::UnexpectedEof,
                "connection closed before response head",
            ));
        }
        buf.extend_from_slice(&chunk[..n]);
    };

    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();

    let mut body = buf[header_end + 4..].to_vec();
    let content_length = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse::<usize>().ok());
    match content_length {
        Some(n) => {
            while body.len() < n {
                let read = stream.read(&mut chunk)?;
                if read == 0 {
                    return Err(io::Error::new(
                        io::ErrorKind::UnexpectedEof,
                        "body shorter than content-length",
                    ));
                }
                body.extend_from_slice(&chunk[..read]);
            }
            body.truncate(n);
        }
        None => {
            // Read to EOF.
            loop {
                let read = stream.read(&mut chunk)?;
                if read == 0 {
                    break;
                }
                body.extend_from_slice(&chunk[..read]);
            }
        }
    }

    Ok(Response {
        status,
        headers,
        body,
    })
}

fn find_header_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

/// Attempts to parse one complete response out of `buf`.
///
/// Returns the response and how many bytes it occupied (the remainder
/// belongs to the next pipelined response), or `None` when more bytes
/// are needed. Responses from this server always carry
/// `Content-Length`, so framing never needs EOF.
pub fn parse_response(buf: &[u8]) -> io::Result<Option<(Response, usize)>> {
    let Some(header_end) = find_header_end(buf) else {
        return Ok(None);
    };
    let head = std::str::from_utf8(&buf[..header_end])
        .map_err(|_| io::Error::new(io::ErrorKind::InvalidData, "non-UTF-8 response head"))?;
    let mut lines = head.split("\r\n");
    let status_line = lines
        .next()
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "empty response"))?;
    let status: u16 = status_line
        .split(' ')
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "bad status line"))?;
    let headers: Vec<(String, String)> = lines
        .filter_map(|line| line.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(n, _)| n == "content-length")
        .and_then(|(_, v)| v.parse().ok())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "response without content-length",
            )
        })?;
    let body_start = header_end + 4;
    if buf.len() < body_start + content_length {
        return Ok(None);
    }
    let body = buf[body_start..body_start + content_length].to_vec();
    Ok(Some((
        Response {
            status,
            headers,
            body,
        },
        body_start + content_length,
    )))
}

/// A keep-alive connection: multiple requests over one socket, with
/// support for pipelining (send several, then read the responses in
/// order). Requests are sent *without* `Connection: close`, so an
/// HTTP/1.1 server keeps the socket open between them.
pub struct Conn {
    stream: TcpStream,
    buf: Vec<u8>,
}

impl Conn {
    /// Connects with the default client timeout.
    pub fn connect(addr: SocketAddr) -> io::Result<Conn> {
        Conn::connect_timeout(addr, CLIENT_TIMEOUT)
    }

    /// Connects with an explicit socket read/write timeout.
    pub fn connect_timeout(addr: SocketAddr, timeout: Duration) -> io::Result<Conn> {
        let stream = TcpStream::connect(addr)?;
        stream.set_read_timeout(Some(timeout))?;
        stream.set_write_timeout(Some(timeout))?;
        Ok(Conn {
            stream,
            buf: Vec::new(),
        })
    }

    /// Sends one keep-alive request without waiting for the response
    /// (pipelining = several `send`s before the first `read_one`).
    pub fn send(&mut self, method: &str, path: &str, body: Option<&[u8]>) -> io::Result<()> {
        let mut head = format!("{method} {path} HTTP/1.1\r\nHost: lotusx\r\n");
        if let Some(body) = body {
            head.push_str(&format!("Content-Length: {}\r\n", body.len()));
        }
        head.push_str("\r\n");
        let mut out = head.into_bytes();
        if let Some(body) = body {
            out.extend_from_slice(body);
        }
        self.send_raw(&out)
    }

    /// Writes raw bytes as-is (for protocol tests).
    pub fn send_raw(&mut self, bytes: &[u8]) -> io::Result<()> {
        self.stream.write_all(bytes)?;
        self.stream.flush()
    }

    /// Reads the next in-order response, leaving any pipelined
    /// follow-up bytes buffered for the next call.
    pub fn read_one(&mut self) -> io::Result<Response> {
        let mut chunk = [0u8; 4096];
        loop {
            if let Some((response, used)) = parse_response(&self.buf)? {
                self.buf.drain(..used);
                return Ok(response);
            }
            let n = self.stream.read(&mut chunk)?;
            if n == 0 {
                return Err(io::Error::new(
                    io::ErrorKind::UnexpectedEof,
                    "connection closed before response",
                ));
            }
            self.buf.extend_from_slice(&chunk[..n]);
        }
    }

    /// Half-closes the write side (tells the server "no more
    /// requests"); buffered responses can still be read.
    pub fn shutdown_write(&self) -> io::Result<()> {
        self.stream.shutdown(std::net::Shutdown::Write)
    }

    /// Was the connection closed by the server? Reads one byte
    /// (blocking up to the socket timeout): `Ok(true)` on clean EOF.
    pub fn at_eof(&mut self) -> io::Result<bool> {
        let mut byte = [0u8; 1];
        match self.stream.read(&mut byte) {
            Ok(0) => Ok(true),
            Ok(n) => {
                self.buf.extend_from_slice(&byte[..n]);
                Ok(false)
            }
            Err(e) => Err(e),
        }
    }

    /// The underlying stream (for timeout tweaks in tests).
    pub fn stream(&self) -> &TcpStream {
        &self.stream
    }
}
