//! The threaded HTTP server: accept loop, fixed worker pool, admission
//! control, panic isolation, and graceful shutdown.
//!
//! Threading model: one accept thread (the caller of [`Server::run`])
//! polls the listener and dispatches accepted connections to a fixed
//! pool of worker threads over a channel. Admission is gated *before*
//! dispatch — when `max_inflight` connections are queued or being
//! served, new connections are answered `429` straight from the accept
//! thread and closed. Only the accept thread increments the in-flight
//! count, so the gate never over-admits.
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) does three things, in
//! order: it cancels the server-wide [`CancelToken`] attached to every
//! in-flight query's budget (so long-running queries truncate at their
//! next cooperative checkpoint and still produce a valid, marked
//! response), stops the accept loop, and lets the workers drain every
//! already-accepted connection before joining. No in-flight request is
//! ever answered with a torn or missing response.

use crate::http::{self, Limits, Reject, Request};
use crate::wire;
use lotusx::{CancelToken, LotusX, QueryRequest};
use lotusx_obs::{EventKind, QueryId, Stage};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::time::{Duration, Instant};

/// Server configuration. The default binds an ephemeral loopback port
/// with one worker per available core.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` = ephemeral).
    pub addr: String,
    /// Worker threads serving requests (at least 1).
    pub threads: usize,
    /// Maximum connections queued or being served before new ones are
    /// answered `429`.
    pub max_inflight: usize,
    /// Per-connection read timeout (slow or stalled peers get `408`).
    pub read_timeout: Duration,
    /// Per-connection write timeout.
    pub write_timeout: Duration,
    /// Request parsing limits (body cap, header caps).
    pub limits: Limits,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: lotusx_par::default_threads(),
            max_inflight: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            limits: Limits::default(),
        }
    }
}

/// Lifetime request counters, kept per server instance (exact and
/// isolated, unlike the process-global obs counters they mirror).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests that parsed and were routed (including ones that were
    /// then rejected with a 4xx).
    pub requests: AtomicU64,
    /// Rejected work: parse failures, timeouts, 404/405/411/413/429/431,
    /// and bad request bodies.
    pub rejected: AtomicU64,
    /// Handler panics isolated to their connection.
    pub panics: AtomicU64,
    /// `POST /query` requests answered 200.
    pub queries: AtomicU64,
    /// `POST /complete` requests answered 200.
    pub completions: AtomicU64,
    /// `GET /stats` requests answered 200.
    pub stats_requests: AtomicU64,
    /// `GET /healthz` requests answered 200.
    pub health_checks: AtomicU64,
    /// Query responses that went out marked truncated.
    pub truncated_responses: AtomicU64,
}

/// A plain-value copy of [`ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ServerStats::requests`].
    pub requests: u64,
    /// See [`ServerStats::rejected`].
    pub rejected: u64,
    /// See [`ServerStats::panics`].
    pub panics: u64,
    /// See [`ServerStats::queries`].
    pub queries: u64,
    /// See [`ServerStats::completions`].
    pub completions: u64,
    /// See [`ServerStats::stats_requests`].
    pub stats_requests: u64,
    /// See [`ServerStats::health_checks`].
    pub health_checks: u64,
    /// See [`ServerStats::truncated_responses`].
    pub truncated_responses: u64,
}

impl ServerStats {
    /// A consistent-enough snapshot (each field read relaxed).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            health_checks: self.health_checks.load(Ordering::Relaxed),
            truncated_responses: self.truncated_responses.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// The `server` section of the `/stats` response body.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"requests\":{},\"rejected\":{},\"panics\":{},\"queries\":{},\
             \"completions\":{},\"stats_requests\":{},\"health_checks\":{},\
             \"truncated_responses\":{}}}",
            self.requests,
            self.rejected,
            self.panics,
            self.queries,
            self.completions,
            self.stats_requests,
            self.health_checks,
            self.truncated_responses
        )
    }
}

/// A cloneable handle for stopping and inspecting a running server.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    query_cancel: CancelToken,
    stats: Arc<ServerStats>,
    addr: SocketAddr,
}

impl ServerHandle {
    /// Begins graceful shutdown: cancels every in-flight query's budget
    /// token, stops accepting, and lets workers drain what was already
    /// accepted. Idempotent; returns immediately (join the thread
    /// running [`Server::run`] to wait for the drain).
    pub fn shutdown(&self) {
        self.query_cancel.cancel();
        self.stop.store(true, Ordering::SeqCst);
    }

    /// Has shutdown been requested?
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The server's lifetime request counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A bound (but not yet running) LotusX HTTP server.
pub struct Server {
    listener: TcpListener,
    config: ServeConfig,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    query_cancel: CancelToken,
    stats: Arc<ServerStats>,
    inflight: Arc<AtomicUsize>,
}

/// How often the accept loop re-checks the stop flag while idle.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

impl Server {
    /// Binds the configured address. The engine is supplied at
    /// [`Server::run`] time so the server can borrow it (no `'static`
    /// requirement — run it under `std::thread::scope` if needed).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        if config.threads == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "threads must be at least 1",
            ));
        }
        if config.max_inflight == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "max_inflight must be at least 1",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        Ok(Server {
            listener,
            config,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            query_cancel: CancelToken::new(),
            stats: Arc::new(ServerStats::default()),
            inflight: Arc::new(AtomicUsize::new(0)),
        })
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping/inspecting this server from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            query_cancel: self.query_cancel.clone(),
            stats: Arc::clone(&self.stats),
            addr: self.addr,
        }
    }

    /// Serves `engine` until [`ServerHandle::shutdown`] is called,
    /// blocking the calling thread. Worker threads are scoped to this
    /// call: when it returns, every accepted connection has been
    /// answered and every thread joined.
    pub fn run(&self, engine: &LotusX) {
        let (tx, rx) = mpsc::channel::<TcpStream>();
        let rx = Mutex::new(rx);
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| self.worker_loop(engine, &rx));
            }
            self.accept_loop(&tx);
            // Dropping the sender lets idle workers observe the
            // disconnect once the queue is drained.
            drop(tx);
        });
    }

    fn accept_loop(&self, tx: &mpsc::Sender<TcpStream>) {
        while !self.stop.load(Ordering::SeqCst) {
            match self.listener.accept() {
                Ok((mut stream, _peer)) => {
                    // Admission gate: only this thread increments the
                    // in-flight count, so the check cannot over-admit.
                    if self.inflight.load(Ordering::SeqCst) >= self.config.max_inflight {
                        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                        if lotusx_obs::enabled() {
                            lotusx_obs::metrics().incr("http_rejected", 1);
                        }
                        let _ = http::set_timeouts(
                            &stream,
                            self.config.read_timeout,
                            self.config.write_timeout,
                        );
                        let _ = http::write_error(&mut stream, 429, "server at capacity");
                        continue;
                    }
                    self.inflight.fetch_add(1, Ordering::SeqCst);
                    if tx.send(stream).is_err() {
                        // Workers are gone; nothing to do but stop.
                        self.inflight.fetch_sub(1, Ordering::SeqCst);
                        break;
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                }
                Err(_) => std::thread::sleep(ACCEPT_POLL),
            }
        }
    }

    fn worker_loop(&self, engine: &LotusX, rx: &Mutex<mpsc::Receiver<TcpStream>>) {
        loop {
            // Take the lock only long enough to pull one connection.
            let received = {
                let guard = rx.lock().expect("receiver mutex poisoned");
                guard.recv_timeout(Duration::from_millis(50))
            };
            match received {
                Ok(mut stream) => {
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.handle_connection(engine, &mut stream)
                    }));
                    if outcome.is_err() {
                        // The panic is isolated to this connection; the
                        // peer gets a best-effort 500 and the server
                        // keeps serving.
                        self.stats.panics.fetch_add(1, Ordering::Relaxed);
                        if lotusx_obs::enabled() {
                            lotusx_obs::metrics().incr("http_worker_panics", 1);
                        }
                        let _ = http::write_error(&mut stream, 500, "internal error");
                    }
                    self.inflight.fetch_sub(1, Ordering::SeqCst);
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Keep draining until the accept loop hangs up, even
                    // after a stop request: accepted connections must be
                    // answered.
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    fn handle_connection(&self, engine: &LotusX, stream: &mut TcpStream) {
        if http::set_timeouts(stream, self.config.read_timeout, self.config.write_timeout).is_err()
        {
            return;
        }
        let request = match http::read_request(stream, &self.config.limits) {
            Ok(request) => request,
            Err(reject) => {
                self.reject(stream, &reject);
                return;
            }
        };
        self.stats.requests.fetch_add(1, Ordering::Relaxed);
        if lotusx_obs::enabled() {
            lotusx_obs::metrics().incr("http_requests", 1);
        }
        match self.route(engine, &request) {
            Ok((content_type, body)) => {
                let _ = http::write_response(stream, 200, content_type, body.as_bytes());
            }
            Err(reject) => self.reject(stream, &reject),
        }
    }

    fn reject(&self, stream: &mut TcpStream, reject: &Reject) {
        self.stats.rejected.fetch_add(1, Ordering::Relaxed);
        if lotusx_obs::enabled() {
            lotusx_obs::metrics().incr("http_rejected", 1);
        }
        if !reject.connection_dead() {
            let _ = http::write_error(stream, reject.status, &reject.reason);
        }
    }

    /// Routes one parsed request. `Ok` carries the response content type
    /// and body (the status is always 200).
    fn route(&self, engine: &LotusX, request: &Request) -> Result<(&'static str, String), Reject> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                self.stats.health_checks.fetch_add(1, Ordering::Relaxed);
                Ok(("text/plain", "ok\n".to_string()))
            }
            ("GET", "/stats") => self.timed(Stage::HttpStats, || {
                self.stats.stats_requests.fetch_add(1, Ordering::Relaxed);
                let body = format!(
                    "{{\n\"server\": {},\n\"metrics\": {}}}\n",
                    self.stats.snapshot().to_json(),
                    lotusx_obs::metrics().snapshot().to_json()
                );
                Ok(("application/json", body))
            }),
            ("POST", "/query") => self.timed(Stage::HttpQuery, || {
                let query = self.decode_body(&request.body, wire::decode_query)?;
                let query = self.with_server_cancel(query);
                match engine.query(&query) {
                    Ok(response) => {
                        self.stats.queries.fetch_add(1, Ordering::Relaxed);
                        if !response.completeness.is_complete() {
                            self.stats
                                .truncated_responses
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        Ok(("application/json", wire::encode_response(&response)))
                    }
                    Err(e @ lotusx::LotusError::Query(_)) => Err(Reject {
                        status: 400,
                        reason: e.to_string(),
                    }),
                    Err(e) => Err(Reject {
                        status: 500,
                        reason: e.to_string(),
                    }),
                }
            }),
            ("POST", "/complete") => self.timed(Stage::HttpComplete, || {
                let complete = self.decode_body(&request.body, wire::decode_complete)?;
                let completion = engine.completion_engine();
                let body = match complete {
                    wire::CompleteRequest::Tag { context, prefix, k } => {
                        wire::encode_tag_candidates(&completion.complete_tag(&context, &prefix, k))
                    }
                    wire::CompleteRequest::Value { tag, prefix, k } => {
                        wire::encode_value_candidates(&completion.complete_value(&tag, &prefix, k))
                    }
                };
                self.stats.completions.fetch_add(1, Ordering::Relaxed);
                Ok(("application/json", body))
            }),
            ("POST", "/shutdown") => {
                // Graceful remote stop: the response goes out first, the
                // accept loop notices the flag within its poll interval.
                self.query_cancel.cancel();
                self.stop.store(true, Ordering::SeqCst);
                Ok(("application/json", "{\"stopping\":true}\n".to_string()))
            }
            (_, "/healthz" | "/stats") => Err(Reject {
                status: 405,
                reason: format!("{} requires GET", request.path),
            }),
            (_, "/query" | "/complete" | "/shutdown") => Err(Reject {
                status: 405,
                reason: format!("{} requires POST", request.path),
            }),
            (_, path) => Err(Reject {
                status: 404,
                reason: format!("unknown endpoint {path}"),
            }),
        }
    }

    /// Parses a request body as JSON and decodes it; decode errors are
    /// 400s.
    fn decode_body<T>(
        &self,
        body: &[u8],
        decode: impl FnOnce(&lotusx_obs::JsonValue) -> Result<T, String>,
    ) -> Result<T, Reject> {
        let text = std::str::from_utf8(body).map_err(|_| Reject {
            status: 400,
            reason: "body is not valid UTF-8".to_string(),
        })?;
        let value = lotusx_obs::parse_json(text).map_err(|e| Reject {
            status: 400,
            reason: format!("body is not valid JSON: {e}"),
        })?;
        decode(&value).map_err(|reason| Reject {
            status: 400,
            reason,
        })
    }

    /// Attaches the server-wide cancellation token to a request's budget
    /// (client budgets and the shutdown token compose: whichever trips
    /// first wins).
    fn with_server_cancel(&self, mut request: QueryRequest) -> QueryRequest {
        // The wire never carries a client token, so the slot is free.
        request.budget = request
            .budget
            .clone()
            .with_cancel(self.query_cancel.clone());
        request
    }

    /// Runs `f`, recording its wall time into `stage` (lifetime + live
    /// windows) and emitting stage begin/end trace events when tracing
    /// is on.
    fn timed<T>(&self, stage: Stage, f: impl FnOnce() -> Result<T, Reject>) -> Result<T, Reject> {
        lotusx_obs::emit(
            QueryId::NONE,
            EventKind::StageBegin {
                stage: stage.name(),
            },
        );
        let recording = lotusx_obs::enabled();
        let started = recording.then(Instant::now);
        let out = f();
        if let Some(t0) = started {
            lotusx_obs::metrics().record_stage(stage, t0.elapsed().as_nanos() as u64);
        }
        lotusx_obs::emit(
            QueryId::NONE,
            EventKind::StageEnd {
                stage: stage.name(),
            },
        );
        out
    }
}
