//! The event-driven HTTP server: a nonblocking accept/read/write loop
//! with per-connection state machines, backed by a fixed compute pool.
//!
//! Threading model: **one event-loop thread** (the caller of
//! [`Server::run`]) owns the listener and every connection. It accepts,
//! reads, parses incrementally, and writes — all nonblocking, driven by
//! an epoll/poll readiness [`Poller`](crate::poller::Poller) and a
//! deadline [`TimerWheel`](crate::timer::TimerWheel). Parsed requests
//! are handed to a fixed pool of **worker threads** over a channel;
//! finished responses come back over a completion queue that wakes the
//! loop. A slow (or stalled, or hostile) client therefore costs one
//! connection slot and a few kilobytes of buffer — never a query
//! thread.
//!
//! Admission is gated on the event-loop thread *before* a connection
//! enters service: when `max_inflight` connections are actively being
//! served, new ones are answered `429` and closed. Only the event-loop
//! thread admits, so the gate never over-admits. Idle keep-alive
//! connections release their admission slot between requests and
//! re-acquire it when the next request arrives (see `event_loop` for
//! the exact rules).
//!
//! Graceful shutdown ([`ServerHandle::shutdown`]) cancels the
//! server-wide [`CancelToken`] attached to every in-flight query's
//! budget (long-running queries truncate at their next cooperative
//! checkpoint and still produce a valid, marked response), stops
//! accepting, closes idle connections, and drains every connection that
//! is owed a response before [`Server::run`] returns. No in-flight
//! request is ever answered with a torn or missing response.

use crate::access_log::AccessLog;
use crate::event_loop::{self, Completions, Done, Job, Waker};
use crate::http::{self, Limits, Reject, Request};
use crate::poller::{Backend, Poller};
use crate::tenants::{Tenancy, TenantSet, TenantSnapshot};
use crate::wire;
use lotusx::{CancelToken, EngineRegistry, LotusX, QueryRequest};
use lotusx_obs::{conn_lane, EventKind, PromWriter, QueryId, Stage};
use std::io;
use std::net::{SocketAddr, TcpListener};
use std::panic::AssertUnwindSafe;
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{mpsc, Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// Server configuration. The default binds an ephemeral loopback port
/// with one worker per available core.
#[derive(Clone, Debug)]
pub struct ServeConfig {
    /// Bind address, e.g. `127.0.0.1:8080` (`:0` = ephemeral).
    pub addr: String,
    /// Worker threads serving requests (at least 1).
    pub threads: usize,
    /// Maximum connections actively being served before new ones are
    /// answered `429`. Idle keep-alive connections do not count.
    pub max_inflight: usize,
    /// How long an admitted connection may take to deliver one complete
    /// request; the deadline re-arms on every received byte, and firing
    /// answers `408`.
    pub read_timeout: Duration,
    /// How long a response write may sit blocked on a full socket
    /// before the connection is dropped (write-side backpressure cap).
    pub write_timeout: Duration,
    /// How long a keep-alive connection may sit idle between requests
    /// before the server closes it.
    pub idle_timeout: Duration,
    /// Request parsing limits (body cap, header caps).
    pub limits: Limits,
    /// Readiness backend: `Auto` picks epoll on Linux, `poll` elsewhere.
    pub backend: Backend,
    /// Write a structured JSONL access log to this path (one line per
    /// response, with the parse/queue/compute/flush timing breakdown).
    /// The log is bounded and drop-counting: a slow disk never blocks
    /// the event loop (see `access_log_dropped` in [`ServerStats`]).
    pub access_log: Option<PathBuf>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            addr: "127.0.0.1:0".to_string(),
            threads: lotusx_par::default_threads(),
            max_inflight: 64,
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            idle_timeout: Duration::from_secs(30),
            limits: Limits::default(),
            backend: Backend::Auto,
            access_log: None,
        }
    }
}

/// Lifetime request counters, kept per server instance (exact and
/// isolated, unlike the process-global obs counters they mirror).
#[derive(Debug, Default)]
pub struct ServerStats {
    /// Requests that parsed and were routed (including ones that were
    /// then rejected with a 4xx).
    pub requests: AtomicU64,
    /// Rejected work: parse failures, timeouts, 404/405/411/413/429/431,
    /// and bad request bodies.
    pub rejected: AtomicU64,
    /// Handler panics isolated to their connection.
    pub panics: AtomicU64,
    /// `POST /query` requests answered 200.
    pub queries: AtomicU64,
    /// `POST /complete` requests answered 200.
    pub completions: AtomicU64,
    /// `GET /stats` requests answered 200.
    pub stats_requests: AtomicU64,
    /// `GET /metrics` scrapes answered 200 (on the loop thread).
    pub metrics_requests: AtomicU64,
    /// `GET /healthz` requests answered 200.
    pub health_checks: AtomicU64,
    /// Query responses that went out marked truncated.
    pub truncated_responses: AtomicU64,
    /// Connections accepted (including ones answered `429`).
    pub connections_accepted: AtomicU64,
    /// Gauge: connections currently open.
    pub connections_open: AtomicU64,
    /// Gauge: connections currently holding an admission slot.
    pub connections_active: AtomicU64,
    /// Requests served on a reused keep-alive connection (second and
    /// later requests on one socket).
    pub keepalive_reuses: AtomicU64,
    /// Keep-alive connections closed by the idle deadline.
    pub idle_closes: AtomicU64,
    /// Connections that failed to deliver a request in time (`408`).
    pub read_timeouts: AtomicU64,
    /// Connections dropped because a response write stalled past the
    /// write timeout.
    pub write_stalls: AtomicU64,
    /// Event-loop iterations that found at least one ready event.
    pub loop_wakeups: AtomicU64,
    /// Total readiness events dispatched by the loop.
    pub ready_events: AtomicU64,
    /// High-water mark of events returned by one poll wait (ready-queue
    /// depth).
    pub max_ready_batch: AtomicU64,
    /// Gauge: requests dispatched to the worker pool and not yet picked
    /// up (worker queue depth).
    pub queue_depth: AtomicU64,
    /// High-water mark of `queue_depth`.
    pub max_queue_depth: AtomicU64,
    /// Access-log lines accepted by the bounded writer queue.
    pub access_log_lines: AtomicU64,
    /// Access-log lines dropped (writer queue full or log disabled —
    /// only counted while a log is configured).
    pub access_log_dropped: AtomicU64,
    /// Requests answered `404 unknown_tenant` because no routing rule
    /// matched (or the extracted tenant is not hosted). Always zero on a
    /// single-engine server.
    pub unknown_tenant_rejects: AtomicU64,
    /// Requests answered `429` by a *per-tenant* admission quota (the
    /// server-wide `max_inflight` gate counts under `rejected` via the
    /// accept path instead).
    pub tenant_quota_rejects: AtomicU64,
}

/// A plain-value copy of [`ServerStats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// See [`ServerStats::requests`].
    pub requests: u64,
    /// See [`ServerStats::rejected`].
    pub rejected: u64,
    /// See [`ServerStats::panics`].
    pub panics: u64,
    /// See [`ServerStats::queries`].
    pub queries: u64,
    /// See [`ServerStats::completions`].
    pub completions: u64,
    /// See [`ServerStats::stats_requests`].
    pub stats_requests: u64,
    /// See [`ServerStats::metrics_requests`].
    pub metrics_requests: u64,
    /// See [`ServerStats::health_checks`].
    pub health_checks: u64,
    /// See [`ServerStats::truncated_responses`].
    pub truncated_responses: u64,
    /// See [`ServerStats::connections_accepted`].
    pub connections_accepted: u64,
    /// See [`ServerStats::connections_open`].
    pub connections_open: u64,
    /// See [`ServerStats::connections_active`].
    pub connections_active: u64,
    /// See [`ServerStats::keepalive_reuses`].
    pub keepalive_reuses: u64,
    /// See [`ServerStats::idle_closes`].
    pub idle_closes: u64,
    /// See [`ServerStats::read_timeouts`].
    pub read_timeouts: u64,
    /// See [`ServerStats::write_stalls`].
    pub write_stalls: u64,
    /// See [`ServerStats::loop_wakeups`].
    pub loop_wakeups: u64,
    /// See [`ServerStats::ready_events`].
    pub ready_events: u64,
    /// See [`ServerStats::max_ready_batch`].
    pub max_ready_batch: u64,
    /// See [`ServerStats::queue_depth`].
    pub queue_depth: u64,
    /// See [`ServerStats::max_queue_depth`].
    pub max_queue_depth: u64,
    /// See [`ServerStats::access_log_lines`].
    pub access_log_lines: u64,
    /// See [`ServerStats::access_log_dropped`].
    pub access_log_dropped: u64,
    /// See [`ServerStats::unknown_tenant_rejects`].
    pub unknown_tenant_rejects: u64,
    /// See [`ServerStats::tenant_quota_rejects`].
    pub tenant_quota_rejects: u64,
}

impl ServerStats {
    /// A consistent-enough snapshot (each field read relaxed).
    pub fn snapshot(&self) -> StatsSnapshot {
        StatsSnapshot {
            requests: self.requests.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            panics: self.panics.load(Ordering::Relaxed),
            queries: self.queries.load(Ordering::Relaxed),
            completions: self.completions.load(Ordering::Relaxed),
            stats_requests: self.stats_requests.load(Ordering::Relaxed),
            metrics_requests: self.metrics_requests.load(Ordering::Relaxed),
            health_checks: self.health_checks.load(Ordering::Relaxed),
            truncated_responses: self.truncated_responses.load(Ordering::Relaxed),
            connections_accepted: self.connections_accepted.load(Ordering::Relaxed),
            connections_open: self.connections_open.load(Ordering::Relaxed),
            connections_active: self.connections_active.load(Ordering::Relaxed),
            keepalive_reuses: self.keepalive_reuses.load(Ordering::Relaxed),
            idle_closes: self.idle_closes.load(Ordering::Relaxed),
            read_timeouts: self.read_timeouts.load(Ordering::Relaxed),
            write_stalls: self.write_stalls.load(Ordering::Relaxed),
            loop_wakeups: self.loop_wakeups.load(Ordering::Relaxed),
            ready_events: self.ready_events.load(Ordering::Relaxed),
            max_ready_batch: self.max_ready_batch.load(Ordering::Relaxed),
            queue_depth: self.queue_depth.load(Ordering::Relaxed),
            max_queue_depth: self.max_queue_depth.load(Ordering::Relaxed),
            access_log_lines: self.access_log_lines.load(Ordering::Relaxed),
            access_log_dropped: self.access_log_dropped.load(Ordering::Relaxed),
            unknown_tenant_rejects: self.unknown_tenant_rejects.load(Ordering::Relaxed),
            tenant_quota_rejects: self.tenant_quota_rejects.load(Ordering::Relaxed),
        }
    }
}

impl StatsSnapshot {
    /// Every field as a `(name, value, is_gauge)` triple, in display
    /// order — the one list `/stats` JSON and `/metrics` exposition are
    /// both rendered from, so the two can never drift apart.
    fn fields(&self) -> [(&'static str, u64, bool); 25] {
        [
            ("requests", self.requests, false),
            ("rejected", self.rejected, false),
            ("panics", self.panics, false),
            ("queries", self.queries, false),
            ("completions", self.completions, false),
            ("stats_requests", self.stats_requests, false),
            ("metrics_requests", self.metrics_requests, false),
            ("health_checks", self.health_checks, false),
            ("truncated_responses", self.truncated_responses, false),
            ("connections_accepted", self.connections_accepted, false),
            ("connections_open", self.connections_open, true),
            ("connections_active", self.connections_active, true),
            ("keepalive_reuses", self.keepalive_reuses, false),
            ("idle_closes", self.idle_closes, false),
            ("read_timeouts", self.read_timeouts, false),
            ("write_stalls", self.write_stalls, false),
            ("loop_wakeups", self.loop_wakeups, false),
            ("ready_events", self.ready_events, false),
            ("max_ready_batch", self.max_ready_batch, true),
            ("queue_depth", self.queue_depth, true),
            ("max_queue_depth", self.max_queue_depth, true),
            ("access_log_lines", self.access_log_lines, false),
            ("access_log_dropped", self.access_log_dropped, false),
            ("unknown_tenant_rejects", self.unknown_tenant_rejects, false),
            ("tenant_quota_rejects", self.tenant_quota_rejects, false),
        ]
    }

    /// The `server` section of the `/stats` response body.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, (name, value, _)) in self.fields().iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!("\"{name}\":{value}"));
        }
        out.push('}');
        out
    }

    /// The `lotusx_server_*` section of the `GET /metrics` Prometheus
    /// text exposition: monotonic fields as `_total` counters, gauges
    /// (and high-water marks) as gauges.
    pub fn to_prometheus(&self) -> String {
        let mut w = PromWriter::new();
        for (name, value, is_gauge) in self.fields() {
            if is_gauge {
                let family = format!("lotusx_server_{name}");
                w.header(&family, &format!("Server gauge `{name}`."), "gauge");
                w.sample_u64(&family, &[], value);
            } else {
                let family = format!("lotusx_server_{name}_total");
                w.header(&family, &format!("Server counter `{name}`."), "counter");
                w.sample_u64(&family, &[], value);
            }
        }
        w.finish()
    }
}

/// A cloneable handle for stopping and inspecting a running server.
#[derive(Clone)]
pub struct ServerHandle {
    stop: Arc<AtomicBool>,
    query_cancel: CancelToken,
    stats: Arc<ServerStats>,
    tenants: Arc<OnceLock<Arc<TenantSet>>>,
    addr: SocketAddr,
    waker: Waker,
}

impl ServerHandle {
    /// Begins graceful shutdown: cancels every in-flight query's budget
    /// token, stops accepting, and lets the loop drain every connection
    /// that is owed a response. Idempotent; returns immediately (join
    /// the thread running [`Server::run`] to wait for the drain).
    pub fn shutdown(&self) {
        self.query_cancel.cancel();
        self.stop.store(true, Ordering::SeqCst);
        self.waker.wake();
    }

    /// Has shutdown been requested?
    pub fn is_stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// The server's lifetime request counters.
    pub fn stats(&self) -> StatsSnapshot {
        self.stats.snapshot()
    }

    /// Per-tenant counter snapshots, in registry order (a single
    /// `default` entry for `Server::run`). Empty until `run`/
    /// `run_registry` has started.
    pub fn tenant_stats(&self) -> Vec<TenantSnapshot> {
        self.tenants.get().map(|s| s.snapshot()).unwrap_or_default()
    }

    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }
}

/// A bound (but not yet running) LotusX HTTP server.
pub struct Server {
    pub(crate) listener: TcpListener,
    pub(crate) config: ServeConfig,
    pub(crate) addr: SocketAddr,
    pub(crate) stop: Arc<AtomicBool>,
    pub(crate) query_cancel: CancelToken,
    pub(crate) stats: Arc<ServerStats>,
    pub(crate) waker: Waker,
    /// The structured access log, when configured (opened at bind time
    /// so a bad path surfaces early).
    pub(crate) access: Option<AccessLog>,
    /// The per-tenant runtime table, installed when `run`/`run_registry`
    /// starts so handles can read per-tenant counters.
    pub(crate) tenants: Arc<OnceLock<Arc<TenantSet>>>,
    /// The loop-side waker receiver and the readiness poller, built at
    /// bind time so configuration errors surface early; taken by the
    /// one permitted [`Server::run`] call.
    pub(crate) loop_parts: Mutex<Option<(Poller, std::os::unix::net::UnixStream)>>,
}

impl Server {
    /// Binds the configured address and opens the readiness poller. The
    /// engine is supplied at [`Server::run`] time so the server can
    /// borrow it (no `'static` requirement — run it under
    /// `std::thread::scope` if needed).
    pub fn bind(config: ServeConfig) -> io::Result<Server> {
        if config.threads == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "threads must be at least 1",
            ));
        }
        if config.max_inflight == 0 {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "max_inflight must be at least 1",
            ));
        }
        let listener = TcpListener::bind(&config.addr)?;
        listener.set_nonblocking(true)?;
        let addr = listener.local_addr()?;
        let poller = Poller::new(config.backend)?;
        let (waker_tx, waker_rx) = std::os::unix::net::UnixStream::pair()?;
        waker_tx.set_nonblocking(true)?;
        waker_rx.set_nonblocking(true)?;
        let access = match &config.access_log {
            Some(path) => Some(AccessLog::open(path)?),
            None => None,
        };
        Ok(Server {
            listener,
            config,
            addr,
            stop: Arc::new(AtomicBool::new(false)),
            query_cancel: CancelToken::new(),
            stats: Arc::new(ServerStats::default()),
            waker: Waker::new(waker_tx),
            access,
            tenants: Arc::new(OnceLock::new()),
            loop_parts: Mutex::new(Some((poller, waker_rx))),
        })
    }

    /// The actually-bound address (resolves `:0` to the ephemeral port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// A handle for stopping/inspecting this server from other threads.
    pub fn handle(&self) -> ServerHandle {
        ServerHandle {
            stop: Arc::clone(&self.stop),
            query_cancel: self.query_cancel.clone(),
            stats: Arc::clone(&self.stats),
            tenants: Arc::clone(&self.tenants),
            addr: self.addr,
            waker: self.waker.clone(),
        }
    }

    /// Serves `engine` until [`ServerHandle::shutdown`] is called,
    /// blocking the calling thread (it becomes the event loop). Worker
    /// threads are scoped to this call: when it returns, every
    /// connection owed a response has been answered and every thread
    /// joined. May be called at most once per server.
    pub fn run(&self, engine: &LotusX) {
        self.run_with(Tenancy::single(engine));
    }

    /// Serves a multi-tenant [`EngineRegistry`]: requests are routed to
    /// a hosted engine by the registry's rule table (`404
    /// unknown_tenant` on a miss), per-tenant admission quotas and
    /// default budgets apply, and `POST /admin/routes` hot-reloads the
    /// rule list. Same threading and shutdown contract as
    /// [`Server::run`]; at most one `run*` call per server.
    pub fn run_registry(&self, registry: &EngineRegistry) {
        self.run_with(Tenancy::registry(registry));
    }

    fn run_with(&self, tenancy: Tenancy<'_>) {
        let (poller, waker_rx) = self
            .loop_parts
            .lock()
            .expect("loop parts mutex poisoned")
            .take()
            .expect("Server::run may only be called once");
        let _ = self.tenants.set(Arc::clone(&tenancy.set));
        let (jobs_tx, jobs_rx) = mpsc::channel::<Job>();
        let jobs_rx = Mutex::new(jobs_rx);
        let completions = Completions::new(self.waker.clone());
        std::thread::scope(|scope| {
            for _ in 0..self.config.threads {
                scope.spawn(|| self.worker_loop(&tenancy, &jobs_rx, &completions));
            }
            event_loop::run(self, &tenancy, poller, waker_rx, &jobs_tx, &completions);
            // Dropping the sender lets idle workers observe the
            // disconnect once the queue is drained.
            drop(jobs_tx);
        });
        // Every connection has closed and logged; put its lines on disk.
        if let Some(access) = &self.access {
            access.shutdown();
        }
    }

    /// One compute worker: pulls parsed requests, routes them on the
    /// engine, encodes the full response bytes, and pushes them back to
    /// the event loop. Panics are isolated per request: the peer gets a
    /// best-effort `500` and the server keeps serving.
    fn worker_loop(
        &self,
        tenancy: &Tenancy<'_>,
        rx: &Mutex<mpsc::Receiver<Job>>,
        done: &Completions,
    ) {
        loop {
            // Take the lock only long enough to pull one job.
            let received = {
                let guard = rx.lock().expect("receiver mutex poisoned");
                guard.recv_timeout(Duration::from_millis(50))
            };
            match received {
                Ok(job) => {
                    let picked_up = Instant::now();
                    let queue_ns = picked_up.duration_since(job.queued_at).as_nanos() as u64;
                    self.stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                    // Stage slices land on the owning connection's trace
                    // lane so they nest inside its PENDING phase slice.
                    let lane = conn_lane(job.conn_id as u32);
                    let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        self.route(tenancy, job.tenant, &job.request, lane)
                    }));
                    let (status, bytes, close) = match outcome {
                        Ok(Ok((content_type, body))) => (
                            200u16,
                            http::encode_response(
                                200,
                                content_type,
                                body.as_bytes(),
                                job.keep_alive,
                            ),
                            !job.keep_alive,
                        ),
                        Ok(Err(reject)) => {
                            self.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            if let Some(idx) = job.tenant {
                                let rt = tenancy.set.runtime(idx);
                                rt.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            if lotusx_obs::enabled() {
                                lotusx_obs::metrics().incr("http_rejected", 1);
                            }
                            let bytes = if reject.connection_dead() {
                                Vec::new()
                            } else {
                                http::encode_error(reject.status, &reject.reason)
                            };
                            (reject.status, bytes, true)
                        }
                        Err(_) => {
                            self.stats.panics.fetch_add(1, Ordering::Relaxed);
                            if let Some(idx) = job.tenant {
                                let rt = tenancy.set.runtime(idx);
                                rt.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            }
                            if lotusx_obs::enabled() {
                                lotusx_obs::metrics().incr("http_worker_panics", 1);
                            }
                            (500u16, http::encode_error(500, "internal error"), true)
                        }
                    };
                    let compute_ns = picked_up.elapsed().as_nanos() as u64;
                    if lotusx_obs::enabled() {
                        let m = lotusx_obs::metrics();
                        m.record_stage(Stage::HttpQueueWait, queue_ns);
                        m.record_stage(Stage::HttpCompute, compute_ns);
                    }
                    let http::Request { method, path, .. } = job.request;
                    done.push(Done {
                        token: job.token,
                        epoch: job.epoch,
                        bytes,
                        close,
                        status,
                        method,
                        path,
                        tenant: job.tenant,
                        parse_ns: job.parse_ns,
                        queue_ns,
                        compute_ns,
                        finished: Instant::now(),
                    });
                }
                Err(mpsc::RecvTimeoutError::Timeout) => {
                    // Keep draining until the event loop hangs up, even
                    // after a stop request: dispatched requests must be
                    // answered.
                    continue;
                }
                Err(mpsc::RecvTimeoutError::Disconnected) => break,
            }
        }
    }

    /// Routes one parsed request. `Ok` carries the response content type
    /// and body (the status is always 200). `tenant` is the routed
    /// tenant index (`None` for server-scoped endpoints); `lane` is the
    /// owning connection's trace lane.
    fn route(
        &self,
        tenancy: &Tenancy<'_>,
        tenant: Option<u32>,
        request: &Request,
        lane: u32,
    ) -> Result<(&'static str, String), Reject> {
        match (request.method.as_str(), request.path.as_str()) {
            ("GET", "/healthz") => {
                self.stats.health_checks.fetch_add(1, Ordering::Relaxed);
                Ok(("text/plain", "ok\n".to_string()))
            }
            ("GET", "/stats") => self.timed(Stage::HttpStats, lane, || {
                self.stats.stats_requests.fetch_add(1, Ordering::Relaxed);
                let body = format!(
                    "{{\n\"server\": {},\n\"tenants\": {},\n\"metrics\": {}}}\n",
                    self.stats.snapshot().to_json(),
                    tenancy.set.to_json(),
                    lotusx_obs::metrics().snapshot().to_json()
                );
                Ok(("application/json", body))
            }),
            ("POST", "/query") => self.timed(Stage::HttpQuery, lane, || {
                let query = self.decode_body(&request.body, wire::decode_query)?;
                let mut query = self.with_server_cancel(query);
                let runtime = tenant.map(|idx| tenancy.set.runtime(idx));
                if let Some(rt) = runtime {
                    // Tenant defaults fill only budget fields the request
                    // left unset — an explicit wire budget always wins.
                    query.budget = rt.limits().apply_defaults(query.budget);
                }
                let started = Instant::now();
                match tenancy.engine(tenant).query(&query) {
                    Ok(response) => {
                        self.stats.queries.fetch_add(1, Ordering::Relaxed);
                        let truncated = !response.completeness.is_complete();
                        if truncated {
                            self.stats
                                .truncated_responses
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        if let Some(rt) = runtime {
                            rt.record_query(started.elapsed().as_nanos() as u64, truncated);
                        }
                        Ok(("application/json", wire::encode_response(&response)))
                    }
                    Err(e @ lotusx::LotusError::Query(_)) => Err(Reject {
                        status: 400,
                        reason: e.to_string(),
                    }),
                    Err(e) => Err(Reject {
                        status: 500,
                        reason: e.to_string(),
                    }),
                }
            }),
            ("POST", "/complete") => self.timed(Stage::HttpComplete, lane, || {
                let complete = self.decode_body(&request.body, wire::decode_complete)?;
                let completion = tenancy.engine(tenant).completion_engine();
                let started = Instant::now();
                let body = match complete {
                    wire::CompleteRequest::Tag { context, prefix, k } => {
                        wire::encode_tag_candidates(&completion.complete_tag(&context, &prefix, k))
                    }
                    wire::CompleteRequest::Value { tag, prefix, k } => {
                        wire::encode_value_candidates(&completion.complete_value(&tag, &prefix, k))
                    }
                };
                self.stats.completions.fetch_add(1, Ordering::Relaxed);
                if let Some(rt) = tenant.map(|idx| tenancy.set.runtime(idx)) {
                    rt.record_completion(started.elapsed().as_nanos() as u64);
                }
                Ok(("application/json", body))
            }),
            ("POST", "/shutdown") => {
                // Graceful remote stop: the response goes out first, the
                // event loop notices the flag when the completion lands.
                self.query_cancel.cancel();
                self.stop.store(true, Ordering::SeqCst);
                Ok(("application/json", "{\"stopping\":true}\n".to_string()))
            }
            ("POST", "/admin/routes") => match tenancy.registry_ref() {
                Some(registry) => {
                    let text = std::str::from_utf8(&request.body).map_err(|_| Reject {
                        status: 400,
                        reason: "body is not valid UTF-8".to_string(),
                    })?;
                    match registry.reload_rules(text) {
                        Ok(count) => Ok(("application/json", format!("{{\"rules\":{count}}}\n"))),
                        // The typed error carries kind + byte offset;
                        // the previous table stays installed.
                        Err(e) => Err(Reject {
                            status: 400,
                            reason: e.to_string(),
                        }),
                    }
                }
                None => Err(Reject {
                    status: 404,
                    reason: "unknown endpoint /admin/routes (not a registry server)".to_string(),
                }),
            },
            // `GET /metrics` is answered inline on the event-loop
            // thread; only other methods ever reach the workers.
            (_, "/healthz" | "/stats" | "/metrics") => Err(Reject {
                status: 405,
                reason: format!("{} requires GET", request.path),
            }),
            (_, "/query" | "/complete" | "/shutdown" | "/admin/routes") => Err(Reject {
                status: 405,
                reason: format!("{} requires POST", request.path),
            }),
            (_, path) => Err(Reject {
                status: 404,
                reason: format!("unknown endpoint {path}"),
            }),
        }
    }

    /// Parses a request body as JSON and decodes it; decode errors are
    /// 400s.
    fn decode_body<T>(
        &self,
        body: &[u8],
        decode: impl FnOnce(&lotusx_obs::JsonValue) -> Result<T, String>,
    ) -> Result<T, Reject> {
        let text = std::str::from_utf8(body).map_err(|_| Reject {
            status: 400,
            reason: "body is not valid UTF-8".to_string(),
        })?;
        let value = lotusx_obs::parse_json(text).map_err(|e| Reject {
            status: 400,
            reason: format!("body is not valid JSON: {e}"),
        })?;
        decode(&value).map_err(|reason| Reject {
            status: 400,
            reason,
        })
    }

    /// Attaches the server-wide cancellation token to a request's budget
    /// (client budgets and the shutdown token compose: whichever trips
    /// first wins).
    fn with_server_cancel(&self, mut request: QueryRequest) -> QueryRequest {
        // The wire never carries a client token, so the slot is free.
        request.budget = request
            .budget
            .clone()
            .with_cancel(self.query_cancel.clone());
        request
    }

    /// Runs `f`, recording its wall time into `stage` (lifetime + live
    /// windows) and emitting stage begin/end trace events on the owning
    /// connection's lane when tracing is on.
    fn timed<T>(
        &self,
        stage: Stage,
        lane: u32,
        f: impl FnOnce() -> Result<T, Reject>,
    ) -> Result<T, Reject> {
        lotusx_obs::emit_on_lane(
            lane,
            QueryId::NONE,
            EventKind::StageBegin {
                stage: stage.name(),
            },
        );
        let recording = lotusx_obs::enabled();
        let started = recording.then(Instant::now);
        let out = f();
        if let Some(t0) = started {
            lotusx_obs::metrics().record_stage(stage, t0.elapsed().as_nanos() as u64);
        }
        lotusx_obs::emit_on_lane(
            lane,
            QueryId::NONE,
            EventKind::StageEnd {
                stage: stage.name(),
            },
        );
        out
    }
}
