//! Per-tenant serving state: counters, admission gauge, rolling
//! windows, and the engine view the workers route against.
//!
//! A running server owns one [`TenantSet`] — index-aligned with the
//! registry's tenant list (or a single implicit `default` tenant for
//! `Server::run`). The event loop charges admission (the `inflight`
//! gauge and `quota_rejects`) on its own thread, so those are exact;
//! workers charge the outcome counters (queries, completions, rejects,
//! truncations) with relaxed atomics, mirroring `ServerStats`.
//!
//! Tenant counters surface in three places, all rendered from this one
//! struct so they cannot drift: the `tenants` section of `/stats`, the
//! `lotusx_tenant_*` families of `/metrics` (with a `tenant` label —
//! names are validated to the Prometheus-safe `[A-Za-z0-9_-]` alphabet
//! at route-load time), and the `tenant` field of access-log lines.

use lotusx::{EngineRegistry, LotusX, TenantLimits};
use lotusx_obs::{PromWriter, Stage, WindowCounter, WindowedStats};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The engine view a running server serves from: one engine, or a
/// registry of them.
pub(crate) enum Engines<'a> {
    /// `Server::run`: a single borrowed engine.
    Single(&'a LotusX),
    /// `Server::run_registry`: N engines behind the routing table.
    Registry(&'a EngineRegistry),
}

/// The complete tenancy view threaded through the event loop and the
/// worker pool: the engines plus the per-tenant runtime table
/// (index-aligned). Built once per `run*` call.
pub(crate) struct Tenancy<'a> {
    engines: Engines<'a>,
    /// Shared with [`crate::server::ServerHandle`] so harnesses can read
    /// exact per-tenant counters without a `/stats` round-trip.
    pub(crate) set: Arc<TenantSet>,
}

impl<'a> Tenancy<'a> {
    pub(crate) fn single(engine: &'a LotusX) -> Tenancy<'a> {
        Tenancy {
            engines: Engines::Single(engine),
            set: Arc::new(TenantSet::single()),
        }
    }

    pub(crate) fn registry(registry: &'a EngineRegistry) -> Tenancy<'a> {
        Tenancy {
            engines: Engines::Registry(registry),
            set: Arc::new(TenantSet::from_registry(registry)),
        }
    }

    /// The registry, when serving one (`/admin/routes` support).
    pub(crate) fn registry_ref(&self) -> Option<&'a EngineRegistry> {
        match self.engines {
            Engines::Registry(r) => Some(r),
            Engines::Single(_) => None,
        }
    }

    /// The engine a request routed to `tenant` computes against.
    /// Tenant-less (server-scoped) requests never reach an engine; the
    /// first tenant stands in defensively.
    pub(crate) fn engine(&self, tenant: Option<u32>) -> &'a LotusX {
        match (&self.engines, tenant) {
            (Engines::Single(e), _) => e,
            (Engines::Registry(r), Some(i)) => r.tenants()[i as usize].engine(),
            (Engines::Registry(r), None) => r.tenants()[0].engine(),
        }
    }

    /// Resolves a request to `(tenant index, rewritten path)`. The path
    /// is `Some` only when routing changed it (`/t/<name>` stripping).
    /// `None` overall means no tenant owns the request → the documented
    /// 404 `unknown_tenant` reject. Single-engine servers route
    /// everything to their one tenant unchanged.
    pub(crate) fn resolve(
        &self,
        path: &str,
        headers: &[(String, String)],
    ) -> Option<(u32, Option<String>)> {
        match &self.engines {
            Engines::Single(_) => Some((0, None)),
            Engines::Registry(reg) => {
                let table = reg.routes();
                let m = table.resolve(path, headers)?;
                let idx = reg.lookup(&m.tenant)?;
                let rewritten = (m.path != path).then_some(m.path);
                Some((idx as u32, rewritten))
            }
        }
    }
}

/// Lifetime counters for one tenant (names mirror [`crate::server::ServerStats`]).
#[derive(Debug, Default)]
pub struct TenantStats {
    /// Requests routed to this tenant and dispatched into service.
    pub requests: AtomicU64,
    /// `POST /query` requests answered 200.
    pub queries: AtomicU64,
    /// `POST /complete` requests answered 200.
    pub completions: AtomicU64,
    /// Requests rejected with a 4xx/5xx after dispatch (bad bodies,
    /// unknown endpoints, engine errors, panics).
    pub rejected: AtomicU64,
    /// Requests answered 429 by the per-tenant admission quota on the
    /// loop thread (never dispatched; not counted in `requests`).
    pub quota_rejects: AtomicU64,
    /// Query responses that went out marked truncated.
    pub truncated_responses: AtomicU64,
    /// Gauge: requests currently in flight (loop-thread exact).
    pub inflight: AtomicU64,
    /// High-water mark of `inflight`.
    pub max_inflight_seen: AtomicU64,
}

/// A plain-value copy of one tenant's counters.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TenantSnapshot {
    /// The tenant's name.
    pub name: String,
    /// See [`TenantStats::requests`].
    pub requests: u64,
    /// See [`TenantStats::queries`].
    pub queries: u64,
    /// See [`TenantStats::completions`].
    pub completions: u64,
    /// See [`TenantStats::rejected`].
    pub rejected: u64,
    /// See [`TenantStats::quota_rejects`].
    pub quota_rejects: u64,
    /// See [`TenantStats::truncated_responses`].
    pub truncated_responses: u64,
    /// See [`TenantStats::inflight`].
    pub inflight: u64,
    /// See [`TenantStats::max_inflight_seen`].
    pub max_inflight_seen: u64,
}

impl TenantSnapshot {
    /// The counter fields as `(name, value, is_gauge)` triples — the one
    /// list the `/stats` JSON and `/metrics` exposition are rendered
    /// from (same pattern as `StatsSnapshot::fields`).
    fn fields(&self) -> [(&'static str, u64, bool); 8] {
        [
            ("requests", self.requests, false),
            ("queries", self.queries, false),
            ("completions", self.completions, false),
            ("rejected", self.rejected, false),
            ("quota_rejects", self.quota_rejects, false),
            ("truncated_responses", self.truncated_responses, false),
            ("inflight", self.inflight, true),
            ("max_inflight_seen", self.max_inflight_seen, true),
        ]
    }
}

/// One tenant's runtime state: guard limits, counters, live windows.
pub struct TenantRuntime {
    name: String,
    limits: TenantLimits,
    /// Lifetime counters (see [`TenantStats`]).
    pub stats: TenantStats,
    /// Rolling 1s/10s/60s windows for this tenant alone.
    pub windows: WindowedStats,
}

impl TenantRuntime {
    fn new(name: &str, limits: TenantLimits) -> TenantRuntime {
        TenantRuntime {
            name: name.to_string(),
            limits,
            stats: TenantStats::default(),
            windows: WindowedStats::new(),
        }
    }

    /// The tenant's name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The tenant's admission quota and default budgets.
    pub fn limits(&self) -> &TenantLimits {
        &self.limits
    }

    /// Charges a served query: outcome counters plus the live windows.
    pub fn record_query(&self, compute_ns: u64, truncated: bool) {
        self.stats.queries.fetch_add(1, Ordering::Relaxed);
        self.windows.record_stage(Stage::HttpQuery, compute_ns);
        self.windows.incr(WindowCounter::Queries, 1);
        if truncated {
            self.stats
                .truncated_responses
                .fetch_add(1, Ordering::Relaxed);
            self.windows.incr(WindowCounter::Truncated, 1);
        }
    }

    /// Charges a served completion request.
    pub fn record_completion(&self, compute_ns: u64) {
        self.stats.completions.fetch_add(1, Ordering::Relaxed);
        self.windows.record_stage(Stage::HttpComplete, compute_ns);
    }

    fn snapshot(&self) -> TenantSnapshot {
        let s = &self.stats;
        TenantSnapshot {
            name: self.name.clone(),
            requests: s.requests.load(Ordering::Relaxed),
            queries: s.queries.load(Ordering::Relaxed),
            completions: s.completions.load(Ordering::Relaxed),
            rejected: s.rejected.load(Ordering::Relaxed),
            quota_rejects: s.quota_rejects.load(Ordering::Relaxed),
            truncated_responses: s.truncated_responses.load(Ordering::Relaxed),
            inflight: s.inflight.load(Ordering::Relaxed),
            max_inflight_seen: s.max_inflight_seen.load(Ordering::Relaxed),
        }
    }
}

/// The per-tenant runtime table, index-aligned with the engine view.
pub struct TenantSet {
    tenants: Vec<TenantRuntime>,
}

impl TenantSet {
    /// The single-tenant set `Server::run` uses: one unlimited tenant
    /// named `default`.
    pub(crate) fn single() -> TenantSet {
        TenantSet {
            tenants: vec![TenantRuntime::new("default", TenantLimits::unlimited())],
        }
    }

    /// A runtime slot per registry tenant, in registry order.
    pub(crate) fn from_registry(registry: &EngineRegistry) -> TenantSet {
        TenantSet {
            tenants: registry
                .tenants()
                .iter()
                .map(|t| TenantRuntime::new(t.name(), t.limits().clone()))
                .collect(),
        }
    }

    /// The tenant runtimes, in registry order.
    pub fn tenants(&self) -> &[TenantRuntime] {
        &self.tenants
    }

    /// The runtime at `idx` (panics on a bad index — indexes only come
    /// from resolution against the same registry).
    pub fn runtime(&self, idx: u32) -> &TenantRuntime {
        &self.tenants[idx as usize]
    }

    /// Plain-value snapshots of every tenant, in registry order.
    pub fn snapshot(&self) -> Vec<TenantSnapshot> {
        self.tenants.iter().map(|t| t.snapshot()).collect()
    }

    /// The `tenants` section of the `/stats` response body: an object
    /// keyed by tenant name, each with its counters and rolling-window
    /// qps/truncation aggregates.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{");
        for (i, rt) in self.tenants.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let snap = rt.snapshot();
            out.push_str(&format!("\"{}\":{{", rt.name));
            for (j, (name, value, _)) in snap.fields().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!("\"{name}\":{value}"));
            }
            out.push_str(",\"windows\":{");
            for (j, w) in rt.windows.aggregate_all().iter().enumerate() {
                if j > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}s\":{{\"queries\":{},\"qps\":{:.6},\"truncation_rate\":{:.6}}}",
                    w.window_secs, w.queries, w.qps, w.truncation_rate
                ));
            }
            out.push_str("}}");
        }
        out.push('}');
        out
    }

    /// The `lotusx_tenant_*` section of the `/metrics` exposition: every
    /// family written once (one `# HELP`/`# TYPE` pair), with one
    /// `tenant`-labelled sample per tenant.
    pub fn to_prometheus(&self) -> String {
        let snaps: Vec<TenantSnapshot> = self.snapshot();
        let mut w = PromWriter::new();
        if let Some(first) = snaps.first() {
            for (i, (name, _, is_gauge)) in first.fields().iter().enumerate() {
                let (family, kind) = if *is_gauge {
                    (format!("lotusx_tenant_{name}"), "gauge")
                } else {
                    (format!("lotusx_tenant_{name}_total"), "counter")
                };
                w.header(&family, &format!("Per-tenant counter `{name}`."), kind);
                for snap in &snaps {
                    let value = snap.fields()[i].1;
                    w.sample_u64(&family, &[("tenant", &snap.name)], value);
                }
            }
        }
        w.header(
            "lotusx_tenant_window_qps",
            "Per-tenant queries per second over the rolling window.",
            "gauge",
        );
        for rt in &self.tenants {
            for win in rt.windows.aggregate_all() {
                let label = format!("{}s", win.window_secs);
                w.sample(
                    "lotusx_tenant_window_qps",
                    &[("tenant", &rt.name), ("window", &label)],
                    win.qps,
                );
            }
        }
        w.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(names: &[&str]) -> TenantSet {
        TenantSet {
            tenants: names
                .iter()
                .map(|n| TenantRuntime::new(n, TenantLimits::unlimited()))
                .collect(),
        }
    }

    #[test]
    fn json_and_prometheus_render_every_tenant_once() {
        let set = set_of(&["alpha", "beta"]);
        set.runtime(0).record_query(1_000_000, true);
        set.runtime(1).record_completion(500);
        set.runtime(1)
            .stats
            .requests
            .fetch_add(3, Ordering::Relaxed);

        let json = set.to_json();
        assert!(json.contains("\"alpha\":{\"requests\":0"), "{json}");
        assert!(json.contains("\"queries\":1"), "{json}");
        assert!(json.contains("\"beta\":{\"requests\":3"), "{json}");
        assert!(json.contains("\"windows\":{\"1s\":"), "{json}");
        assert_eq!(json.matches('{').count(), json.matches('}').count());

        let prom = set.to_prometheus();
        assert!(prom.contains("lotusx_tenant_queries_total{tenant=\"alpha\"} 1"));
        assert!(prom.contains("lotusx_tenant_truncated_responses_total{tenant=\"alpha\"} 1"));
        assert!(prom.contains("lotusx_tenant_requests_total{tenant=\"beta\"} 3"));
        assert!(prom.contains("lotusx_tenant_window_qps{tenant=\"beta\",window=\"60s\"}"));
        // Exactly one HELP/TYPE pair per family despite two tenants.
        assert_eq!(
            prom.matches("# TYPE lotusx_tenant_requests_total").count(),
            1
        );
        assert_eq!(prom.matches("# TYPE lotusx_tenant_inflight").count(), 1);
    }

    #[test]
    fn single_set_is_one_unlimited_default_tenant() {
        let set = TenantSet::single();
        assert_eq!(set.tenants().len(), 1);
        assert_eq!(set.runtime(0).name(), "default");
        assert!(set.runtime(0).limits().is_unlimited());
    }
}
