//! # lotusx-serve
//!
//! The network serving layer for LotusX: a dependency-free,
//! event-driven HTTP/1.1 server (epoll on Linux, portable `poll(2)`
//! fallback — see [`poller`]) that exposes the engine's
//! [`QueryRequest`](lotusx::QueryRequest) /
//! [`QueryResponse`](lotusx::QueryResponse) API as JSON endpoints:
//!
//! | Endpoint          | Meaning                                        |
//! |-------------------|------------------------------------------------|
//! | `POST /query`     | Twig/keyword search (per-request `top_k`, `algorithm`, `deadline_ms`, `budget`) |
//! | `POST /complete`  | Position-aware tag/value auto-completion       |
//! | `GET /stats`      | Per-server counters, per-tenant counters (registry mode) + the full obs snapshot |
//! | `GET /metrics`    | Prometheus text exposition (v0.0.4), served inline on the loop thread |
//! | `GET /healthz`    | Liveness probe (`ok`)                          |
//! | `POST /shutdown`  | Graceful remote stop                           |
//! | `POST /admin/routes` | Hot-swap the routing rules (registry mode only) |
//!
//! A server runs either single-tenant ([`Server::run`]) or hosts a
//! whole [`EngineRegistry`](lotusx::EngineRegistry) of named corpora
//! ([`Server::run_registry`]) with requests routed by a declarative
//! rule table (`/t/<tenant>/…` prefixes, headers), per-tenant
//! `max_inflight` quotas (`429 tenant at capacity`) and default
//! budgets, and per-tenant observability across `/stats`, `/metrics`
//! (`tenant` label) and the access log — see [`tenants`] and the
//! "Multi-tenant routing" section of DESIGN.md.
//!
//! The I/O layer is a single-threaded nonblocking event loop driving
//! per-connection state machines — incremental parsing, HTTP/1.1
//! keep-alive and pipelining, read/idle/write-stall deadline wheels —
//! while compute runs on a fixed worker pool, so a slow or hostile
//! client costs a buffer, never a query thread. Robustness is
//! first-class: per-connection read/write/idle deadlines, a
//! max-in-flight admission gate (`429`), a request-size cap (`413`),
//! malformed input answered with `400` (never a panic — worker panics
//! are isolated per connection and counted), and graceful shutdown that
//! drains in-flight queries via a [`CancelToken`](lotusx::CancelToken).
//! See [`server`] for the threading model, `event_loop` (crate
//! internal) for the state machines, and [`wire`] for the exact JSON
//! wire format.
//!
//! ```no_run
//! use lotusx::LotusX;
//! use lotusx_serve::{Server, ServeConfig};
//!
//! let engine = LotusX::load_str("<bib><book><title>t</title></book></bib>").unwrap();
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let handle = server.handle();
//! std::thread::scope(|s| {
//!     s.spawn(|| server.run(&engine));
//!     // ... talk to server.local_addr() ...
//!     handle.shutdown();
//! });
//! ```

#![warn(missing_docs)]

mod access_log;
pub mod client;
mod event_loop;
pub mod http;
pub mod poller;
pub mod server;
pub mod tenants;
pub mod timer;
pub mod wire;

pub use client::{get, post, raw_request, request, Conn, Response};
pub use http::{Limits, Reject, Request};
pub use poller::Backend;
pub use server::{ServeConfig, Server, ServerHandle, ServerStats, StatsSnapshot};
pub use tenants::{TenantRuntime, TenantSet, TenantSnapshot, TenantStats};
