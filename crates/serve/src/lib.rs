//! # lotusx-serve
//!
//! The network serving layer for LotusX: a dependency-free threaded
//! HTTP/1.1 server over `std::net::TcpListener` that exposes the
//! engine's [`QueryRequest`](lotusx::QueryRequest) /
//! [`QueryResponse`](lotusx::QueryResponse) API as JSON endpoints:
//!
//! | Endpoint          | Meaning                                        |
//! |-------------------|------------------------------------------------|
//! | `POST /query`     | Twig/keyword search (per-request `top_k`, `algorithm`, `deadline_ms`, `budget`) |
//! | `POST /complete`  | Position-aware tag/value auto-completion       |
//! | `GET /stats`      | Per-server counters + the full obs snapshot    |
//! | `GET /healthz`    | Liveness probe (`ok`)                          |
//! | `POST /shutdown`  | Graceful remote stop                           |
//!
//! Robustness is first-class: per-connection read/write timeouts, a
//! max-in-flight admission gate (`429`), a request-size cap (`413`),
//! malformed input answered with `400` (never a panic — worker panics
//! are isolated per connection and counted), and graceful shutdown that
//! drains in-flight queries via a [`CancelToken`](lotusx::CancelToken).
//! See [`server`] for the threading model and [`wire`] for the exact
//! JSON wire format.
//!
//! ```no_run
//! use lotusx::LotusX;
//! use lotusx_serve::{Server, ServeConfig};
//!
//! let engine = LotusX::load_str("<bib><book><title>t</title></book></bib>").unwrap();
//! let server = Server::bind(ServeConfig::default()).unwrap();
//! let handle = server.handle();
//! std::thread::scope(|s| {
//!     s.spawn(|| server.run(&engine));
//!     // ... talk to server.local_addr() ...
//!     handle.shutdown();
//! });
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod http;
pub mod server;
pub mod wire;

pub use client::{get, post, raw_request, request, Response};
pub use http::{Limits, Reject, Request};
pub use server::{ServeConfig, Server, ServerHandle, ServerStats, StatsSnapshot};
