//! LotusX command-line demo — the textual stand-in for the original web
//! GUI at `datasearch.ruc.edu.cn:8080/LotusX`.
//!
//! Run with `cargo run -p lotusx-serve --bin lotusx-cli [file.xml]` and
//! type `help` for the command list. Everything the GUI demonstrates is
//! reachable: incremental canvas construction with per-keystroke
//! position-aware candidates, one-shot textual queries, algorithm
//! switching, ranked results, automatic rewriting of empty queries, the
//! observability surface (`profile`, `explain`, `stats`), and `serve
//! <port>` to expose the loaded document over HTTP.

use lotusx::{Algorithm, Axis, Budget, CanvasNodeId, CorpusSource, LotusX, QueryRequest, Session};
use std::io::{BufRead, Write};
use std::time::Duration;

const SAMPLE: &str = r#"<bib>
  <book year="1999"><title>Data on the Web</title><author>Abiteboul</author><author>Buneman</author><publisher>Morgan Kaufmann</publisher></book>
  <book year="2003"><title>XML Handbook</title><author>Goldfarb</author><publisher>Prentice Hall</publisher></book>
  <article year="2002"><title>Holistic Twig Joins</title><author>Bruno</author><journal>SIGMOD</journal></article>
  <article year="2005"><title>TJFast Extended Dewey</title><author>Lu</author><journal>VLDB</journal></article>
</bib>"#;

fn main() {
    let stdin = std::io::stdin();
    let mut out = std::io::stdout();

    // `lotusx-cli top --remote HOST:PORT [frames]` works straight from
    // argv — watching a running server needs no corpus and no REPL.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    if argv.first().map(String::as_str) == Some("top") {
        let rest = argv[1..].join(" ");
        std::process::exit(if run_top(&rest) { 0 } else { 1 });
    }

    let arg = argv.first().cloned();
    let system = match &arg {
        // Any corpus source works: `@dataset[:scale[:seed]]` for a seeded
        // synthetic corpus (e.g. `@treebank:2:7`), a `.ltsx` snapshot for
        // a millisecond cold boot, or an XML file.
        Some(text) => {
            let source = match text.parse::<CorpusSource>() {
                Ok(source) => source,
                Err(e) => {
                    eprintln!("{e}");
                    std::process::exit(1);
                }
            };
            match LotusX::open(&source) {
                Ok(s) => {
                    println!(
                        "opened {source} ({} elements)",
                        s.index().stats().element_count
                    );
                    s
                }
                Err(e) => {
                    eprintln!("failed to open {source}: {e}");
                    std::process::exit(1);
                }
            }
        }
        None => {
            println!("no file given; loaded the built-in sample bibliography");
            LotusX::load_str(SAMPLE).expect("sample is well-formed")
        }
    };

    let mut session = Session::new(&system);
    let mut nodes: Vec<CanvasNodeId> = Vec::new();
    // Per-request join-algorithm override ("algo <name>"); the session
    // borrows the engine, so reconfiguration happens per request here.
    let mut algo_override: Option<Algorithm> = None;
    // Per-request budget knobs ("timeout <ms>", "budget <nodes>"; 0 = off).
    let mut timeout_ms: Option<u64> = None;
    let mut node_budget: Option<u64> = None;

    println!("LotusX demo CLI — type 'help' for commands");
    loop {
        print!("lotusx> ");
        let _ = out.flush();
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        let line = line.trim();
        let (cmd, rest) = line.split_once(' ').unwrap_or((line, ""));
        match cmd {
            "" => {}
            "help" => print_help(),
            "quit" | "exit" => break,
            "stats" => {
                if rest == "json" {
                    println!("{}", lotusx_obs::metrics().snapshot().to_json());
                } else {
                    print_stats(&system);
                }
            }
            "profile" => match rest {
                "on" => {
                    lotusx_obs::set_enabled(true);
                    println!("profiling on: global metrics recorded, queries print their profile");
                }
                "off" => {
                    lotusx_obs::set_enabled(false);
                    println!("profiling off");
                }
                _ => println!(
                    "usage: profile on|off (currently {})",
                    if lotusx_obs::enabled() { "on" } else { "off" }
                ),
            },
            "explain" => {
                // Honor the session's `algo` override (notably `auto`, so
                // the chooser's decision shows up in the stage tree).
                let mut request = QueryRequest::twig(rest).profiled(true);
                request.algorithm = algo_override;
                match system.query(&request) {
                    Ok(response) => {
                        let profile = response.profile.expect("profiled request");
                        print!("{}", profile.render());
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "top" => {
                run_top(rest);
            }
            "trace" => {
                let (sub, arg) = rest.split_once(' ').unwrap_or((rest, ""));
                match sub {
                    "on" => {
                        lotusx_obs::set_tracing(true);
                        println!(
                            "tracing on: queries emit events into the ring buffer \
                             ('trace export <file>' for a Perfetto-loadable trace)"
                        );
                    }
                    "off" => {
                        lotusx_obs::set_tracing(false);
                        println!("tracing off (buffered events are kept until exported)");
                    }
                    "export" if !arg.is_empty() => {
                        let events = lotusx_obs::drain_events();
                        match std::fs::write(arg, lotusx_obs::chrome_trace_json(&events)) {
                            Ok(()) => {
                                let c = lotusx_obs::trace_counters();
                                println!(
                                    "wrote {} events to {arg} ({} dropped) — load at ui.perfetto.dev",
                                    events.len(),
                                    c.dropped
                                );
                            }
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    "log" if !arg.is_empty() => {
                        let events = lotusx_obs::drain_events();
                        match std::fs::write(arg, lotusx_obs::jsonl_log(&events)) {
                            Ok(()) => println!("wrote {} events to {arg} (JSONL)", events.len()),
                            Err(e) => println!("error: {e}"),
                        }
                    }
                    _ => println!(
                        "usage: trace on|off|export <file>|log <file> (currently {})",
                        if lotusx_obs::tracing() { "on" } else { "off" }
                    ),
                }
            }
            "serve" => serve_command(&system, rest),
            "save" | "snapshot" => match system.save_snapshot(rest) {
                Ok(()) => {
                    let size = std::fs::metadata(rest).map(|m| m.len()).unwrap_or(0);
                    println!("full-index snapshot written to {rest} ({size} bytes)");
                }
                Err(e) => println!("error: {e}"),
            },
            "keyword" => {
                let request = QueryRequest::keyword(rest)
                    .budget(build_budget(timeout_ms, node_budget))
                    .profiled(lotusx_obs::enabled());
                match system.query(&request) {
                    Ok(response) => {
                        if let Some(reason) = response.completeness.truncation_reason() {
                            println!("(truncated: {reason} — partial results)");
                        }
                        println!("{} answers", response.total_matches);
                        for (i, h) in response.matches.iter().take(10).enumerate() {
                            println!(
                                "  {:>2}. [{:.3}] {}",
                                i + 1,
                                h.score,
                                truncate(&h.snippet, 90)
                            );
                        }
                        if let Some(profile) = &response.profile {
                            print!("{}", profile.render());
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "query" => {
                let mut request = QueryRequest::twig(rest)
                    .budget(build_budget(timeout_ms, node_budget))
                    .profiled(lotusx_obs::enabled());
                request.algorithm = algo_override;
                match system.query(&request) {
                    Ok(response) => {
                        if let Some(reason) = response.completeness.truncation_reason() {
                            println!("(truncated: {reason} — partial results)");
                        }
                        if let Some(rw) = &response.rewrite {
                            println!(
                                "(no results for the original query — rewritten to {} [penalty {:.1}])",
                                rw.pattern, rw.cost
                            );
                        }
                        println!("{} matches", response.total_matches);
                        for (i, r) in response.matches.iter().take(10).enumerate() {
                            println!(
                                "  {:>2}. [{:.3}] {}",
                                i + 1,
                                r.score,
                                truncate(&r.snippet, 90)
                            );
                        }
                        if let Some(profile) = &response.profile {
                            print!("{}", profile.render());
                        }
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
            "timeout" => match rest.parse::<u64>() {
                Ok(0) => {
                    timeout_ms = None;
                    println!("query timeout off");
                }
                Ok(ms) => {
                    timeout_ms = Some(ms);
                    println!("queries now time out after {ms} ms (partial results are marked)");
                }
                Err(_) => println!(
                    "usage: timeout <ms> (0 = off; currently {})",
                    timeout_ms.map_or("off".to_string(), |ms| format!("{ms} ms"))
                ),
            },
            "budget" => match rest.parse::<u64>() {
                Ok(0) => {
                    node_budget = None;
                    println!("node budget off");
                }
                Ok(n) => {
                    node_budget = Some(n);
                    println!("queries now stop after visiting ~{n} nodes");
                }
                Err(_) => println!(
                    "usage: budget <nodes> (0 = off; currently {})",
                    node_budget.map_or("off".to_string(), |n| format!("{n} nodes"))
                ),
            },
            "algo" => match parse_algorithm(rest) {
                Some(Algorithm::Auto) => {
                    algo_override = Some(Algorithm::Auto);
                    println!("queries now pick an algorithm per query (cost-model chooser)");
                }
                Some(a) => {
                    algo_override = Some(a);
                    println!("queries now run with {a}");
                }
                None if rest == "config" => {
                    algo_override = None;
                    println!("queries now use the engine's configuration");
                }
                None => println!(
                    "algorithms: naive structural-join pathstack twigstack tjfast twigstack-guided auto config (current: {})",
                    algo_override.map(|a| a.name()).unwrap_or("config")
                ),
            },
            "root" => match session.canvas_mut().add_root() {
                Ok(id) => {
                    nodes.push(id);
                    println!("node {} added as root (untyped)", nodes.len() - 1);
                }
                Err(e) => println!("error: {e}"),
            },
            "node" => {
                let mut parts = rest.split_whitespace();
                let parent: Option<usize> = parts.next().and_then(|p| p.parse().ok());
                let axis = match parts.next() {
                    Some("/") | None => Axis::Child,
                    _ => Axis::Descendant,
                };
                match parent.and_then(|p| nodes.get(p).copied()) {
                    Some(p) => match session.canvas_mut().add_node(p, axis) {
                        Ok(id) => {
                            nodes.push(id);
                            println!("node {} added", nodes.len() - 1);
                        }
                        Err(e) => println!("error: {e}"),
                    },
                    None => println!("usage: node <parent-index> [/ or //]"),
                }
            }
            "focus" => match rest
                .parse::<usize>()
                .ok()
                .and_then(|i| nodes.get(i).copied())
            {
                Some(id) => match session.focus(id) {
                    Ok(cands) => print_candidates(&cands),
                    Err(e) => println!("error: {e}"),
                },
                None => println!("usage: focus <node-index>"),
            },
            "type" => {
                for ch in rest.chars() {
                    match session.keystroke(ch) {
                        Ok(cands) => {
                            println!("typed {:?}:", session.typed());
                            print_candidates(&cands);
                        }
                        Err(e) => {
                            println!("error: {e}");
                            break;
                        }
                    }
                }
            }
            "accept" => match session.accept_top() {
                Ok(()) => {
                    if let Some(id) = session.focused() {
                        if let Ok(Some(tag)) = session.canvas().tag(id) {
                            println!("accepted {tag}");
                        }
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            "tag" => {
                let mut parts = rest.split_whitespace();
                let idx: Option<usize> = parts.next().and_then(|p| p.parse().ok());
                let tag = parts.next().unwrap_or("");
                match idx.and_then(|i| nodes.get(i).copied()) {
                    Some(id) if !tag.is_empty() => match session.canvas_mut().set_tag(id, tag) {
                        Ok(()) => println!("node tagged {tag}"),
                        Err(e) => println!("error: {e}"),
                    },
                    _ => println!("usage: tag <node-index> <name>"),
                }
            }
            "values" => match session.value_suggestions(rest) {
                Ok(suggestions) => {
                    for v in suggestions {
                        println!("  {} ({})", v.term, v.count);
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            "show" => match session.canvas().to_pattern() {
                Ok(p) => println!("{p}"),
                Err(e) => println!("error: {e}"),
            },
            "run" => match session.run() {
                Ok(outcome) => {
                    println!("{} matches", outcome.total_matches);
                    for (i, r) in outcome.results.iter().take(10).enumerate() {
                        println!(
                            "  {:>2}. [{:.3}] {}",
                            i + 1,
                            r.score,
                            truncate(&r.snippet, 90)
                        );
                    }
                }
                Err(e) => println!("error: {e}"),
            },
            other => println!("unknown command {other:?} — type 'help'"),
        }
    }
}

fn parse_algorithm(name: &str) -> Option<Algorithm> {
    Algorithm::ALL
        .into_iter()
        .chain([Algorithm::Auto])
        .find(|a| a.name() == name)
}

fn build_budget(timeout_ms: Option<u64>, node_budget: Option<u64>) -> Budget {
    let mut budget = Budget::default();
    if let Some(ms) = timeout_ms {
        budget = budget.with_deadline(Duration::from_millis(ms));
    }
    if let Some(nodes) = node_budget {
        budget = budget.with_node_quota(nodes);
    }
    budget
}

/// Serves the loaded document over HTTP on `127.0.0.1:<port>` until the
/// user presses Enter (blocking the REPL while serving).
fn serve_command(system: &LotusX, rest: &str) {
    let Ok(port) = rest.trim().parse::<u16>() else {
        println!("usage: serve <port> (e.g. serve 8080; port 0 picks one)");
        return;
    };
    let config = lotusx_serve::ServeConfig {
        addr: format!("127.0.0.1:{port}"),
        ..lotusx_serve::ServeConfig::default()
    };
    let server = match lotusx_serve::Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            println!("error: bind failed: {e}");
            return;
        }
    };
    let handle = server.handle();
    println!(
        "serving on {} (POST /query, POST /complete, GET /stats, GET /healthz) — press Enter to stop",
        server.local_addr()
    );
    std::thread::scope(|scope| {
        scope.spawn(|| server.run(system));
        let mut line = String::new();
        let _ = std::io::stdin().lock().read_line(&mut line);
        handle.shutdown();
    });
    let stats = handle.stats();
    println!(
        "stopped: {} requests ({} rejected, {} panics)",
        stats.requests, stats.rejected, stats.panics
    );
}

fn print_stats(system: &LotusX) {
    let s = system.index().stats();
    println!(
        "elements: {}  distinct tags: {}  max depth: {}  index bytes: {}",
        s.element_count,
        s.distinct_tags,
        s.max_depth,
        system.index().index_size_bytes()
    );
    let qc = system.query_cache_stats();
    println!(
        "query cache: {} hits, {} misses, {}/{} entries  value tries cached: {}  threads: {}",
        qc.hits,
        qc.misses,
        qc.entries,
        qc.capacity,
        system.value_trie_cache_len(),
        system.threads()
    );
    if qc.hits + qc.misses > 0 {
        let per_shard: Vec<String> = system
            .query_cache_shard_stats()
            .iter()
            .enumerate()
            .map(|(i, s)| format!("{i}:{}h/{}m", s.hits, s.misses))
            .collect();
        println!("  query-cache shards: {}", per_shard.join("  "));
    }
    let vt = system.value_trie_shard_stats();
    if vt.iter().any(|s| s.hits + s.misses > 0) {
        let per_shard: Vec<String> = vt
            .iter()
            .enumerate()
            .filter(|(_, s)| s.hits + s.misses > 0 || s.entries > 0)
            .map(|(i, s)| format!("{i}:{}h/{}m/{}e", s.hits, s.misses, s.entries))
            .collect();
        println!("  value-trie shards: {}", per_shard.join("  "));
    }
    let ex = lotusx_par::executor_stats();
    println!(
        "executor: {} parallel jobs, {} worker threads spawned",
        ex.jobs, ex.threads_spawned
    );
    if !lotusx_obs::enabled() {
        println!("profiling off — `profile on` to record stage latencies ('stats json' for the raw snapshot)");
        return;
    }
    let snapshot = lotusx_obs::metrics().snapshot();
    println!("stage latencies (count / p50 / p95 / p99 / max):");
    for (name, h) in &snapshot.stages {
        if h.count == 0 {
            continue;
        }
        println!(
            "  {:<14} {:>6}  {:>9}  {:>9}  {:>9}  {:>9}",
            name,
            h.count,
            lotusx_obs::fmt_ns(h.p50_ns),
            lotusx_obs::fmt_ns(h.p95_ns),
            lotusx_obs::fmt_ns(h.p99_ns),
            lotusx_obs::fmt_ns(h.max_ns),
        );
    }
    if !snapshot.counters.is_empty() {
        let rendered: Vec<String> = snapshot
            .counters
            .iter()
            .map(|(n, v)| format!("{n}={v}"))
            .collect();
        println!("counters: {}", rendered.join("  "));
    }
    let counter = |name: &str| {
        snapshot
            .counters
            .iter()
            .find(|(n, _)| n == name)
            .map_or(0, |(_, v)| *v)
    };
    let queries = counter("queries");
    let degraded = counter("degraded_responses");
    if queries > 0 && (degraded > 0 || counter("worker_panics") > 0) {
        println!(
            "degradation: {degraded}/{queries} responses truncated ({:.1}%), \
             {} past deadline, {} worker panics isolated",
            100.0 * degraded as f64 / queries as f64,
            counter("queries_deadline_exceeded"),
            counter("worker_panics"),
        );
        if let Some((_, h)) = snapshot
            .histograms
            .iter()
            .find(|(n, _)| n == "deadline_overshoot")
        {
            println!(
                "deadline overshoot: p50 {}  p99 {}  max {}",
                lotusx_obs::fmt_ns(h.p50_ns),
                lotusx_obs::fmt_ns(h.p99_ns),
                lotusx_obs::fmt_ns(h.max_ns),
            );
        }
    }
    if !snapshot.slow_queries.is_empty() {
        println!("slow queries (threshold {}):", {
            lotusx_obs::fmt_ns(lotusx_obs::metrics().slow_queries().threshold_ns())
        });
        for sq in &snapshot.slow_queries {
            println!("  {}  {}", lotusx_obs::fmt_ns(sq.total_ns), sq.query);
        }
    }
}

/// The `top` command: `top [frames]` for the in-process windows,
/// `top --remote HOST:PORT [frames]` to poll a running server's
/// `GET /stats` once per frame. Returns false on a usage or poll error.
fn run_top(rest: &str) -> bool {
    let mut remote: Option<std::net::SocketAddr> = None;
    let mut frames: u64 = 1;
    let mut words = rest.split_whitespace();
    while let Some(word) = words.next() {
        match word {
            "--remote" => {
                let Some(addr) = words.next().and_then(|a| a.parse().ok()) else {
                    println!("usage: top [--remote HOST:PORT] [frames]");
                    return false;
                };
                remote = Some(addr);
            }
            n => {
                let Ok(parsed) = n.parse() else {
                    println!("usage: top [--remote HOST:PORT] [frames]");
                    return false;
                };
                frames = parsed;
            }
        }
    }
    for frame in 0..frames.max(1) {
        if frame > 0 {
            std::thread::sleep(Duration::from_secs(1));
        }
        match remote {
            Some(addr) => {
                if !print_top_remote(addr) {
                    return false;
                }
            }
            None => print_top(),
        }
    }
    true
}

/// One frame of a remote server's health, from one `GET /stats` poll:
/// the server-side connection/loop counters plus the same windowed
/// QPS / tail-latency table `print_top` shows locally.
fn print_top_remote(addr: std::net::SocketAddr) -> bool {
    let body = match lotusx_serve::client::get(addr, "/stats") {
        Ok(r) if r.status == 200 => r.body_text(),
        Ok(r) => {
            println!("top: {addr} answered {}", r.status);
            return false;
        }
        Err(e) => {
            println!("top: polling {addr} failed: {e}");
            return false;
        }
    };
    let parsed = match lotusx_obs::parse_json(&body) {
        Ok(v) => v,
        Err(e) => {
            println!("top: /stats body is not valid JSON: {e}");
            return false;
        }
    };
    let int = |v: Option<&lotusx_obs::JsonValue>| v.and_then(|v| v.as_f64()).unwrap_or(0.0) as u64;
    if let Some(server) = parsed.get("server") {
        println!(
            "server {addr}: {} reqs ({} rejected)  conns {} open / {} active  \
             keepalive reuses {}  queue {} (max {})",
            int(server.get("requests")),
            int(server.get("rejected")),
            int(server.get("connections_open")),
            int(server.get("connections_active")),
            int(server.get("keepalive_reuses")),
            int(server.get("queue_depth")),
            int(server.get("max_queue_depth")),
        );
        let dropped = int(server.get("access_log_dropped"));
        if dropped > 0 {
            println!("  access log: {dropped} lines dropped");
        }
    }
    let Some(windows) = parsed.get("metrics").and_then(|m| m.get("windows")) else {
        println!("top: /stats body has no metrics.windows section");
        return false;
    };
    println!("window   queries      qps   hit%  trunc%   p50(total)   p95(total)   p99(total)");
    for label in ["1s", "10s", "60s"] {
        let Some(w) = windows.get(label) else {
            continue;
        };
        let f = |key: &str| w.get(key).and_then(|v| v.as_f64()).unwrap_or(0.0);
        let total = w.get("stages").and_then(|s| s.get("total"));
        let t = |key: &str| {
            total
                .and_then(|t| t.get(key))
                .and_then(|v| v.as_f64())
                .unwrap_or(0.0) as u64
        };
        println!(
            "{:>5}s  {:>8}  {:>7.1}  {:>5.1}  {:>6.1}  {:>11}  {:>11}  {:>11}",
            label.trim_end_matches('s'),
            f("queries") as u64,
            f("qps"),
            100.0 * f("hit_ratio"),
            100.0 * f("truncation_rate"),
            lotusx_obs::fmt_ns(t("p50_ns")),
            lotusx_obs::fmt_ns(t("p95_ns")),
            lotusx_obs::fmt_ns(t("p99_ns")),
        );
    }
    true
}

/// One frame of live telemetry: windowed QPS / tail latency / cache and
/// truncation rates, plus the retained worst-case exemplars.
fn print_top() {
    let m = lotusx_obs::metrics();
    if !lotusx_obs::enabled() {
        println!("profiling off — `profile on` to feed the live windows");
        return;
    }
    println!("window   queries      qps   hit%  trunc%   p50(total)   p95(total)   p99(total)");
    for w in m.windows().aggregate_all() {
        let total = &w.stages[lotusx_obs::Stage::Total as usize].1;
        println!(
            "{:>5}s  {:>8}  {:>7.1}  {:>5.1}  {:>6.1}  {:>11}  {:>11}  {:>11}",
            w.window_secs,
            w.queries,
            w.qps,
            100.0 * w.hit_ratio,
            100.0 * w.truncation_rate,
            lotusx_obs::fmt_ns(total.p50_ns),
            lotusx_obs::fmt_ns(total.p95_ns),
            lotusx_obs::fmt_ns(total.p99_ns),
        );
    }
    // Busiest stages over the last 10 seconds.
    let ten = &m.windows().aggregate_all()[1];
    let mut active: Vec<_> = ten.stages.iter().filter(|(_, h)| h.count > 0).collect();
    active.sort_by_key(|s| std::cmp::Reverse(s.1.sum_ns));
    if !active.is_empty() {
        println!("stages (10s, by time):");
        for (name, h) in active.iter().take(5) {
            println!(
                "  {:<14} {:>6}  p50 {:>9}  p99 {:>9}",
                name,
                h.count,
                lotusx_obs::fmt_ns(h.p50_ns),
                lotusx_obs::fmt_ns(h.p99_ns),
            );
        }
    }
    // Adaptive-chooser decisions since startup (algo_chosen_* counters,
    // plus mispicks recorded by the join benchmark's regression gate).
    let snapshot = m.snapshot();
    let chooser: Vec<String> = snapshot
        .counters
        .iter()
        .filter(|(n, _)| n.starts_with("algo_chosen_") || n == "chooser_mispicks")
        .map(|(n, v)| {
            format!(
                "{}={v}",
                n.strip_prefix("algo_chosen_").unwrap_or(n.as_str())
            )
        })
        .collect();
    if !chooser.is_empty() {
        println!("chooser: {}", chooser.join("  "));
    }
    let exemplars = m.exemplars().snapshot();
    if !exemplars.is_empty() {
        println!("slowest sampled queries (by dominant stage):");
        for e in exemplars.iter().take(8) {
            println!(
                "  {:<10} {:>9}  {}",
                e.stage,
                lotusx_obs::fmt_ns(e.total_ns),
                truncate(&e.profile.query, 60)
            );
        }
    }
}

fn print_candidates(cands: &[lotusx::TagCandidate]) {
    if cands.is_empty() {
        println!("  (no candidates at this position)");
    }
    for c in cands {
        println!("  {} ({})", c.name, c.count);
    }
}

fn truncate(s: &str, n: usize) -> String {
    if s.len() <= n {
        s.to_string()
    } else {
        let mut end = n;
        while !s.is_char_boundary(end) {
            end -= 1;
        }
        format!("{}…", &s[..end])
    }
}

fn print_help() {
    println!(
        "\
one-shot queries:
  query <xpath>      run a query, e.g.  query //book[@year >= 2000]/title
  keyword <terms>    keyword search (ranked smallest covering subtrees)
  snapshot <p.ltsx>  write a full-index snapshot; reopening it (lotusx-cli
                     <p.ltsx>) cold-boots in milliseconds without a rebuild
                     ('save' is an alias)
observability:
  profile on|off     toggle metrics recording + per-query profiles
  explain <xpath>    run one query and print its stage-timing tree
  stats              document, cache, executor and latency statistics
  stats json         the metrics snapshot as JSON (metrics.json format)
  top [frames]       live windowed telemetry (QPS, tail latency, exemplars)
  top --remote HOST:PORT [frames]
                     poll a running server's GET /stats once per frame
                     (also works from argv: lotusx-cli top --remote ...)
  trace on|off       toggle structured event tracing into the ring buffer
  trace export <f>   drain the ring to a Chrome/Perfetto trace JSON file
  trace log <f>      drain the ring to a JSONL event log
canvas (the GUI surrogate):
  root               drop the root node
  node <i> [/ | //]  add a node under node i
  focus <i>          focus node i (shows position-aware candidates)
  type <text>        type into the focused node, one keystroke at a time
  accept             accept the typed text as the tag
  tag <i> <name>     set a node's tag directly
  values <prefix>    value suggestions for the focused node's tag
  show               print the canvas as a query
  run                execute the canvas (untyped nodes are wildcards)
other:
  serve <port>       serve this document over HTTP on 127.0.0.1:<port>
                     (POST /query, POST /complete, GET /stats, GET /healthz;
                     Enter stops the server and returns to the REPL)
  algo [name|auto]   per-request join algorithm override ('auto' = per-query
                     cost-model chooser, 'config' = engine configuration)
  timeout <ms>       wall-clock budget per query, 0 = off (partial results are marked)
  budget <nodes>     node-visit budget per query, 0 = off
  help, quit

start with '@dblp', '@xmark' or '@treebank[:scale[:seed]]' instead of a
file to load a seeded synthetic corpus."
    );
}
