//! The `lotusx-serve` binary: serve a generated corpus over HTTP.
//!
//! ```text
//! lotusx-serve [--addr HOST:PORT] [--threads N] [--max-inflight N]
//!              [--corpus SOURCE] [--read-timeout-ms MS]
//!              [--write-timeout-ms MS] [--idle-timeout-ms MS]
//!              [--backend auto|poll|epoll] [--access-log PATH]
//! lotusx-serve --routes FILE             # multi-tenant registry server
//! lotusx-serve --corpus SOURCE --snapshot save:PATH   # build, save, exit
//! lotusx-serve --snapshot load:PATH                   # serve from snapshot
//! lotusx-serve --probe HOST:PORT         # healthz + one query, exit 0/1
//! lotusx-serve --metrics-probe HOST:PORT # keep-alive traffic + two
//!                                        # /metrics scrapes, exit 0/1
//! lotusx-serve --stop HOST:PORT          # graceful remote shutdown
//! ```
//!
//! `SOURCE` is any corpus source: `@dataset[:scale[:seed]]`, an XML
//! file, or a `.ltsx` snapshot.
//!
//! `--routes FILE` starts a multi-tenant server: the JSON config names
//! each tenant (with its own corpus source, admission quota, and
//! default budgets) and the routing rules that map requests onto them
//! (`/t/<name>` prefixes, headers, predicate trees). The rule list can
//! be hot-reloaded at runtime with `POST /admin/routes`. `--corpus` and
//! `--snapshot` do not combine with `--routes` — corpora come from the
//! config file.
//!
//! `--access-log PATH` writes one JSONL line per response (method,
//! path, status, bytes, connection id, close disposition, and the
//! parse/queue/compute/flush timing breakdown). Setting the
//! `LOTUSX_TRACE=PATH` environment variable turns structured event
//! tracing on for the server's lifetime and writes a Chrome/Perfetto
//! trace (with per-connection lifecycle lanes) to `PATH` on shutdown.
//!
//! The server prints `listening on <ADDR>` once bound (scripts wait for
//! that line), then serves until it reads `quit` on stdin, receives
//! `POST /shutdown`, or the process is killed. EOF on stdin parks the
//! reader — backgrounding with `</dev/null` does not stop the server.

use lotusx::{CorpusSource, EngineRegistry, LotusX, RegistryConfig};
use lotusx_serve::{client, ServeConfig, Server, ServerHandle};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Mode::Serve(config, corpus, snapshot)) => serve(config, &corpus, snapshot),
        Ok(Mode::ServeRoutes(config, routes)) => serve_routes(config, &routes),
        Ok(Mode::Probe(addr)) => probe(addr),
        Ok(Mode::MetricsProbe(addr)) => metrics_probe(addr),
        Ok(Mode::Stop(addr)) => stop(addr),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: lotusx-serve [--addr HOST:PORT] [--threads N] [--max-inflight N] \
                 [--corpus SOURCE] [--snapshot save:PATH|load:PATH] [--routes FILE] \
                 [--read-timeout-ms MS] [--write-timeout-ms MS] [--idle-timeout-ms MS] \
                 [--backend auto|poll|epoll] [--access-log PATH]\n\
                 \x20      lotusx-serve --probe HOST:PORT | --metrics-probe HOST:PORT \
                 | --stop HOST:PORT\n\
                 SOURCE: @dataset[:scale[:seed]] | file.xml | file.ltsx"
            );
            ExitCode::FAILURE
        }
    }
}

enum SnapshotAction {
    /// Build the corpus, write the snapshot, exit without serving.
    Save(PathBuf),
    /// Serve from a snapshot instead of the `--corpus` source.
    Load(PathBuf),
}

enum Mode {
    Serve(ServeConfig, String, Option<SnapshotAction>),
    /// Multi-tenant registry server from a `--routes` config file.
    ServeRoutes(ServeConfig, PathBuf),
    Probe(SocketAddr),
    MetricsProbe(SocketAddr),
    Stop(SocketAddr),
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServeConfig::default()
    };
    let mut corpus = "@dblp:1".to_string();
    let mut corpus_set = false;
    let mut snapshot = None;
    let mut routes: Option<PathBuf> = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?
            }
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|_| "--max-inflight must be a positive integer".to_string())?
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms must be an integer".to_string())?;
                config.read_timeout = Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms must be an integer".to_string())?;
                config.write_timeout = Duration::from_millis(ms);
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|_| "--idle-timeout-ms must be an integer".to_string())?;
                config.idle_timeout = Duration::from_millis(ms);
            }
            "--backend" => config.backend = lotusx_serve::Backend::parse(&value("--backend")?)?,
            "--access-log" => config.access_log = Some(PathBuf::from(value("--access-log")?)),
            "--corpus" => {
                corpus = value("--corpus")?;
                corpus_set = true;
            }
            "--routes" => routes = Some(PathBuf::from(value("--routes")?)),
            "--snapshot" => {
                let action = value("--snapshot")?;
                snapshot = Some(match action.split_once(':') {
                    Some(("save", path)) if !path.is_empty() => {
                        SnapshotAction::Save(PathBuf::from(path))
                    }
                    Some(("load", path)) if !path.is_empty() => {
                        SnapshotAction::Load(PathBuf::from(path))
                    }
                    _ => {
                        return Err(format!(
                            "--snapshot takes save:PATH or load:PATH, got {action:?}"
                        ))
                    }
                });
            }
            "--probe" => return Ok(Mode::Probe(parse_addr(&value("--probe")?)?)),
            "--metrics-probe" => {
                return Ok(Mode::MetricsProbe(parse_addr(&value("--metrics-probe")?)?))
            }
            "--stop" => return Ok(Mode::Stop(parse_addr(&value("--stop")?)?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if let Some(routes) = routes {
        if corpus_set || snapshot.is_some() {
            return Err("--routes does not combine with --corpus/--snapshot \
                        (tenant corpora come from the config file)"
                .to_string());
        }
        return Ok(Mode::ServeRoutes(config, routes));
    }
    Ok(Mode::Serve(config, corpus, snapshot))
}

fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse().map_err(|_| format!("bad address {s:?}"))
}

fn serve(config: ServeConfig, corpus: &str, snapshot: Option<SnapshotAction>) -> ExitCode {
    let source = if let Some(SnapshotAction::Load(path)) = &snapshot {
        CorpusSource::Snapshot(path.clone())
    } else {
        match corpus.parse::<CorpusSource>() {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    lotusx_obs::set_enabled(true);
    let trace_path = std::env::var_os("LOTUSX_TRACE").map(PathBuf::from);
    if trace_path.is_some() {
        lotusx_obs::set_tracing(true);
    }
    eprintln!("opening corpus {source} ...");
    let engine = match LotusX::open(&source) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: opening corpus {source} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(SnapshotAction::Save(path)) = &snapshot {
        if let Err(e) = engine.save_snapshot(path) {
            eprintln!("error: saving snapshot failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("snapshot saved to {}", path.display());
        return ExitCode::SUCCESS;
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    // The wait-for line: scripts poll for this exact prefix.
    println!("listening on {}", server.local_addr());

    std::thread::scope(|scope| {
        let stdin_handle = handle.clone();
        scope.spawn(move || stdin_control(stdin_handle));
        server.run(&engine);
    });
    finish(trace_path, &handle)
}

/// Serves a multi-tenant registry from a `--routes` config file.
fn serve_routes(config: ServeConfig, routes: &std::path::Path) -> ExitCode {
    let text = match std::fs::read_to_string(routes) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("error: reading {} failed: {e}", routes.display());
            return ExitCode::FAILURE;
        }
    };
    let registry_config = match RegistryConfig::parse(&text) {
        Ok(config) => config,
        Err(e) => {
            eprintln!("error: {}: {e}", routes.display());
            return ExitCode::FAILURE;
        }
    };
    lotusx_obs::set_enabled(true);
    let trace_path = std::env::var_os("LOTUSX_TRACE").map(PathBuf::from);
    if trace_path.is_some() {
        lotusx_obs::set_tracing(true);
    }
    for tenant in &registry_config.tenants {
        eprintln!("opening tenant {} ({}) ...", tenant.name, tenant.source);
    }
    let registry = match EngineRegistry::open(&registry_config) {
        Ok(registry) => registry,
        Err(e) => {
            eprintln!("error: opening registry failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    eprintln!(
        "serving {} tenants, {} routing rules",
        registry.tenants().len(),
        registry.routes().rules().len()
    );
    // The wait-for line: scripts poll for this exact prefix.
    println!("listening on {}", server.local_addr());
    std::thread::scope(|scope| {
        let stdin_handle = handle.clone();
        scope.spawn(move || stdin_control(stdin_handle));
        server.run_registry(&registry);
    });
    for tenant in handle.tenant_stats() {
        eprintln!(
            "tenant {}: {} requests ({} queries, {} rejected, {} quota rejects)",
            tenant.name, tenant.requests, tenant.queries, tenant.rejected, tenant.quota_rejects
        );
    }
    finish(trace_path, &handle)
}

/// stdin control: a `quit` line triggers graceful shutdown; EOF just
/// parks so `</dev/null &` backgrounding works.
fn stdin_control(handle: ServerHandle) {
    let mut line = String::new();
    loop {
        line.clear();
        match std::io::stdin().read_line(&mut line) {
            Ok(0) => loop {
                if handle.is_stopping() {
                    return;
                }
                std::thread::sleep(Duration::from_millis(200));
            },
            Ok(_) => {
                if line.trim() == "quit" {
                    handle.shutdown();
                    return;
                }
            }
            Err(_) => return,
        }
    }
}

/// Post-run trace dump and final stats line, shared by both modes.
fn finish(trace_path: Option<PathBuf>, handle: &ServerHandle) -> ExitCode {
    if let Some(path) = trace_path {
        let events = lotusx_obs::drain_events();
        let json = lotusx_obs::chrome_trace_json_with(&events, Some(lotusx_obs::trace_counters()));
        match std::fs::write(&path, json) {
            Ok(()) => eprintln!(
                "trace: {} events written to {}",
                events.len(),
                path.display()
            ),
            Err(e) => eprintln!("trace: writing {} failed: {e}", path.display()),
        }
    }
    let stats = handle.stats();
    eprintln!(
        "stopped: {} requests ({} rejected, {} panics)",
        stats.requests, stats.rejected, stats.panics
    );
    ExitCode::SUCCESS
}

/// Liveness + one end-to-end query against a running server.
fn probe(addr: SocketAddr) -> ExitCode {
    let health = match client::get(addr, "/healthz") {
        Ok(r) if r.status == 200 => r,
        Ok(r) => {
            eprintln!("probe: /healthz answered {}", r.status);
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("probe: /healthz failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if health.body_text().trim() != "ok" {
        eprintln!("probe: unexpected health body {:?}", health.body_text());
        return ExitCode::FAILURE;
    }
    // A keyword query works on any corpus (twig probes would need to
    // know the schema); an empty result set is still a valid probe.
    let query = "{\"text\":\"author\",\"kind\":\"keyword\",\"top_k\":1}";
    match client::post(addr, "/query", query) {
        Ok(r) if r.status == 200 && r.body_text().contains("\"total_matches\":") => {
            println!("probe ok: {}", r.body_text().trim_end());
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("probe: /query answered {}: {}", r.status, r.body_text());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("probe: /query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

/// The value of a single-sample Prometheus family in an exposition
/// body (a line `name VALUE`, no labels).
fn metric_value(body: &str, name: &str) -> Option<f64> {
    body.lines().find_map(|line| {
        let rest = line.strip_prefix(name)?;
        let rest = rest.strip_prefix(' ')?;
        rest.trim().parse::<f64>().ok()
    })
}

/// Structural check of one exposition document: every non-comment line
/// is `name[{labels}] value`, and no `# TYPE` family repeats.
fn check_exposition(body: &str) -> Result<(), String> {
    let mut families = std::collections::HashSet::new();
    for (i, line) in body.lines().enumerate() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let family = rest.split(' ').next().unwrap_or("");
            if !families.insert(family.to_string()) {
                return Err(format!("family {family} has more than one # TYPE line"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (name_part, value_part) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no value: {line:?}", i + 1))?;
        let name = name_part.split('{').next().unwrap_or("");
        let name_ok = !name.is_empty()
            && name.chars().enumerate().all(|(j, c)| {
                c.is_ascii_alphabetic() || c == '_' || c == ':' || (j > 0 && c.is_ascii_digit())
            });
        if !name_ok {
            return Err(format!("line {}: bad metric name: {line:?}", i + 1));
        }
        let value_ok =
            value_part.parse::<f64>().is_ok() || matches!(value_part, "NaN" | "+Inf" | "-Inf");
        if !value_ok {
            return Err(format!("line {}: bad value: {line:?}", i + 1));
        }
    }
    Ok(())
}

/// Drives a keep-alive connection (pipelined queries), then scrapes
/// `/metrics` twice on the same socket and checks exposition format and
/// counter monotonicity. Exit 0/1.
fn metrics_probe(addr: SocketAddr) -> ExitCode {
    let fail = |msg: String| {
        eprintln!("metrics-probe: {msg}");
        ExitCode::FAILURE
    };
    let mut conn = match client::Conn::connect(addr) {
        Ok(conn) => conn,
        Err(e) => return fail(format!("connect failed: {e}")),
    };
    // Pipelined keep-alive traffic so the scrape has something to show.
    let query = b"{\"text\":\"author\",\"kind\":\"keyword\",\"top_k\":1}";
    for _ in 0..3 {
        if let Err(e) = conn.send("POST", "/query", Some(query)) {
            return fail(format!("pipelined send failed: {e}"));
        }
    }
    for i in 0..3 {
        match conn.read_one() {
            Ok(r) if r.status == 200 => {}
            Ok(r) => return fail(format!("query {i} answered {}", r.status)),
            Err(e) => return fail(format!("query {i} read failed: {e}")),
        }
    }
    let mut scrape = |label: &str| -> Result<String, String> {
        conn.send("GET", "/metrics", None)
            .map_err(|e| format!("{label}: send failed: {e}"))?;
        let r = conn
            .read_one()
            .map_err(|e| format!("{label}: read failed: {e}"))?;
        if r.status != 200 {
            return Err(format!("{label}: answered {}", r.status));
        }
        let content_type = r.header("content-type").unwrap_or("").to_string();
        if !content_type.starts_with("text/plain") || !content_type.contains("version=0.0.4") {
            return Err(format!("{label}: bad content type {content_type:?}"));
        }
        Ok(r.body_text())
    };
    let first = match scrape("first scrape") {
        Ok(body) => body,
        Err(e) => return fail(e),
    };
    let second = match scrape("second scrape") {
        Ok(body) => body,
        Err(e) => return fail(e),
    };
    for (label, body) in [("first scrape", &first), ("second scrape", &second)] {
        if let Err(e) = check_exposition(body) {
            return fail(format!("{label}: {e}"));
        }
    }
    for required in [
        "# TYPE lotusx_server_requests_total counter",
        "# TYPE lotusx_server_connections_open gauge",
        "# TYPE lotusx_stage_seconds summary",
        "lotusx_trace_events_total{outcome=\"produced\"}",
    ] {
        if !first.contains(required) {
            return fail(format!("first scrape is missing {required:?}"));
        }
    }
    // Counters are monotonic between scrapes, and each scrape counts
    // itself: the second sees strictly more requests than the first.
    for counter in [
        "lotusx_server_requests_total",
        "lotusx_server_metrics_requests_total",
    ] {
        let (Some(a), Some(b)) = (
            metric_value(&first, counter),
            metric_value(&second, counter),
        ) else {
            return fail(format!("{counter} missing from a scrape"));
        };
        if b <= a {
            return fail(format!("{counter} did not advance: {a} → {b}"));
        }
    }
    println!(
        "metrics-probe ok: requests {} → {}",
        metric_value(&first, "lotusx_server_requests_total").unwrap_or(0.0),
        metric_value(&second, "lotusx_server_requests_total").unwrap_or(0.0),
    );
    ExitCode::SUCCESS
}

fn stop(addr: SocketAddr) -> ExitCode {
    match client::post(addr, "/shutdown", "{}") {
        Ok(r) if r.status == 200 => {
            println!("stopping");
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("stop: answered {}", r.status);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("stop: {e}");
            ExitCode::FAILURE
        }
    }
}
