//! The `lotusx-serve` binary: serve a generated corpus over HTTP.
//!
//! ```text
//! lotusx-serve [--addr HOST:PORT] [--threads N] [--max-inflight N]
//!              [--corpus @dataset[:scale[:seed]]] [--read-timeout-ms MS]
//! lotusx-serve --probe HOST:PORT   # healthz + one query, exit 0/1
//! lotusx-serve --stop HOST:PORT    # graceful remote shutdown
//! ```
//!
//! The server prints `listening on <ADDR>` once bound (scripts wait for
//! that line), then serves until it reads `quit` on stdin, receives
//! `POST /shutdown`, or the process is killed. EOF on stdin parks the
//! reader — backgrounding with `</dev/null` does not stop the server.

use lotusx::LotusX;
use lotusx_serve::{client, ServeConfig, Server};
use std::net::SocketAddr;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Mode::Serve(config, corpus)) => serve(config, &corpus),
        Ok(Mode::Probe(addr)) => probe(addr),
        Ok(Mode::Stop(addr)) => stop(addr),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: lotusx-serve [--addr HOST:PORT] [--threads N] [--max-inflight N] \
                 [--corpus @dataset[:scale[:seed]]] [--read-timeout-ms MS]\n\
                 \x20      lotusx-serve --probe HOST:PORT | --stop HOST:PORT"
            );
            ExitCode::FAILURE
        }
    }
}

enum Mode {
    Serve(ServeConfig, String),
    Probe(SocketAddr),
    Stop(SocketAddr),
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServeConfig::default()
    };
    let mut corpus = "@dblp:1".to_string();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?
            }
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|_| "--max-inflight must be a positive integer".to_string())?
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms must be an integer".to_string())?;
                config.read_timeout = Duration::from_millis(ms);
            }
            "--corpus" => corpus = value("--corpus")?,
            "--probe" => return Ok(Mode::Probe(parse_addr(&value("--probe")?)?)),
            "--stop" => return Ok(Mode::Stop(parse_addr(&value("--stop")?)?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Mode::Serve(config, corpus))
}

fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse().map_err(|_| format!("bad address {s:?}"))
}

fn serve(config: ServeConfig, corpus: &str) -> ExitCode {
    let Some((dataset, scale, seed)) = lotusx_datagen::parse_spec(corpus) else {
        eprintln!(
            "error: bad corpus spec {corpus:?} (expected @dblp|@xmark|@treebank[:scale[:seed]])"
        );
        return ExitCode::FAILURE;
    };
    lotusx_obs::set_enabled(true);
    eprintln!("generating corpus {}:{scale}:{seed} ...", dataset.name());
    let engine = LotusX::load_document(lotusx_datagen::generate(dataset, scale, seed));
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    // The wait-for line: scripts poll for this exact prefix.
    println!("listening on {}", server.local_addr());

    std::thread::scope(|scope| {
        // stdin control: a `quit` line triggers graceful shutdown; EOF
        // just parks so `</dev/null &` backgrounding works.
        let stdin_handle = handle.clone();
        scope.spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) => loop {
                        if stdin_handle.is_stopping() {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(200));
                    },
                    Ok(_) => {
                        if line.trim() == "quit" {
                            stdin_handle.shutdown();
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
        server.run(&engine);
    });
    let stats = handle.stats();
    eprintln!(
        "stopped: {} requests ({} rejected, {} panics)",
        stats.requests, stats.rejected, stats.panics
    );
    ExitCode::SUCCESS
}

/// Liveness + one end-to-end query against a running server.
fn probe(addr: SocketAddr) -> ExitCode {
    let health = match client::get(addr, "/healthz") {
        Ok(r) if r.status == 200 => r,
        Ok(r) => {
            eprintln!("probe: /healthz answered {}", r.status);
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("probe: /healthz failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if health.body_text().trim() != "ok" {
        eprintln!("probe: unexpected health body {:?}", health.body_text());
        return ExitCode::FAILURE;
    }
    // A keyword query works on any corpus (twig probes would need to
    // know the schema); an empty result set is still a valid probe.
    let query = "{\"text\":\"author\",\"kind\":\"keyword\",\"top_k\":1}";
    match client::post(addr, "/query", query) {
        Ok(r) if r.status == 200 && r.body_text().contains("\"total_matches\":") => {
            println!("probe ok: {}", r.body_text().trim_end());
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("probe: /query answered {}: {}", r.status, r.body_text());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("probe: /query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stop(addr: SocketAddr) -> ExitCode {
    match client::post(addr, "/shutdown", "{}") {
        Ok(r) if r.status == 200 => {
            println!("stopping");
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("stop: answered {}", r.status);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("stop: {e}");
            ExitCode::FAILURE
        }
    }
}
