//! The `lotusx-serve` binary: serve a generated corpus over HTTP.
//!
//! ```text
//! lotusx-serve [--addr HOST:PORT] [--threads N] [--max-inflight N]
//!              [--corpus SOURCE] [--read-timeout-ms MS]
//!              [--write-timeout-ms MS] [--idle-timeout-ms MS]
//!              [--backend auto|poll|epoll]
//! lotusx-serve --corpus SOURCE --snapshot save:PATH   # build, save, exit
//! lotusx-serve --snapshot load:PATH                   # serve from snapshot
//! lotusx-serve --probe HOST:PORT   # healthz + one query, exit 0/1
//! lotusx-serve --stop HOST:PORT    # graceful remote shutdown
//! ```
//!
//! `SOURCE` is any corpus source: `@dataset[:scale[:seed]]`, an XML
//! file, or a `.ltsx` snapshot.
//!
//! The server prints `listening on <ADDR>` once bound (scripts wait for
//! that line), then serves until it reads `quit` on stdin, receives
//! `POST /shutdown`, or the process is killed. EOF on stdin parks the
//! reader — backgrounding with `</dev/null` does not stop the server.

use lotusx::{CorpusSource, LotusX};
use lotusx_serve::{client, ServeConfig, Server};
use std::net::SocketAddr;
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Duration;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match parse_args(&args) {
        Ok(Mode::Serve(config, corpus, snapshot)) => serve(config, &corpus, snapshot),
        Ok(Mode::Probe(addr)) => probe(addr),
        Ok(Mode::Stop(addr)) => stop(addr),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: lotusx-serve [--addr HOST:PORT] [--threads N] [--max-inflight N] \
                 [--corpus SOURCE] [--snapshot save:PATH|load:PATH] [--read-timeout-ms MS] \
                 [--write-timeout-ms MS] [--idle-timeout-ms MS] [--backend auto|poll|epoll]\n\
                 \x20      lotusx-serve --probe HOST:PORT | --stop HOST:PORT\n\
                 SOURCE: @dataset[:scale[:seed]] | file.xml | file.ltsx"
            );
            ExitCode::FAILURE
        }
    }
}

enum SnapshotAction {
    /// Build the corpus, write the snapshot, exit without serving.
    Save(PathBuf),
    /// Serve from a snapshot instead of the `--corpus` source.
    Load(PathBuf),
}

enum Mode {
    Serve(ServeConfig, String, Option<SnapshotAction>),
    Probe(SocketAddr),
    Stop(SocketAddr),
}

fn parse_args(args: &[String]) -> Result<Mode, String> {
    let mut config = ServeConfig {
        addr: "127.0.0.1:8080".to_string(),
        ..ServeConfig::default()
    };
    let mut corpus = "@dblp:1".to_string();
    let mut snapshot = None;
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        let mut value = |name: &str| {
            iter.next()
                .cloned()
                .ok_or_else(|| format!("{name} requires a value"))
        };
        match flag.as_str() {
            "--addr" => config.addr = value("--addr")?,
            "--threads" => {
                config.threads = value("--threads")?
                    .parse()
                    .map_err(|_| "--threads must be a positive integer".to_string())?
            }
            "--max-inflight" => {
                config.max_inflight = value("--max-inflight")?
                    .parse()
                    .map_err(|_| "--max-inflight must be a positive integer".to_string())?
            }
            "--read-timeout-ms" => {
                let ms: u64 = value("--read-timeout-ms")?
                    .parse()
                    .map_err(|_| "--read-timeout-ms must be an integer".to_string())?;
                config.read_timeout = Duration::from_millis(ms);
            }
            "--write-timeout-ms" => {
                let ms: u64 = value("--write-timeout-ms")?
                    .parse()
                    .map_err(|_| "--write-timeout-ms must be an integer".to_string())?;
                config.write_timeout = Duration::from_millis(ms);
            }
            "--idle-timeout-ms" => {
                let ms: u64 = value("--idle-timeout-ms")?
                    .parse()
                    .map_err(|_| "--idle-timeout-ms must be an integer".to_string())?;
                config.idle_timeout = Duration::from_millis(ms);
            }
            "--backend" => config.backend = lotusx_serve::Backend::parse(&value("--backend")?)?,
            "--corpus" => corpus = value("--corpus")?,
            "--snapshot" => {
                let action = value("--snapshot")?;
                snapshot = Some(match action.split_once(':') {
                    Some(("save", path)) if !path.is_empty() => {
                        SnapshotAction::Save(PathBuf::from(path))
                    }
                    Some(("load", path)) if !path.is_empty() => {
                        SnapshotAction::Load(PathBuf::from(path))
                    }
                    _ => {
                        return Err(format!(
                            "--snapshot takes save:PATH or load:PATH, got {action:?}"
                        ))
                    }
                });
            }
            "--probe" => return Ok(Mode::Probe(parse_addr(&value("--probe")?)?)),
            "--stop" => return Ok(Mode::Stop(parse_addr(&value("--stop")?)?)),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    Ok(Mode::Serve(config, corpus, snapshot))
}

fn parse_addr(s: &str) -> Result<SocketAddr, String> {
    s.parse().map_err(|_| format!("bad address {s:?}"))
}

fn serve(config: ServeConfig, corpus: &str, snapshot: Option<SnapshotAction>) -> ExitCode {
    let source = if let Some(SnapshotAction::Load(path)) = &snapshot {
        CorpusSource::Snapshot(path.clone())
    } else {
        match corpus.parse::<CorpusSource>() {
            Ok(source) => source,
            Err(e) => {
                eprintln!("error: {e}");
                return ExitCode::FAILURE;
            }
        }
    };
    lotusx_obs::set_enabled(true);
    eprintln!("opening corpus {source} ...");
    let engine = match LotusX::open(&source) {
        Ok(engine) => engine,
        Err(e) => {
            eprintln!("error: opening corpus {source} failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(SnapshotAction::Save(path)) = &snapshot {
        if let Err(e) = engine.save_snapshot(path) {
            eprintln!("error: saving snapshot failed: {e}");
            return ExitCode::FAILURE;
        }
        println!("snapshot saved to {}", path.display());
        return ExitCode::SUCCESS;
    }
    let server = match Server::bind(config) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("error: bind failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let handle = server.handle();
    // The wait-for line: scripts poll for this exact prefix.
    println!("listening on {}", server.local_addr());

    std::thread::scope(|scope| {
        // stdin control: a `quit` line triggers graceful shutdown; EOF
        // just parks so `</dev/null &` backgrounding works.
        let stdin_handle = handle.clone();
        scope.spawn(move || {
            let mut line = String::new();
            loop {
                line.clear();
                match std::io::stdin().read_line(&mut line) {
                    Ok(0) => loop {
                        if stdin_handle.is_stopping() {
                            return;
                        }
                        std::thread::sleep(Duration::from_millis(200));
                    },
                    Ok(_) => {
                        if line.trim() == "quit" {
                            stdin_handle.shutdown();
                            return;
                        }
                    }
                    Err(_) => return,
                }
            }
        });
        server.run(&engine);
    });
    let stats = handle.stats();
    eprintln!(
        "stopped: {} requests ({} rejected, {} panics)",
        stats.requests, stats.rejected, stats.panics
    );
    ExitCode::SUCCESS
}

/// Liveness + one end-to-end query against a running server.
fn probe(addr: SocketAddr) -> ExitCode {
    let health = match client::get(addr, "/healthz") {
        Ok(r) if r.status == 200 => r,
        Ok(r) => {
            eprintln!("probe: /healthz answered {}", r.status);
            return ExitCode::FAILURE;
        }
        Err(e) => {
            eprintln!("probe: /healthz failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    if health.body_text().trim() != "ok" {
        eprintln!("probe: unexpected health body {:?}", health.body_text());
        return ExitCode::FAILURE;
    }
    // A keyword query works on any corpus (twig probes would need to
    // know the schema); an empty result set is still a valid probe.
    let query = "{\"text\":\"author\",\"kind\":\"keyword\",\"top_k\":1}";
    match client::post(addr, "/query", query) {
        Ok(r) if r.status == 200 && r.body_text().contains("\"total_matches\":") => {
            println!("probe ok: {}", r.body_text().trim_end());
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("probe: /query answered {}: {}", r.status, r.body_text());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("probe: /query failed: {e}");
            ExitCode::FAILURE
        }
    }
}

fn stop(addr: SocketAddr) -> ExitCode {
    match client::post(addr, "/shutdown", "{}") {
        Ok(r) if r.status == 200 => {
            println!("stopping");
            ExitCode::SUCCESS
        }
        Ok(r) => {
            eprintln!("stop: answered {}", r.status);
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("stop: {e}");
            ExitCode::FAILURE
        }
    }
}
