//! The `lotusx-soak` binary: a connection soak against the event-loop
//! server on loopback.
//!
//! ```text
//! lotusx-soak [--soak] [--conns N] [--backend auto|poll|epoll]
//! lotusx-soak --tenants     # two-tenant isolation chaos (tenant-soak CI stage)
//! ```
//!
//! Starts an in-process server on an ephemeral port and drives a mixed
//! fleet of client state machines from a single thread (reusing the
//! crate's own readiness poller, so the harness itself scales to the
//! connection counts it tests):
//!
//! * **keep-alive** clients: several requests on one socket, the last
//!   with `Connection: close`;
//! * **one-shot** clients: `Connection: close` requests with reconnect
//!   churn;
//! * **slow readers**: send a query, then leave the response unread for
//!   a while before draining it;
//! * **slow-loris** clients: a partial request head and then silence —
//!   each must be answered `408` exactly once.
//!
//! The default quick mode (the `soak-smoke` CI stage) holds 1000
//! concurrent connections; `--soak` is the longer local run. Exit code
//! 0 means every assertion held: zero panics, *exact* accept/request/
//! reject accounting against the server's counters, every response the
//! expected status, and bounded memory growth.
//!
//! `--tenants` (the `tenant-soak` CI stage) runs the mixed-tenant chaos
//! scenario instead: a registry hosting tenant `alpha` (admission quota
//! 2) and tenant `beta` (unlimited), with a client fleet saturating
//! alpha far past its quota while beta trickles sequential traffic.
//! Asserts tenant isolation under load: beta never sees a 429 or an
//! error and its p99 stays bounded, alpha's client-observed 429s equal
//! the server's `quota_rejects` counter *exactly*, alpha actually
//! tripped its quota, beta's counters equal beta's own traffic alone,
//! and nothing panicked.

use lotusx::{EngineRegistry, LotusX, RoutePredicate, RouteRule, TenantLimits, TenantSelector};
use lotusx_serve::client::{self, parse_response, Response};
use lotusx_serve::poller::{Backend, Interest, PollEvent, Poller};
use lotusx_serve::{ServeConfig, Server};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::process::ExitCode;
use std::time::{Duration, Instant};

const CORPUS: &str = "<bib><book><author>knuth</author><title>taocp</title></book>\
                      <book><author>lamport</author><title>latex</title></book></bib>";
const QUERY: &str = "{\"text\":\"knuth\",\"kind\":\"keyword\",\"top_k\":1}";

/// Soak dimensions; `quick()` is the CI stage, `full()` is `--soak`.
struct Profile {
    conns: usize,
    keepalive_rounds: u64,
    oneshot_reconnects: u64,
    traffic_deadline: Duration,
}

impl Profile {
    fn quick() -> Profile {
        Profile {
            conns: 1000,
            keepalive_rounds: 3,
            oneshot_reconnects: 2,
            traffic_deadline: Duration::from_secs(60),
        }
    }

    fn full() -> Profile {
        Profile {
            conns: 2000,
            keepalive_rounds: 25,
            oneshot_reconnects: 10,
            traffic_deadline: Duration::from_secs(300),
        }
    }
}

fn main() -> ExitCode {
    let mut profile = Profile::quick();
    let mut backend = Backend::Auto;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(flag) = iter.next() {
        match flag.as_str() {
            "--soak" => profile = Profile::full(),
            "--tenants" => {
                return match tenant_soak() {
                    Ok(()) => {
                        println!("tenant soak ok");
                        ExitCode::SUCCESS
                    }
                    Err(e) => {
                        eprintln!("tenant soak FAILED: {e}");
                        ExitCode::FAILURE
                    }
                }
            }
            "--conns" => match iter.next().and_then(|v| v.parse().ok()) {
                Some(n) if n > 0 => profile.conns = n,
                _ => return usage("--conns requires a positive integer"),
            },
            "--backend" => match iter.next().map(|v| Backend::parse(v)) {
                Some(Ok(b)) => backend = b,
                _ => return usage("--backend requires auto|poll|epoll"),
            },
            other => return usage(&format!("unknown flag {other}")),
        }
    }
    match soak(&profile, backend) {
        Ok(()) => {
            println!("soak ok");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("soak FAILED: {e}");
            ExitCode::FAILURE
        }
    }
}

fn usage(msg: &str) -> ExitCode {
    eprintln!("error: {msg}");
    eprintln!("usage: lotusx-soak [--soak] [--conns N] [--backend auto|poll|epoll] | --tenants");
    ExitCode::FAILURE
}

/// What one simulated client is doing.
enum Kind {
    KeepAlive { rounds_left: u64 },
    OneShot { reconnects_left: u64 },
    SlowReader,
    SlowLoris,
}

/// One client state machine, driven by readiness events.
struct Client {
    stream: TcpStream,
    kind: Kind,
    out: Vec<u8>,
    outpos: usize,
    inbuf: Vec<u8>,
    /// Keep the response unread until this instant (slow readers).
    resume_at: Option<Instant>,
    /// The response was read; now expect a server-side close.
    await_eof: bool,
    done: bool,
    /// Interest currently registered (skip no-op `modify` syscalls).
    interest: Interest,
}

/// Client-side ground truth, compared exactly against the server's own
/// counters at the end.
#[derive(Default)]
struct Ledger {
    connects: u64,
    requests_sent: u64,
    ok_responses: u64,
    loris_408s: u64,
    errors: u64,
}

fn soak(profile: &Profile, backend: Backend) -> Result<(), String> {
    let engine = LotusX::load_str(CORPUS).map_err(|e| format!("corpus: {e}"))?;
    // Route the soak through the structured access log so the run also
    // proves the log's exactly-once accounting under real churn.
    let access_path =
        std::env::temp_dir().join(format!("lotusx-soak-access-{}.jsonl", std::process::id()));
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        max_inflight: profile.conns * 2,
        read_timeout: Duration::from_secs(5),
        write_timeout: Duration::from_secs(5),
        idle_timeout: Duration::from_secs(120),
        backend,
        access_log: Some(access_path.clone()),
        ..ServeConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let handle = server.handle();
    let addr = server.local_addr();
    let rss_before = vm_rss_kb();

    let result = std::thread::scope(|scope| {
        scope.spawn(|| server.run(&engine));
        let out = drive(profile, addr, &handle);
        handle.shutdown();
        out
    });
    let ledger = result?;

    // --- exact accounting against the server's own counters ---
    let stats = handle.stats();
    // One loris per block of ten clients (i % 10 == 9 in the mix).
    let loris = (profile.conns / 10) as u64;
    let mut failures = Vec::new();
    let mut check = |name: &str, got: u64, want: u64| {
        if got != want {
            failures.push(format!("{name}: got {got}, want {want}"));
        }
    };
    check("panics", stats.panics, 0);
    check("client-side errors", ledger.errors, 0);
    check(
        "connections_accepted",
        stats.connections_accepted,
        ledger.connects,
    );
    check("requests", stats.requests, ledger.requests_sent);
    check("rejected (loris 408s)", stats.rejected, loris);
    check("client 408s", ledger.loris_408s, loris);
    check(
        "200 responses",
        ledger.ok_responses,
        ledger.requests_sent - 1, // the /stats probe checks its own body
    );
    check("read_timeouts", stats.read_timeouts, loris);
    check("open connections after drain", stats.connections_open, 0);
    // Access-log accounting: every answered request — including the
    // loris 408s, which never parse into requests — lands exactly one
    // JSONL line, and the bounded queue never dropped.
    let want_lines = ledger.requests_sent + ledger.loris_408s;
    check(
        "access_log_lines counter",
        stats.access_log_lines,
        want_lines,
    );
    check("access_log_dropped", stats.access_log_dropped, 0);
    match std::fs::read_to_string(&access_path) {
        Ok(body) => {
            let on_disk = body.lines().filter(|l| !l.is_empty()).count() as u64;
            check("access log lines on disk", on_disk, want_lines);
        }
        Err(e) => failures.push(format!("access log unreadable: {e}")),
    }
    std::fs::remove_file(&access_path).ok();
    if let (Some(before), Some(after)) = (rss_before, vm_rss_kb()) {
        let grown = after.saturating_sub(before);
        if grown > 256 * 1024 {
            failures.push(format!("VmRSS grew {grown} KiB (cap 256 MiB)"));
        }
        println!("rss: {before} KiB -> {after} KiB (+{grown} KiB)");
    }
    println!(
        "accepted={} requests={} rejected={} keepalive_reuses={} max_ready_batch={}",
        stats.connections_accepted,
        stats.requests,
        stats.rejected,
        stats.keepalive_reuses,
        stats.max_ready_batch
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// The mixed-tenant chaos scenario (`--tenants`): saturate tenant
/// `alpha` far past its two-slot admission quota while tenant `beta`
/// trickles sequential traffic, then reconcile every counter exactly.
/// See the module docs for the assertion list.
fn tenant_soak() -> Result<(), String> {
    // alpha gets a corpus big enough that its queries spend real time
    // in compute (keeping the two quota slots occupied); beta stays on
    // the tiny corpus so its requests are cheap and latency-sensitive.
    let mut alpha_xml = String::from("<bib>");
    for i in 0..2000 {
        alpha_xml.push_str(&format!(
            "<book><author>knuth</author><title>taocp vol {i}</title></book>"
        ));
    }
    alpha_xml.push_str("</bib>");
    let alpha = LotusX::load_str(&alpha_xml).map_err(|e| format!("alpha corpus: {e}"))?;
    let beta = LotusX::load_str(CORPUS).map_err(|e| format!("beta corpus: {e}"))?;
    let registry = EngineRegistry::from_parts(
        vec![
            (
                "alpha".to_string(),
                alpha,
                TenantLimits {
                    max_inflight: Some(2),
                    ..TenantLimits::unlimited()
                },
            ),
            ("beta".to_string(), beta, TenantLimits::unlimited()),
        ],
        vec![RouteRule {
            when: RoutePredicate::PathPrefix("/t/".to_string()),
            tenant: TenantSelector::FromPath,
        }],
    )
    .map_err(|e| format!("registry: {e}"))?;
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        threads: 2,
        max_inflight: 256,
        ..ServeConfig::default()
    })
    .map_err(|e| format!("bind: {e}"))?;
    let handle = server.handle();
    let addr = server.local_addr();

    const A_THREADS: u64 = 16;
    const A_REQUESTS: u64 = 40;
    const B_REQUESTS: u64 = 60;
    let alpha_query = "{\"text\":\"knuth\",\"kind\":\"keyword\",\"top_k\":25}";

    let ((a_ok, a_429, a_other), (b_latencies, b_429, b_other)) = std::thread::scope(|scope| {
        scope.spawn(|| server.run_registry(&registry));
        let a_handles: Vec<_> = (0..A_THREADS)
            .map(|_| {
                scope.spawn(move || {
                    let (mut ok, mut rejected, mut other) = (0u64, 0u64, 0u64);
                    for _ in 0..A_REQUESTS {
                        match client::post(addr, "/t/alpha/query", alpha_query) {
                            Ok(r) if r.status == 200 => ok += 1,
                            Ok(r) if r.status == 429 => rejected += 1,
                            _ => other += 1,
                        }
                    }
                    (ok, rejected, other)
                })
            })
            .collect();
        let b_handle = scope.spawn(move || {
            let mut latencies = Vec::with_capacity(B_REQUESTS as usize);
            let (mut rejected, mut other) = (0u64, 0u64);
            for _ in 0..B_REQUESTS {
                let started = Instant::now();
                match client::post(addr, "/t/beta/query", QUERY) {
                    Ok(r) if r.status == 200 => latencies.push(started.elapsed()),
                    Ok(r) if r.status == 429 => rejected += 1,
                    _ => other += 1,
                }
                std::thread::sleep(Duration::from_millis(2));
            }
            (latencies, rejected, other)
        });
        let mut a = (0u64, 0u64, 0u64);
        for h in a_handles {
            let (ok, rejected, other) = h.join().expect("alpha client panicked");
            a.0 += ok;
            a.1 += rejected;
            a.2 += other;
        }
        let b = b_handle.join().expect("beta client panicked");
        handle.shutdown();
        (a, b)
    });

    let stats = handle.stats();
    let tenants = handle.tenant_stats();
    let find = |name: &str| {
        tenants
            .iter()
            .find(|t| t.name == name)
            .ok_or_else(|| format!("no {name} snapshot"))
    };
    let alpha_snap = find("alpha")?;
    let beta_snap = find("beta")?;
    let mut failures = Vec::new();
    let mut check = |name: &str, got: u64, want: u64| {
        if got != want {
            failures.push(format!("{name}: got {got}, want {want}"));
        }
    };
    check("panics", stats.panics, 0);
    check("alpha client errors", a_other, 0);
    check(
        "alpha responses accounted",
        a_ok + a_429,
        A_THREADS * A_REQUESTS,
    );
    // --- isolation: beta never feels alpha's saturation ---
    check("beta 429s", b_429, 0);
    check("beta client errors", b_other, 0);
    check("beta 200s", b_latencies.len() as u64, B_REQUESTS);
    // --- exact per-tenant accounting ---
    check(
        "alpha quota_rejects == client-observed 429s",
        alpha_snap.quota_rejects,
        a_429,
    );
    check(
        "server tenant_quota_rejects",
        stats.tenant_quota_rejects,
        a_429,
    );
    check(
        "alpha requests (dispatched only)",
        alpha_snap.requests,
        a_ok,
    );
    check("alpha queries", alpha_snap.queries, a_ok);
    check("alpha worker rejects", alpha_snap.rejected, 0);
    check("beta requests", beta_snap.requests, B_REQUESTS);
    check("beta queries", beta_snap.queries, B_REQUESTS);
    check("beta quota_rejects", beta_snap.quota_rejects, 0);
    check("beta worker rejects", beta_snap.rejected, 0);
    check("alpha inflight after drain", alpha_snap.inflight, 0);
    check("beta inflight after drain", beta_snap.inflight, 0);
    check("unknown_tenant rejects", stats.unknown_tenant_rejects, 0);
    if a_429 == 0 {
        failures.push("alpha never tripped its quota — saturation did not happen".to_string());
    }
    if alpha_snap.max_inflight_seen > 2 {
        failures.push(format!(
            "alpha max_inflight_seen {} exceeds its quota of 2",
            alpha_snap.max_inflight_seen
        ));
    }
    let p99 = {
        let mut sorted = b_latencies.clone();
        sorted.sort();
        sorted
            .get(((sorted.len() * 99) / 100).min(sorted.len().saturating_sub(1)))
            .copied()
            .unwrap_or_default()
    };
    if p99 > Duration::from_secs(2) {
        failures.push(format!("beta p99 {p99:?} exceeds the 2s bound"));
    }
    println!(
        "alpha: ok={a_ok} quota_rejects={a_429} max_inflight_seen={}; \
         beta: ok={} p99={p99:?}",
        alpha_snap.max_inflight_seen,
        b_latencies.len(),
    );
    if failures.is_empty() {
        Ok(())
    } else {
        Err(failures.join("; "))
    }
}

/// Runs the client fleet; returns the client-side ledger.
fn drive(
    profile: &Profile,
    addr: SocketAddr,
    handle: &lotusx_serve::ServerHandle,
) -> Result<Ledger, String> {
    let mut ledger = Ledger::default();
    let mut poller = Poller::new(Backend::Auto).map_err(|e| format!("client poller: {e}"))?;
    let mut clients: Vec<Option<Client>> = Vec::with_capacity(profile.conns);

    // Phase 1: connect the whole fleet before any traffic, in batches
    // so the accept backlog never overflows.
    for i in 0..profile.conns {
        let kind = match i % 10 {
            0..=3 => Kind::KeepAlive {
                rounds_left: profile.keepalive_rounds,
            },
            4..=6 => Kind::OneShot {
                reconnects_left: profile.oneshot_reconnects,
            },
            7..=8 => Kind::SlowReader,
            _ => Kind::SlowLoris,
        };
        let client = connect(addr, kind, &mut ledger)?;
        poller
            .register(fd(&client.stream), i, Interest::READ)
            .map_err(|e| format!("register: {e}"))?;
        clients.push(Some(client));
        if i % 100 == 99 {
            std::thread::sleep(Duration::from_millis(5));
        }
    }

    // Phase 2: with every socket connected and silent, the server must
    // be holding the whole fleet open concurrently.
    let stats_probe = client::get(addr, "/stats").map_err(|e| format!("stats probe: {e}"))?;
    ledger.connects += 1;
    ledger.requests_sent += 1;
    if stats_probe.status != 200 {
        return Err(format!("stats probe answered {}", stats_probe.status));
    }
    let open = extract_counter(&stats_probe.body_text(), "connections_open")
        .ok_or("stats probe: no connections_open counter")?;
    if (open as usize) < profile.conns {
        return Err(format!(
            "only {open} connections open concurrently, want >= {}",
            profile.conns
        ));
    }
    println!("holding {open} concurrent connections");

    // Phase 3: traffic. Load initial requests, then drive to done.
    for (i, slot) in clients.iter_mut().enumerate() {
        let c = slot.as_mut().expect("fleet fully connected");
        load_request(c, &mut ledger);
        flush_client(c);
        sync_interest(&mut poller, i, c);
    }
    let deadline = Instant::now() + profile.traffic_deadline;
    let mut events: Vec<PollEvent> = Vec::new();
    let mut live = clients.len();
    while live > 0 {
        if Instant::now() > deadline {
            return Err(format!("traffic phase timed out with {live} clients live"));
        }
        poller
            .wait(&mut events, Some(Duration::from_millis(25)))
            .map_err(|e| format!("client wait: {e}"))?;
        for ev in &events {
            let Some(c) = clients[ev.token].as_mut() else {
                continue;
            };
            if ev.writable {
                flush_client(c);
            }
            if ev.readable || ev.hangup {
                pump_read(c, &mut ledger);
            }
            step(c, &mut ledger);
        }
        // Time-based transitions: slow readers resuming.
        let now = Instant::now();
        for (i, slot) in clients.iter_mut().enumerate() {
            let mut finished = false;
            let mut reconnect = false;
            if let Some(c) = slot.as_mut() {
                if c.resume_at.is_some_and(|t| now >= t) {
                    c.resume_at = None;
                    pump_read(c, &mut ledger);
                    step(c, &mut ledger);
                }
                if c.done {
                    finished = true;
                    reconnect = matches!(
                        c.kind,
                        Kind::OneShot { reconnects_left } if reconnects_left > 0
                    );
                }
            }
            if finished {
                let old = slot.take().expect("checked");
                poller.deregister(fd(&old.stream)).ok();
                if reconnect {
                    let Kind::OneShot { reconnects_left } = old.kind else {
                        unreachable!()
                    };
                    drop(old);
                    let mut fresh = connect(
                        addr,
                        Kind::OneShot {
                            reconnects_left: reconnects_left - 1,
                        },
                        &mut ledger,
                    )?;
                    load_request(&mut fresh, &mut ledger);
                    flush_client(&mut fresh);
                    poller
                        .register(fd(&fresh.stream), i, Interest::READ)
                        .map_err(|e| format!("re-register: {e}"))?;
                    sync_interest(&mut poller, i, &mut fresh);
                    *slot = Some(fresh);
                } else {
                    live -= 1;
                }
            } else if let Some(c) = slot.as_mut() {
                sync_interest(&mut poller, i, c);
            }
        }
        if handle.stats().panics > 0 {
            return Err("server panicked mid-soak".to_string());
        }
    }
    Ok(ledger)
}

fn connect(addr: SocketAddr, kind: Kind, ledger: &mut Ledger) -> Result<Client, String> {
    let stream = TcpStream::connect(addr).map_err(|e| format!("connect: {e}"))?;
    stream
        .set_nonblocking(true)
        .map_err(|e| format!("nonblocking: {e}"))?;
    ledger.connects += 1;
    Ok(Client {
        stream,
        kind,
        out: Vec::new(),
        outpos: 0,
        inbuf: Vec::new(),
        resume_at: None,
        await_eof: false,
        done: false,
        interest: Interest::READ,
    })
}

/// Queues this client's next request per its kind.
fn load_request(c: &mut Client, ledger: &mut Ledger) {
    match &mut c.kind {
        Kind::KeepAlive { rounds_left } => {
            let last = *rounds_left <= 1;
            let conn_header = if last { "Connection: close\r\n" } else { "" };
            c.out =
                format!("GET /healthz HTTP/1.1\r\nHost: soak\r\n{conn_header}\r\n").into_bytes();
            ledger.requests_sent += 1;
        }
        Kind::OneShot { .. } => {
            c.out = b"GET /healthz HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n".to_vec();
            ledger.requests_sent += 1;
        }
        Kind::SlowReader => {
            c.out = format!(
                "POST /query HTTP/1.1\r\nHost: soak\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{QUERY}",
                QUERY.len()
            )
            .into_bytes();
            // Leave the response unread for a while once it lands.
            c.resume_at = Some(Instant::now() + Duration::from_millis(300));
            ledger.requests_sent += 1;
        }
        Kind::SlowLoris => {
            // A partial head and then silence: the read deadline must
            // answer 408. Not counted as a request — it never parses.
            c.out = b"GET /healthz HT".to_vec();
        }
    }
    c.outpos = 0;
}

/// Writes as much of the queued request as the socket accepts.
fn flush_client(c: &mut Client) {
    while c.outpos < c.out.len() {
        match (&c.stream).write(&c.out[c.outpos..]) {
            Ok(0) => {
                c.done = true;
                return;
            }
            Ok(n) => c.outpos += n,
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                // The server may close mid-write (loris 408); the
                // response, if any, is already readable.
                return;
            }
        }
    }
}

/// Reads whatever the socket has (unless the client is deliberately
/// sitting on it).
fn pump_read(c: &mut Client, ledger: &mut Ledger) {
    if c.resume_at.is_some() {
        return;
    }
    let mut chunk = [0u8; 4096];
    loop {
        match (&c.stream).read(&mut chunk) {
            Ok(0) => {
                finish_on_eof(c, ledger);
                return;
            }
            Ok(n) => c.inbuf.extend_from_slice(&chunk[..n]),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(_) => {
                finish_on_eof(c, ledger);
                return;
            }
        }
    }
}

fn finish_on_eof(c: &mut Client, ledger: &mut Ledger) {
    if !c.await_eof {
        // Try to salvage a buffered response (loris replies arrive
        // together with the close).
        step(c, ledger);
    }
    if !c.done && !c.await_eof {
        ledger.errors += 1;
    }
    c.done = true;
}

/// Advances the state machine over any complete buffered response.
fn step(c: &mut Client, ledger: &mut Ledger) {
    if c.done || c.resume_at.is_some() {
        return;
    }
    loop {
        let parsed = match parse_response(&c.inbuf) {
            Ok(Some((response, used))) => {
                c.inbuf.drain(..used);
                Some(response)
            }
            Ok(None) => None,
            Err(_) => {
                ledger.errors += 1;
                c.done = true;
                return;
            }
        };
        let Some(response) = parsed else { return };
        on_response(c, response, ledger);
        if c.done || c.await_eof {
            return;
        }
    }
}

fn on_response(c: &mut Client, response: Response, ledger: &mut Ledger) {
    match &mut c.kind {
        Kind::KeepAlive { rounds_left } => {
            if response.status == 200 {
                ledger.ok_responses += 1;
            } else {
                ledger.errors += 1;
            }
            *rounds_left -= 1;
            if *rounds_left == 0 {
                c.await_eof = true;
            } else {
                load_request(c, ledger);
                flush_client(c);
            }
        }
        Kind::OneShot { .. } | Kind::SlowReader => {
            if response.status == 200 {
                ledger.ok_responses += 1;
            } else {
                ledger.errors += 1;
            }
            c.await_eof = true;
        }
        Kind::SlowLoris => {
            if response.status == 408 {
                ledger.loris_408s += 1;
            } else {
                ledger.errors += 1;
            }
            c.await_eof = true;
        }
    }
}

fn sync_interest(poller: &mut Poller, token: usize, c: &mut Client) {
    let interest = Interest {
        readable: c.resume_at.is_none(),
        writable: c.outpos < c.out.len(),
    };
    if interest != c.interest {
        c.interest = interest;
        poller.modify(fd(&c.stream), token, interest).ok();
    }
}

fn fd(stream: &TcpStream) -> std::os::fd::RawFd {
    use std::os::fd::AsRawFd;
    stream.as_raw_fd()
}

/// Pulls one numeric counter out of the /stats JSON body.
fn extract_counter(body: &str, name: &str) -> Option<u64> {
    let key = format!("\"{name}\":");
    let rest = &body[body.find(&key)? + key.len()..];
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    digits.parse().ok()
}

/// Resident set size in KiB (Linux); `None` elsewhere.
fn vm_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmRSS:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}
