//! A coarse hashed timer wheel for connection deadlines.
//!
//! The event loop arms at most one deadline per connection (read,
//! write-stall, or idle) and re-arms it often — on every byte received,
//! every response flushed. Cancellation therefore has to be O(1):
//! instead of removing entries, each connection carries a monotonically
//! increasing *timer epoch*, bumped on every re-arm or cancel; stale
//! wheel entries simply fail the epoch check when their slot comes up.
//!
//! Deadlines beyond the wheel horizon are parked in the slot they hash
//! to and re-inserted when it fires early — the wheel trades a few
//! spurious wakeups for O(1) insert and a tiny footprint.

use std::time::{Duration, Instant};

/// An armed deadline: which connection, and which arming it belongs to.
#[derive(Clone, Copy, Debug)]
struct Entry {
    token: usize,
    epoch: u64,
    /// Absolute tick the deadline really falls on (for horizon laps).
    at_tick: u64,
}

/// A fired deadline handed back to the caller for validation.
#[derive(Clone, Copy, Debug)]
pub struct Fired {
    /// The connection token the deadline was armed for.
    pub token: usize,
    /// The timer epoch at arming time; stale if the connection has
    /// re-armed since.
    pub epoch: u64,
}

/// The wheel itself. Granularity (`slot`) bounds how late a deadline
/// can fire; `slots * slot` is the horizon before laps occur.
pub struct TimerWheel {
    slots: Vec<Vec<Entry>>,
    slot_ns: u64,
    start: Instant,
    /// The next absolute tick to be processed.
    cursor: u64,
    live: usize,
}

impl TimerWheel {
    /// A wheel with `slots` buckets of `slot` width each.
    pub fn new(slot: Duration, slots: usize) -> TimerWheel {
        assert!(slots > 0 && !slot.is_zero());
        TimerWheel {
            slots: (0..slots).map(|_| Vec::new()).collect(),
            slot_ns: slot.as_nanos() as u64,
            start: Instant::now(),
            cursor: 0,
            live: 0,
        }
    }

    fn tick_of(&self, at: Instant) -> u64 {
        let ns = at.saturating_duration_since(self.start).as_nanos() as u64;
        // Round up: a deadline never fires early because of bucketing.
        ns.div_ceil(self.slot_ns)
    }

    /// Arms a deadline for `(token, epoch)`. Entries are never removed
    /// directly — bump the connection's epoch to cancel.
    pub fn insert(&mut self, deadline: Instant, token: usize, epoch: u64) {
        let at_tick = self.tick_of(deadline).max(self.cursor);
        let slot = (at_tick % self.slots.len() as u64) as usize;
        self.slots[slot].push(Entry {
            token,
            epoch,
            at_tick,
        });
        self.live += 1;
    }

    /// How long [`TimerWheel::expire`] can be delayed without firing
    /// anything late: the distance to the next non-empty slot. `None`
    /// when nothing is armed.
    pub fn next_timeout(&self, now: Instant) -> Option<Duration> {
        if self.live == 0 {
            return None;
        }
        let now_ns = now.saturating_duration_since(self.start).as_nanos() as u64;
        let n = self.slots.len() as u64;
        for offset in 0..n {
            let tick = self.cursor + offset;
            if !self.slots[(tick % n) as usize].is_empty() {
                let due_ns = tick * self.slot_ns;
                return Some(Duration::from_nanos(due_ns.saturating_sub(now_ns)));
            }
        }
        // Only lapped (far-future) entries remain somewhere: one lap.
        Some(Duration::from_nanos(n * self.slot_ns))
    }

    /// Drains every entry whose slot has come due, appending real
    /// expiries to `fired`. Entries parked beyond the horizon are
    /// re-inserted for their next lap.
    pub fn expire(&mut self, now: Instant, fired: &mut Vec<Fired>) {
        let now_tick = {
            let ns = now.saturating_duration_since(self.start).as_nanos() as u64;
            ns / self.slot_ns
        };
        let n = self.slots.len() as u64;
        let mut relodge: Vec<Entry> = Vec::new();
        while self.cursor <= now_tick {
            let slot = (self.cursor % n) as usize;
            for entry in self.slots[slot].drain(..) {
                self.live -= 1;
                if entry.at_tick <= now_tick {
                    fired.push(Fired {
                        token: entry.token,
                        epoch: entry.epoch,
                    });
                } else {
                    relodge.push(entry);
                }
            }
            self.cursor += 1;
        }
        for entry in relodge {
            let slot = (entry.at_tick.max(self.cursor) % n) as usize;
            self.slots[slot].push(entry);
            self.live += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fires_on_time_and_respects_epochs() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 8);
        let t0 = Instant::now();
        wheel.insert(t0 + Duration::from_millis(3), 7, 1);
        let mut fired = Vec::new();
        wheel.expire(t0 + Duration::from_millis(1), &mut fired);
        assert!(fired.is_empty(), "must not fire early");
        wheel.expire(t0 + Duration::from_millis(20), &mut fired);
        assert_eq!(fired.len(), 1);
        assert_eq!((fired[0].token, fired[0].epoch), (7, 1));
    }

    #[test]
    fn lapped_entries_survive_the_horizon() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 4);
        let t0 = Instant::now();
        // 10ms deadline on a 4ms-horizon wheel: must lap, not fire early.
        wheel.insert(t0 + Duration::from_millis(10), 1, 1);
        let mut fired = Vec::new();
        wheel.expire(t0 + Duration::from_millis(5), &mut fired);
        assert!(fired.is_empty());
        wheel.expire(t0 + Duration::from_millis(12), &mut fired);
        assert_eq!(fired.len(), 1);
    }

    #[test]
    fn next_timeout_tracks_the_earliest_slot() {
        let mut wheel = TimerWheel::new(Duration::from_millis(1), 64);
        let t0 = Instant::now();
        assert!(wheel.next_timeout(t0).is_none());
        wheel.insert(t0 + Duration::from_millis(30), 1, 1);
        let timeout = wheel.next_timeout(t0).unwrap();
        assert!(timeout <= Duration::from_millis(31), "{timeout:?}");
    }
}
