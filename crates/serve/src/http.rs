//! A hand-rolled, incremental HTTP/1.1 request parser and response
//! encoder.
//!
//! This is deliberately a *server-side subset* of HTTP/1.1: enough for
//! JSON request/response bodies over loopback or a trusted LAN, with
//! strict size limits so a malformed or hostile peer can never make the
//! server allocate unboundedly or hang forever. Unsupported protocol
//! features (chunked transfer encoding, continuation lines) are
//! rejected with the documented 4xx status rather than misparsed.
//!
//! The parser is a pure function over a byte buffer: the event loop
//! accumulates whatever the socket had and calls [`parse_request`],
//! which either yields a complete request (with how many bytes it
//! consumed — the remainder is the next pipelined request), asks for
//! more bytes, or rejects. No I/O happens here, which is what lets the
//! nonblocking event loop and the tests share the exact same
//! protocol semantics.
//!
//! Keep-alive: HTTP/1.1 requests persist by default and `Connection:
//! close` (or HTTP/1.0 without `keep-alive`) closes after the response.
//! Every *error* response closes the connection — after a protocol
//! violation the byte stream can no longer be trusted to frame a next
//! request.

/// Size limits the parser enforces while reading a request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes in the request line (`GET /path HTTP/1.1`).
    pub max_request_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum bytes in one header line.
    pub max_header_line: usize,
    /// Maximum bytes in the request body (`Content-Length` above this is
    /// rejected with 413 before reading the body).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 4096,
            max_headers: 64,
            max_header_line: 8192,
            max_body_bytes: 256 * 1024,
        }
    }
}

impl Limits {
    /// How many buffered-but-unparsed bytes a connection may hold
    /// before the event loop stops reading from it (read-side
    /// backpressure for pipelining): one maximal request head + body,
    /// plus a little slack for the next pipelined head.
    pub fn input_buffer_cap(&self) -> usize {
        self.max_request_line + self.max_headers * self.max_header_line + self.max_body_bytes + 4096
    }
}

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request was rejected before (or instead of) being handled.
///
/// `status == 0` means the connection died in a way that cannot be
/// answered (peer reset); no response should be attempted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reject {
    /// The HTTP status to answer with (400, 408, 411, 413, 431, …).
    pub status: u16,
    /// A short human-readable reason, sent in the JSON error body.
    pub reason: String,
}

impl Reject {
    /// A rejection with `status` and `reason`.
    pub fn new(status: u16, reason: impl Into<String>) -> Self {
        Reject {
            status,
            reason: reason.into(),
        }
    }

    /// True when the connection is already dead and writing a response
    /// is pointless.
    pub fn connection_dead(&self) -> bool {
        self.status == 0
    }
}

/// A successfully parsed request plus its framing metadata.
#[derive(Clone, Debug)]
pub struct ParsedRequest {
    /// The request itself.
    pub request: Request,
    /// Bytes of the input buffer this request occupied; everything
    /// after `consumed` belongs to the next pipelined request.
    pub consumed: usize,
    /// The connection must close after the response (explicit
    /// `Connection: close`, or an HTTP/1.0 peer without `keep-alive`).
    pub close: bool,
}

/// The outcome of one [`parse_request`] attempt.
#[derive(Clone, Debug)]
pub enum ParseStatus {
    /// A complete request was framed.
    Complete(Box<ParsedRequest>),
    /// More bytes are needed. If the peer instead closes the
    /// connection here, answer with `on_eof` (unless nothing at all
    /// was received on an already-used keep-alive connection).
    Partial {
        /// The rejection to send if EOF arrives in this state.
        on_eof: Reject,
    },
    /// The bytes can never become a valid request.
    Failed(Reject),
}

/// Finds one `\n`-terminated line starting at `pos`, enforcing `cap`.
///
/// Returns `Ok(Some((line, next_pos)))` with `\r` stripped, `Ok(None)`
/// when the line is still incomplete (and within cap), or the
/// documented rejection when the line over-runs `cap` or holds invalid
/// UTF-8.
fn take_line(
    buf: &[u8],
    pos: usize,
    cap: usize,
    over_cap_status: u16,
) -> Result<Option<(String, usize)>, Reject> {
    match buf[pos..].iter().position(|&b| b == b'\n') {
        Some(nl) => {
            let mut line = &buf[pos..pos + nl];
            if line.last() == Some(&b'\r') {
                line = &line[..line.len() - 1];
            }
            if line.len() > cap {
                return Err(Reject::new(over_cap_status, "line too long"));
            }
            let text = std::str::from_utf8(line)
                .map_err(|_| Reject::new(400, "non-UTF-8 bytes in request head"))?
                .to_string();
            Ok(Some((text, pos + nl + 1)))
        }
        None => {
            // Count line bytes, not buffered bytes: a trailing `\r`
            // still awaiting its `\n` is framing, so a line of exactly
            // `cap` bytes is accepted no matter how the CRLF split
            // across reads.
            let line_so_far = (buf.len() - pos) - usize::from(buf.last() == Some(&b'\r'));
            if line_so_far > cap {
                return Err(Reject::new(over_cap_status, "line too long"));
            }
            Ok(None)
        }
    }
}

/// Does a `Connection` header value name `token` (comma-separated,
/// case-insensitive)?
fn connection_has(value: &str, token: &str) -> bool {
    value
        .split(',')
        .any(|part| part.trim().eq_ignore_ascii_case(token))
}

/// Attempts to frame one request out of `buf` under `limits`.
///
/// Pure and restartable: call it again with more bytes appended after a
/// [`ParseStatus::Partial`]. Rejection statuses and reasons are part of
/// the wire contract (the protocol test suite pins them byte-for-byte).
pub fn parse_request(buf: &[u8], limits: &Limits) -> ParseStatus {
    let partial = |on_eof: Reject| ParseStatus::Partial { on_eof };
    let truncated = || Reject::new(400, "truncated request");

    let (request_line, mut pos) = match take_line(buf, 0, limits.max_request_line, 400) {
        Ok(Some(line)) => line,
        Ok(None) => return partial(truncated()),
        Err(reject) => return ParseStatus::Failed(reject),
    };
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return ParseStatus::Failed(Reject::new(400, "malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return ParseStatus::Failed(Reject::new(400, "malformed method"));
    }
    if !path.starts_with('/') {
        return ParseStatus::Failed(Reject::new(400, "path must start with '/'"));
    }
    if !version.starts_with("HTTP/1.") {
        return ParseStatus::Failed(Reject::new(400, "unsupported protocol version"));
    }
    // HTTP/1.1 (and later 1.x) defaults to keep-alive; 1.0 to close.
    let keep_alive_default = version != "HTTP/1.0";

    let mut headers = Vec::new();
    loop {
        let (line, next) = match take_line(buf, pos, limits.max_header_line, 431) {
            Ok(Some(line)) => line,
            Ok(None) => return partial(truncated()),
            Err(reject) => return ParseStatus::Failed(reject),
        };
        pos = next;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return ParseStatus::Failed(Reject::new(431, "too many headers"));
        }
        let Some((name, value)) = line.split_once(':') else {
            return ParseStatus::Failed(Reject::new(400, "malformed header line"));
        };
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return ParseStatus::Failed(Reject::new(400, "transfer-encoding is not supported"));
    }

    let close = match request.header("connection") {
        Some(v) if connection_has(v, "close") => true,
        Some(v) if connection_has(v, "keep-alive") => false,
        _ => !keep_alive_default,
    };

    let body_len = match request.header("content-length") {
        Some(v) => {
            let n: usize = match v.parse() {
                Ok(n) => n,
                Err(_) => return ParseStatus::Failed(Reject::new(400, "bad content-length")),
            };
            if n > limits.max_body_bytes {
                return ParseStatus::Failed(Reject::new(413, "body exceeds the size cap"));
            }
            n
        }
        None if request.method == "POST" => {
            return ParseStatus::Failed(Reject::new(411, "POST requires content-length"));
        }
        None => 0,
    };

    if buf.len() - pos < body_len {
        return partial(Reject::new(400, "body shorter than content-length"));
    }
    let body = buf[pos..pos + body_len].to_vec();
    ParseStatus::Complete(Box::new(ParsedRequest {
        request: Request { body, ..request },
        consumed: pos + body_len,
        close,
    }))
}

/// The canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Encodes one complete response. `keep_alive` controls the
/// `Connection` header — the writer must actually close the connection
/// when it says `close`.
pub fn encode_response(status: u16, content_type: &str, body: &[u8], keep_alive: bool) -> Vec<u8> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: {}\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len(),
        if keep_alive { "keep-alive" } else { "close" }
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    out
}

/// Encodes the JSON error body for a rejected request. Error responses
/// always close the connection.
pub fn encode_error(status: u16, reason: &str) -> Vec<u8> {
    let body = format!("{{\"error\":{}}}\n", lotusx_obs::json_string(reason));
    encode_response(status, "application/json", body.as_bytes(), false)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn limits() -> Limits {
        Limits::default()
    }

    #[test]
    fn incremental_parse_completes_byte_by_byte() {
        let raw = b"POST /query HTTP/1.1\r\nContent-Length: 2\r\n\r\n{}extra";
        for cut in 0..raw.len() - 5 {
            match parse_request(&raw[..cut], &limits()) {
                ParseStatus::Partial { .. } => {}
                other => panic!("prefix of {cut} bytes must be partial, got {other:?}"),
            }
        }
        match parse_request(raw, &limits()) {
            ParseStatus::Complete(parsed) => {
                assert_eq!(parsed.request.method, "POST");
                assert_eq!(parsed.request.body, b"{}");
                assert_eq!(parsed.consumed, raw.len() - 5);
                assert!(!parsed.close, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!("expected complete, got {other:?}"),
        }
    }

    #[test]
    fn connection_close_and_http10_default() {
        let raw = b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n";
        match parse_request(raw, &limits()) {
            ParseStatus::Complete(p) => assert!(p.close),
            other => panic!("{other:?}"),
        }
        let raw = b"GET / HTTP/1.0\r\n\r\n";
        match parse_request(raw, &limits()) {
            ParseStatus::Complete(p) => assert!(p.close),
            other => panic!("{other:?}"),
        }
        let raw = b"GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n";
        match parse_request(raw, &limits()) {
            ParseStatus::Complete(p) => assert!(!p.close),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn eof_rejects_distinguish_head_from_body() {
        match parse_request(b"GET /health", &limits()) {
            ParseStatus::Partial { on_eof } => assert_eq!(on_eof.reason, "truncated request"),
            other => panic!("{other:?}"),
        }
        match parse_request(
            b"POST /q HTTP/1.1\r\nContent-Length: 50\r\n\r\n{}",
            &limits(),
        ) {
            ParseStatus::Partial { on_eof } => {
                assert_eq!(on_eof.reason, "body shorter than content-length");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn line_cap_does_not_depend_on_read_split() {
        let line = "GET /a HTTP/1.1";
        let tight = Limits {
            max_request_line: line.len(),
            ..limits()
        };
        // A read split right after the `\r` buffers cap + 1 bytes, but
        // the line itself is exactly at cap: still partial, not 400.
        match parse_request(b"GET /a HTTP/1.1\r", &tight) {
            ParseStatus::Partial { .. } => {}
            other => panic!("cap-length line split after \\r must stay partial, got {other:?}"),
        }
        match parse_request(b"GET /a HTTP/1.1\r\n\r\n", &tight) {
            ParseStatus::Complete(p) => assert_eq!(p.request.path, "/a"),
            other => panic!("{other:?}"),
        }
        // One byte of real line content over the cap still rejects
        // without waiting for the newline.
        match parse_request(b"GET /ab HTTP/1.1", &tight) {
            ParseStatus::Failed(r) => {
                assert_eq!((r.status, r.reason.as_str()), (400, "line too long"))
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn oversized_lines_reject_before_eof() {
        let tight = Limits {
            max_request_line: 16,
            ..limits()
        };
        // No newline yet, but already over the cap: reject immediately.
        match parse_request(b"GET /aaaaaaaaaaaaaaaaaaaaaaaa", &tight) {
            ParseStatus::Failed(r) => {
                assert_eq!((r.status, r.reason.as_str()), (400, "line too long"))
            }
            other => panic!("{other:?}"),
        }
    }
}
