//! A hand-rolled HTTP/1.1 request parser and response writer.
//!
//! This is deliberately a *server-side subset* of HTTP/1.1: enough for
//! JSON request/response bodies over loopback or a trusted LAN, with
//! strict size limits so a malformed or hostile peer can never make the
//! server allocate unboundedly or hang forever. Unsupported protocol
//! features (chunked transfer encoding, continuation lines, pipelining)
//! are rejected with the documented 4xx status rather than misparsed.
//!
//! Every connection serves exactly one request and is closed afterwards
//! (`Connection: close` on every response); keep-alive buys little on
//! loopback and one-request-per-connection keeps the admission gate and
//! the failure handling trivially per-request.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// Size limits the parser enforces while reading a request.
#[derive(Clone, Copy, Debug)]
pub struct Limits {
    /// Maximum bytes in the request line (`GET /path HTTP/1.1`).
    pub max_request_line: usize,
    /// Maximum number of header lines.
    pub max_headers: usize,
    /// Maximum bytes in one header line.
    pub max_header_line: usize,
    /// Maximum bytes in the request body (`Content-Length` above this is
    /// rejected with 413 before reading the body).
    pub max_body_bytes: usize,
}

impl Default for Limits {
    fn default() -> Self {
        Limits {
            max_request_line: 4096,
            max_headers: 64,
            max_header_line: 8192,
            max_body_bytes: 256 * 1024,
        }
    }
}

/// One parsed HTTP request.
#[derive(Clone, Debug)]
pub struct Request {
    /// The method verb, as sent (`GET`, `POST`, …).
    pub method: String,
    /// The request path (query strings are kept verbatim).
    pub path: String,
    /// Header `(name, value)` pairs; names are lower-cased.
    pub headers: Vec<(String, String)>,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// The first value of a header (name matched case-insensitively).
    pub fn header(&self, name: &str) -> Option<&str> {
        let name = name.to_ascii_lowercase();
        self.headers
            .iter()
            .find(|(n, _)| *n == name)
            .map(|(_, v)| v.as_str())
    }
}

/// Why a request was rejected before (or instead of) being handled.
///
/// `status == 0` means the connection died in a way that cannot be
/// answered (peer reset); no response should be attempted.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Reject {
    /// The HTTP status to answer with (400, 408, 411, 413, 431, …).
    pub status: u16,
    /// A short human-readable reason, sent in the JSON error body.
    pub reason: String,
}

impl Reject {
    fn new(status: u16, reason: impl Into<String>) -> Self {
        Reject {
            status,
            reason: reason.into(),
        }
    }

    /// True when the connection is already dead and writing a response
    /// is pointless.
    pub fn connection_dead(&self) -> bool {
        self.status == 0
    }
}

/// The canonical reason phrase for the status codes this server emits.
pub fn status_reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Classifies a read error: timeouts become 408, everything else marks
/// the connection dead.
fn read_error(e: std::io::Error) -> Reject {
    match e.kind() {
        std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut => {
            Reject::new(408, "read timed out")
        }
        _ => Reject::new(0, format!("connection error: {e}")),
    }
}

/// A small buffered reader over the stream; `BufReader` would work too,
/// but an explicit buffer keeps the per-line caps and timeout handling
/// in one obvious place.
struct ByteReader<'a> {
    stream: &'a mut TcpStream,
    buf: Vec<u8>,
    pos: usize,
}

impl<'a> ByteReader<'a> {
    fn new(stream: &'a mut TcpStream) -> Self {
        ByteReader {
            stream,
            buf: Vec::new(),
            pos: 0,
        }
    }

    fn fill(&mut self) -> Result<usize, Reject> {
        let mut chunk = [0u8; 4096];
        let n = self.stream.read(&mut chunk).map_err(read_error)?;
        self.buf.extend_from_slice(&chunk[..n]);
        Ok(n)
    }

    /// Reads one `\r\n`- (or `\n`-) terminated line of at most `cap`
    /// bytes, excluding the terminator. Over-long lines reject with
    /// `over_cap_status`; EOF mid-line rejects with 400.
    fn read_line(&mut self, cap: usize, over_cap_status: u16) -> Result<String, Reject> {
        loop {
            if let Some(nl) = self.buf[self.pos..].iter().position(|&b| b == b'\n') {
                let end = self.pos + nl;
                let mut line = &self.buf[self.pos..end];
                if line.last() == Some(&b'\r') {
                    line = &line[..line.len() - 1];
                }
                if line.len() > cap {
                    return Err(Reject::new(over_cap_status, "line too long"));
                }
                let text = std::str::from_utf8(line)
                    .map_err(|_| Reject::new(400, "non-UTF-8 bytes in request head"))?
                    .to_string();
                self.pos = end + 1;
                return Ok(text);
            }
            if self.buf.len() - self.pos > cap {
                return Err(Reject::new(over_cap_status, "line too long"));
            }
            if self.fill()? == 0 {
                return Err(Reject::new(400, "truncated request"));
            }
        }
    }

    /// Reads exactly `n` body bytes (the head may have over-read some).
    fn read_exact_body(&mut self, n: usize) -> Result<Vec<u8>, Reject> {
        while self.buf.len() - self.pos < n {
            if self.fill()? == 0 {
                return Err(Reject::new(400, "body shorter than content-length"));
            }
        }
        let body = self.buf[self.pos..self.pos + n].to_vec();
        self.pos += n;
        Ok(body)
    }
}

/// Reads and parses one request from `stream` under `limits`.
///
/// The stream's read timeout must already be set by the caller; a
/// timeout anywhere while reading yields a 408 [`Reject`].
pub fn read_request(stream: &mut TcpStream, limits: &Limits) -> Result<Request, Reject> {
    let mut reader = ByteReader::new(stream);

    let request_line = reader.read_line(limits.max_request_line, 400)?;
    let mut parts = request_line.split(' ');
    let (method, path, version) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
        (Some(m), Some(p), Some(v), None) if !m.is_empty() && !p.is_empty() => (m, p, v),
        _ => return Err(Reject::new(400, "malformed request line")),
    };
    if !method.bytes().all(|b| b.is_ascii_uppercase()) {
        return Err(Reject::new(400, "malformed method"));
    }
    if !path.starts_with('/') {
        return Err(Reject::new(400, "path must start with '/'"));
    }
    if !version.starts_with("HTTP/1.") {
        return Err(Reject::new(400, "unsupported protocol version"));
    }

    let mut headers = Vec::new();
    loop {
        let line = reader.read_line(limits.max_header_line, 431)?;
        if line.is_empty() {
            break;
        }
        if headers.len() >= limits.max_headers {
            return Err(Reject::new(431, "too many headers"));
        }
        let (name, value) = line
            .split_once(':')
            .ok_or_else(|| Reject::new(400, "malformed header line"))?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method: method.to_string(),
        path: path.to_string(),
        headers,
        body: Vec::new(),
    };

    if request
        .header("transfer-encoding")
        .is_some_and(|v| !v.eq_ignore_ascii_case("identity"))
    {
        return Err(Reject::new(400, "transfer-encoding is not supported"));
    }

    let body = match request.header("content-length") {
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| Reject::new(400, "bad content-length"))?;
            if n > limits.max_body_bytes {
                return Err(Reject::new(413, "body exceeds the size cap"));
            }
            reader.read_exact_body(n)?
        }
        None if request.method == "POST" => {
            return Err(Reject::new(411, "POST requires content-length"));
        }
        None => Vec::new(),
    };

    Ok(Request { body, ..request })
}

/// Writes one complete response (`Connection: close`) and flushes it.
pub fn write_response(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &[u8],
) -> std::io::Result<()> {
    let head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        status,
        status_reason(status),
        content_type,
        body.len()
    );
    let mut out = Vec::with_capacity(head.len() + body.len());
    out.extend_from_slice(head.as_bytes());
    out.extend_from_slice(body);
    stream.write_all(&out)?;
    stream.flush()
}

/// Writes a JSON error body for a rejected request (best-effort: the
/// peer may already be gone).
pub fn write_error(stream: &mut TcpStream, status: u16, reason: &str) -> std::io::Result<()> {
    let body = format!("{{\"error\":{}}}\n", lotusx_obs::json_string(reason));
    write_response(stream, status, "application/json", body.as_bytes())
}

/// Applies per-connection socket timeouts (`None` disables them).
pub fn set_timeouts(stream: &TcpStream, read: Duration, write: Duration) -> std::io::Result<()> {
    stream.set_read_timeout(Some(read))?;
    stream.set_write_timeout(Some(write))
}
