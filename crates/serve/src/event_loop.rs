//! The single-threaded connection event loop: accept, read, parse,
//! dispatch, write — all nonblocking.
//!
//! # State machine
//!
//! Every connection is in exactly one of these states, tracked by plain
//! fields on [`Conn`] rather than an enum so transitions stay cheap:
//!
//! ```text
//!           accept (admitted)                accept (gate full)
//!                 │                                 │
//!                 ▼                                 ▼
//!             ┌───────┐   parse complete       ┌─────────┐
//!      ┌─────▶│READING│──────────────────────▶ │REJECTING│ (429/4xx/408:
//!      │      └───────┘   (job → workers)      └────┬────┘  flush, close)
//!      │          │ ▲                               │
//!  new bytes      │ └────────────┐                  ▼
//! (re-admit)      ▼              │               closed
//!      │      ┌───────┐  done  ┌─┴─────┐
//!      │      │PENDING│───────▶│FLUSH  │──▶ close (Connection: close,
//!      │      └───────┘        └─┬─────┘           EOF, error, stop)
//!      │   (compute on worker)   │ drained, keep-alive
//!      │                         ▼
//!      │                      ┌──────┐
//!      └──────────────────────│ IDLE │──▶ idle deadline → close
//!                             └──────┘
//! ```
//!
//! * **READING** — accumulating bytes until [`crate::http::parse_request`]
//!   frames a request. The read deadline re-arms on every received byte;
//!   firing answers `408` (a slow-loris costs a buffer, not a thread).
//! * **PENDING** — exactly one request is on the worker pool. Pipelined
//!   bytes keep accumulating (up to the input-buffer cap) but are not
//!   parsed until the response is enqueued, which keeps responses in
//!   request order with no reorder machinery.
//! * **FLUSH** — response bytes draining to the socket. On `WouldBlock`
//!   the loop registers write interest and arms the write-stall
//!   deadline; a peer that stops reading for too long is dropped.
//! * **IDLE** — a keep-alive connection between requests. It gives up
//!   its admission slot (so parked connections never starve new ones)
//!   and is closed when the idle deadline fires.
//!
//! # Admission
//!
//! The `429` gate counts connections *actively being served* (admitted
//! and not idle). It is checked only here, on the loop thread, at
//! accept and at idle→reading re-entry — single-threaded, so the gate
//! is exact and never over-admits. Re-entry from idle is always
//! admitted (the connection already proved it holds a well-behaved
//! client; refusing mid-stream would break pipelining), so `active` can
//! transiently exceed `max_inflight` only via re-admissions, never via
//! new connections.
//!
//! # Backpressure
//!
//! Read side: once a connection buffers more than
//! [`crate::http::Limits::input_buffer_cap`] unparsed bytes, the loop
//! drops read interest until the buffer drains below the cap. Write
//! side: `WouldBlock` suspends the flush until the socket signals
//! writable, bounded by the write-stall deadline. Both are per
//! connection; one stalled peer never affects another.

use crate::http::{self, ParseStatus, Reject};
use crate::poller::{Interest, PollEvent, Poller};
use crate::server::Server;
use crate::tenants::Tenancy;
use crate::timer::{Fired, TimerWheel};
use lotusx_obs::{
    conn_lane, emit_on_lane, CloseReason, ConnPhase, DeadlineKind, EventKind, QueryId, Stage,
};
use std::io::{self, Read, Write};
use std::net::TcpStream;
use std::os::fd::AsRawFd;
use std::os::unix::net::UnixStream;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// Token for the listening socket.
const TOKEN_LISTENER: usize = usize::MAX;
/// Token for the loop-wakeup pipe.
const TOKEN_WAKER: usize = usize::MAX - 1;
/// The loop never sleeps longer than this, so a lost wakeup can delay
/// (never lose) a stop request or completion by at most one lap.
const MAX_WAIT: Duration = Duration::from_millis(500);

/// A parsed request handed to the worker pool.
pub(crate) struct Job {
    /// Connection slot index.
    pub token: usize,
    /// Slot epoch at dispatch; a completion for a replaced connection
    /// fails this check and is dropped.
    pub epoch: u64,
    /// Lifetime id of the owning connection (trace lane, access log).
    pub conn_id: u64,
    /// The request to route.
    pub request: http::Request,
    /// The routed tenant index (`None` for server-scoped endpoints).
    /// The loop thread already charged this tenant's `inflight` gauge;
    /// the matching decrement happens when the completion lands.
    pub tenant: Option<u32>,
    /// Encode the response with `Connection: keep-alive`.
    pub keep_alive: bool,
    /// First byte of this request → parse complete, on the loop thread.
    pub parse_ns: u64,
    /// When the job entered the worker queue (queue-wait measurement).
    pub queued_at: Instant,
}

/// A finished response traveling back to the loop.
pub(crate) struct Done {
    pub token: usize,
    pub epoch: u64,
    /// Fully encoded response bytes (may be empty for dead peers).
    pub bytes: Vec<u8>,
    /// Close the connection once the bytes are flushed.
    pub close: bool,
    /// Response status, for the access log.
    pub status: u16,
    /// Request method/path, moved out of the request for the access log.
    pub method: String,
    pub path: String,
    /// The tenant the request was routed to (inflight release, log).
    pub tenant: Option<u32>,
    /// Timing breakdown carried through to the access-log line.
    pub parse_ns: u64,
    pub queue_ns: u64,
    pub compute_ns: u64,
    /// When the worker pushed this completion (loop-lag measurement).
    pub finished: Instant,
}

/// A response whose access-log line is waiting on its flush time
/// (queued per connection, written when the outbuf drains or the
/// connection closes — whichever reveals the response's fate first).
struct PendingLog {
    method: String,
    path: String,
    status: u16,
    bytes: u64,
    tenant: Option<u32>,
    parse_ns: u64,
    queue_ns: u64,
    compute_ns: u64,
    enqueued: Instant,
}

impl PendingLog {
    /// A line for a response synthesized on the loop thread without a
    /// parsed request behind it (429/408/400/404 rejects). `tenant` is
    /// known only for per-tenant quota rejects.
    fn loop_reject(status: u16, bytes: u64, tenant: Option<u32>) -> PendingLog {
        PendingLog {
            method: "-".to_string(),
            path: "-".to_string(),
            status,
            bytes,
            tenant,
            parse_ns: 0,
            queue_ns: 0,
            compute_ns: 0,
            enqueued: Instant::now(),
        }
    }
}

/// Wakes the event loop out of its poll wait (worker completions,
/// shutdown requests). Cheap to clone; writes are nonblocking and a
/// full pipe is fine — a wakeup is already pending.
#[derive(Clone)]
pub(crate) struct Waker {
    tx: Arc<UnixStream>,
}

impl Waker {
    pub(crate) fn new(tx: UnixStream) -> Waker {
        Waker { tx: Arc::new(tx) }
    }

    pub(crate) fn wake(&self) {
        let _ = (&*self.tx).write(&[1]);
    }
}

/// The completion queue from workers back to the loop.
pub(crate) struct Completions {
    queue: Mutex<Vec<Done>>,
    waker: Waker,
}

impl Completions {
    pub(crate) fn new(waker: Waker) -> Completions {
        Completions {
            queue: Mutex::new(Vec::new()),
            waker,
        }
    }

    pub(crate) fn push(&self, done: Done) {
        self.queue.lock().expect("completions poisoned").push(done);
        self.waker.wake();
    }

    fn drain(&self) -> Vec<Done> {
        std::mem::take(&mut *self.queue.lock().expect("completions poisoned"))
    }
}

/// Per-connection state. See the module docs for the state machine.
/// The armed deadline (at most one) is tagged with the shared
/// [`DeadlineKind`] so the deadline-fired trace event needs no mapping.
struct Conn {
    stream: TcpStream,
    /// Lifetime connection id (`connections_accepted` at accept time):
    /// the trace-lane number and the `conn` field of access-log lines.
    id: u64,
    /// Bytes received but not yet parsed.
    inbuf: Vec<u8>,
    /// Encoded response bytes not yet written; `outpos` is the flush
    /// cursor (drained lazily to avoid repeated copies).
    outbuf: Vec<u8>,
    outpos: usize,
    /// A request is on the worker pool (PENDING state).
    pending: bool,
    /// Close once `outbuf` drains.
    close_after_flush: bool,
    /// Why the close-after-flush was decided (reject status, drain,
    /// clean keep-alive end); reported by the close trace event and the
    /// access log when the close finally happens.
    close_reason: Option<CloseReason>,
    /// The peer half-closed its write side (EOF seen). Requests already
    /// buffered are still served — half-close is a legitimate way to
    /// say "no more requests".
    peer_eof: bool,
    /// Holds an admission slot (counts toward `max_inflight`).
    counted: bool,
    /// Responses fully handed to the kernel on this connection.
    served: u64,
    /// Requests dispatched to workers (for keep-alive accounting).
    dispatched: u64,
    /// When the first byte of the not-yet-framed request arrived
    /// (consumed at dispatch into that request's `parse_ns`).
    read_started: Option<Instant>,
    /// Responses awaiting their flush time before logging.
    log: Vec<PendingLog>,
    /// Last lifecycle phase published on the trace lane (dedup).
    phase: Option<ConnPhase>,
    /// Current poller interest (cached to skip no-op syscalls).
    interest: Interest,
    /// Bumped on every (re-)arm or cancel; stale wheel entries fail it.
    timer_epoch: u64,
    deadline: Option<(Instant, DeadlineKind)>,
}

impl Conn {
    fn new(stream: TcpStream, id: u64) -> Conn {
        Conn {
            stream,
            id,
            inbuf: Vec::new(),
            outbuf: Vec::new(),
            outpos: 0,
            pending: false,
            close_after_flush: false,
            close_reason: None,
            peer_eof: false,
            counted: false,
            served: 0,
            dispatched: 0,
            read_started: None,
            log: Vec::new(),
            phase: None,
            interest: Interest::default(),
            timer_epoch: 0,
            deadline: None,
        }
    }
}

/// A connection slot: the epoch invalidates stale jobs/completions when
/// the slot is reused for a later connection.
struct Slot {
    epoch: u64,
    conn: Option<Conn>,
}

struct EventLoop<'a> {
    server: &'a Server,
    /// The engine view and per-tenant runtimes (routing, quotas,
    /// counters). A plain reference copy of it is taken wherever a
    /// connection borrow is simultaneously live.
    tenancy: &'a Tenancy<'a>,
    poller: Poller,
    waker_rx: UnixStream,
    wheel: TimerWheel,
    slots: Vec<Slot>,
    free: Vec<usize>,
    /// Freed this iteration; merged into `free` at iteration end so a
    /// stale readiness event in the same batch can never hit a new
    /// connection that reused the slot.
    free_pending: Vec<usize>,
    /// Connections currently open (gauge; loop exit condition).
    open: usize,
    /// Connections holding an admission slot.
    active: usize,
    jobs: &'a std::sync::mpsc::Sender<Job>,
    completions: &'a Completions,
    drain_started: bool,
}

/// Runs the event loop until shutdown completes: the stop flag is set
/// and every connection owed a response has been answered and closed.
pub(crate) fn run(
    server: &Server,
    tenancy: &Tenancy<'_>,
    poller: Poller,
    waker_rx: UnixStream,
    jobs: &std::sync::mpsc::Sender<Job>,
    completions: &Completions,
) {
    let mut el = EventLoop {
        server,
        tenancy,
        poller,
        waker_rx,
        // 128 x 16ms ≈ 2s horizon; longer deadlines lap (see timer.rs).
        wheel: TimerWheel::new(Duration::from_millis(16), 128),
        slots: Vec::new(),
        free: Vec::new(),
        free_pending: Vec::new(),
        open: 0,
        active: 0,
        jobs,
        completions,
        drain_started: false,
    };
    if let Err(e) = el.register_endpoints() {
        eprintln!("serve: event loop failed to start: {e}");
        return;
    }
    el.run_loop();
}

impl EventLoop<'_> {
    fn register_endpoints(&mut self) -> io::Result<()> {
        self.poller.register(
            self.server.listener.as_raw_fd(),
            TOKEN_LISTENER,
            Interest::READ,
        )?;
        self.poller
            .register(self.waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ)
    }

    fn stopping(&self) -> bool {
        self.server.stop.load(Ordering::SeqCst)
    }

    fn run_loop(&mut self) {
        let mut events: Vec<PollEvent> = Vec::new();
        let mut fired: Vec<Fired> = Vec::new();
        loop {
            if self.stopping() && !self.drain_started {
                self.drain_started = true;
                self.begin_drain();
            }
            if self.drain_started && self.open == 0 {
                return;
            }
            let now = Instant::now();
            let timeout = self
                .wheel
                .next_timeout(now)
                .map_or(MAX_WAIT, |t| t.min(MAX_WAIT));
            if let Err(e) = self.poller.wait(&mut events, Some(timeout)) {
                eprintln!("serve: poll wait failed: {e}");
                return;
            }
            let stats = &self.server.stats;
            if !events.is_empty() {
                stats.loop_wakeups.fetch_add(1, Ordering::Relaxed);
                stats
                    .ready_events
                    .fetch_add(events.len() as u64, Ordering::Relaxed);
                stats
                    .max_ready_batch
                    .fetch_max(events.len() as u64, Ordering::Relaxed);
                if lotusx_obs::enabled() {
                    lotusx_obs::metrics().incr("http_loop_ready_events", events.len() as u64);
                }
            }
            for ev in &events {
                match ev.token {
                    TOKEN_LISTENER => self.accept_ready(),
                    TOKEN_WAKER => self.drain_waker(),
                    token => {
                        if ev.writable {
                            self.flush(token);
                        }
                        if ev.readable || ev.hangup {
                            self.on_readable(token);
                        }
                        if ev.hangup {
                            self.on_hangup(token);
                        }
                    }
                }
            }
            for done in self.completions.drain() {
                self.apply_done(done);
            }
            fired.clear();
            self.wheel.expire(Instant::now(), &mut fired);
            for f in &fired {
                self.fire_deadline(f);
            }
            // Safe to reuse closed slots now: no stale event from this
            // batch can still reference them.
            self.free.append(&mut self.free_pending);
        }
    }

    fn drain_waker(&mut self) {
        let mut buf = [0u8; 256];
        while matches!((&self.waker_rx).read(&mut buf), Ok(n) if n > 0) {}
    }

    // ---- slot bookkeeping -------------------------------------------

    fn conn(&mut self, token: usize) -> Option<&mut Conn> {
        self.slots.get_mut(token).and_then(|s| s.conn.as_mut())
    }

    fn alloc(&mut self, conn: Conn) -> usize {
        self.open += 1;
        self.server
            .stats
            .connections_open
            .store(self.open as u64, Ordering::Relaxed);
        if let Some(token) = self.free.pop() {
            self.slots[token].conn = Some(conn);
            token
        } else {
            self.slots.push(Slot {
                epoch: 0,
                conn: Some(conn),
            });
            self.slots.len() - 1
        }
    }

    fn close_conn(&mut self, token: usize, reason: CloseReason) {
        let Some(slot) = self.slots.get_mut(token) else {
            return;
        };
        let Some(mut conn) = slot.conn.take() else {
            return;
        };
        slot.epoch += 1;
        let _ = self.poller.deregister(conn.stream.as_raw_fd());
        drop(conn.stream);
        if conn.counted {
            self.set_active(self.active - 1);
        }
        self.open -= 1;
        self.server
            .stats
            .connections_open
            .store(self.open as u64, Ordering::Relaxed);
        self.free_pending.push(token);
        if lotusx_obs::tracing() {
            emit_on_lane(
                conn_lane(conn.id as u32),
                QueryId::NONE,
                EventKind::ConnClose {
                    conn: conn.id as u32,
                    reason,
                },
            );
        }
        // Responses that never fully drained still get their line, with
        // the close reason as the disposition.
        let entries = std::mem::take(&mut conn.log);
        self.write_access_lines(conn.id, entries, reason.name());
    }

    /// Publishes a lifecycle phase change on the connection's trace
    /// lane (deduplicated: re-entering the current phase is silent).
    fn set_phase(&mut self, token: usize, phase: ConnPhase) {
        let Some(conn) = self.conn(token) else {
            return;
        };
        if conn.phase == Some(phase) {
            return;
        }
        conn.phase = Some(phase);
        if lotusx_obs::tracing() {
            let id = conn.id as u32;
            emit_on_lane(
                conn_lane(id),
                QueryId::NONE,
                EventKind::ConnPhase { conn: id, phase },
            );
        }
    }

    /// Writes one access-log line per entry (flush time measured here)
    /// and records each flush latency into the obs registry.
    fn write_access_lines(&self, conn_id: u64, entries: Vec<PendingLog>, disposition: &str) {
        if entries.is_empty() {
            return;
        }
        let recording = lotusx_obs::enabled();
        let stats = &self.server.stats;
        for entry in entries {
            let flush_ns = entry.enqueued.elapsed().as_nanos() as u64;
            if recording {
                lotusx_obs::metrics().record_stage(Stage::HttpFlush, flush_ns);
            }
            let Some(access) = &self.server.access else {
                continue;
            };
            let ts_ms = std::time::SystemTime::now()
                .duration_since(std::time::UNIX_EPOCH)
                .map(|d| d.as_millis() as u64)
                .unwrap_or(0);
            let tenant = entry
                .tenant
                .map_or("-", |idx| self.tenancy.set.runtime(idx).name());
            let line = format!(
                "{{\"ts_ms\":{ts_ms},\"conn\":{conn_id},\"tenant\":{},\"method\":{},\"path\":{},\
                 \"status\":{},\"bytes\":{},\"close\":{},\"parse_ns\":{},\"queue_ns\":{},\
                 \"compute_ns\":{},\"flush_ns\":{flush_ns}}}",
                lotusx_obs::json_string(tenant),
                lotusx_obs::json_string(&entry.method),
                lotusx_obs::json_string(&entry.path),
                entry.status,
                entry.bytes,
                lotusx_obs::json_string(disposition),
                entry.parse_ns,
                entry.queue_ns,
                entry.compute_ns,
            );
            if access.log(line) {
                stats.access_log_lines.fetch_add(1, Ordering::Relaxed);
            } else {
                stats.access_log_dropped.fetch_add(1, Ordering::Relaxed);
            }
        }
    }

    fn set_active(&mut self, active: usize) {
        self.active = active;
        self.server
            .stats
            .connections_active
            .store(active as u64, Ordering::Relaxed);
    }

    fn set_interest(&mut self, token: usize, interest: Interest) {
        let Some(conn) = self.conn(token) else {
            return;
        };
        if conn.interest == interest {
            return;
        }
        conn.interest = interest;
        let fd = conn.stream.as_raw_fd();
        if self.poller.modify(fd, token, interest).is_err() {
            self.close_conn(token, CloseReason::IoError);
        }
    }

    // ---- deadlines ---------------------------------------------------

    fn arm(&mut self, token: usize, kind: DeadlineKind, after: Duration) {
        let at = Instant::now() + after;
        let Some(conn) = self.conn(token) else {
            return;
        };
        conn.timer_epoch += 1;
        conn.deadline = Some((at, kind));
        let epoch = conn.timer_epoch;
        self.wheel.insert(at, token, epoch);
    }

    fn disarm(&mut self, token: usize) {
        if let Some(conn) = self.conn(token) {
            conn.timer_epoch += 1;
            conn.deadline = None;
        }
    }

    fn fire_deadline(&mut self, f: &Fired) {
        let token = f.token;
        let Some(conn) = self.conn(token) else {
            return;
        };
        if conn.timer_epoch != f.epoch {
            return;
        }
        let Some((at, kind)) = conn.deadline else {
            return;
        };
        let now = Instant::now();
        if now < at {
            // A lapped wheel entry came up early: re-lodge it.
            let epoch = conn.timer_epoch;
            self.wheel.insert(at, token, epoch);
            return;
        }
        conn.deadline = None;
        if lotusx_obs::tracing() {
            let id = conn.id as u32;
            emit_on_lane(
                conn_lane(id),
                QueryId::NONE,
                EventKind::ConnDeadline { conn: id, kind },
            );
        }
        let stats = &self.server.stats;
        match kind {
            DeadlineKind::Read => {
                stats.read_timeouts.fetch_add(1, Ordering::Relaxed);
                self.reject_conn(token, Reject::new(408, "read timed out"), None);
                self.flush(token);
            }
            DeadlineKind::Idle => {
                stats.idle_closes.fetch_add(1, Ordering::Relaxed);
                self.close_conn(token, CloseReason::IdleTimeout);
            }
            DeadlineKind::Write => {
                stats.write_stalls.fetch_add(1, Ordering::Relaxed);
                self.close_conn(token, CloseReason::WriteStall);
            }
        }
    }

    // ---- accept ------------------------------------------------------

    fn accept_ready(&mut self) {
        loop {
            match self.server.listener.accept() {
                Ok((stream, _)) => {
                    if self.drain_started {
                        // Raced the deregister: refuse politely by
                        // dropping; the peer sees a clean close.
                        continue;
                    }
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let stats = &self.server.stats;
                    let id = stats.connections_accepted.fetch_add(1, Ordering::Relaxed) + 1;
                    if self.active >= self.server.config.max_inflight {
                        // Admission gate: answer 429 without entering
                        // service. Checked only on this thread — exact.
                        stats.rejected.fetch_add(1, Ordering::Relaxed);
                        if lotusx_obs::enabled() {
                            lotusx_obs::metrics().incr("http_rejected", 1);
                        }
                        if lotusx_obs::tracing() {
                            let lane = conn_lane(id as u32);
                            emit_on_lane(
                                lane,
                                QueryId::NONE,
                                EventKind::ConnAccept {
                                    conn: id as u32,
                                    admitted: false,
                                },
                            );
                            emit_on_lane(
                                lane,
                                QueryId::NONE,
                                EventKind::AdmissionReject { conn: id as u32 },
                            );
                        }
                        let mut conn = Conn::new(stream, id);
                        conn.outbuf = http::encode_error(429, "server at capacity");
                        conn.close_after_flush = true;
                        conn.close_reason = Some(CloseReason::Admission);
                        conn.log
                            .push(PendingLog::loop_reject(429, conn.outbuf.len() as u64, None));
                        let fd = conn.stream.as_raw_fd();
                        let token = self.alloc(conn);
                        if self
                            .poller
                            .register(fd, token, Interest::default())
                            .is_err()
                        {
                            self.close_conn(token, CloseReason::IoError);
                            continue;
                        }
                        self.flush(token);
                    } else {
                        if lotusx_obs::tracing() {
                            emit_on_lane(
                                conn_lane(id as u32),
                                QueryId::NONE,
                                EventKind::ConnAccept {
                                    conn: id as u32,
                                    admitted: true,
                                },
                            );
                        }
                        let mut conn = Conn::new(stream, id);
                        conn.counted = true;
                        conn.interest = Interest::READ;
                        let fd = conn.stream.as_raw_fd();
                        let token = self.alloc(conn);
                        self.set_active(self.active + 1);
                        if self.poller.register(fd, token, Interest::READ).is_err() {
                            self.close_conn(token, CloseReason::IoError);
                            continue;
                        }
                        self.set_phase(token, ConnPhase::Reading);
                        self.arm(token, DeadlineKind::Read, self.server.config.read_timeout);
                    }
                }
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => return,
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                // Transient (EMFILE, aborted handshake): back off until
                // the next readiness event.
                Err(_) => return,
            }
        }
    }

    // ---- read path ---------------------------------------------------

    fn on_readable(&mut self, token: usize) {
        let cap = self.server.config.limits.input_buffer_cap();
        let mut got_bytes = false;
        {
            let Some(conn) = self.conn(token) else {
                return;
            };
            if conn.close_after_flush {
                return;
            }
            let mut chunk = [0u8; 8192];
            loop {
                if conn.inbuf.len() >= cap {
                    break;
                }
                match (&conn.stream).read(&mut chunk) {
                    Ok(0) => {
                        conn.peer_eof = true;
                        break;
                    }
                    Ok(n) => {
                        conn.inbuf.extend_from_slice(&chunk[..n]);
                        got_bytes = true;
                    }
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
                    Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                    Err(_) => {
                        // Peer reset. If it still owed us a request (and
                        // was not just parked idle), account the loss the
                        // way a read error always has been.
                        let owed = !conn.pending && (conn.served == 0 || !conn.inbuf.is_empty());
                        if owed {
                            self.server.stats.rejected.fetch_add(1, Ordering::Relaxed);
                            if lotusx_obs::enabled() {
                                lotusx_obs::metrics().incr("http_rejected", 1);
                            }
                        }
                        self.close_conn(token, CloseReason::IoError);
                        return;
                    }
                }
            }
            if got_bytes && conn.read_started.is_none() {
                // Clock for the current request's parse_ns starts at
                // its first byte.
                conn.read_started = Some(Instant::now());
            }
        }
        if got_bytes {
            self.on_bytes_arrived(token);
        }
        self.process_inbuf(token);
        self.flush(token);
        self.update_read_interest(token);
    }

    /// ERR/HUP readiness cannot be masked out of a level-triggered
    /// poller, so a connection the read path can no longer make
    /// progress on (rejecting, backpressured at the input cap, already
    /// at EOF) would otherwise wake the loop on every wait, forever.
    /// HUP means the peer is gone in both directions — nothing more
    /// can arrive or be delivered — so account an owed request the way
    /// a read error is accounted and close.
    fn on_hangup(&mut self, token: usize) {
        let Some(conn) = self.conn(token) else {
            return;
        };
        // `reject_conn` already counted connections it marked closing.
        let owed = !conn.pending
            && !conn.close_after_flush
            && (conn.served == 0 || !conn.inbuf.is_empty());
        if owed {
            self.server.stats.rejected.fetch_add(1, Ordering::Relaxed);
            if lotusx_obs::enabled() {
                lotusx_obs::metrics().incr("http_rejected", 1);
            }
        }
        self.close_conn(token, CloseReason::Hangup);
    }

    /// New bytes landed: re-admit an idle connection and re-arm the
    /// read deadline (unless a request is already computing).
    fn on_bytes_arrived(&mut self, token: usize) {
        let Some(conn) = self.conn(token) else {
            return;
        };
        let pending = conn.pending;
        if !conn.counted {
            conn.counted = true;
            self.set_active(self.active + 1);
        }
        if !pending {
            self.set_phase(token, ConnPhase::Reading);
            self.arm(token, DeadlineKind::Read, self.server.config.read_timeout);
        }
    }

    /// Parses as much of the input buffer as the pipelining rules allow
    /// (at most one request on the workers at a time).
    fn process_inbuf(&mut self, token: usize) {
        // What one look at the buffer decided; acted on after the
        // connection borrow is released.
        enum Act {
            Done,
            EofTruncated,
            EofClose,
            GoIdle,
            Dispatch {
                request: http::Request,
                keep_alive: bool,
                reused: bool,
                parse_ns: u64,
                conn_id: u64,
                tenant: Option<u32>,
            },
            /// `GET /metrics` answered inline on the loop thread — no
            /// worker round-trip, so a wedged pool can't hide from the
            /// scraper.
            Metrics {
                keep_alive: bool,
                reused: bool,
                parse_ns: u64,
            },
            Reject(Reject),
            /// A routing miss (404 `unknown_tenant`) or a per-tenant
            /// admission quota trip (429); counted separately from
            /// generic rejects.
            RejectTenant {
                reject: Reject,
                tenant: Option<u32>,
                quota: bool,
            },
        }
        let limits = self.server.config.limits;
        // A plain copy of the reference so routing can run while the
        // connection borrow is live.
        let tenancy = self.tenancy;
        loop {
            let stopping = self.stopping();
            let act = {
                let Some(conn) = self.conn(token) else {
                    return;
                };
                if conn.pending || conn.close_after_flush {
                    return;
                }
                if conn.inbuf.is_empty() {
                    if conn.peer_eof {
                        if conn.served == 0 && conn.dispatched == 0 {
                            // The peer connected and said nothing: the
                            // documented "truncated request" 400.
                            Act::EofTruncated
                        } else {
                            // Clean end of a keep-alive conversation.
                            conn.close_after_flush = true;
                            Act::EofClose
                        }
                    } else if conn.served > 0 && conn.outbuf.len() == conn.outpos {
                        Act::GoIdle
                    } else {
                        Act::Done
                    }
                } else {
                    match http::parse_request(&conn.inbuf, &limits) {
                        ParseStatus::Complete(parsed) => {
                            conn.inbuf.drain(..parsed.consumed);
                            conn.dispatched += 1;
                            let parse_ns = conn
                                .read_started
                                .take()
                                .map_or(0, |t| t.elapsed().as_nanos() as u64);
                            // Keep-alive is honored unless the request
                            // opted out, the peer already half-closed
                            // with nothing further buffered, or the
                            // server is stopping (drain closes as it
                            // answers).
                            let keep_alive = !(parsed.close
                                || stopping
                                || (conn.peer_eof && conn.inbuf.is_empty()));
                            let reused = conn.dispatched > 1;
                            let mut request = parsed.request;
                            // Server-scoped endpoints bypass tenant
                            // routing entirely: health, stats, metrics,
                            // shutdown and route administration answer
                            // for the whole process, whatever the rules
                            // say, and are never charged to a tenant.
                            let server_scoped = matches!(
                                request.path.as_str(),
                                "/healthz" | "/stats" | "/metrics" | "/shutdown" | "/admin/routes"
                            );
                            let routed = if server_scoped {
                                Ok(None)
                            } else {
                                match tenancy.resolve(&request.path, &request.headers) {
                                    None => Err(()),
                                    Some((idx, rewritten)) => {
                                        if let Some(path) = rewritten {
                                            request.path = path;
                                        }
                                        Ok(Some(idx))
                                    }
                                }
                            };
                            match routed {
                                Err(()) => Act::RejectTenant {
                                    reject: Reject::new(404, "unknown_tenant"),
                                    tenant: None,
                                    quota: false,
                                },
                                Ok(tenant) => {
                                    // `/t/<name>` stripping may have just
                                    // exposed a metrics path.
                                    if request.method == "GET" && request.path == "/metrics" {
                                        Act::Metrics {
                                            keep_alive,
                                            reused,
                                            parse_ns,
                                        }
                                    } else {
                                        // Per-tenant admission quota,
                                        // checked only here on the loop
                                        // thread — exact, like the
                                        // server-wide gate.
                                        let over = tenant.is_some_and(|idx| {
                                            let rt = tenancy.set.runtime(idx);
                                            rt.limits().max_inflight.is_some_and(|quota| {
                                                rt.stats.inflight.load(Ordering::Relaxed)
                                                    >= quota as u64
                                            })
                                        });
                                        if over {
                                            Act::RejectTenant {
                                                reject: Reject::new(429, "tenant at capacity"),
                                                tenant,
                                                quota: true,
                                            }
                                        } else {
                                            conn.pending = true;
                                            Act::Dispatch {
                                                request,
                                                keep_alive,
                                                reused,
                                                parse_ns,
                                                conn_id: conn.id,
                                                tenant,
                                            }
                                        }
                                    }
                                }
                            }
                        }
                        ParseStatus::Partial { on_eof } => {
                            if conn.peer_eof {
                                Act::Reject(on_eof)
                            } else {
                                Act::Done
                            }
                        }
                        ParseStatus::Failed(reject) => Act::Reject(reject),
                    }
                }
            };
            match act {
                Act::Done => return,
                Act::EofTruncated => {
                    self.reject_conn(token, Reject::new(400, "truncated request"), None);
                    self.flush(token);
                    return;
                }
                Act::EofClose => {
                    self.disarm(token);
                    self.flush(token);
                    return;
                }
                Act::GoIdle => {
                    self.park_idle(token);
                    return;
                }
                Act::Reject(reject) => {
                    self.reject_conn(token, reject, None);
                    self.flush(token);
                    return;
                }
                Act::RejectTenant {
                    reject,
                    tenant,
                    quota,
                } => {
                    // `reject_conn` does the generic reject accounting;
                    // these are the tenant-specific counters on top.
                    let stats = &self.server.stats;
                    if quota {
                        stats.tenant_quota_rejects.fetch_add(1, Ordering::Relaxed);
                        if let Some(idx) = tenant {
                            self.tenancy
                                .set
                                .runtime(idx)
                                .stats
                                .quota_rejects
                                .fetch_add(1, Ordering::Relaxed);
                        }
                        if lotusx_obs::enabled() {
                            lotusx_obs::metrics().incr("http_tenant_quota_rejects", 1);
                        }
                    } else {
                        stats.unknown_tenant_rejects.fetch_add(1, Ordering::Relaxed);
                        if lotusx_obs::enabled() {
                            lotusx_obs::metrics().incr("http_unknown_tenant_rejects", 1);
                        }
                    }
                    self.reject_conn(token, reject, tenant);
                    self.flush(token);
                    return;
                }
                Act::Dispatch {
                    request,
                    keep_alive,
                    reused,
                    parse_ns,
                    conn_id,
                    tenant,
                } => {
                    let stats = &self.server.stats;
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    if reused {
                        stats.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
                    }
                    if let Some(idx) = tenant {
                        // Admitted under the tenant's quota: charge the
                        // inflight gauge here on the loop thread; the
                        // matching release is in `apply_done` (or the
                        // failed-send path below).
                        let rt = self.tenancy.set.runtime(idx);
                        rt.stats.requests.fetch_add(1, Ordering::Relaxed);
                        let now = rt.stats.inflight.fetch_add(1, Ordering::Relaxed) + 1;
                        rt.stats.max_inflight_seen.fetch_max(now, Ordering::Relaxed);
                    }
                    if lotusx_obs::enabled() {
                        lotusx_obs::metrics().incr("http_requests", 1);
                        if reused {
                            lotusx_obs::metrics().incr("http_keepalive_reuses", 1);
                        }
                    }
                    if reused && lotusx_obs::tracing() {
                        emit_on_lane(
                            conn_lane(conn_id as u32),
                            QueryId::NONE,
                            EventKind::ConnReuse {
                                conn: conn_id as u32,
                            },
                        );
                    }
                    self.set_phase(token, ConnPhase::Pending);
                    self.disarm(token);
                    let depth = stats.queue_depth.fetch_add(1, Ordering::Relaxed) + 1;
                    stats.max_queue_depth.fetch_max(depth, Ordering::Relaxed);
                    let epoch = self.slots[token].epoch;
                    let sent = self.jobs.send(Job {
                        token,
                        epoch,
                        conn_id,
                        request,
                        tenant,
                        keep_alive,
                        parse_ns,
                        queued_at: Instant::now(),
                    });
                    if sent.is_err() {
                        // Workers are gone (shutdown tail): close.
                        stats.queue_depth.fetch_sub(1, Ordering::Relaxed);
                        if let Some(idx) = tenant {
                            self.tenancy
                                .set
                                .runtime(idx)
                                .stats
                                .inflight
                                .fetch_sub(1, Ordering::Relaxed);
                        }
                        self.close_conn(token, CloseReason::Drain);
                        return;
                    }
                    // Loop: the next iteration sees `pending` and
                    // returns (or, after a completion, parses the next
                    // pipelined request).
                }
                Act::Metrics {
                    keep_alive,
                    reused,
                    parse_ns,
                } => {
                    let Some(conn_id) = self.conn(token).map(|c| c.id) else {
                        return;
                    };
                    let stats = &self.server.stats;
                    stats.requests.fetch_add(1, Ordering::Relaxed);
                    // Counted *before* rendering so the scrape sees
                    // itself — `/metrics` and `/stats` then reconcile
                    // exactly, with no in-flight gap.
                    stats.metrics_requests.fetch_add(1, Ordering::Relaxed);
                    if reused {
                        stats.keepalive_reuses.fetch_add(1, Ordering::Relaxed);
                    }
                    if lotusx_obs::enabled() {
                        lotusx_obs::metrics().incr("http_requests", 1);
                        if reused {
                            lotusx_obs::metrics().incr("http_keepalive_reuses", 1);
                        }
                    }
                    let lane = conn_lane(conn_id as u32);
                    if lotusx_obs::tracing() {
                        if reused {
                            emit_on_lane(
                                lane,
                                QueryId::NONE,
                                EventKind::ConnReuse {
                                    conn: conn_id as u32,
                                },
                            );
                        }
                        emit_on_lane(
                            lane,
                            QueryId::NONE,
                            EventKind::StageBegin {
                                stage: Stage::HttpMetrics.name(),
                            },
                        );
                    }
                    let started = Instant::now();
                    let body = format!(
                        "{}{}{}",
                        self.server.stats.snapshot().to_prometheus(),
                        self.tenancy.set.to_prometheus(),
                        lotusx_obs::metrics().snapshot().to_prometheus()
                    );
                    let bytes = http::encode_response(
                        200,
                        "text/plain; version=0.0.4",
                        body.as_bytes(),
                        keep_alive,
                    );
                    let compute_ns = started.elapsed().as_nanos() as u64;
                    if lotusx_obs::enabled() {
                        lotusx_obs::metrics().record_stage(Stage::HttpMetrics, compute_ns);
                    }
                    if lotusx_obs::tracing() {
                        emit_on_lane(
                            lane,
                            QueryId::NONE,
                            EventKind::StageEnd {
                                stage: Stage::HttpMetrics.name(),
                            },
                        );
                    }
                    let len = bytes.len() as u64;
                    if let Some(conn) = self.conn(token) {
                        conn.outbuf.extend_from_slice(&bytes);
                        conn.log.push(PendingLog {
                            method: "GET".to_string(),
                            path: "/metrics".to_string(),
                            status: 200,
                            bytes: len,
                            tenant: None,
                            parse_ns,
                            queue_ns: 0,
                            compute_ns,
                            enqueued: Instant::now(),
                        });
                        if !keep_alive {
                            conn.close_after_flush = true;
                            conn.close_reason.get_or_insert(CloseReason::ClientClose);
                        }
                    }
                    self.set_phase(token, ConnPhase::Flush);
                    // Loop: pipelined requests behind the scrape parse
                    // (and coalesce) before the flush.
                }
            }
        }
    }

    /// READING/FLUSH → IDLE: give up the admission slot, arm the idle
    /// deadline. During drain there is no idle — close instead.
    fn park_idle(&mut self, token: usize) {
        if self.stopping() {
            self.close_conn(token, CloseReason::Drain);
            return;
        }
        let idle_timeout = self.server.config.idle_timeout;
        let Some(conn) = self.conn(token) else {
            return;
        };
        if conn.counted {
            conn.counted = false;
            self.set_active(self.active - 1);
        }
        self.set_phase(token, ConnPhase::Idle);
        self.arm(token, DeadlineKind::Idle, idle_timeout);
    }

    /// Queues an error response and marks the connection REJECTING: no
    /// more reads, close once the response drains. `tenant` is the
    /// routed tenant when known (quota rejects) so the access-log line
    /// can carry it.
    fn reject_conn(&mut self, token: usize, reject: Reject, tenant: Option<u32>) {
        if self.conn(token).is_none() {
            return;
        }
        self.server.stats.rejected.fetch_add(1, Ordering::Relaxed);
        if lotusx_obs::enabled() {
            lotusx_obs::metrics().incr("http_rejected", 1);
        }
        let bytes =
            (!reject.connection_dead()).then(|| http::encode_error(reject.status, &reject.reason));
        let reason = if reject.status == 408 {
            CloseReason::ReadTimeout
        } else {
            CloseReason::Rejected
        };
        if let Some(conn) = self.conn(token) {
            let len = bytes.as_ref().map_or(0, |b| b.len() as u64);
            if let Some(b) = bytes {
                conn.outbuf.extend_from_slice(&b);
            }
            conn.close_after_flush = true;
            conn.close_reason.get_or_insert(reason);
            conn.inbuf.clear();
            conn.log
                .push(PendingLog::loop_reject(reject.status, len, tenant));
        }
        self.set_phase(token, ConnPhase::Flush);
        self.disarm(token);
        self.update_read_interest(token);
    }

    // ---- completions -------------------------------------------------

    fn apply_done(&mut self, done: Done) {
        let token = done.token;
        let stopping = self.stopping();
        // Release the tenant's inflight slot unconditionally, *before*
        // the epoch check: the gauge was charged at dispatch, and a
        // connection that died mid-compute must still release it or the
        // tenant's quota leaks shut.
        if let Some(idx) = done.tenant {
            self.tenancy
                .set
                .runtime(idx)
                .stats
                .inflight
                .fetch_sub(1, Ordering::Relaxed);
        }
        // Completion-to-pickup latency: how far behind the loop thread
        // is running (its health signal under load).
        if lotusx_obs::enabled() {
            lotusx_obs::metrics().record_stage(
                Stage::HttpLoopLag,
                done.finished.elapsed().as_nanos() as u64,
            );
        }
        match self.slots.get(token) {
            Some(slot) if slot.epoch == done.epoch && slot.conn.is_some() => {}
            // The connection died (reset, write stall) while computing.
            _ => return,
        }
        let closing = {
            let conn = self.slots[token].conn.as_mut().expect("checked above");
            conn.pending = false;
            conn.outbuf.extend_from_slice(&done.bytes);
            if done.close || stopping {
                conn.close_after_flush = true;
                conn.close_reason.get_or_insert(if stopping {
                    CloseReason::Drain
                } else if done.status >= 400 || done.status == 0 {
                    CloseReason::Rejected
                } else {
                    CloseReason::ClientClose
                });
            }
            conn.log.push(PendingLog {
                method: done.method,
                path: done.path,
                status: done.status,
                bytes: done.bytes.len() as u64,
                tenant: done.tenant,
                parse_ns: done.parse_ns,
                queue_ns: done.queue_ns,
                compute_ns: done.compute_ns,
                enqueued: Instant::now(),
            });
            conn.close_after_flush
        };
        self.set_phase(token, ConnPhase::Flush);
        if !closing {
            // Parse the next pipelined request (or go idle) before
            // flushing so a back-to-back pair coalesces into one write.
            self.process_inbuf(token);
        }
        self.flush(token);
        self.update_read_interest(token);
        // The read deadline was disarmed at dispatch. If the leftover
        // pipelined bytes only make a partial request, the paths above
        // arm nothing — and a deadline-free connection holding its
        // admission slot would outlive a peer that never speaks again.
        self.ensure_deadline(token);
    }

    /// Arms whatever deadline the connection's state calls for, if
    /// none is armed. PENDING and closing connections are bounded by
    /// their completion and the write path respectively; every other
    /// state must carry a read or idle deadline.
    fn ensure_deadline(&mut self, token: usize) {
        let Some(conn) = self.conn(token) else {
            return;
        };
        if conn.pending || conn.close_after_flush || conn.deadline.is_some() {
            return;
        }
        self.restore_deadline(token);
    }

    // ---- write path --------------------------------------------------

    fn flush(&mut self, token: usize) {
        let write_timeout = self.server.config.write_timeout;
        let Some(conn) = self.conn(token) else {
            return;
        };
        while conn.outpos < conn.outbuf.len() {
            match (&conn.stream).write(&conn.outbuf[conn.outpos..]) {
                Ok(0) => {
                    self.close_conn(token, CloseReason::IoError);
                    return;
                }
                Ok(n) => conn.outpos += n,
                Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                    // FLUSH stalled: wait for writability, bounded by
                    // the write-stall deadline.
                    let interest = Interest {
                        readable: conn.interest.readable,
                        writable: true,
                    };
                    let stalled = !matches!(conn.deadline, Some((_, DeadlineKind::Write)));
                    self.set_interest(token, interest);
                    if stalled {
                        self.arm(token, DeadlineKind::Write, write_timeout);
                    }
                    return;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.close_conn(token, CloseReason::IoError);
                    return;
                }
            }
        }
        let flushed = !conn.outbuf.is_empty();
        conn.outbuf.clear();
        conn.outpos = 0;
        if flushed {
            conn.served += 1;
        }
        let close = conn.close_after_flush;
        let close_reason = conn.close_reason.unwrap_or(CloseReason::ClientClose);
        let writable_armed = conn.interest.writable;
        let write_deadline = matches!(conn.deadline, Some((_, DeadlineKind::Write)));
        // Keep-alive responses that just drained get their access-log
        // lines now, with the flush time known; a closing connection
        // logs from `close_conn` so the line carries the close reason.
        let drained = if flushed && !close {
            std::mem::take(&mut conn.log)
        } else {
            Vec::new()
        };
        let conn_id = conn.id;
        self.write_access_lines(conn_id, drained, "keep_alive");
        if close {
            self.close_conn(token, close_reason);
            return;
        }
        if writable_armed {
            let interest = Interest {
                readable: self
                    .conn(token)
                    .map(|c| c.interest.readable)
                    .unwrap_or(false),
                writable: false,
            };
            self.set_interest(token, interest);
        }
        if write_deadline {
            // The stall resolved; restore the deadline the state wants.
            self.disarm(token);
            self.restore_deadline(token);
        }
        // A response just finished and nothing is queued: idle?
        self.process_inbuf(token);
    }

    /// Recomputes the deadline for a connection's current state (used
    /// after a write stall resolves).
    fn restore_deadline(&mut self, token: usize) {
        let read_timeout = self.server.config.read_timeout;
        let Some(conn) = self.conn(token) else {
            return;
        };
        if conn.pending {
            return;
        }
        if conn.inbuf.is_empty() && conn.served > 0 {
            self.park_idle(token);
        } else {
            self.arm(token, DeadlineKind::Read, read_timeout);
        }
    }

    /// Read interest is wanted unless the connection is closing, saw
    /// EOF, or has hit the input-buffer cap (read-side backpressure).
    fn update_read_interest(&mut self, token: usize) {
        let cap = self.server.config.limits.input_buffer_cap();
        let Some(conn) = self.conn(token) else {
            return;
        };
        let want = !conn.close_after_flush && !conn.peer_eof && conn.inbuf.len() < cap;
        let interest = Interest {
            readable: want,
            writable: conn.interest.writable,
        };
        self.set_interest(token, interest);
    }

    // ---- shutdown ----------------------------------------------------

    /// Stop accepting and close every connection not owed a response;
    /// the rest drain through their normal state machine (cancelled
    /// query budgets make the computes finish fast).
    fn begin_drain(&mut self) {
        let _ = self.poller.deregister(self.server.listener.as_raw_fd());
        for token in 0..self.slots.len() {
            let Some(conn) = self.conn(token) else {
                continue;
            };
            // Nothing computing and nothing left to flush: the
            // connection is either parked idle or holds a partial
            // request that will never complete before shutdown. Close
            // it now, or the drain waits on a peer that may never
            // speak again.
            let reap = !conn.pending
                && conn.outpos == conn.outbuf.len()
                && (conn.served > 0 || !conn.inbuf.is_empty());
            if reap {
                self.close_conn(token, CloseReason::Drain);
            } else if let Some(conn) = self.conn(token) {
                // Anything mid-flush finishes its current write and
                // closes with it (a partial request buffered behind
                // the flush will never be parsed during drain).
                if !conn.close_after_flush && !conn.pending && conn.outpos < conn.outbuf.len() {
                    conn.close_after_flush = true;
                    conn.close_reason.get_or_insert(CloseReason::Drain);
                }
            }
        }
    }
}
