//! Readiness polling without dependencies: raw `epoll` on Linux and a
//! portable `poll(2)` fallback on other Unixes.
//!
//! Both backends are compiled on Linux so the fallback path stays
//! tested; [`Backend::Auto`] picks `epoll` there. The syscalls are
//! declared directly against the platform libc that `std` already
//! links — no external crates.
//!
//! The interface is deliberately tiny and level-triggered: register a
//! file descriptor with a `token` and an [`Interest`], wait, and get
//! back `(token, readable, writable, hangup)` events. Level-triggered
//! readiness keeps the connection state machines simple — interest is
//! toggled off instead of being carefully re-armed.

use std::io;
use std::os::fd::RawFd;
use std::os::raw::c_int;
use std::time::Duration;

/// Which readiness a registration wants to be woken for.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Interest {
    /// Wake when the fd is readable (or the peer hung up).
    pub readable: bool,
    /// Wake when the fd is writable.
    pub writable: bool,
}

impl Interest {
    /// Read-only interest.
    pub const READ: Interest = Interest {
        readable: true,
        writable: false,
    };
}

/// One readiness event out of [`Poller::wait`].
#[derive(Clone, Copy, Debug)]
pub struct PollEvent {
    /// The token the fd was registered with.
    pub token: usize,
    /// The fd is readable (data or EOF pending).
    pub readable: bool,
    /// The fd is writable.
    pub writable: bool,
    /// Error or hangup: the owner should read to observe it.
    pub hangup: bool,
}

/// Which multiplexer implementation to use.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Backend {
    /// `epoll` on Linux, `poll(2)` elsewhere.
    #[default]
    Auto,
    /// Force the portable `poll(2)` backend.
    Poll,
    /// Force `epoll` (Linux only; an error elsewhere).
    Epoll,
}

impl Backend {
    /// Parses `auto` | `poll` | `epoll`.
    pub fn parse(s: &str) -> Result<Backend, String> {
        match s {
            "auto" => Ok(Backend::Auto),
            "poll" => Ok(Backend::Poll),
            "epoll" => Ok(Backend::Epoll),
            other => Err(format!("unknown backend {other:?} (auto|poll|epoll)")),
        }
    }
}

/// A readiness multiplexer over one of the [`Backend`]s.
pub struct Poller {
    imp: Impl,
}

enum Impl {
    #[cfg(target_os = "linux")]
    Epoll(epoll::Epoll),
    Poll(pollfall::PollSet),
}

impl Poller {
    /// Opens a poller with the requested backend.
    pub fn new(backend: Backend) -> io::Result<Poller> {
        match backend {
            #[cfg(target_os = "linux")]
            Backend::Auto | Backend::Epoll => Ok(Poller {
                imp: Impl::Epoll(epoll::Epoll::new()?),
            }),
            #[cfg(not(target_os = "linux"))]
            Backend::Epoll => Err(io::Error::new(
                io::ErrorKind::Unsupported,
                "epoll backend is only available on Linux",
            )),
            _ => Ok(Poller {
                imp: Impl::Poll(pollfall::PollSet::new()),
            }),
        }
    }

    /// The name of the backend actually in use.
    pub fn backend_name(&self) -> &'static str {
        match &self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(_) => "epoll",
            Impl::Poll(_) => "poll",
        }
    }

    /// Starts watching `fd` under `token`.
    pub fn register(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.ctl(epoll::EPOLL_CTL_ADD, fd, token, interest),
            Impl::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Updates the interest set for an already-registered `fd`.
    pub fn modify(&mut self, fd: RawFd, token: usize, interest: Interest) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.ctl(epoll::EPOLL_CTL_MOD, fd, token, interest),
            Impl::Poll(p) => p.register(fd, token, interest),
        }
    }

    /// Stops watching `fd`. Must be called before the fd is closed on
    /// the `poll` backend (epoll drops closed fds by itself, but the
    /// fallback keeps an explicit set).
    pub fn deregister(&mut self, fd: RawFd) -> io::Result<()> {
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.ctl(epoll::EPOLL_CTL_DEL, fd, 0, Interest::default()),
            Impl::Poll(p) => {
                p.deregister(fd);
                Ok(())
            }
        }
    }

    /// Blocks until at least one event is ready or `timeout` elapses,
    /// appending events to `events` (which is cleared first). `EINTR`
    /// is retried internally.
    pub fn wait(
        &mut self,
        events: &mut Vec<PollEvent>,
        timeout: Option<Duration>,
    ) -> io::Result<()> {
        events.clear();
        let timeout_ms: c_int = match timeout {
            // Round up so a 0.4ms timeout does not spin at 0ms.
            Some(t) => t
                .as_millis()
                .saturating_add(u128::from(t.subsec_nanos() % 1_000_000 != 0))
                .min(c_int::MAX as u128) as c_int,
            None => -1,
        };
        match &mut self.imp {
            #[cfg(target_os = "linux")]
            Impl::Epoll(e) => e.wait(events, timeout_ms),
            Impl::Poll(p) => p.wait(events, timeout_ms),
        }
    }
}

#[cfg(target_os = "linux")]
mod epoll {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::c_int;

    pub(super) const EPOLL_CTL_ADD: c_int = 1;
    pub(super) const EPOLL_CTL_DEL: c_int = 2;
    pub(super) const EPOLL_CTL_MOD: c_int = 3;
    const EPOLLIN: u32 = 0x001;
    const EPOLLOUT: u32 = 0x004;
    const EPOLLERR: u32 = 0x008;
    const EPOLLHUP: u32 = 0x010;
    const EPOLLRDHUP: u32 = 0x2000;
    const EPOLL_CLOEXEC: c_int = 0x80000;

    /// Mirrors the kernel's `struct epoll_event`; packed on x86 where
    /// the kernel ABI packs it.
    #[repr(C)]
    #[cfg_attr(any(target_arch = "x86", target_arch = "x86_64"), repr(packed))]
    #[derive(Clone, Copy)]
    pub(super) struct EpollEvent {
        events: u32,
        data: u64,
    }

    extern "C" {
        fn epoll_create1(flags: c_int) -> c_int;
        fn epoll_ctl(epfd: c_int, op: c_int, fd: c_int, event: *mut EpollEvent) -> c_int;
        fn epoll_wait(
            epfd: c_int,
            events: *mut EpollEvent,
            maxevents: c_int,
            timeout: c_int,
        ) -> c_int;
        fn close(fd: c_int) -> c_int;
    }

    pub(super) struct Epoll {
        epfd: RawFd,
        buf: Vec<EpollEvent>,
    }

    impl Epoll {
        pub(super) fn new() -> io::Result<Epoll> {
            // SAFETY: plain syscall, no pointers.
            let epfd = unsafe { epoll_create1(EPOLL_CLOEXEC) };
            if epfd < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(Epoll {
                epfd,
                buf: vec![EpollEvent { events: 0, data: 0 }; 1024],
            })
        }

        pub(super) fn ctl(
            &mut self,
            op: c_int,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            // RDHUP rides along only with read interest: a half-closed
            // peer whose reads are parked (backpressure, rejecting)
            // must not level-trigger the loop on every wait.
            let mut events = 0;
            if interest.readable {
                events |= EPOLLIN | EPOLLRDHUP;
            }
            if interest.writable {
                events |= EPOLLOUT;
            }
            let mut ev = EpollEvent {
                events,
                data: token as u64,
            };
            // SAFETY: `ev` is a valid epoll_event for the duration of
            // the call; DEL ignores the pointer on modern kernels but a
            // valid one is passed anyway.
            let rc = unsafe { epoll_ctl(self.epfd, op, fd, &mut ev) };
            if rc < 0 {
                return Err(io::Error::last_os_error());
            }
            Ok(())
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout_ms: c_int,
        ) -> io::Result<()> {
            loop {
                // SAFETY: `buf` outlives the call and maxevents matches
                // its length.
                let n = unsafe {
                    epoll_wait(
                        self.epfd,
                        self.buf.as_mut_ptr(),
                        self.buf.len() as c_int,
                        timeout_ms,
                    )
                };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                for ev in &self.buf[..n as usize] {
                    let bits = ev.events;
                    out.push(PollEvent {
                        token: ev.data as usize,
                        readable: bits & (EPOLLIN | EPOLLRDHUP) != 0,
                        writable: bits & EPOLLOUT != 0,
                        hangup: bits & (EPOLLERR | EPOLLHUP) != 0,
                    });
                }
                return Ok(());
            }
        }
    }

    impl Drop for Epoll {
        fn drop(&mut self) {
            // SAFETY: closing the fd this struct owns.
            unsafe { close(self.epfd) };
        }
    }
}

mod pollfall {
    use super::{Interest, PollEvent};
    use std::io;
    use std::os::fd::RawFd;
    use std::os::raw::{c_int, c_short};

    const POLLIN: c_short = 0x001;
    const POLLOUT: c_short = 0x004;
    const POLLERR: c_short = 0x008;
    const POLLHUP: c_short = 0x010;

    #[repr(C)]
    #[derive(Clone, Copy)]
    struct PollFd {
        fd: c_int,
        events: c_short,
        revents: c_short,
    }

    #[cfg(target_os = "linux")]
    type NfdsT = std::os::raw::c_ulong;
    #[cfg(not(target_os = "linux"))]
    type NfdsT = std::os::raw::c_uint;

    extern "C" {
        fn poll(fds: *mut PollFd, nfds: NfdsT, timeout: c_int) -> c_int;
    }

    /// The portable backend: an explicit `(fd, token, interest)` set
    /// rebuilt into a `pollfd` array per wait. O(n) per call — fine for
    /// the fallback, and exercised in tests to keep it honest.
    pub(super) struct PollSet {
        entries: Vec<(RawFd, usize, Interest)>,
        fds: Vec<PollFd>,
    }

    impl PollSet {
        pub(super) fn new() -> PollSet {
            PollSet {
                entries: Vec::new(),
                fds: Vec::new(),
            }
        }

        pub(super) fn register(
            &mut self,
            fd: RawFd,
            token: usize,
            interest: Interest,
        ) -> io::Result<()> {
            if let Some(entry) = self.entries.iter_mut().find(|(f, _, _)| *f == fd) {
                *entry = (fd, token, interest);
            } else {
                self.entries.push((fd, token, interest));
            }
            Ok(())
        }

        pub(super) fn deregister(&mut self, fd: RawFd) {
            self.entries.retain(|(f, _, _)| *f != fd);
        }

        pub(super) fn wait(
            &mut self,
            out: &mut Vec<PollEvent>,
            timeout_ms: c_int,
        ) -> io::Result<()> {
            self.fds.clear();
            for (fd, _, interest) in &self.entries {
                let mut events = 0;
                if interest.readable {
                    events |= POLLIN;
                }
                if interest.writable {
                    events |= POLLOUT;
                }
                self.fds.push(PollFd {
                    fd: *fd,
                    events,
                    revents: 0,
                });
            }
            loop {
                // SAFETY: `fds` is a valid array of nfds entries.
                let n = unsafe { poll(self.fds.as_mut_ptr(), self.fds.len() as NfdsT, timeout_ms) };
                if n < 0 {
                    let e = io::Error::last_os_error();
                    if e.kind() == io::ErrorKind::Interrupted {
                        continue;
                    }
                    return Err(e);
                }
                break;
            }
            for (slot, (_, token, interest)) in self.fds.iter().zip(&self.entries) {
                let bits = slot.revents;
                if bits == 0 {
                    continue;
                }
                out.push(PollEvent {
                    token: *token,
                    // POLLHUP is reported regardless of the requested
                    // events; surface it as readable (so EOF gets
                    // observed by a read) only when reads are wanted,
                    // and always as a hangup so the owner can close.
                    readable: interest.readable && bits & (POLLIN | POLLHUP) != 0,
                    writable: bits & POLLOUT != 0,
                    hangup: bits & (POLLERR | POLLHUP) != 0,
                });
            }
            Ok(())
        }
    }
}
