//! The structured access log: bounded, drop-counting JSONL.
//!
//! One line per response the server enqueued — method, path, status,
//! bytes, connection id, keep-alive/close disposition, and the
//! parse/queue/compute/flush timing breakdown — written by a dedicated
//! writer thread so the event loop never blocks on disk. The hand-off
//! is a bounded channel: when the writer falls behind, lines are
//! dropped and counted (`access_log_dropped` in [`ServerStats`]), never
//! buffered without bound and never awaited.
//!
//! [`ServerStats`]: crate::server::ServerStats

use std::fs::File;
use std::io::{self, BufWriter, Write};
use std::path::Path;
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::Mutex;
use std::thread::JoinHandle;

/// Lines buffered toward the writer thread before drops start.
const QUEUE_CAP: usize = 4096;

/// A running access log (see the module docs).
pub(crate) struct AccessLog {
    tx: Mutex<Option<SyncSender<String>>>,
    writer: Mutex<Option<JoinHandle<()>>>,
}

impl AccessLog {
    /// Creates (truncating) the log file and starts the writer thread.
    pub(crate) fn open(path: &Path) -> io::Result<AccessLog> {
        let file = File::create(path)?;
        let (tx, rx) = mpsc::sync_channel::<String>(QUEUE_CAP);
        let writer = std::thread::Builder::new()
            .name("lotusx-access-log".to_string())
            .spawn(move || {
                let mut out = BufWriter::new(file);
                while let Ok(line) = rx.recv() {
                    if out.write_all(line.as_bytes()).is_err() {
                        // Disk trouble: drain and drop; the counter on
                        // the send side keeps the accounting honest.
                        break;
                    }
                }
                let _ = out.flush();
            })?;
        Ok(AccessLog {
            tx: Mutex::new(Some(tx)),
            writer: Mutex::new(Some(writer)),
        })
    }

    /// Enqueues one line (the trailing newline is appended here).
    /// Returns `false` when the line was dropped (queue full or the
    /// writer is gone).
    pub(crate) fn log(&self, mut line: String) -> bool {
        let guard = self.tx.lock().expect("access log tx poisoned");
        let Some(tx) = guard.as_ref() else {
            return false;
        };
        line.push('\n');
        match tx.try_send(line) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => false,
        }
    }

    /// Disconnects the channel and joins the writer, so every accepted
    /// line is on disk when this returns. Idempotent.
    pub(crate) fn shutdown(&self) {
        drop(self.tx.lock().expect("access log tx poisoned").take());
        if let Some(writer) = self
            .writer
            .lock()
            .expect("access log writer poisoned")
            .take()
        {
            let _ = writer.join();
        }
    }
}

impl Drop for AccessLog {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lines_land_on_disk_in_order() {
        let path =
            std::env::temp_dir().join(format!("lotusx_access_test_{}.jsonl", std::process::id()));
        let log = AccessLog::open(&path).unwrap();
        assert!(log.log("{\"a\":1}".to_string()));
        assert!(log.log("{\"b\":2}".to_string()));
        log.shutdown();
        let text = std::fs::read_to_string(&path).unwrap();
        assert_eq!(text, "{\"a\":1}\n{\"b\":2}\n");
        // After shutdown, lines are reported dropped, not lost silently.
        assert!(!log.log("{\"c\":3}".to_string()));
        let _ = std::fs::remove_file(&path);
    }
}
