//! The JSON wire format: decoding request bodies into engine types and
//! encoding engine responses back out.
//!
//! Encoding is **deterministic**: the same [`QueryResponse`] always
//! serializes to the same bytes (floats use Rust's shortest-roundtrip
//! formatting, keys are emitted in a fixed order, no timestamps). The
//! end-to-end test suite leans on this — a response served over a socket
//! must be byte-identical to the same request encoded in-process.

use lotusx::{
    Algorithm, Axis, Budget, ContextStep, PositionContext, QueryRequest, QueryResponse,
    TagCandidate, ValueCandidate,
};
use lotusx_obs::{json_string, JsonValue};

/// Upper bound on `k`/`top_k` accepted over the wire, so one request
/// cannot ask the serializer to materialize an absurd result set.
pub const MAX_WIRE_TOP_K: usize = 10_000;

/// Formats an `f64` as a JSON number (shortest roundtrip, finite-safe).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "0".to_string()
    }
}

fn field_usize(v: &JsonValue, key: &str) -> Result<Option<usize>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(n) => {
            let f = n
                .as_f64()
                .ok_or_else(|| format!("{key} must be a number"))?;
            if !f.is_finite() || f < 0.0 || f.fract() != 0.0 {
                return Err(format!("{key} must be a non-negative integer"));
            }
            Ok(Some(f as usize))
        }
    }
}

fn field_u64(v: &JsonValue, key: &str) -> Result<Option<u64>, String> {
    Ok(field_usize(v, key)?.map(|n| n as u64))
}

fn field_str<'a>(v: &'a JsonValue, key: &str) -> Result<Option<&'a str>, String> {
    match v.get(key) {
        None | Some(JsonValue::Null) => Ok(None),
        Some(s) => s
            .as_str()
            .map(Some)
            .ok_or_else(|| format!("{key} must be a string")),
    }
}

fn parse_axis(name: &str) -> Result<Axis, String> {
    match name {
        "child" => Ok(Axis::Child),
        "descendant" => Ok(Axis::Descendant),
        other => Err(format!("unknown axis {other:?} (child|descendant)")),
    }
}

/// Resolves an algorithm name (`twigstack`, `tjfast`, `auto`, …) from the
/// wire. `auto` requests the engine's per-query cost-model chooser.
pub fn parse_algorithm(name: &str) -> Result<Algorithm, String> {
    Algorithm::ALL
        .into_iter()
        .chain([Algorithm::Auto])
        .find(|a| a.name() == name)
        .ok_or_else(|| {
            let known: Vec<&str> = Algorithm::ALL
                .iter()
                .map(|a| a.name())
                .chain(["auto"])
                .collect();
            format!("unknown algorithm {name:?} (one of {})", known.join(", "))
        })
}

/// Decodes a `POST /query` body into a [`QueryRequest`].
///
/// Accepted fields: `text` (required), `kind` (`"twig"`|`"keyword"`,
/// default twig), `top_k`, `algorithm`, `deadline_ms`, `profile`, and
/// `budget` — an object with optional `nodes` / `candidates` quotas.
pub fn decode_query(v: &JsonValue) -> Result<QueryRequest, String> {
    if v.as_obj().is_none() {
        return Err("request body must be a JSON object".to_string());
    }
    let text = field_str(v, "text")?.ok_or("missing required field `text`")?;
    let mut request = match field_str(v, "kind")? {
        None | Some("twig") => QueryRequest::twig(text),
        Some("keyword") => QueryRequest::keyword(text),
        Some(other) => return Err(format!("unknown kind {other:?} (twig|keyword)")),
    };
    if let Some(k) = field_usize(v, "top_k")? {
        if k > MAX_WIRE_TOP_K {
            return Err(format!("top_k above the wire cap of {MAX_WIRE_TOP_K}"));
        }
        request = request.top_k(k);
    }
    if let Some(name) = field_str(v, "algorithm")? {
        request = request.algorithm(parse_algorithm(name)?);
    }
    let mut budget = Budget::unlimited();
    if let Some(spec) = v.get("budget") {
        if !matches!(spec, JsonValue::Null) {
            if spec.as_obj().is_none() {
                return Err("budget must be an object".to_string());
            }
            if let Some(n) = field_u64(spec, "nodes")? {
                budget = budget.with_node_quota(n);
            }
            if let Some(n) = field_u64(spec, "candidates")? {
                budget = budget.with_candidate_quota(n);
            }
        }
    }
    if let Some(ms) = field_u64(v, "deadline_ms")? {
        budget = budget.with_deadline(std::time::Duration::from_millis(ms));
    }
    request = request.budget(budget);
    if let Some(p) = v.get("profile") {
        request = request.profiled(
            p.as_bool()
                .ok_or_else(|| "profile must be a boolean".to_string())?,
        );
    }
    Ok(request)
}

/// Encodes a [`QueryResponse`] as one compact JSON line.
pub fn encode_response(response: &QueryResponse) -> String {
    let mut out = String::with_capacity(256);
    out.push_str(&format!(
        "{{\"total_matches\":{},\"completeness\":{},\"truncation_reason\":{},",
        response.total_matches,
        json_string(if response.completeness.is_complete() {
            "complete"
        } else {
            "truncated"
        }),
        match response.completeness.truncation_reason() {
            Some(reason) => json_string(reason.name()),
            None => "null".to_string(),
        },
    ));
    match &response.rewrite {
        Some(info) => {
            out.push_str(&format!(
                "\"rewrite\":{{\"pattern\":{},\"cost\":{},\"ops\":[{}]}},",
                json_string(&info.pattern.to_string()),
                json_f64(info.cost),
                info.ops
                    .iter()
                    .map(|op| json_string(op))
                    .collect::<Vec<_>>()
                    .join(",")
            ));
        }
        None => out.push_str("\"rewrite\":null,"),
    }
    out.push_str("\"matches\":[");
    for (i, m) in response.matches.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        let render = |nodes: &[lotusx::NodeId]| {
            nodes
                .iter()
                .map(|n| n.index().to_string())
                .collect::<Vec<_>>()
                .join(",")
        };
        out.push_str(&format!(
            "{{\"score\":{},\"bindings\":[{}],\"output\":[{}],\"snippet\":{}}}",
            json_f64(m.score),
            render(&m.bindings),
            render(&m.output),
            json_string(&m.snippet)
        ));
    }
    out.push_str("],\"profile\":");
    match &response.profile {
        Some(profile) => out.push_str(&json_string(&profile.render())),
        None => out.push_str("null"),
    }
    out.push_str("}\n");
    out
}

/// A decoded `POST /complete` body.
#[derive(Clone, Debug)]
pub enum CompleteRequest {
    /// Position-aware tag completion at a structural context.
    Tag {
        /// Where the focused node sits (unconstrained when omitted).
        context: PositionContext,
        /// The typed prefix.
        prefix: String,
        /// Maximum candidates to return.
        k: usize,
    },
    /// Value completion under one tag.
    Value {
        /// The tag whose text values are completed.
        tag: String,
        /// The typed prefix.
        prefix: String,
        /// Maximum candidates to return.
        k: usize,
    },
}

/// Decodes a `POST /complete` body.
///
/// Accepted fields: `kind` (`"tag"`|`"value"`, default tag), `prefix`
/// (default empty), `k` (default 10), `tag` (required for value
/// completion), and for tag completion an optional `context`:
/// `{"steps":[{"tag":"book"|null,"axis":"child"|"descendant"},…],
///   "axis":"child"|"descendant"}`.
pub fn decode_complete(v: &JsonValue) -> Result<CompleteRequest, String> {
    if v.as_obj().is_none() {
        return Err("request body must be a JSON object".to_string());
    }
    let prefix = field_str(v, "prefix")?.unwrap_or_default().to_string();
    let k = match field_usize(v, "k")? {
        Some(k) if k > MAX_WIRE_TOP_K => {
            return Err(format!("k above the wire cap of {MAX_WIRE_TOP_K}"))
        }
        Some(k) => k,
        None => 10,
    };
    match field_str(v, "kind")? {
        None | Some("tag") => {
            let context = match v.get("context") {
                None | Some(JsonValue::Null) => PositionContext::unconstrained(),
                Some(ctx) => decode_context(ctx)?,
            };
            Ok(CompleteRequest::Tag { context, prefix, k })
        }
        Some("value") => {
            let tag = field_str(v, "tag")?
                .ok_or("value completion requires a `tag` field")?
                .to_string();
            Ok(CompleteRequest::Value { tag, prefix, k })
        }
        Some(other) => Err(format!("unknown kind {other:?} (tag|value)")),
    }
}

fn decode_context(v: &JsonValue) -> Result<PositionContext, String> {
    if v.as_obj().is_none() {
        return Err("context must be an object".to_string());
    }
    let mut steps = Vec::new();
    if let Some(raw) = v.get("steps") {
        let items = raw
            .as_arr()
            .ok_or_else(|| "context.steps must be an array".to_string())?;
        for step in items {
            if step.as_obj().is_none() {
                return Err("each context step must be an object".to_string());
            }
            steps.push(ContextStep {
                tag: field_str(step, "tag")?.map(str::to_string),
                axis: match field_str(step, "axis")? {
                    Some(name) => parse_axis(name)?,
                    None => Axis::Child,
                },
            });
        }
    }
    let axis_to_focus = match field_str(v, "axis")? {
        Some(name) => parse_axis(name)?,
        None => Axis::Descendant,
    };
    Ok(PositionContext {
        steps,
        axis_to_focus,
    })
}

/// Encodes tag-completion candidates.
pub fn encode_tag_candidates(candidates: &[TagCandidate]) -> String {
    encode_candidates(candidates.iter().map(|c| (c.name.as_str(), c.count)))
}

/// Encodes value-completion candidates.
pub fn encode_value_candidates(candidates: &[ValueCandidate]) -> String {
    encode_candidates(candidates.iter().map(|c| (c.term.as_str(), c.count)))
}

fn encode_candidates<'a>(items: impl Iterator<Item = (&'a str, u64)>) -> String {
    let rendered: Vec<String> = items
        .map(|(term, count)| format!("{{\"term\":{},\"count\":{count}}}", json_string(term)))
        .collect();
    format!("{{\"candidates\":[{}]}}\n", rendered.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotusx_obs::parse_json;

    #[test]
    fn decode_query_minimal_and_full() {
        let v = parse_json(r#"{"text":"//book/title"}"#).unwrap();
        let req = decode_query(&v).unwrap();
        assert_eq!(req.text, "//book/title");
        assert!(matches!(req.kind, lotusx::QueryKind::Twig));
        assert!(req.budget.is_unlimited());

        let v = parse_json(
            r#"{"text":"xml data","kind":"keyword","top_k":5,"deadline_ms":20,
                "budget":{"nodes":1000,"candidates":50},"profile":true}"#,
        )
        .unwrap();
        let req = decode_query(&v).unwrap();
        assert!(matches!(req.kind, lotusx::QueryKind::Keyword));
        assert_eq!(req.top_k, Some(5));
        assert_eq!(req.budget.node_quota, Some(1000));
        assert_eq!(req.budget.candidate_quota, Some(50));
        assert!(req.budget.deadline.is_some());
        assert!(req.profile);
    }

    #[test]
    fn decode_query_rejects_bad_fields() {
        for body in [
            r#"[1,2]"#,
            r#"{"kind":"twig"}"#,
            r#"{"text":"//a","kind":"sql"}"#,
            r#"{"text":"//a","top_k":-1}"#,
            r#"{"text":"//a","top_k":1.5}"#,
            r#"{"text":"//a","algorithm":"quantum"}"#,
            r#"{"text":"//a","budget":3}"#,
            r#"{"text":"//a","profile":"yes"}"#,
            r#"{"text":"//a","top_k":100000}"#,
        ] {
            let v = parse_json(body).unwrap();
            assert!(decode_query(&v).is_err(), "{body}");
        }
    }

    #[test]
    fn decode_complete_variants() {
        let v = parse_json(r#"{"prefix":"ti","k":3}"#).unwrap();
        match decode_complete(&v).unwrap() {
            CompleteRequest::Tag { context, prefix, k } => {
                assert!(context.is_unconstrained());
                assert_eq!(prefix, "ti");
                assert_eq!(k, 3);
            }
            other => panic!("expected tag completion, got {other:?}"),
        }

        let v = parse_json(
            r#"{"kind":"tag","prefix":"t",
                "context":{"steps":[{"tag":"book","axis":"child"},{"tag":null}],"axis":"child"}}"#,
        )
        .unwrap();
        match decode_complete(&v).unwrap() {
            CompleteRequest::Tag { context, .. } => {
                assert_eq!(context.steps.len(), 2);
                assert_eq!(context.steps[0].tag.as_deref(), Some("book"));
                assert_eq!(context.steps[1].tag, None);
                assert_eq!(context.axis_to_focus, Axis::Child);
            }
            other => panic!("expected tag completion, got {other:?}"),
        }

        let v = parse_json(r#"{"kind":"value","tag":"title","prefix":"x"}"#).unwrap();
        assert!(matches!(
            decode_complete(&v).unwrap(),
            CompleteRequest::Value { .. }
        ));
        let v = parse_json(r#"{"kind":"value","prefix":"x"}"#).unwrap();
        assert!(decode_complete(&v).is_err(), "value needs a tag");
    }

    #[test]
    fn encoded_response_is_valid_json() {
        let system = lotusx::LotusX::load_str(
            "<bib><book><title>Data</title></book><book><title>XML</title></book></bib>",
        )
        .unwrap();
        let response = system.query(&QueryRequest::twig("//book/title")).unwrap();
        let encoded = encode_response(&response);
        let doc = parse_json(&encoded).expect("self-emitted JSON parses");
        assert_eq!(doc.get("total_matches").and_then(|v| v.as_f64()), Some(2.0));
        assert_eq!(
            doc.get("completeness").and_then(|v| v.as_str()),
            Some("complete")
        );
        assert_eq!(
            doc.get("matches").and_then(|v| v.as_arr()).unwrap().len(),
            2
        );
        // Encoding is deterministic: same response, same bytes.
        assert_eq!(encoded, encode_response(&response));
    }
}
