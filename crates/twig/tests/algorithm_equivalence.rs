//! The crown-jewel invariant: all five twig algorithms produce identical
//! match sets, on random documents × random patterns (proptest) and on the
//! canonical datasets × canonical query workloads.

use lotusx_datagen::{queries, Dataset};
use lotusx_index::IndexedDocument;
use lotusx_twig::exec::{execute, Algorithm};
use lotusx_twig::matcher::match_is_valid;
use lotusx_twig::pattern::{Axis, NodeTest, TwigPattern};
use lotusx_twig::xpath::parse_query;
use lotusx_xml::{Document, NodeId};
use proptest::prelude::*;

// ---------------------------------------------------------------------
// Canonical workloads
// ---------------------------------------------------------------------

#[test]
fn algorithms_agree_on_canonical_workloads() {
    for ds in Dataset::ALL {
        let doc = lotusx_datagen::generate(ds, 1, 99);
        let idx = IndexedDocument::build(doc);
        for q in queries::queries(ds) {
            let pattern = parse_query(q.text).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            for m in &reference {
                assert!(match_is_valid(&idx, &pattern, m), "{} {}", ds, q.id);
            }
            for algo in Algorithm::ALL {
                let got = execute(&idx, &pattern, algo);
                assert_eq!(
                    got.len(),
                    reference.len(),
                    "{} {} via {}: {} vs {} matches",
                    ds,
                    q.id,
                    algo,
                    got.len(),
                    reference.len()
                );
                assert_eq!(got, reference, "{} {} via {}", ds, q.id, algo);
            }
        }
    }
}

#[test]
fn ordered_variants_are_subsets_on_canonical_workloads() {
    for ds in Dataset::ALL {
        let doc = lotusx_datagen::generate(ds, 1, 77);
        let idx = IndexedDocument::build(doc);
        for q in queries::queries(ds) {
            let mut pattern = parse_query(q.text).unwrap();
            let unordered = execute(&idx, &pattern, Algorithm::TwigStack);
            pattern.set_ordered(true);
            let ordered = execute(&idx, &pattern, Algorithm::TwigStack);
            assert!(ordered.len() <= unordered.len(), "{} {}", ds, q.id);
            for m in &ordered {
                assert!(unordered.contains(m), "{} {}", ds, q.id);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Random documents × random patterns
// ---------------------------------------------------------------------

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];

#[derive(Clone, Debug)]
struct GenTree {
    tag: usize,
    children: Vec<GenTree>,
}

fn tree_strategy() -> impl Strategy<Value = GenTree> {
    let leaf = (0usize..TAGS.len()).prop_map(|tag| GenTree {
        tag,
        children: vec![],
    });
    leaf.prop_recursive(5, 50, 4, |inner| {
        ((0usize..TAGS.len()), prop::collection::vec(inner, 0..4))
            .prop_map(|(tag, children)| GenTree { tag, children })
    })
}

fn build(doc: &mut Document, parent: NodeId, t: &GenTree) {
    let e = doc.append_element(parent, TAGS[t.tag]);
    for c in &t.children {
        build(doc, e, c);
    }
}

/// A small random pattern: a root plus up to 4 more nodes attached to
/// random earlier nodes with random axes/tests.
#[derive(Clone, Debug)]
struct GenPattern {
    root_tag: usize,
    root_wild: bool,
    // (parent index among already-created nodes, axis-is-child, tag, wild)
    extra: Vec<(usize, bool, usize, bool)>,
    ordered: bool,
}

fn pattern_strategy() -> impl Strategy<Value = GenPattern> {
    (
        0usize..TAGS.len(),
        prop::collection::vec(
            (0usize..5, any::<bool>(), 0usize..TAGS.len(), prop::bool::weighted(0.2)),
            0..4,
        ),
        any::<bool>(),
    )
        .prop_map(|(root_tag, extra, ordered)| GenPattern {
            root_tag,
            // Wildcard roots multiply matches combinatorially and slow the
            // naive oracle to a crawl; interior wildcards cover the case.
            root_wild: false,
            extra,
            ordered,
        })
}

fn materialize(gp: &GenPattern) -> TwigPattern {
    let test = if gp.root_wild {
        NodeTest::Wildcard
    } else {
        NodeTest::Tag(TAGS[gp.root_tag].to_string())
    };
    let mut pattern = TwigPattern::new(test, Axis::Descendant);
    let mut ids = vec![pattern.root()];
    for (parent, is_child, tag, wild) in &gp.extra {
        let axis = if *is_child { Axis::Child } else { Axis::Descendant };
        let test = if *wild {
            NodeTest::Wildcard
        } else {
            NodeTest::Tag(TAGS[*tag].to_string())
        };
        let id = pattern.add_child(ids[parent % ids.len()], axis, test);
        ids.push(id);
    }
    pattern.set_ordered(gp.ordered);
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn all_algorithms_agree_on_random_inputs(root in tree_strategy(), gp in pattern_strategy()) {
        let mut doc = Document::new();
        build(&mut doc, NodeId::DOCUMENT, &root);
        let idx = IndexedDocument::build(doc);
        let pattern = materialize(&gp);

        let reference = execute(&idx, &pattern, Algorithm::Naive);
        for m in &reference {
            prop_assert!(match_is_valid(&idx, &pattern, m));
        }
        for algo in [Algorithm::StructuralJoin, Algorithm::PathStack, Algorithm::TwigStack, Algorithm::TJFast, Algorithm::TwigStackGuided] {
            let got = execute(&idx, &pattern, algo);
            prop_assert_eq!(&got, &reference, "algorithm {} on pattern {}", algo, pattern);
        }
    }
}
