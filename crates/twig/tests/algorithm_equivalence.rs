//! The crown-jewel invariant: all five twig algorithms produce identical
//! match sets, on random documents × random patterns (seeded loops) and on
//! the canonical datasets × canonical query workloads.

use lotusx_datagen::rng::XorShiftRng;
use lotusx_datagen::{queries, Dataset};
use lotusx_index::IndexedDocument;
use lotusx_twig::exec::{execute, Algorithm};
use lotusx_twig::matcher::match_is_valid;
use lotusx_twig::pattern::{Axis, NodeTest, TwigPattern};
use lotusx_twig::xpath::parse_query;
use lotusx_xml::{Document, NodeId};

// ---------------------------------------------------------------------
// Canonical workloads
// ---------------------------------------------------------------------

#[test]
fn algorithms_agree_on_canonical_workloads() {
    for ds in Dataset::ALL {
        let doc = lotusx_datagen::generate(ds, 1, 99);
        let idx = IndexedDocument::build(doc);
        for q in queries::queries(ds) {
            let pattern = parse_query(q.text).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            for m in &reference {
                assert!(match_is_valid(&idx, &pattern, m), "{} {}", ds, q.id);
            }
            for algo in Algorithm::ALL {
                let got = execute(&idx, &pattern, algo);
                assert_eq!(
                    got.len(),
                    reference.len(),
                    "{} {} via {}: {} vs {} matches",
                    ds,
                    q.id,
                    algo,
                    got.len(),
                    reference.len()
                );
                assert_eq!(got, reference, "{} {} via {}", ds, q.id, algo);
            }
        }
    }
}

#[test]
fn ordered_variants_are_subsets_on_canonical_workloads() {
    for ds in Dataset::ALL {
        let doc = lotusx_datagen::generate(ds, 1, 77);
        let idx = IndexedDocument::build(doc);
        for q in queries::queries(ds) {
            let mut pattern = parse_query(q.text).unwrap();
            let unordered = execute(&idx, &pattern, Algorithm::TwigStack);
            pattern.set_ordered(true);
            let ordered = execute(&idx, &pattern, Algorithm::TwigStack);
            assert!(ordered.len() <= unordered.len(), "{} {}", ds, q.id);
            for m in &ordered {
                assert!(unordered.contains(m), "{} {}", ds, q.id);
            }
        }
    }
}

// ---------------------------------------------------------------------
// Random documents × random patterns
// ---------------------------------------------------------------------

const TAGS: [&str; 5] = ["a", "b", "c", "d", "e"];

#[derive(Clone, Debug)]
struct GenTree {
    tag: usize,
    children: Vec<GenTree>,
}

fn random_tree(rng: &mut XorShiftRng, depth: u32, budget: &mut u32) -> GenTree {
    let tag = rng.gen_range(0..TAGS.len());
    if depth == 0 || *budget == 0 || rng.gen_bool(0.3) {
        return GenTree {
            tag,
            children: vec![],
        };
    }
    let n = rng.gen_range(0..4usize);
    let mut children = Vec::with_capacity(n);
    for _ in 0..n {
        if *budget == 0 {
            break;
        }
        *budget -= 1;
        children.push(random_tree(rng, depth - 1, budget));
    }
    GenTree { tag, children }
}

fn build(doc: &mut Document, parent: NodeId, t: &GenTree) {
    let e = doc.append_element(parent, TAGS[t.tag]);
    for c in &t.children {
        build(doc, e, c);
    }
}

/// A small random pattern: a root plus up to 4 more nodes attached to
/// random earlier nodes with random axes/tests.
#[derive(Clone, Debug)]
struct GenPattern {
    root_tag: usize,
    // (parent index among already-created nodes, axis-is-child, tag, wild)
    extra: Vec<(usize, bool, usize, bool)>,
    ordered: bool,
}

fn random_pattern(rng: &mut XorShiftRng) -> GenPattern {
    GenPattern {
        // Wildcard roots multiply matches combinatorially and slow the
        // naive oracle to a crawl; interior wildcards cover the case.
        root_tag: rng.gen_range(0..TAGS.len()),
        extra: (0..rng.gen_range(0..4usize))
            .map(|_| {
                (
                    rng.gen_range(0..5usize),
                    rng.gen_bool(0.5),
                    rng.gen_range(0..TAGS.len()),
                    rng.gen_bool(0.2),
                )
            })
            .collect(),
        ordered: rng.gen_bool(0.5),
    }
}

fn materialize(gp: &GenPattern) -> TwigPattern {
    let test = NodeTest::Tag(TAGS[gp.root_tag].to_string());
    let mut pattern = TwigPattern::new(test, Axis::Descendant);
    let mut ids = vec![pattern.root()];
    for (parent, is_child, tag, wild) in &gp.extra {
        let axis = if *is_child {
            Axis::Child
        } else {
            Axis::Descendant
        };
        let test = if *wild {
            NodeTest::Wildcard
        } else {
            NodeTest::Tag(TAGS[*tag].to_string())
        };
        let id = pattern.add_child(ids[parent % ids.len()], axis, test);
        ids.push(id);
    }
    pattern.set_ordered(gp.ordered);
    pattern
}

#[test]
fn all_algorithms_agree_on_random_inputs() {
    let mut rng = XorShiftRng::seed_from_u64(0x7716);
    for case in 0..96 {
        let mut budget = 50u32;
        let root = random_tree(&mut rng, 5, &mut budget);
        let mut doc = Document::new();
        build(&mut doc, NodeId::DOCUMENT, &root);
        let idx = IndexedDocument::build(doc);
        let gp = random_pattern(&mut rng);
        let pattern = materialize(&gp);

        let reference = execute(&idx, &pattern, Algorithm::Naive);
        for m in &reference {
            assert!(match_is_valid(&idx, &pattern, m), "case {case}");
        }
        for algo in [
            Algorithm::StructuralJoin,
            Algorithm::PathStack,
            Algorithm::TwigStack,
            Algorithm::TJFast,
            Algorithm::TwigStackGuided,
        ] {
            let got = execute(&idx, &pattern, algo);
            assert_eq!(
                got, reference,
                "case {case}: algorithm {algo} on pattern {pattern}"
            );
        }
    }
}
