//! Property test: `Display` of any constructible pattern re-parses to an
//! equal pattern (the textual syntax is a faithful serialization).

use lotusx_twig::pattern::{Axis, NodeTest, TwigPattern, ValuePredicate};
use lotusx_twig::xpath::parse_query;
use proptest::prelude::*;

const TAGS: [&str; 6] = ["a", "b", "book", "title", "author", "x-y"];
const ATTRS: [&str; 3] = ["id", "year", "lang"];

fn value_strategy() -> impl Strategy<Value = String> {
    // Printable, no quotes (the syntax has no escape sequences).
    "[a-z0-9 .,;!?-]{1,12}".prop_map(|s| s.trim().to_string())
        .prop_filter("non-empty", |s| !s.is_empty())
}

fn predicate_strategy() -> impl Strategy<Value = ValuePredicate> {
    prop_oneof![
        value_strategy().prop_map(ValuePredicate::Equals),
        value_strategy().prop_map(ValuePredicate::Contains),
        (0.0f64..5000.0).prop_map(|low| ValuePredicate::Range {
            low: low.round(),
            high: f64::INFINITY
        }),
        (0.0f64..5000.0).prop_map(|high| ValuePredicate::Range {
            low: f64::NEG_INFINITY,
            high: high.round()
        }),
        (0.0f64..100.0, 0.0f64..100.0).prop_map(|(a, b)| ValuePredicate::Range {
            low: a.round().min(b.round()),
            high: a.round().max(b.round())
        }),
        (0usize..ATTRS.len(), value_strategy()).prop_map(|(i, value)| {
            ValuePredicate::AttrEquals {
                name: ATTRS[i].into(),
                value,
            }
        }),
        (0usize..ATTRS.len(), value_strategy()).prop_map(|(i, value)| {
            ValuePredicate::AttrContains {
                name: ATTRS[i].into(),
                value,
            }
        }),
        (0usize..ATTRS.len(), 0.0f64..5000.0).prop_map(|(i, low)| {
            ValuePredicate::AttrRange {
                name: ATTRS[i].into(),
                low: low.round(),
                high: f64::INFINITY,
            }
        }),
        (0usize..ATTRS.len()).prop_map(|i| ValuePredicate::AttrExists {
            name: ATTRS[i].into()
        }),
    ]
}

#[derive(Clone, Debug)]
struct GenNode {
    tag: usize,
    wildcard: bool,
    child_axis: bool,
    parent: usize,
    predicate: Option<ValuePredicate>,
    output: bool,
}

fn pattern_strategy() -> impl Strategy<Value = (usize, Option<ValuePredicate>, Vec<GenNode>, bool)> {
    (
        0usize..TAGS.len(),
        prop::option::of(predicate_strategy()),
        prop::collection::vec(
            (
                0usize..TAGS.len(),
                prop::bool::weighted(0.15),
                any::<bool>(),
                0usize..6,
                prop::option::of(predicate_strategy()),
                prop::bool::weighted(0.3),
            )
                .prop_map(|(tag, wildcard, child_axis, parent, predicate, output)| GenNode {
                    tag,
                    wildcard,
                    child_axis,
                    parent,
                    predicate,
                    output,
                }),
            0..6,
        ),
        any::<bool>(),
    )
}

fn materialize(
    root_tag: usize,
    root_pred: &Option<ValuePredicate>,
    extra: &[GenNode],
    ordered: bool,
) -> TwigPattern {
    let mut pattern = TwigPattern::new(NodeTest::Tag(TAGS[root_tag].into()), Axis::Descendant);
    pattern.set_predicate(pattern.root(), root_pred.clone());
    let mut ids = vec![pattern.root()];
    for node in extra {
        let axis = if node.child_axis { Axis::Child } else { Axis::Descendant };
        let test = if node.wildcard {
            NodeTest::Wildcard
        } else {
            NodeTest::Tag(TAGS[node.tag].into())
        };
        let id = pattern.add_child(ids[node.parent % ids.len()], axis, test);
        pattern.set_predicate(id, node.predicate.clone());
        pattern.set_output(id, node.output);
        ids.push(id);
    }
    pattern.set_ordered(ordered);
    pattern
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn display_reparses_to_equal_pattern((root_tag, root_pred, extra, ordered) in pattern_strategy()) {
        let pattern = materialize(root_tag, &root_pred, &extra, ordered);
        let text = pattern.to_string();
        let reparsed = parse_query(&text).unwrap_or_else(|e| panic!("{text}: {e}"));
        // Compare canonical (display) forms: node numbering differs when
        // the parser walks nested predicates depth-first, and the parser
        // marks a default output node when none is set — both irrelevant
        // to query semantics.
        if pattern.node_ids().any(|q| pattern.node(q).output) {
            prop_assert_eq!(reparsed.to_string(), text);
        } else {
            prop_assert_eq!(reparsed.to_string().replace('!', ""), text.replace('!', ""));
        }
    }
}
