//! Randomized test (seeded, deterministic): `Display` of any constructible
//! pattern re-parses to an equal pattern (the textual syntax is a faithful
//! serialization). Ported from proptest to a plain seeded loop so the
//! workspace builds offline.

use lotusx_datagen::rng::XorShiftRng;
use lotusx_twig::pattern::{Axis, NodeTest, TwigPattern, ValuePredicate};
use lotusx_twig::xpath::parse_query;

const TAGS: [&str; 6] = ["a", "b", "book", "title", "author", "x-y"];
const ATTRS: [&str; 3] = ["id", "year", "lang"];
const VALUE_CHARS: [char; 18] = [
    'a', 'k', 'z', '0', '7', ' ', '.', ',', ';', '!', '?', '-', 'm', 'q', '3', 'b', 'x', '9',
];

fn random_value(rng: &mut XorShiftRng) -> String {
    // Printable, no quotes (the syntax has no escape sequences).
    loop {
        let len = rng.gen_range(1..13usize);
        let s: String = (0..len)
            .map(|_| VALUE_CHARS[rng.gen_range(0..VALUE_CHARS.len())])
            .collect();
        let s = s.trim().to_string();
        if !s.is_empty() {
            return s;
        }
    }
}

fn random_predicate(rng: &mut XorShiftRng) -> ValuePredicate {
    match rng.gen_range(0..9u32) {
        0 => ValuePredicate::Equals(random_value(rng)),
        1 => ValuePredicate::Contains(random_value(rng)),
        2 => ValuePredicate::Range {
            low: rng.gen_range(0.0..5000.0f64).round(),
            high: f64::INFINITY,
        },
        3 => ValuePredicate::Range {
            low: f64::NEG_INFINITY,
            high: rng.gen_range(0.0..5000.0f64).round(),
        },
        4 => {
            let a = rng.gen_range(0.0..100.0f64).round();
            let b = rng.gen_range(0.0..100.0f64).round();
            ValuePredicate::Range {
                low: a.min(b),
                high: a.max(b),
            }
        }
        5 => ValuePredicate::AttrEquals {
            name: ATTRS[rng.gen_range(0..ATTRS.len())].into(),
            value: random_value(rng),
        },
        6 => ValuePredicate::AttrContains {
            name: ATTRS[rng.gen_range(0..ATTRS.len())].into(),
            value: random_value(rng),
        },
        7 => ValuePredicate::AttrRange {
            name: ATTRS[rng.gen_range(0..ATTRS.len())].into(),
            low: rng.gen_range(0.0..5000.0f64).round(),
            high: f64::INFINITY,
        },
        _ => ValuePredicate::AttrExists {
            name: ATTRS[rng.gen_range(0..ATTRS.len())].into(),
        },
    }
}

fn maybe_predicate(rng: &mut XorShiftRng) -> Option<ValuePredicate> {
    if rng.gen_bool(0.5) {
        Some(random_predicate(rng))
    } else {
        None
    }
}

#[derive(Clone, Debug)]
struct GenNode {
    tag: usize,
    wildcard: bool,
    child_axis: bool,
    parent: usize,
    predicate: Option<ValuePredicate>,
    output: bool,
}

fn materialize(
    root_tag: usize,
    root_pred: &Option<ValuePredicate>,
    extra: &[GenNode],
    ordered: bool,
) -> TwigPattern {
    let mut pattern = TwigPattern::new(NodeTest::Tag(TAGS[root_tag].into()), Axis::Descendant);
    pattern.set_predicate(pattern.root(), root_pred.clone());
    let mut ids = vec![pattern.root()];
    for node in extra {
        let axis = if node.child_axis {
            Axis::Child
        } else {
            Axis::Descendant
        };
        let test = if node.wildcard {
            NodeTest::Wildcard
        } else {
            NodeTest::Tag(TAGS[node.tag].into())
        };
        let id = pattern.add_child(ids[node.parent % ids.len()], axis, test);
        pattern.set_predicate(id, node.predicate.clone());
        pattern.set_output(id, node.output);
        ids.push(id);
    }
    pattern.set_ordered(ordered);
    pattern
}

#[test]
fn display_reparses_to_equal_pattern() {
    let mut rng = XorShiftRng::seed_from_u64(0x9A7);
    for case in 0..256 {
        let root_tag = rng.gen_range(0..TAGS.len());
        let root_pred = maybe_predicate(&mut rng);
        let extra: Vec<GenNode> = (0..rng.gen_range(0..6usize))
            .map(|_| GenNode {
                tag: rng.gen_range(0..TAGS.len()),
                wildcard: rng.gen_bool(0.15),
                child_axis: rng.gen_bool(0.5),
                parent: rng.gen_range(0..6usize),
                predicate: maybe_predicate(&mut rng),
                output: rng.gen_bool(0.3),
            })
            .collect();
        let ordered = rng.gen_bool(0.5);

        let pattern = materialize(root_tag, &root_pred, &extra, ordered);
        let text = pattern.to_string();
        let reparsed = parse_query(&text).unwrap_or_else(|e| panic!("case {case}: {text}: {e}"));
        // Compare canonical (display) forms: node numbering differs when
        // the parser walks nested predicates depth-first, and the parser
        // marks a default output node when none is set — both irrelevant
        // to query semantics.
        if pattern.node_ids().any(|q| pattern.node(q).output) {
            assert_eq!(reparsed.to_string(), text, "case {case}");
        } else {
            assert_eq!(
                reparsed.to_string().replace('!', ""),
                text.replace('!', ""),
                "case {case}"
            );
        }
    }
}
