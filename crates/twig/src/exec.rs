//! Algorithm selection facade.

use crate::algorithms::{guided, naive, pathstack, structural_join, tjfast, twigstack};
use crate::matcher::TwigMatch;
use crate::ordered::filter_ordered;
use crate::pattern::{Axis, TwigPattern};
use lotusx_guard::QueryGuard;
use lotusx_index::IndexedDocument;
use lotusx_obs::Span;

/// The available twig evaluation algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Navigational top-down matching (baseline).
    Naive,
    /// Binary structural joins per edge (baseline).
    StructuralJoin,
    /// Holistic PathStack; twigs are routed to TwigStack.
    PathStack,
    /// Holistic TwigStack.
    TwigStack,
    /// TJFast over extended Dewey leaf streams.
    TJFast,
    /// TwigStack over DataGuide-pruned streams (position-aware execution).
    TwigStackGuided,
    /// Per-query cost-model selection (see [`choose_algorithm`]): resolved
    /// to one of the concrete algorithms before the join runs. Not listed
    /// in [`Algorithm::ALL`] — it is a policy, not a seventh join.
    Auto,
}

impl Algorithm {
    /// All algorithms, in the order the experiments report them.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Naive,
        Algorithm::StructuralJoin,
        Algorithm::PathStack,
        Algorithm::TwigStack,
        Algorithm::TJFast,
        Algorithm::TwigStackGuided,
    ];

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::StructuralJoin => "structural-join",
            Algorithm::PathStack => "pathstack",
            Algorithm::TwigStack => "twigstack",
            Algorithm::TJFast => "tjfast",
            Algorithm::TwigStackGuided => "twigstack-guided",
            Algorithm::Auto => "auto",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One resolved per-query algorithm decision together with the cost-model
/// estimates that produced it — what `explain` and the chooser trace event
/// report. Costs are in abstract units calibrated so one unit ≈ one
/// nanosecond of release-build work on the reference host (`BENCH_join.json`
/// records the calibration sweep); only their relative order matters.
#[derive(Clone, Copy, Debug)]
pub struct Choice {
    /// The algorithm to run (never [`Algorithm::Auto`]).
    pub algorithm: Algorithm,
    /// Whether the pattern is a pure path.
    pub is_path: bool,
    /// Length of the shortest per-node stream (0 = provably empty join).
    pub min_stream: u64,
    /// Sum of all per-node stream lengths.
    pub total_stream: u64,
    /// Estimated elements surviving their structural edge, summed over
    /// non-root nodes — exact for tag/tag edges (from the DataGuide), an
    /// upper bound when a wildcard is involved.
    pub est_survivors: u64,
    /// Estimated cost of the navigational baseline (child-fanout and
    /// subtree-weight scans).
    pub nav_cost: u64,
    /// Estimated cost of the binary structural join (merges + pair
    /// materialization + stitch).
    pub binary_cost: u64,
    /// Estimated cost of PathStack (`u64::MAX` for non-path patterns).
    pub path_cost: u64,
    /// Estimated cost of holistic TwigStack.
    pub holistic_cost: u64,
}

/// Per element visited by a navigational child or subtree scan.
const SCAN_COST: u64 = 30;
/// Per element consumed by a binary-join merge pass.
const MERGE_COST: u64 = 20;
/// Per surviving pair the binary join materializes (hash insert plus
/// stitch re-enumeration).
const PAIR_COST: u64 = 100;
/// Per root-stream element during the binary join's stitch phase.
const STITCH_COST: u64 = 50;
/// Per stream element pushed through PathStack's chain stacks.
const PATH_COST: u64 = 30;
/// Per path solution PathStack emits and merges.
const PATH_OUT_COST: u64 = 300;
/// Per emitted match the navigational baseline pays for cloning the
/// binding vector and the final sort+dedup.
const NAIVE_MATCH_COST: u64 = 150;
/// Per stream element per query node in TwigStack's `getNext` scans.
const TWIG_COST: u64 = 100;
/// Per stream element of value-predicate evaluation paid by every
/// algorithm that materializes filtered streams up front.
const PRED_STREAM_COST: u64 = 300;
/// Per candidate value-predicate evaluation paid lazily by the
/// navigational baseline (only structural survivors are tested).
const PRED_NAV_COST: u64 = 150;
/// Fixed per-query setup the stream-materializing joins pay (column
/// slicing, cursor and stack construction) before any element moves; the
/// navigational baseline starts from the root stream alone and pays
/// none. Dominant only on small inputs, where it keeps micro-queries on
/// the baseline.
const JOIN_SETUP_COST: u64 = 20_000;
/// PathStack's analogue of [`JOIN_SETUP_COST`] — one stack per chain
/// node, no end trees.
const PATH_SETUP_COST: u64 = 18_000;
/// TwigStack's analogue of [`JOIN_SETUP_COST`].
const TWIG_SETUP_COST: u64 = 15_000;

/// The stats-driven cost model behind [`Algorithm::Auto`]: prices the
/// navigational, binary-join, PathStack, and TwigStack strategies for
/// `pattern` from [`lotusx_index::JoinStats`] and returns the cheapest
/// with the estimates that decided it.
///
/// The model charges each strategy for the work it actually does:
///
/// * **navigational** — one child-fanout scan per P-C edge and one
///   subtree rescan per A-D edge, taken from the exact per-tag
///   [`children_total`](lotusx_index::JoinStats::children_total) and
///   [`subtree_weight`](lotusx_index::JoinStats::subtree_weight)
///   aggregates (recursion multiplies the latter, which is exactly when
///   navigation loses); value predicates are tested lazily on survivors;
/// * **binary join** — a galloping merge over both streams per edge, plus
///   [`PAIR_COST`] per surviving pair (exact from the DataGuide) and a
///   stitch pass over the root stream; predicates are evaluated while
///   materializing full streams;
/// * **PathStack** (paths only) — one pass over all streams plus the
///   emitted path solutions;
/// * **TwigStack** — `getNext` work proportional to total stream length
///   times the pattern width.
pub fn choose_algorithm(idx: &IndexedDocument, pattern: &TwigPattern) -> Choice {
    let js = idx.join_stats();
    let symbols = idx.document().symbols();
    let sym_of = |q: crate::pattern::QNodeId| {
        pattern
            .node(q)
            .test
            .tag_name()
            .map(|name| symbols.get(name))
    };
    let stream_len: Vec<u64> = pattern
        .node_ids()
        .map(|q| match sym_of(q) {
            // A named tag: its stream is exactly the tag's frequency
            // (0 when the document never saw the name).
            Some(sym) => sym.map(|s| js.tag_frequency(s)).unwrap_or(0),
            // A wildcard scans every element.
            None => js.element_count(),
        })
        .collect();
    let min_stream = stream_len.iter().copied().min().unwrap_or(0);
    let total_stream: u64 = stream_len.iter().sum();
    let is_path = pattern.is_path();
    let nodes = pattern.len() as u64;
    let s_root = stream_len[pattern.root().index()];

    let mut est_survivors = 0u64;
    let mut min_edge_survivors = u64::MAX;
    let mut edge_count = 0u64;
    // Independence estimate of the final match count: start from the root
    // stream and multiply by each edge's per-parent pair yield. Fits the
    // measured outputs of the benchmark suite within a small factor for
    // both chains (where multiplicity >1 inflates) and branching twigs
    // (where each extra branch thins the root survivors).
    let mut match_est = s_root as f64;
    let mut nav_cost = SCAN_COST.saturating_mul(s_root);
    let mut binary_cost = JOIN_SETUP_COST.saturating_add(STITCH_COST.saturating_mul(s_root));
    let mut pred_stream_cost = 0u64; // shared by all stream-materializing joins
                                     // Fraction of each query node's tag instances the navigational walk
                                     // actually reaches: the root stream is visited in full, but a deeper
                                     // node is only expanded under parents that themselves survived, so
                                     // its fan-out scan scales down accordingly.
    let mut reached_frac = vec![1.0f64; pattern.len()];
    for q in pattern.node_ids() {
        let node = pattern.node(q);
        if node.predicate.is_some() {
            pred_stream_cost = pred_stream_cost
                .saturating_add(PRED_STREAM_COST.saturating_mul(stream_len[q.index()]));
        }
        let Some(parent) = node.parent else { continue };
        let s_q = stream_len[q.index()];
        let s_p = stream_len[parent.index()];
        // `pairs` counts distinct descendants that survive the edge;
        // `pairs_emitted` counts every (ancestor, descendant) containment
        // pair with multiplicity — under recursion one element pairs with
        // several nested ancestors, so this is what the binary stack-tree
        // join actually materializes.
        let (pairs, pairs_emitted) = match (sym_of(parent), sym_of(q)) {
            (Some(Some(a)), Some(Some(d))) => {
                if node.axis == Axis::Child {
                    let p = js.child_pairs(a, d);
                    (p, p)
                } else {
                    (
                        js.descendant_pairs(a, d),
                        js.descendant_pair_multiplicity(a, d),
                    )
                }
            }
            // Wildcards give the guide nothing to prune on.
            _ => (s_q, s_q),
        };
        let surviving = pairs.min(s_q);
        est_survivors += surviving;
        min_edge_survivors = min_edge_survivors.min(surviving);
        edge_count += 1;
        if s_p > 0 {
            match_est *= pairs_emitted as f64 / s_p as f64;
        } else {
            match_est = 0.0;
        }

        // Navigational: a child edge scans every direct child under the
        // parent tag's instances; a descendant edge rescans their whole
        // subtrees (with nesting multiplicity). Wildcard parents scan the
        // document. Both aggregates cover *every* instance of the parent
        // tag, so scale by the fraction the walk actually reaches.
        let frac_p = reached_frac[parent.index()];
        let nav_visits = match sym_of(parent) {
            Some(Some(p)) if node.axis == Axis::Child => js.children_total(p),
            Some(Some(p)) => js.subtree_weight(p),
            // Unknown parent tag: nothing to navigate from.
            Some(None) => 0,
            None if node.axis == Axis::Child => js.element_count(),
            None => js.element_count().saturating_mul(4),
        };
        let nav_visits = (nav_visits as f64 * frac_p) as u64;
        nav_cost = nav_cost.saturating_add(SCAN_COST.saturating_mul(nav_visits));
        if node.predicate.is_some() {
            nav_cost = nav_cost.saturating_add(PRED_NAV_COST.saturating_mul(surviving));
        }
        reached_frac[q.index()] = if s_q == 0 {
            0.0
        } else {
            (surviving as f64 * frac_p / s_q as f64).min(1.0)
        };

        // Binary join: merge both streams, materialize every related pair —
        // the stack-tree join emits pairs with multiplicity, so recursion
        // charges the uncapped count.
        binary_cost = binary_cost
            .saturating_add(MERGE_COST.saturating_mul(s_p.saturating_add(s_q)))
            .saturating_add(PAIR_COST.saturating_mul(pairs_emitted));
    }
    binary_cost = binary_cost.saturating_add(pred_stream_cost);
    let est_matches = if edge_count == 0 {
        // Edgeless (single-node) pattern: every algorithm just copies the
        // stream, so don't charge output handling to any of them.
        0
    } else {
        match_est.min(u64::MAX as f64) as u64
    };
    nav_cost = nav_cost.saturating_add(NAIVE_MATCH_COST.saturating_mul(est_matches));
    let path_cost = if is_path {
        PATH_SETUP_COST
            .saturating_add(PATH_COST.saturating_mul(total_stream))
            .saturating_add(PATH_OUT_COST.saturating_mul(est_matches))
            .saturating_add(pred_stream_cost)
    } else {
        u64::MAX
    };
    let holistic_cost = TWIG_SETUP_COST
        .saturating_add(TWIG_COST.saturating_mul(total_stream).saturating_mul(nodes))
        .saturating_add(pred_stream_cost);

    let algorithm = [
        (nav_cost, Algorithm::Naive),
        (binary_cost, Algorithm::StructuralJoin),
        (path_cost, Algorithm::PathStack),
        (holistic_cost, Algorithm::TwigStack),
    ]
    .into_iter()
    .min_by_key(|(cost, _)| *cost)
    .map(|(_, algorithm)| algorithm)
    .expect("four candidates");
    Choice {
        algorithm,
        is_path,
        min_stream,
        total_stream,
        est_survivors,
        nav_cost,
        binary_cost,
        path_cost,
        holistic_cost,
    }
}

/// Picks an algorithm for `pattern` — the [`choose_algorithm`] cost model
/// without the factors.
pub fn select_algorithm(idx: &IndexedDocument, pattern: &TwigPattern) -> Algorithm {
    choose_algorithm(idx, pattern).algorithm
}

/// True when some query node's stream is provably empty — a tag the
/// document never contains — making the whole join empty without running
/// any algorithm. `O(|pattern|)` symbol-table probes.
fn provably_empty(idx: &IndexedDocument, pattern: &TwigPattern) -> bool {
    pattern
        .node_ids()
        .any(|q| match pattern.node(q).test.tag_name() {
            Some(name) => {
                idx.document()
                    .symbols()
                    .get(name)
                    .map(|sym| idx.tags().frequency(sym))
                    .unwrap_or(0)
                    == 0
            }
            None => idx.stats().element_count == 0,
        })
}

/// The raw join: runs the chosen algorithm, partitioning across
/// `threads` workers where the algorithm permits (see
/// [`execute_parallel`] for why only the navigational baseline splits).
fn join(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    // A query node over a tag the document never saw has an empty stream,
    // so every algorithm would grind to an empty answer; return it now.
    if provably_empty(idx, pattern) {
        return Vec::new();
    }
    match algorithm {
        Algorithm::Naive => naive::evaluate_guarded(idx, pattern, threads, guard),
        Algorithm::StructuralJoin => structural_join::evaluate_guarded(idx, pattern, guard),
        Algorithm::PathStack => {
            if pattern.is_path() {
                pathstack::evaluate_guarded(idx, pattern, guard)
            } else {
                twigstack::evaluate_guarded(idx, pattern, guard)
            }
        }
        Algorithm::TwigStack => twigstack::evaluate_guarded(idx, pattern, guard),
        Algorithm::TJFast => tjfast::evaluate_guarded(idx, pattern, guard),
        Algorithm::TwigStackGuided => guided::evaluate_guarded(idx, pattern, guard),
        Algorithm::Auto => unreachable!("Auto is resolved before dispatch"),
    }
}

/// Evaluates `pattern` over `idx` with the chosen algorithm, applying the
/// order-sensitivity filter if the pattern requests it.
pub fn execute(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
) -> Vec<TwigMatch> {
    execute_spanned(idx, pattern, algorithm, 1, None)
}

/// Like [`execute`], but partitions match enumeration across `threads`
/// workers where the algorithm permits. Output is identical to
/// [`execute`] for every thread count.
///
/// Only the navigational algorithm partitions today: each of its root
/// candidates expands independently, so the root stream splits into
/// contiguous chunks with no shared state. The stack-based holistic joins
/// (PathStack/TwigStack/TJFast/guided) thread one global stack state
/// through the whole leaf stream — partitioning them would need
/// cross-chunk repair for ancestor chains spanning a chunk boundary — and
/// the binary structural join is a sequence of full-stream merges; they
/// all run serially.
pub fn execute_parallel(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
) -> Vec<TwigMatch> {
    execute_spanned(idx, pattern, algorithm, threads, None)
}

/// Like [`execute_parallel`], recording the join and the ordered filter
/// as timed children of `span` when one is supplied. The span never
/// changes what is computed — results are identical with and without it.
pub fn execute_spanned(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
    span: Option<&Span>,
) -> Vec<TwigMatch> {
    execute_budgeted(
        idx,
        pattern,
        algorithm,
        threads,
        span,
        &QueryGuard::unlimited(),
    )
}

/// Like [`execute_spanned`], under a budget: the join runs its guarded
/// variant and stops cooperatively once `guard` trips, returning only
/// matches proven valid by then. Callers inspect the guard afterwards
/// to learn whether the result is complete.
pub fn execute_budgeted(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
    span: Option<&Span>,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    // Resolve the auto policy up front so spans and thread annotations
    // report the algorithm that actually runs.
    let algorithm = match algorithm {
        Algorithm::Auto => choose_algorithm(idx, pattern).algorithm,
        pinned => pinned,
    };
    let matches = match span {
        None => join(idx, pattern, algorithm, threads, guard),
        Some(parent) => {
            let span_guard = parent.child(format!("join/{algorithm}"));
            let effective = if algorithm == Algorithm::Naive {
                threads.max(1)
            } else {
                1
            };
            span_guard.annotate("threads", effective);
            let m = join(idx, pattern, algorithm, threads, guard);
            span_guard.annotate("matches", m.len());
            m
        }
    };
    if !pattern.is_ordered() {
        return matches;
    }
    match span {
        None => filter_ordered(idx, pattern, matches),
        Some(parent) => {
            let span_guard = parent.child("ordered-filter");
            span_guard.annotate("in", matches.len());
            let out = filter_ordered(idx, pattern, matches);
            span_guard.annotate("kept", out.len());
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>A</title><author>X</author><year>1999</year></book>\
               <book><author>Y</author><title>B</title><year>2003</year></book>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_agree() {
        let idx = idx();
        for q in [
            "//book/title",
            "//book[title][author]",
            "//book[year >= 2000]/title",
            "//bib//author",
        ] {
            let pattern = parse_query(q).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            for algo in Algorithm::ALL {
                assert_eq!(
                    execute(&idx, &pattern, algo),
                    reference,
                    "algorithm {algo} on {q}"
                );
            }
        }
    }

    #[test]
    fn pathstack_routes_twigs_to_twigstack() {
        let idx = idx();
        let pattern = parse_query("//book[title][author]").unwrap();
        // Must not panic despite branching.
        let m = execute(&idx, &pattern, Algorithm::PathStack);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ordered_patterns_are_filtered_for_every_algorithm() {
        let idx = idx();
        let pattern = parse_query("ordered //book[title][author]").unwrap();
        for algo in Algorithm::ALL {
            let m = execute(&idx, &pattern, algo);
            assert_eq!(m.len(), 1, "algorithm {algo}");
        }
    }

    #[test]
    fn selector_routes_by_shape_and_selectivity() {
        let idx = idx();
        // On a tiny document every cost is small and the navigational
        // baseline's scans are cheapest.
        let p = parse_query("//bib/book/title").unwrap();
        assert_eq!(select_algorithm(&idx, &p), Algorithm::Naive);
        let p = parse_query("//book[title][author]").unwrap();
        assert_eq!(select_algorithm(&idx, &p), Algorithm::Naive);
        // Twig over an unknown tag → empty stream → Naive (trivial).
        let p = parse_query("//nosuch[title][author]").unwrap();
        let choice = choose_algorithm(&idx, &p);
        assert_eq!(choice.algorithm, Algorithm::Naive);
        assert_eq!(choice.min_stream, 0, "unknown tag is an empty stream");
        // The selected algorithm always returns the reference answer.
        for q in ["//bib/book/title", "//book[title][author]"] {
            let pattern = parse_query(q).unwrap();
            let selected = select_algorithm(&idx, &pattern);
            assert_eq!(
                execute(&idx, &pattern, selected),
                execute(&idx, &pattern, Algorithm::Naive),
                "{q}"
            );
        }
    }

    #[test]
    fn chooser_avoids_navigation_on_recursive_data() {
        // Deep recursion makes subtree rescans quadratic (subtree_weight
        // counts every element once per enclosing instance) and blows up
        // the pair multiplicity charged to the binary join and to every
        // strategy's output handling; TwigStack streams each element once
        // per query node regardless of nesting depth.
        let mut xml = String::new();
        for _ in 0..80 {
            xml.push_str("<s><t>x</t>");
        }
        xml.push_str(&"</s>".repeat(80));
        let idx = IndexedDocument::from_str(&xml).unwrap();
        let choice = choose_algorithm(&idx, &parse_query("//s//t").unwrap());
        assert!(
            matches!(
                choice.algorithm,
                Algorithm::PathStack | Algorithm::TwigStack
            ),
            "recursive descendant path must run holistically, got {:?}",
            choice
        );
        assert!(choice.nav_cost > choice.holistic_cost);
        assert!(choice.binary_cost > choice.holistic_cost);
    }

    #[test]
    fn chooser_avoids_navigation_under_wide_fanout() {
        // A root with a huge child fanout punishes navigational child
        // scans; selective streams keep the stream-based joins' merges
        // and pair counts small, so either of them must beat navigation.
        let mut xml = String::from("<dblp>");
        for _ in 0..2000 {
            xml.push_str("<misc/>");
        }
        for i in 0..50 {
            xml.push_str(&format!("<book><publisher>P{i}</publisher></book>"));
        }
        xml.push_str("</dblp>");
        let idx = IndexedDocument::from_str(&xml).unwrap();
        let choice = choose_algorithm(&idx, &parse_query("//dblp/book/publisher").unwrap());
        assert!(
            matches!(
                choice.algorithm,
                Algorithm::StructuralJoin | Algorithm::PathStack
            ),
            "wide fanout must route to a stream join, got {choice:?}"
        );
        assert!(choice.nav_cost > choice.binary_cost);
        assert!(choice.nav_cost > choice.path_cost);
    }

    #[test]
    fn chooser_prefers_navigation_on_flat_matching_twigs() {
        // Flat, densely matching data: navigation touches each element
        // about once, while the binary join pays for materializing one
        // pair per element.
        let mut xml = String::from("<r>");
        for _ in 0..50 {
            xml.push_str("<item><a/><b/></item>");
        }
        xml.push_str("</r>");
        let idx = IndexedDocument::from_str(&xml).unwrap();
        let choice = choose_algorithm(&idx, &parse_query("//item[a][b]").unwrap());
        assert_eq!(choice.algorithm, Algorithm::Naive, "{choice:?}");
        assert!(choice.binary_cost > choice.nav_cost);
        assert!(choice.holistic_cost > choice.nav_cost);
    }

    #[test]
    fn chooser_reports_cost_factors() {
        let idx = idx();
        let p = parse_query("//bib/book/title").unwrap();
        let choice = choose_algorithm(&idx, &p);
        assert!(choice.is_path);
        assert_ne!(choice.algorithm, Algorithm::Auto, "always resolved");
        assert_eq!(choice.min_stream, 1, "one bib element");
        // bib(1) + book(2) + title(2).
        assert_eq!(choice.total_stream, 5);
        // Exact survivors from the guide: 2 books under bib, 2 titles
        // under book.
        assert_eq!(choice.est_survivors, 4);
        // Every strategy is priced; paths have a PathStack estimate.
        assert!(choice.nav_cost > 0);
        assert!(choice.binary_cost > 0);
        assert!(choice.holistic_cost > 0);
        assert!(choice.path_cost < u64::MAX);
        // Twigs have no PathStack estimate.
        let twig = choose_algorithm(&idx, &parse_query("//book[title][author]").unwrap());
        assert!(!twig.is_path);
        assert_eq!(twig.path_cost, u64::MAX);
    }

    #[test]
    fn auto_executes_like_every_pinned_algorithm() {
        let idx = idx();
        for q in [
            "//book/title",
            "//book[title][author]",
            "//book[year >= 2000]/title",
            "//bib//author",
            "ordered //book[title][author]",
        ] {
            let pattern = parse_query(q).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            assert_eq!(execute(&idx, &pattern, Algorithm::Auto), reference, "{q}");
            for threads in [1, 4] {
                assert_eq!(
                    execute_parallel(&idx, &pattern, Algorithm::Auto, threads),
                    reference,
                    "{q} at {threads} threads"
                );
            }
        }
    }

    #[test]
    fn unknown_tags_short_circuit_every_algorithm() {
        let idx = idx();
        for q in [
            "//nosuch",
            "//nosuch[title][author]",
            "//book[nosuch]/title",
            "//book/nosuch",
        ] {
            let pattern = parse_query(q).unwrap();
            for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
                assert!(
                    execute(&idx, &pattern, algo).is_empty(),
                    "{q} via {algo} must be empty"
                );
            }
        }
    }

    #[test]
    fn parallel_execution_is_identical_to_serial() {
        let idx = idx();
        for q in [
            "//book/title",
            "//book[title][author]",
            "//book[year >= 2000]/title",
            "ordered //book[title][author]",
            "//bib//author",
        ] {
            let pattern = parse_query(q).unwrap();
            for algo in Algorithm::ALL {
                let serial = execute(&idx, &pattern, algo);
                for threads in [1, 2, 8] {
                    assert_eq!(
                        execute_parallel(&idx, &pattern, algo, threads),
                        serial,
                        "{q} via {algo} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::TwigStack.to_string(), "twigstack");
        assert_eq!(Algorithm::Auto.to_string(), "auto");
        assert_eq!(Algorithm::ALL.len(), 6);
        assert!(
            !Algorithm::ALL.contains(&Algorithm::Auto),
            "Auto is a policy, not a seventh join"
        );
    }

    #[test]
    fn spans_observe_without_changing_results() {
        let idx = idx();
        let pattern = parse_query("ordered //book[title][author]").unwrap();
        let plain = execute_parallel(&idx, &pattern, Algorithm::TwigStack, 2);
        let span = Span::new("query");
        let spanned = execute_spanned(&idx, &pattern, Algorithm::TwigStack, 2, Some(&span));
        assert_eq!(plain, spanned);
        let rec = span.finish();
        let join = rec.child("join/twigstack").expect("join child recorded");
        assert_eq!(join.note("matches"), Some("2"));
        assert_eq!(
            join.note("threads"),
            Some("1"),
            "holistic joins run serially"
        );
        let filter = rec.child("ordered-filter").expect("filter child");
        assert_eq!(filter.note("in"), Some("2"));
        assert_eq!(filter.note("kept"), Some("1"));
    }
}
