//! Algorithm selection facade.

use crate::algorithms::{guided, naive, pathstack, structural_join, tjfast, twigstack};
use crate::matcher::TwigMatch;
use crate::ordered::filter_ordered;
use crate::pattern::TwigPattern;
use lotusx_guard::QueryGuard;
use lotusx_index::IndexedDocument;
use lotusx_obs::Span;

/// The available twig evaluation algorithms.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Algorithm {
    /// Navigational top-down matching (baseline).
    Naive,
    /// Binary structural joins per edge (baseline).
    StructuralJoin,
    /// Holistic PathStack; twigs are routed to TwigStack.
    PathStack,
    /// Holistic TwigStack.
    TwigStack,
    /// TJFast over extended Dewey leaf streams.
    TJFast,
    /// TwigStack over DataGuide-pruned streams (position-aware execution).
    TwigStackGuided,
}

impl Algorithm {
    /// All algorithms, in the order the experiments report them.
    pub const ALL: [Algorithm; 6] = [
        Algorithm::Naive,
        Algorithm::StructuralJoin,
        Algorithm::PathStack,
        Algorithm::TwigStack,
        Algorithm::TJFast,
        Algorithm::TwigStackGuided,
    ];

    /// A short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Algorithm::Naive => "naive",
            Algorithm::StructuralJoin => "structural-join",
            Algorithm::PathStack => "pathstack",
            Algorithm::TwigStack => "twigstack",
            Algorithm::TJFast => "tjfast",
            Algorithm::TwigStackGuided => "twigstack-guided",
        }
    }
}

impl std::fmt::Display for Algorithm {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Picks an algorithm from simple cost signals — what the engine runs
/// when the caller has not pinned one:
///
/// * path queries → PathStack (E9c: 1.5–2.3× over TwigStack on paths);
/// * twigs whose most selective stream is tiny → the navigational
///   baseline (its constants win when there is almost nothing to join);
/// * everything else → TwigStack.
pub fn select_algorithm(idx: &IndexedDocument, pattern: &TwigPattern) -> Algorithm {
    if pattern.is_path() {
        return Algorithm::PathStack;
    }
    let min_stream = pattern
        .node_ids()
        .map(|q| match pattern.node(q).test.tag_name() {
            Some(name) => idx
                .document()
                .symbols()
                .get(name)
                .map(|sym| idx.tags().frequency(sym))
                .unwrap_or(0),
            None => idx.stats().element_count,
        })
        .min()
        .unwrap_or(0);
    if min_stream <= 32 {
        Algorithm::Naive
    } else {
        Algorithm::TwigStack
    }
}

/// The raw join: runs the chosen algorithm, partitioning across
/// `threads` workers where the algorithm permits (see
/// [`execute_parallel`] for why only the navigational baseline splits).
fn join(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    match algorithm {
        Algorithm::Naive => naive::evaluate_guarded(idx, pattern, threads, guard),
        Algorithm::StructuralJoin => structural_join::evaluate_guarded(idx, pattern, guard),
        Algorithm::PathStack => {
            if pattern.is_path() {
                pathstack::evaluate_guarded(idx, pattern, guard)
            } else {
                twigstack::evaluate_guarded(idx, pattern, guard)
            }
        }
        Algorithm::TwigStack => twigstack::evaluate_guarded(idx, pattern, guard),
        Algorithm::TJFast => tjfast::evaluate_guarded(idx, pattern, guard),
        Algorithm::TwigStackGuided => guided::evaluate_guarded(idx, pattern, guard),
    }
}

/// Evaluates `pattern` over `idx` with the chosen algorithm, applying the
/// order-sensitivity filter if the pattern requests it.
pub fn execute(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
) -> Vec<TwigMatch> {
    execute_spanned(idx, pattern, algorithm, 1, None)
}

/// Like [`execute`], but partitions match enumeration across `threads`
/// workers where the algorithm permits. Output is identical to
/// [`execute`] for every thread count.
///
/// Only the navigational algorithm partitions today: each of its root
/// candidates expands independently, so the root stream splits into
/// contiguous chunks with no shared state. The stack-based holistic joins
/// (PathStack/TwigStack/TJFast/guided) thread one global stack state
/// through the whole leaf stream — partitioning them would need
/// cross-chunk repair for ancestor chains spanning a chunk boundary — and
/// the binary structural join is a sequence of full-stream merges; they
/// all run serially.
pub fn execute_parallel(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
) -> Vec<TwigMatch> {
    execute_spanned(idx, pattern, algorithm, threads, None)
}

/// Like [`execute_parallel`], recording the join and the ordered filter
/// as timed children of `span` when one is supplied. The span never
/// changes what is computed — results are identical with and without it.
pub fn execute_spanned(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
    span: Option<&Span>,
) -> Vec<TwigMatch> {
    execute_budgeted(
        idx,
        pattern,
        algorithm,
        threads,
        span,
        &QueryGuard::unlimited(),
    )
}

/// Like [`execute_spanned`], under a budget: the join runs its guarded
/// variant and stops cooperatively once `guard` trips, returning only
/// matches proven valid by then. Callers inspect the guard afterwards
/// to learn whether the result is complete.
pub fn execute_budgeted(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    algorithm: Algorithm,
    threads: usize,
    span: Option<&Span>,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let matches = match span {
        None => join(idx, pattern, algorithm, threads, guard),
        Some(parent) => {
            let span_guard = parent.child(format!("join/{algorithm}"));
            let effective = if algorithm == Algorithm::Naive {
                threads.max(1)
            } else {
                1
            };
            span_guard.annotate("threads", effective);
            let m = join(idx, pattern, algorithm, threads, guard);
            span_guard.annotate("matches", m.len());
            m
        }
    };
    if !pattern.is_ordered() {
        return matches;
    }
    match span {
        None => filter_ordered(idx, pattern, matches),
        Some(parent) => {
            let span_guard = parent.child("ordered-filter");
            span_guard.annotate("in", matches.len());
            let out = filter_ordered(idx, pattern, matches);
            span_guard.annotate("kept", out.len());
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>A</title><author>X</author><year>1999</year></book>\
               <book><author>Y</author><title>B</title><year>2003</year></book>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn all_algorithms_agree() {
        let idx = idx();
        for q in [
            "//book/title",
            "//book[title][author]",
            "//book[year >= 2000]/title",
            "//bib//author",
        ] {
            let pattern = parse_query(q).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            for algo in Algorithm::ALL {
                assert_eq!(
                    execute(&idx, &pattern, algo),
                    reference,
                    "algorithm {algo} on {q}"
                );
            }
        }
    }

    #[test]
    fn pathstack_routes_twigs_to_twigstack() {
        let idx = idx();
        let pattern = parse_query("//book[title][author]").unwrap();
        // Must not panic despite branching.
        let m = execute(&idx, &pattern, Algorithm::PathStack);
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn ordered_patterns_are_filtered_for_every_algorithm() {
        let idx = idx();
        let pattern = parse_query("ordered //book[title][author]").unwrap();
        for algo in Algorithm::ALL {
            let m = execute(&idx, &pattern, algo);
            assert_eq!(m.len(), 1, "algorithm {algo}");
        }
    }

    #[test]
    fn selector_routes_by_shape_and_selectivity() {
        let idx = idx();
        // Path → PathStack.
        let p = parse_query("//bib/book/title").unwrap();
        assert_eq!(select_algorithm(&idx, &p), Algorithm::PathStack);
        // Twig with a tiny stream (2 books) → Naive.
        let p = parse_query("//book[title][author]").unwrap();
        assert_eq!(select_algorithm(&idx, &p), Algorithm::Naive);
        // Twig over an unknown tag → empty stream → Naive (trivial).
        let p = parse_query("//nosuch[title][author]").unwrap();
        assert_eq!(select_algorithm(&idx, &p), Algorithm::Naive);
        // The selected algorithm always returns the reference answer.
        for q in ["//bib/book/title", "//book[title][author]"] {
            let pattern = parse_query(q).unwrap();
            let selected = select_algorithm(&idx, &pattern);
            assert_eq!(
                execute(&idx, &pattern, selected),
                execute(&idx, &pattern, Algorithm::Naive),
                "{q}"
            );
        }
    }

    #[test]
    fn parallel_execution_is_identical_to_serial() {
        let idx = idx();
        for q in [
            "//book/title",
            "//book[title][author]",
            "//book[year >= 2000]/title",
            "ordered //book[title][author]",
            "//bib//author",
        ] {
            let pattern = parse_query(q).unwrap();
            for algo in Algorithm::ALL {
                let serial = execute(&idx, &pattern, algo);
                for threads in [1, 2, 8] {
                    assert_eq!(
                        execute_parallel(&idx, &pattern, algo, threads),
                        serial,
                        "{q} via {algo} at {threads} threads"
                    );
                }
            }
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(Algorithm::TwigStack.to_string(), "twigstack");
        assert_eq!(Algorithm::ALL.len(), 6);
    }

    #[test]
    fn spans_observe_without_changing_results() {
        let idx = idx();
        let pattern = parse_query("ordered //book[title][author]").unwrap();
        let plain = execute_parallel(&idx, &pattern, Algorithm::TwigStack, 2);
        let span = Span::new("query");
        let spanned = execute_spanned(&idx, &pattern, Algorithm::TwigStack, 2, Some(&span));
        assert_eq!(plain, spanned);
        let rec = span.finish();
        let join = rec.child("join/twigstack").expect("join child recorded");
        assert_eq!(join.note("matches"), Some("2"));
        assert_eq!(
            join.note("threads"),
            Some("1"),
            "holistic joins run serially"
        );
        let filter = rec.child("ordered-filter").expect("filter child");
        assert_eq!(filter.note("in"), Some("2"));
        assert_eq!(filter.note("kept"), Some("1"));
    }
}
