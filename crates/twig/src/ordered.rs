//! Order-sensitive twig semantics.
//!
//! LotusX supports "complex twig queries (including order sensitive
//! queries)": when a pattern is marked ordered, sibling query nodes must
//! bind to elements that occur in the same left-to-right order in the
//! document, and must be distinct. (Unordered twig semantics place no
//! constraint between siblings — two sibling query nodes may even bind the
//! same element.)

use crate::matcher::TwigMatch;
use crate::pattern::{QNodeId, TwigPattern};
use lotusx_index::IndexedDocument;

/// True if `m` satisfies the order constraint: for every query node, the
/// bindings of its children occur in strictly increasing document order.
pub fn match_is_ordered(idx: &IndexedDocument, pattern: &TwigPattern, m: &TwigMatch) -> bool {
    let labels = idx.labels();
    for q in pattern.node_ids() {
        let children: &[QNodeId] = &pattern.node(q).children;
        for pair in children.windows(2) {
            let a = m.binding(pair[0]);
            let b = m.binding(pair[1]);
            // Strict document order; equal bindings violate ordering.
            if !labels.doc_order_before(a, b) {
                return false;
            }
        }
    }
    true
}

/// Retains only the order-satisfying matches.
pub fn filter_ordered(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    matches: Vec<TwigMatch>,
) -> Vec<TwigMatch> {
    matches
        .into_iter()
        .filter(|m| match_is_ordered(idx, pattern, m))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        // Two sections: one has title before para, the other after.
        IndexedDocument::from_str(
            "<doc>\
               <section><title>T1</title><para>P1</para></section>\
               <section><para>P2</para><title>T2</title></section>\
             </doc>",
        )
        .unwrap()
    }

    #[test]
    fn ordered_filter_keeps_in_order_siblings_only() {
        let idx = idx();
        let unordered = parse_query("//section[title][para]").unwrap();
        let all = naive::evaluate(&idx, &unordered);
        assert_eq!(all.len(), 2);

        let ordered = parse_query("ordered //section[title][para]").unwrap();
        let kept = filter_ordered(&idx, &ordered, all.clone());
        assert_eq!(kept.len(), 1, "only the title-before-para section");

        // Reversing the sibling order in the query flips the result.
        let reversed = parse_query("ordered //section[para][title]").unwrap();
        let all_rev = naive::evaluate(&idx, &parse_query("//section[para][title]").unwrap());
        let kept_rev = filter_ordered(&idx, &reversed, all_rev);
        assert_eq!(kept_rev.len(), 1);
    }

    #[test]
    fn duplicate_bindings_violate_order() {
        let idx = IndexedDocument::from_str("<r><x>1</x></r>").unwrap();
        // //r[x][x] unordered: the single x binds both siblings.
        let q = parse_query("//r[x][x]").unwrap();
        let all = naive::evaluate(&idx, &q);
        assert_eq!(all.len(), 1);
        let kept = filter_ordered(&idx, &q, all);
        assert!(
            kept.is_empty(),
            "same element cannot satisfy ordered siblings"
        );
    }

    #[test]
    fn order_checked_at_every_level() {
        let idx =
            IndexedDocument::from_str("<r><g><a>1</a><b>1</b></g><g><b>2</b><a>2</a></g></r>")
                .unwrap();
        let q = parse_query("//r/g[a][b]").unwrap();
        let all = naive::evaluate(&idx, &q);
        assert_eq!(all.len(), 2);
        let kept = filter_ordered(&idx, &q, all);
        assert_eq!(kept.len(), 1);
    }

    #[test]
    fn paths_are_never_filtered() {
        let idx = idx();
        let q = parse_query("//section/title").unwrap();
        let all = naive::evaluate(&idx, &q);
        let kept = filter_ordered(&idx, &q, all.clone());
        assert_eq!(all, kept);
    }
}
