//! A parser for an XPath-like textual subset.
//!
//! LotusX queries are built on a graphical canvas; this textual syntax is
//! the equivalent notation used in tests, benches and the CLI. Supported
//! grammar (whitespace is insignificant between tokens):
//!
//! ```text
//! query     := ["ordered"] path
//! path      := ("/" | "//")? step (("/" | "//") step)*      -- no leading slash means "//"
//! step      := (NAME | "*") "!"? predicate*
//! predicate := "[" body "]"
//! body      := "." valuetest
//!            | relpath valuetest?
//! relpath   := step (("/" | "//") step)*                    -- leading "//" allowed
//! valuetest := "="  STRING      -- exact (case-insensitive) text equality
//!            | "~"  STRING      -- all terms contained
//!            | ">=" NUMBER | "<=" NUMBER
//!            | "in" NUMBER ".." NUMBER
//! ```
//!
//! `!` marks a step as an output node (if no step is marked, the last step
//! of the main path is the output). Examples:
//!
//! ```
//! use lotusx_twig::xpath::parse_query;
//! let q = parse_query(r#"//book[year >= 2000][author ~ "lu"]/title"#).unwrap();
//! assert_eq!(q.len(), 4);
//! let q = parse_query("ordered //section/title").unwrap();
//! assert!(q.is_ordered());
//! ```

use crate::pattern::{Axis, NodeTest, QNodeId, TwigPattern, ValuePredicate};
use std::fmt;

/// A query-parsing error with a byte position and, when produced by
/// [`parse_query`], a rendered snippet of the offending input.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// What went wrong.
    pub message: String,
    /// Byte offset in the query string.
    pub offset: usize,
    /// A two-line window of the input with a caret under the offset,
    /// shown by `Display`. `None` until [`ParseError::with_snippet`].
    pub snippet: Option<String>,
}

/// Bytes of query context shown on each side of the error offset.
const SNIPPET_RADIUS: usize = 30;

impl ParseError {
    /// Attaches a rendered context window of `input` around the error
    /// offset (a truncated copy of the query plus a caret line).
    pub fn with_snippet(mut self, input: &str) -> Self {
        let offset = self.offset.min(input.len());
        let mut start = offset.saturating_sub(SNIPPET_RADIUS);
        while !input.is_char_boundary(start) {
            start -= 1;
        }
        let mut end = (offset + SNIPPET_RADIUS).min(input.len());
        while !input.is_char_boundary(end) {
            end += 1;
        }
        let prefix = if start > 0 { "…" } else { "" };
        let suffix = if end < input.len() { "…" } else { "" };
        let window: String = input[start..end]
            .chars()
            .map(|c| if c == '\n' || c == '\t' { ' ' } else { c })
            .collect();
        let caret_col = prefix.chars().count() + input[start..offset].chars().count();
        self.snippet = Some(format!(
            "  {prefix}{window}{suffix}\n  {}^",
            " ".repeat(caret_col)
        ));
        self
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "query parse error at byte {}: {}",
            self.offset, self.message
        )?;
        if let Some(snippet) = &self.snippet {
            write!(f, "\n{snippet}")?;
        }
        Ok(())
    }
}

impl std::error::Error for ParseError {}

/// Parses a query string into a [`TwigPattern`]. Errors carry a rendered
/// snippet of the input around the failure offset.
pub fn parse_query(input: &str) -> Result<TwigPattern, ParseError> {
    Parser::new(input)
        .parse()
        .map_err(|e| e.with_snippet(input))
}

struct Parser<'a> {
    input: &'a str,
    pos: usize,
    explicit_output: bool,
}

impl<'a> Parser<'a> {
    fn new(input: &'a str) -> Self {
        Parser {
            input,
            pos: 0,
            explicit_output: false,
        }
    }

    fn err<T>(&self, message: impl Into<String>) -> Result<T, ParseError> {
        Err(ParseError {
            message: message.into(),
            offset: self.pos,
            snippet: None,
        })
    }

    fn skip_ws(&mut self) {
        while self.input[self.pos..].starts_with(|c: char| c.is_whitespace()) {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<char> {
        self.input[self.pos..].chars().next()
    }

    fn eat(&mut self, s: &str) -> bool {
        if self.input[self.pos..].starts_with(s) {
            self.pos += s.len();
            true
        } else {
            false
        }
    }

    fn parse(mut self) -> Result<TwigPattern, ParseError> {
        self.skip_ws();
        let ordered = self.eat_keyword("ordered");
        self.skip_ws();

        let root_axis = self.parse_leading_axis();
        let (root_test, root_output) = self.parse_name()?;
        let mut pattern = TwigPattern::new(root_test, root_axis);
        if root_output {
            pattern.set_output(pattern.root(), true);
            self.explicit_output = true;
        }
        let mut last = pattern.root();
        self.parse_predicates(&mut pattern, last)?;

        loop {
            self.skip_ws();
            let axis = if self.eat("//") {
                Axis::Descendant
            } else if self.eat("/") {
                Axis::Child
            } else {
                break;
            };
            self.skip_ws();
            let (test, output) = self.parse_name()?;
            last = pattern.add_child(last, axis, test);
            if output {
                pattern.set_output(last, true);
                self.explicit_output = true;
            }
            self.parse_predicates(&mut pattern, last)?;
        }

        self.skip_ws();
        if self.pos != self.input.len() {
            return self.err("trailing input after query");
        }
        if !self.explicit_output {
            pattern.set_output(last, true);
        }
        pattern.set_ordered(ordered);
        Ok(pattern)
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.input[self.pos..].starts_with(kw) {
            let after = self.input[self.pos + kw.len()..].chars().next();
            if matches!(after, Some(c) if c.is_whitespace()) {
                self.pos += kw.len();
                return true;
            }
        }
        false
    }

    fn parse_leading_axis(&mut self) -> Axis {
        if self.eat("//") {
            Axis::Descendant
        } else if self.eat("/") {
            Axis::Child
        } else {
            // Bare leading name defaults to descendant-from-root — the
            // natural "find it anywhere" semantics of a search UI.
            Axis::Descendant
        }
    }

    fn parse_name(&mut self) -> Result<(NodeTest, bool), ParseError> {
        self.skip_ws();
        if self.eat("*") {
            let output = self.eat("!");
            return Ok((NodeTest::Wildcard, output));
        }
        let start = self.pos;
        while let Some(c) = self.peek() {
            if c.is_alphanumeric() || c == '_' || c == '-' || c == '.' || c == ':' {
                self.pos += c.len_utf8();
            } else {
                break;
            }
        }
        if self.pos == start {
            return self.err("expected an element name or '*'");
        }
        let name = self.input[start..self.pos].to_string();
        let output = self.eat("!");
        Ok((NodeTest::Tag(name), output))
    }

    fn parse_predicates(
        &mut self,
        pattern: &mut TwigPattern,
        context: QNodeId,
    ) -> Result<(), ParseError> {
        loop {
            self.skip_ws();
            if !self.eat("[") {
                return Ok(());
            }
            self.parse_predicate_body(pattern, context)?;
            self.skip_ws();
            if !self.eat("]") {
                return self.err("expected ']' to close predicate");
            }
        }
    }

    fn parse_predicate_body(
        &mut self,
        pattern: &mut TwigPattern,
        context: QNodeId,
    ) -> Result<(), ParseError> {
        self.skip_ws();
        if self.eat(".") {
            // Value test on the context node itself.
            let pred = self.parse_value_test()?;
            pattern.set_predicate(context, Some(pred));
            return Ok(());
        }
        if self.eat("@") {
            // Attribute test on the context node.
            let (test, _) = self.parse_name()?;
            let name = match test {
                NodeTest::Tag(n) => n,
                NodeTest::Wildcard => return self.err("attribute name cannot be '*'"),
            };
            self.skip_ws();
            let pred = if matches!(self.peek(), Some('=' | '~' | '>' | '<' | 'i')) {
                match self.parse_value_test()? {
                    ValuePredicate::Equals(value) => ValuePredicate::AttrEquals { name, value },
                    ValuePredicate::Contains(value) => ValuePredicate::AttrContains { name, value },
                    ValuePredicate::Range { low, high } => {
                        ValuePredicate::AttrRange { name, low, high }
                    }
                    other => other,
                }
            } else {
                ValuePredicate::AttrExists { name }
            };
            pattern.set_predicate(context, Some(pred));
            return Ok(());
        }
        // A relative path branch, optionally ending in a value test.
        let mut axis = if self.eat("//") {
            Axis::Descendant
        } else {
            let _ = self.eat("/");
            Axis::Child
        };
        let mut last = context;
        loop {
            self.skip_ws();
            let (test, output) = self.parse_name()?;
            last = pattern.add_child(last, axis, test);
            if output {
                pattern.set_output(last, true);
                self.explicit_output = true;
            }
            // Nested predicates on branch steps are allowed.
            self.parse_predicates(pattern, last)?;
            self.skip_ws();
            if self.eat("//") {
                axis = Axis::Descendant;
            } else if self.eat("/") {
                axis = Axis::Child;
            } else {
                break;
            }
        }
        self.skip_ws();
        if matches!(self.peek(), Some('=' | '~' | '>' | '<' | 'i')) {
            let pred = self.parse_value_test()?;
            pattern.set_predicate(last, Some(pred));
        }
        Ok(())
    }

    fn parse_value_test(&mut self) -> Result<ValuePredicate, ParseError> {
        self.skip_ws();
        if self.eat(">=") {
            let n = self.parse_number()?;
            return Ok(ValuePredicate::Range {
                low: n,
                high: f64::INFINITY,
            });
        }
        if self.eat("<=") {
            let n = self.parse_number()?;
            return Ok(ValuePredicate::Range {
                low: f64::NEG_INFINITY,
                high: n,
            });
        }
        if self.eat("=") {
            let s = self.parse_string()?;
            return Ok(ValuePredicate::Equals(s));
        }
        if self.eat("~") {
            let s = self.parse_string()?;
            return Ok(ValuePredicate::Contains(s));
        }
        if self.eat("in") {
            let low = self.parse_number()?;
            self.skip_ws();
            if !self.eat("..") {
                return self.err("expected '..' in range predicate");
            }
            let high = self.parse_number()?;
            if low > high {
                return self.err("range low bound exceeds high bound");
            }
            return Ok(ValuePredicate::Range { low, high });
        }
        self.err("expected a value test (=, ~, >=, <=, in)")
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.skip_ws();
        if !self.eat("\"") {
            return self.err("expected a double-quoted string");
        }
        let start = self.pos;
        match self.input[self.pos..].find('"') {
            Some(rel) => {
                let s = self.input[start..start + rel].to_string();
                self.pos += rel + 1;
                Ok(s)
            }
            None => self.err("unterminated string"),
        }
    }

    fn parse_number(&mut self) -> Result<f64, ParseError> {
        self.skip_ws();
        let start = self.pos;
        if matches!(self.peek(), Some('-' | '+')) {
            self.pos += 1;
        }
        let mut seen_dot = false;
        while let Some(c) = self.peek() {
            if c.is_ascii_digit() {
                self.pos += 1;
            } else if c == '.' && !seen_dot && !self.input[self.pos..].starts_with("..") {
                seen_dot = true;
                self.pos += 1;
            } else {
                break;
            }
        }
        self.input[start..self.pos]
            .parse::<f64>()
            .map_err(|_| ParseError {
                message: "expected a number".into(),
                offset: start,
                snippet: None,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{Axis, NodeTest, ValuePredicate};

    #[test]
    fn parses_simple_path() {
        let q = parse_query("//bib/book//title").unwrap();
        assert_eq!(q.len(), 3);
        assert!(q.is_path());
        let ids: Vec<_> = q.node_ids().collect();
        assert_eq!(q.node(ids[0]).test, NodeTest::Tag("bib".into()));
        assert_eq!(q.node(ids[1]).axis, Axis::Child);
        assert_eq!(q.node(ids[2]).axis, Axis::Descendant);
        // Last step is the default output.
        assert_eq!(q.output_nodes(), vec![ids[2]]);
    }

    #[test]
    fn bare_leading_name_defaults_to_descendant_axis() {
        let q = parse_query("book/title").unwrap();
        assert_eq!(q.node(q.root()).axis, Axis::Descendant);
        let q2 = parse_query("/bib").unwrap();
        assert_eq!(q2.node(q2.root()).axis, Axis::Child);
    }

    #[test]
    fn parses_branching_predicates() {
        let q = parse_query("//book[title][//author]/year").unwrap();
        assert_eq!(q.len(), 4);
        assert!(!q.is_path());
        let root = q.root();
        assert_eq!(q.node(root).children.len(), 3);
        let title = q.node(root).children[0];
        assert_eq!(q.node(title).axis, Axis::Child);
        let author = q.node(root).children[1];
        assert_eq!(q.node(author).axis, Axis::Descendant);
    }

    #[test]
    fn parses_value_tests() {
        let q =
            parse_query(r#"//book[year >= 2000][title = "XML"][author ~ "jiaheng lu"]"#).unwrap();
        let root = q.root();
        let kids = &q.node(root).children;
        assert_eq!(
            q.node(kids[0]).predicate,
            Some(ValuePredicate::Range {
                low: 2000.0,
                high: f64::INFINITY
            })
        );
        assert_eq!(
            q.node(kids[1]).predicate,
            Some(ValuePredicate::Equals("XML".into()))
        );
        assert_eq!(
            q.node(kids[2]).predicate,
            Some(ValuePredicate::Contains("jiaheng lu".into()))
        );
    }

    #[test]
    fn parses_dot_value_test() {
        let q = parse_query(r#"//title[. = "XML"]"#).unwrap();
        assert_eq!(q.len(), 1);
        assert_eq!(
            q.node(q.root()).predicate,
            Some(ValuePredicate::Equals("XML".into()))
        );
    }

    #[test]
    fn parses_range() {
        let q = parse_query("//year[. in 1999..2003]").unwrap();
        assert_eq!(
            q.node(q.root()).predicate,
            Some(ValuePredicate::Range {
                low: 1999.0,
                high: 2003.0
            })
        );
    }

    #[test]
    fn rejects_inverted_range() {
        assert!(parse_query("//year[. in 2003..1999]").is_err());
    }

    #[test]
    fn parses_output_marker() {
        let q = parse_query("//book[author!]/title").unwrap();
        let root = q.root();
        let author = q.node(root).children[0];
        assert_eq!(q.output_nodes(), vec![author]);
    }

    #[test]
    fn parses_ordered_prefix() {
        let q = parse_query("ordered //book/title").unwrap();
        assert!(q.is_ordered());
        // "ordered" must be a standalone word.
        let q2 = parse_query("orderedbook").unwrap();
        assert!(!q2.is_ordered());
        assert_eq!(q2.node(q2.root()).test, NodeTest::Tag("orderedbook".into()));
    }

    #[test]
    fn parses_wildcard() {
        let q = parse_query("//*[title]").unwrap();
        assert_eq!(q.node(q.root()).test, NodeTest::Wildcard);
    }

    #[test]
    fn parses_nested_branch_paths() {
        let q = parse_query(r#"//book[editor/name ~ "smith"]"#).unwrap();
        assert_eq!(q.len(), 3);
        let root = q.root();
        let editor = q.node(root).children[0];
        let name = q.node(editor).children[0];
        assert_eq!(q.node(name).test, NodeTest::Tag("name".into()));
        assert_eq!(
            q.node(name).predicate,
            Some(ValuePredicate::Contains("smith".into()))
        );
    }

    #[test]
    fn parses_nested_predicates_inside_branches() {
        let q = parse_query(r#"//dblp[article[author]/title]"#).unwrap();
        assert_eq!(q.len(), 4);
        let root = q.root();
        let article = q.node(root).children[0];
        assert_eq!(q.node(article).children.len(), 2);
    }

    #[test]
    fn parses_attribute_predicates() {
        let q = parse_query(r#"//book[@year >= 2000]"#).unwrap();
        assert_eq!(
            q.node(q.root()).predicate,
            Some(ValuePredicate::AttrRange {
                name: "year".into(),
                low: 2000.0,
                high: f64::INFINITY
            })
        );
        let q = parse_query(r#"//book[@lang = "en"]"#).unwrap();
        assert_eq!(
            q.node(q.root()).predicate,
            Some(ValuePredicate::AttrEquals {
                name: "lang".into(),
                value: "en".into()
            })
        );
        let q = parse_query(r#"//item[@id ~ "item1"]"#).unwrap();
        assert!(matches!(
            q.node(q.root()).predicate,
            Some(ValuePredicate::AttrContains { .. })
        ));
        let q = parse_query("//book[@isbn]").unwrap();
        assert_eq!(
            q.node(q.root()).predicate,
            Some(ValuePredicate::AttrExists {
                name: "isbn".into()
            })
        );
        assert!(parse_query("//book[@*]").is_err());
    }

    #[test]
    fn attribute_predicate_display_reparses() {
        for text in [
            r#"//book[@year >= 2000]/title"#,
            r#"//book[@lang = "en"]"#,
            r#"//book[@isbn]"#,
            r#"//year[@unit in 1..2]"#,
        ] {
            let q = parse_query(text).unwrap();
            let q2 = parse_query(&q.to_string()).unwrap();
            assert_eq!(q, q2, "{text}");
        }
    }

    #[test]
    fn error_positions_are_reported() {
        let err = parse_query("//book[").unwrap_err();
        assert!(err.offset >= 7, "{err}");
        assert!(parse_query("").is_err());
        assert!(parse_query("//book]").is_err());
        assert!(parse_query("//book[year > ]").is_err());
        assert!(parse_query(r#"//t[. = "unterminated]"#).is_err());
    }

    #[test]
    fn errors_display_a_caret_snippet() {
        let err = parse_query("//book[").unwrap_err();
        let text = err.to_string();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3, "{text}");
        assert!(lines[0].contains("query parse error at byte"));
        assert!(lines[1].contains("//book["));
        // The caret sits under the error offset.
        let caret_col = lines[2].find('^').expect("caret line");
        let snippet_col = lines[1].find("//book[").unwrap();
        assert_eq!(caret_col, snippet_col + err.offset, "{text}");
    }

    #[test]
    fn long_inputs_are_windowed_with_ellipses() {
        let long = format!("//{}[", "x".repeat(200));
        let err = parse_query(&long).unwrap_err();
        let text = err.to_string();
        assert!(text.contains('…'), "{text}");
        assert!(
            text.lines().nth(1).unwrap().chars().count() < 80,
            "window stays short: {text}"
        );
        // Without a snippet (direct construction) Display is one line.
        let bare = ParseError {
            message: "boom".into(),
            offset: 3,
            snippet: None,
        };
        assert_eq!(bare.to_string().lines().count(), 1);
    }

    #[test]
    fn display_of_parsed_query_reparses_equivalently() {
        let q = parse_query(r#"//book[year >= 2000]/title"#).unwrap();
        let q2 = parse_query(&q.to_string()).unwrap();
        assert_eq!(q, q2);
    }
}
