//! # lotusx-twig
//!
//! The twig (tree-pattern) query model of LotusX and the algorithms that
//! evaluate it:
//!
//! * [`pattern`] — twig patterns: tag/wildcard node tests, value predicates,
//!   parent-child and ancestor-descendant edges, output flags, and
//!   order-sensitive semantics.
//! * [`xpath`] — a parser for an XPath-like textual subset so queries can be
//!   written as strings (`//book[year >= 2000]/title`).
//! * [`algorithms`] — five evaluators producing identical match sets:
//!   a navigational baseline, binary structural joins, the holistic
//!   PathStack and TwigStack, and TJFast over extended Dewey labels.
//! * [`ordered`] — order-sensitive twig semantics (LotusX supports
//!   "complex twig queries (including order sensitive queries)").
//! * [`exec`] — algorithm selection facade.
//!
//! ```
//! use lotusx_index::IndexedDocument;
//! use lotusx_twig::{exec::{execute, Algorithm}, xpath::parse_query};
//!
//! let idx = IndexedDocument::from_str(
//!     "<bib><book><title>XML</title><year>2003</year></book></bib>").unwrap();
//! let q = parse_query("//book[year >= 2000]/title").unwrap();
//! let matches = execute(&idx, &q, Algorithm::TwigStack);
//! assert_eq!(matches.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod algorithms;
pub mod exec;
pub mod matcher;
pub mod ordered;
pub mod pattern;
pub mod xpath;

pub use exec::{
    choose_algorithm, execute, execute_budgeted, execute_parallel, select_algorithm, Algorithm,
    Choice,
};
pub use matcher::TwigMatch;
pub use pattern::{Axis, NodeTest, QNodeId, TwigPattern, ValuePredicate};
pub use xpath::parse_query;
