//! Twig-matching algorithms.
//!
//! All five evaluators return the same match sets (a property the test
//! suite enforces); they differ in how much work and memory they spend:
//!
//! | module | style | notes |
//! |---|---|---|
//! | [`naive`] | navigational, top-down | baseline; no indexes beyond tag lookup |
//! | [`structural_join`] | binary stack-tree joins | the pre-holistic decomposition baseline; large intermediate pair lists |
//! | [`pathstack`] | holistic, path queries | optimal for A-D path queries |
//! | [`twigstack`] | holistic, chained stacks | optimal for A-D-only twigs |
//! | [`tjfast`] | leaf streams + extended Dewey | scans only leaf streams |
//! | [`guided`] | TwigStack + DataGuide stream pruning | position-aware execution |

pub mod guided;
pub(crate) mod holistic_common;
pub mod naive;
pub mod pathstack;
pub mod structural_join;
pub mod tjfast;
pub mod twigstack;
