//! Binary structural-join baseline.
//!
//! The pre-holistic decomposition: every query edge becomes one stack-tree
//! structural join (Al-Khalifa et al., ICDE 2002) over the two nodes'
//! sorted streams, producing an explicit `(ancestor, descendant)` pair list
//! per edge. Full matches are then stitched together by hash-joining the
//! pair lists along the twig. The per-edge pair lists are the
//! characteristic cost of this approach — they can dwarf the final result,
//! which is precisely what holistic joins avoid.
//!
//! The merge scans the index's struct-of-arrays region columns and skips
//! with galloping binary search on both sides: descendants that start
//! before any live ancestor jump forward in one seek, and ancestors whose
//! subtrees end before the current descendant (dead — they can never
//! contain a later descendant either) jump via the per-stream end-maxima
//! tree. Emitted pairs are identical to the element-by-element merge.

use crate::matcher::{node_columns, NodeColumns, TwigMatch};
use crate::pattern::{Axis, QNodeId, TwigPattern};
use lotusx_guard::{QueryGuard, Ticker};
use lotusx_index::{ColumnView, ElementEntry, IndexedDocument, OwnedColumns};
use lotusx_xml::NodeId;
use std::collections::HashMap;

/// Evaluates `pattern` with one binary structural join per edge.
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, &QueryGuard::unlimited())
}

/// [`evaluate`] under a budget. The explicit per-edge pair lists are
/// this algorithm's blow-up site, so the join charges one node visit
/// per pair emitted (and one per element skipped); on trip later edges
/// get incomplete (possibly empty) pair lists and the stitch stops
/// early — every stitched match still satisfies all its edges, so
/// partial output is valid.
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    // Columnar streams per query node.
    let columns: Vec<NodeColumns<'_>> = pattern
        .node_ids()
        .map(|q| node_columns(idx, pattern, q, true))
        .collect();
    let views: Vec<ColumnView<'_>> = columns.iter().map(|c| c.view()).collect();
    let mut ticker = guard.ticker();

    // One pair list per non-root query node (its edge to the parent),
    // keyed by the ancestor binding.
    let mut edge_pairs: Vec<HashMap<NodeId, Vec<NodeId>>> = vec![HashMap::new(); pattern.len()];
    for q in pattern.node_ids() {
        let node = pattern.node(q);
        let Some(parent) = node.parent else { continue };
        if ticker.stopped() {
            // A missing pair list only removes matches, never invents
            // them: the stitch treats it as "no descendants".
            break;
        }
        let pairs = stack_tree_join_columns(
            views[parent.index()],
            views[q.index()],
            node.axis,
            &mut ticker,
        );
        let map = &mut edge_pairs[q.index()];
        for (anc, desc) in pairs {
            map.entry(anc).or_default().push(desc);
        }
    }

    // Stitch: enumerate root candidates, then expand edge pair lists.
    let mut out = Vec::new();
    let mut bindings = vec![NodeId::DOCUMENT; pattern.len()];
    let root_nodes = views[pattern.root().index()].nodes();
    for &root in root_nodes {
        if ticker.tick(1) {
            break;
        }
        bindings[pattern.root().index()] = root;
        stitch(
            pattern,
            &edge_pairs,
            pattern.root(),
            &mut bindings,
            &mut out,
        );
    }
    out.sort();
    out.dedup();
    out
}

/// Expands the children of query node `q` using the per-edge pair lists.
fn stitch(
    pattern: &TwigPattern,
    edge_pairs: &[HashMap<NodeId, Vec<NodeId>>],
    q: QNodeId,
    bindings: &mut Vec<NodeId>,
    out: &mut Vec<TwigMatch>,
) {
    let children = pattern.node(q).children.clone();
    stitch_children(pattern, edge_pairs, q, &children, 0, bindings, out);
}

fn stitch_children(
    pattern: &TwigPattern,
    edge_pairs: &[HashMap<NodeId, Vec<NodeId>>],
    q: QNodeId,
    children: &[QNodeId],
    at: usize,
    bindings: &mut Vec<NodeId>,
    out: &mut Vec<TwigMatch>,
) {
    if at == children.len() {
        out.push(TwigMatch {
            bindings: bindings.clone(),
        });
        return;
    }
    let qchild = children[at];
    let anc = bindings[q.index()];
    let Some(descendants) = edge_pairs[qchild.index()].get(&anc) else {
        return;
    };
    for &desc in descendants {
        bindings[qchild.index()] = desc;
        let mut sub = Vec::new();
        stitch(pattern, edge_pairs, qchild, bindings, &mut sub);
        for m in sub {
            *bindings = m.bindings;
            stitch_children(pattern, edge_pairs, q, children, at + 1, bindings, out);
        }
    }
}

/// The stack-tree structural join: all `(a, d)` with `a` from `ancestors`,
/// `d` from `descendants`, and `a` an ancestor (or parent, per `axis`) of
/// `d`. Both inputs must be in document order; output cost is
/// `O(|A| + |D| + |result|)` — with the galloping skips, the `|A| + |D|`
/// term drops to the number of elements that actually participate.
pub fn stack_tree_join(
    ancestors: &[ElementEntry],
    descendants: &[ElementEntry],
    axis: Axis,
) -> Vec<(NodeId, NodeId)> {
    let mut ticker = QueryGuard::unlimited().ticker();
    let anc = OwnedColumns::from_entries(ancestors);
    let desc = OwnedColumns::from_entries(descendants);
    stack_tree_join_columns(anc.view(), desc.view(), axis, &mut ticker)
}

/// Columnar stack-tree join, charging one node visit per descendant
/// consumed or skipped and per pair emitted; on trip the output is a
/// truncated (but real) pair list.
fn stack_tree_join_columns(
    ancestors: ColumnView<'_>,
    descendants: ColumnView<'_>,
    axis: Axis,
    ticker: &mut Ticker,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let (a_starts, a_ends) = (ancestors.starts(), ancestors.ends());
    let (a_levels, a_nodes) = (ancestors.levels(), ancestors.nodes());
    let (d_starts, d_ends) = (descendants.starts(), descendants.ends());
    let (d_levels, d_nodes) = (descendants.levels(), descendants.nodes());
    // Stack of indices into the ancestor columns (a nested chain).
    let mut stack: Vec<u32> = Vec::new();
    let mut acur = ancestors.cursor();
    let mut dcur = descendants.cursor();
    while !dcur.is_exhausted() {
        let di = dcur.position();
        let dstart = d_starts[di];
        // Push every ancestor that starts before d does. Ancestors whose
        // subtree ends before d starts are dead — they cannot contain
        // this or any later descendant — so the cursor seeks straight to
        // the next one whose end reaches d.
        while !acur.is_exhausted() && acur.head_start() < dstart {
            if acur.head_end() < dstart {
                let skipped = acur.seek_end_at_least(dstart);
                let _ = ticker.tick(skipped as u64);
                continue;
            }
            let ai = acur.position();
            // Pop finished ancestors first.
            while let Some(&top) = stack.last() {
                if a_ends[top as usize] < a_starts[ai] {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(ai as u32);
            acur.advance();
        }
        // Pop ancestors that ended before d starts.
        while let Some(&top) = stack.last() {
            if a_ends[top as usize] < dstart {
                stack.pop();
            } else {
                break;
            }
        }
        if stack.is_empty() {
            // Nothing contains this descendant — nor any other that
            // starts before the next ancestor does. One seek disposes of
            // the whole gap (at least d itself).
            if acur.is_exhausted() {
                break;
            }
            let next_a = acur.head_start();
            let skipped = dcur.seek_start_at_least(next_a.saturating_add(1));
            if ticker.tick(skipped.max(1) as u64) {
                break;
            }
            continue;
        }
        if ticker.tick(1) {
            break;
        }
        // Every remaining stack entry contains d.
        let (dend, dlevel, dnode) = (d_ends[di], d_levels[di], d_nodes[di]);
        for &ai in &stack {
            let ai = ai as usize;
            let contains = a_starts[ai] < dstart && dend < a_ends[ai];
            if contains && (axis == Axis::Descendant || a_levels[ai] + 1 == dlevel) {
                out.push((a_nodes[ai], dnode));
                if ticker.tick(1) {
                    return out;
                }
            }
        }
        dcur.advance();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;
    use lotusx_labeling::RegionLabel;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><author>Abiteboul</author>\
                     <author>Buneman</author><year>1999</year></book>\
               <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
               <article><title>TwigStack</title><author>Bruno</author></article>\
             </bib>",
        )
        .unwrap()
    }

    fn entry(node: u32, start: u32, end: u32, level: u16) -> ElementEntry {
        ElementEntry {
            node: NodeId::from_index(node as usize),
            region: RegionLabel::new(start, end, level),
        }
    }

    /// The pre-columnar element-by-element merge, kept as the oracle the
    /// galloping join is checked against.
    fn stack_tree_join_scalar(
        ancestors: &[ElementEntry],
        descendants: &[ElementEntry],
        axis: Axis,
    ) -> Vec<(NodeId, NodeId)> {
        let mut out = Vec::new();
        let mut stack: Vec<ElementEntry> = Vec::new();
        let mut ai = 0usize;
        for d in descendants {
            while ai < ancestors.len() && ancestors[ai].region.start < d.region.start {
                let a = ancestors[ai];
                while let Some(top) = stack.last() {
                    if top.region.end < a.region.start {
                        stack.pop();
                    } else {
                        break;
                    }
                }
                stack.push(a);
                ai += 1;
            }
            while let Some(top) = stack.last() {
                if top.region.end < d.region.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            for a in &stack {
                if a.region.is_ancestor_of(&d.region)
                    && (axis == Axis::Descendant || a.region.level + 1 == d.region.level)
                {
                    out.push((a.node, d.node));
                }
            }
        }
        out
    }

    #[test]
    fn stack_tree_join_ad_pairs() {
        // a1(1,10) contains d1(2,3), a2(4,9) inside a1 contains d2(5,6).
        let ancestors = vec![entry(1, 1, 10, 1), entry(2, 4, 9, 2)];
        let descendants = vec![entry(3, 2, 3, 2), entry(4, 5, 6, 3)];
        let pairs = stack_tree_join(&ancestors, &descendants, Axis::Descendant);
        assert_eq!(pairs.len(), 3); // (a1,d1), (a1,d2), (a2,d2)
    }

    #[test]
    fn stack_tree_join_pc_filters_levels() {
        let ancestors = vec![entry(1, 1, 10, 1), entry(2, 4, 9, 2)];
        let descendants = vec![entry(3, 2, 3, 2), entry(4, 5, 6, 3)];
        let pairs = stack_tree_join(&ancestors, &descendants, Axis::Child);
        assert_eq!(
            pairs,
            vec![
                (NodeId::from_index(1), NodeId::from_index(3)),
                (NodeId::from_index(2), NodeId::from_index(4)),
            ]
        );
    }

    #[test]
    fn stack_tree_join_disjoint_inputs() {
        let ancestors = vec![entry(1, 1, 2, 1)];
        let descendants = vec![entry(2, 3, 4, 1)];
        assert!(stack_tree_join(&ancestors, &descendants, Axis::Descendant).is_empty());
    }

    #[test]
    fn galloping_join_matches_scalar_join_on_self_join_and_gaps() {
        // A shape exercising every skip path: dead ancestors (early
        // siblings), descendant gaps (runs with no live ancestor), and a
        // self-join (identical streams) where starts collide.
        let stream = vec![
            entry(1, 1, 4, 1),
            entry(2, 2, 3, 2),
            entry(3, 5, 6, 1),
            entry(4, 7, 20, 1),
            entry(5, 8, 15, 2),
            entry(6, 9, 10, 3),
            entry(7, 16, 17, 2),
            entry(8, 21, 22, 1),
        ];
        let sparse = vec![entry(9, 9, 10, 3), entry(10, 21, 22, 1)];
        for axis in [Axis::Descendant, Axis::Child] {
            for (a, d) in [(&stream, &stream), (&stream, &sparse), (&sparse, &stream)] {
                let mut expect = stack_tree_join_scalar(a, d, axis);
                let mut got = stack_tree_join(a, d, axis);
                expect.sort();
                got.sort();
                assert_eq!(got, expect, "axis {axis:?}");
            }
        }
    }

    #[test]
    fn agrees_with_naive_on_paths_and_twigs() {
        let idx = idx();
        for q in [
            "//author",
            "//book/title",
            "//bib//author",
            "//book[title][author]/year",
            "//book[year >= 2000]/title",
            "//*[title][author]",
            "/bib/book/author",
        ] {
            let pattern = parse_query(q).unwrap();
            let a = naive::evaluate(&idx, &pattern);
            let b = evaluate(&idx, &pattern);
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn agrees_with_naive_on_recursive_structure() {
        let idx = IndexedDocument::from_str("<s><s><t/><s><t/></s></s><t/></s>").unwrap();
        for q in ["//s//t", "//s/t", "//s[s]/t", "//s//s//t"] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                naive::evaluate(&idx, &pattern),
                evaluate(&idx, &pattern),
                "query {q}"
            );
        }
    }
}
