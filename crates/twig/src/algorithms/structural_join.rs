//! Binary structural-join baseline.
//!
//! The pre-holistic decomposition: every query edge becomes one stack-tree
//! structural join (Al-Khalifa et al., ICDE 2002) over the two nodes'
//! sorted streams, producing an explicit `(ancestor, descendant)` pair list
//! per edge. Full matches are then stitched together by hash-joining the
//! pair lists along the twig. The per-edge pair lists are the
//! characteristic cost of this approach — they can dwarf the final result,
//! which is precisely what holistic joins avoid.

use crate::matcher::{filtered_stream, TwigMatch};
use crate::pattern::{Axis, QNodeId, TwigPattern};
use lotusx_guard::{QueryGuard, Ticker};
use lotusx_index::ElementEntry;
use lotusx_index::IndexedDocument;
use lotusx_xml::NodeId;
use std::collections::HashMap;

/// Evaluates `pattern` with one binary structural join per edge.
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, &QueryGuard::unlimited())
}

/// [`evaluate`] under a budget. The explicit per-edge pair lists are
/// this algorithm's blow-up site, so the join charges one node visit
/// per pair emitted; on trip later edges get incomplete (possibly
/// empty) pair lists and the stitch stops early — every stitched match
/// still satisfies all its edges, so partial output is valid.
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    // Streams per query node.
    let streams: Vec<Vec<ElementEntry>> = pattern
        .node_ids()
        .map(|q| filtered_stream(idx, pattern, q))
        .collect();
    let mut ticker = guard.ticker();

    // One pair list per non-root query node (its edge to the parent),
    // keyed by the ancestor binding.
    let mut edge_pairs: Vec<HashMap<NodeId, Vec<NodeId>>> = vec![HashMap::new(); pattern.len()];
    for q in pattern.node_ids() {
        let node = pattern.node(q);
        let Some(parent) = node.parent else { continue };
        if ticker.stopped() {
            // A missing pair list only removes matches, never invents
            // them: the stitch treats it as "no descendants".
            break;
        }
        let pairs = stack_tree_join_ticked(
            &streams[parent.index()],
            &streams[q.index()],
            node.axis,
            &mut ticker,
        );
        let map = &mut edge_pairs[q.index()];
        for (anc, desc) in pairs {
            map.entry(anc).or_default().push(desc);
        }
    }

    // Stitch: enumerate root candidates, then expand edge pair lists.
    let mut out = Vec::new();
    let mut bindings = vec![NodeId::DOCUMENT; pattern.len()];
    for entry in &streams[pattern.root().index()] {
        if ticker.tick(1) {
            break;
        }
        bindings[pattern.root().index()] = entry.node;
        stitch(
            pattern,
            &edge_pairs,
            pattern.root(),
            &mut bindings,
            &mut out,
        );
    }
    out.sort();
    out.dedup();
    out
}

/// Expands the children of query node `q` using the per-edge pair lists.
fn stitch(
    pattern: &TwigPattern,
    edge_pairs: &[HashMap<NodeId, Vec<NodeId>>],
    q: QNodeId,
    bindings: &mut Vec<NodeId>,
    out: &mut Vec<TwigMatch>,
) {
    let children = pattern.node(q).children.clone();
    stitch_children(pattern, edge_pairs, q, &children, 0, bindings, out);
}

fn stitch_children(
    pattern: &TwigPattern,
    edge_pairs: &[HashMap<NodeId, Vec<NodeId>>],
    q: QNodeId,
    children: &[QNodeId],
    at: usize,
    bindings: &mut Vec<NodeId>,
    out: &mut Vec<TwigMatch>,
) {
    if at == children.len() {
        out.push(TwigMatch {
            bindings: bindings.clone(),
        });
        return;
    }
    let qchild = children[at];
    let anc = bindings[q.index()];
    let Some(descendants) = edge_pairs[qchild.index()].get(&anc) else {
        return;
    };
    for &desc in descendants {
        bindings[qchild.index()] = desc;
        let mut sub = Vec::new();
        stitch(pattern, edge_pairs, qchild, bindings, &mut sub);
        for m in sub {
            *bindings = m.bindings;
            stitch_children(pattern, edge_pairs, q, children, at + 1, bindings, out);
        }
    }
}

/// The stack-tree structural join: all `(a, d)` with `a` from `ancestors`,
/// `d` from `descendants`, and `a` an ancestor (or parent, per `axis`) of
/// `d`. Both inputs must be in document order; output cost is
/// `O(|A| + |D| + |result|)`.
pub fn stack_tree_join(
    ancestors: &[ElementEntry],
    descendants: &[ElementEntry],
    axis: Axis,
) -> Vec<(NodeId, NodeId)> {
    let mut ticker = QueryGuard::unlimited().ticker();
    stack_tree_join_ticked(ancestors, descendants, axis, &mut ticker)
}

/// [`stack_tree_join`] charging one node visit per descendant consumed
/// and per pair emitted; on trip the output is a truncated (but real)
/// pair list.
fn stack_tree_join_ticked(
    ancestors: &[ElementEntry],
    descendants: &[ElementEntry],
    axis: Axis,
    ticker: &mut Ticker,
) -> Vec<(NodeId, NodeId)> {
    let mut out = Vec::new();
    let mut stack: Vec<ElementEntry> = Vec::new();
    let mut ai = 0usize;
    for d in descendants {
        if ticker.tick(1) {
            break;
        }
        // Push every ancestor that starts before d does.
        while ai < ancestors.len() && ancestors[ai].region.start < d.region.start {
            let a = ancestors[ai];
            // Pop finished ancestors first.
            while let Some(top) = stack.last() {
                if top.region.end < a.region.start {
                    stack.pop();
                } else {
                    break;
                }
            }
            stack.push(a);
            ai += 1;
        }
        // Pop ancestors that ended before d starts.
        while let Some(top) = stack.last() {
            if top.region.end < d.region.start {
                stack.pop();
            } else {
                break;
            }
        }
        // Every remaining stack entry contains d.
        for a in &stack {
            if a.region.is_ancestor_of(&d.region)
                && (axis == Axis::Descendant || a.region.level + 1 == d.region.level)
            {
                out.push((a.node, d.node));
                if ticker.tick(1) {
                    return out;
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;
    use lotusx_labeling::RegionLabel;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><author>Abiteboul</author>\
                     <author>Buneman</author><year>1999</year></book>\
               <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
               <article><title>TwigStack</title><author>Bruno</author></article>\
             </bib>",
        )
        .unwrap()
    }

    fn entry(node: u32, start: u32, end: u32, level: u16) -> ElementEntry {
        ElementEntry {
            node: NodeId::from_index(node as usize),
            region: RegionLabel::new(start, end, level),
        }
    }

    #[test]
    fn stack_tree_join_ad_pairs() {
        // a1(1,10) contains d1(2,3), a2(4,9) inside a1 contains d2(5,6).
        let ancestors = vec![entry(1, 1, 10, 1), entry(2, 4, 9, 2)];
        let descendants = vec![entry(3, 2, 3, 2), entry(4, 5, 6, 3)];
        let pairs = stack_tree_join(&ancestors, &descendants, Axis::Descendant);
        assert_eq!(pairs.len(), 3); // (a1,d1), (a1,d2), (a2,d2)
    }

    #[test]
    fn stack_tree_join_pc_filters_levels() {
        let ancestors = vec![entry(1, 1, 10, 1), entry(2, 4, 9, 2)];
        let descendants = vec![entry(3, 2, 3, 2), entry(4, 5, 6, 3)];
        let pairs = stack_tree_join(&ancestors, &descendants, Axis::Child);
        assert_eq!(
            pairs,
            vec![
                (NodeId::from_index(1), NodeId::from_index(3)),
                (NodeId::from_index(2), NodeId::from_index(4)),
            ]
        );
    }

    #[test]
    fn stack_tree_join_disjoint_inputs() {
        let ancestors = vec![entry(1, 1, 2, 1)];
        let descendants = vec![entry(2, 3, 4, 1)];
        assert!(stack_tree_join(&ancestors, &descendants, Axis::Descendant).is_empty());
    }

    #[test]
    fn agrees_with_naive_on_paths_and_twigs() {
        let idx = idx();
        for q in [
            "//author",
            "//book/title",
            "//bib//author",
            "//book[title][author]/year",
            "//book[year >= 2000]/title",
            "//*[title][author]",
            "/bib/book/author",
        ] {
            let pattern = parse_query(q).unwrap();
            let a = naive::evaluate(&idx, &pattern);
            let b = evaluate(&idx, &pattern);
            assert_eq!(a, b, "query {q}");
        }
    }

    #[test]
    fn agrees_with_naive_on_recursive_structure() {
        let idx = IndexedDocument::from_str("<s><s><t/><s><t/></s></s><t/></s>").unwrap();
        for q in ["//s//t", "//s/t", "//s[s]/t", "//s//s//t"] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                naive::evaluate(&idx, &pattern),
                evaluate(&idx, &pattern),
                "query {q}"
            );
        }
    }
}
