//! PathStack (Bruno, Koudas & Srivastava, SIGMOD 2002): the holistic
//! algorithm for *path* queries.
//!
//! One chained stack per query node; the element with the smallest region
//! start across all streams is processed next; path solutions are emitted
//! whenever a leaf element is pushed. Worst-case I/O and CPU linear in
//! input + output for ancestor-descendant paths.

use super::holistic_common::{clean_stack, expand_solutions, StackEntry};
use crate::matcher::{merge_path_solutions_guarded, node_columns, NodeColumns, TwigMatch};
use crate::pattern::TwigPattern;
use lotusx_guard::QueryGuard;
use lotusx_index::{ColumnCursor, IndexedDocument};

/// Evaluates a **path** pattern holistically.
///
/// # Panics
/// Panics if `pattern` branches; callers route twigs to TwigStack (the
/// [`crate::exec`] facade does this automatically).
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, &QueryGuard::unlimited())
}

/// [`evaluate`] under a budget: one node visit per element processed;
/// on trip the scan stops and the solutions emitted so far are merged.
///
/// # Panics
/// Panics if `pattern` branches (see [`evaluate`]).
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    assert!(
        pattern.is_path(),
        "PathStack evaluates path queries; use TwigStack for twigs"
    );
    let qpath = pattern
        .root_to_leaf_paths()
        .into_iter()
        .next()
        .expect("a pattern always has one leaf");
    let leaf = *qpath.last().expect("non-empty path");

    // Columnar per-node streams: index-resident borrows where possible,
    // owned transposes of the filtered streams otherwise.
    let columns: Vec<NodeColumns<'_>> = pattern
        .node_ids()
        .map(|q| node_columns(idx, pattern, q, false))
        .collect();
    let mut streams: Vec<ColumnCursor<'_>> = columns.iter().map(|c| c.view().cursor()).collect();
    let mut stacks: Vec<Vec<StackEntry>> = vec![Vec::new(); pattern.len()];
    let mut solutions = Vec::new();
    let mut ticker = guard.ticker();

    // Process elements in global document order until the leaf stream ends:
    // once it does, no further solutions can be emitted.
    while !streams[leaf.index()].is_exhausted() {
        if ticker.tick(1) {
            break;
        }
        // qmin: the non-exhausted stream with the smallest next start
        // (exhausted cursors report u32::MAX and lose the comparison).
        let qmin = qpath
            .iter()
            .copied()
            .min_by_key(|q| streams[q.index()].head_start())
            .expect("leaf stream is non-exhausted");
        let entry = streams[qmin.index()].head().expect("non-exhausted");

        // Clean every stack against the element about to be processed.
        for q in &qpath {
            clean_stack(&mut stacks[q.index()], entry.region.start);
        }

        let pos = qpath.iter().position(|q| *q == qmin).expect("on path");
        let parent_nonempty = pos == 0 || !stacks[qpath[pos - 1].index()].is_empty();
        if parent_nonempty {
            let parent_top = if pos == 0 {
                0
            } else {
                stacks[qpath[pos - 1].index()].len()
            };
            stacks[qmin.index()].push(StackEntry { entry, parent_top });
            if qmin == leaf {
                solutions.extend(expand_solutions(
                    pattern, &qpath, &stacks, entry, parent_top,
                ));
                stacks[qmin.index()].pop();
            }
        }
        streams[qmin.index()].advance();
    }

    merge_path_solutions_guarded(pattern, &[qpath], &[solutions], guard)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><author><name>Serge</name></author>\
                     <year>1999</year></book>\
               <book><title>XML Handbook</title><author><name>Charles</name></author>\
                     <year>2003</year></book>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn agrees_with_naive_on_path_queries() {
        let idx = idx();
        for q in [
            "//book",
            "//book/title",
            "//bib//name",
            "//book/author/name",
            "//book//name",
            "/bib/book/year",
            "//book[. ~ \"\"]/title",
        ] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                naive::evaluate(&idx, &pattern),
                evaluate(&idx, &pattern),
                "query {q}"
            );
        }
    }

    #[test]
    fn agrees_with_naive_on_recursive_documents() {
        let idx =
            IndexedDocument::from_str("<s><s><t>1</t><s><t>2</t></s></s><t>3</t></s>").unwrap();
        for q in ["//s//t", "//s/t", "//s/s/t", "//s//s//t", "//s/s//t"] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                naive::evaluate(&idx, &pattern),
                evaluate(&idx, &pattern),
                "query {q}"
            );
        }
    }

    #[test]
    fn empty_result_when_tag_absent() {
        let idx = idx();
        let pattern = parse_query("//book/publisher").unwrap();
        assert!(evaluate(&idx, &pattern).is_empty());
    }

    #[test]
    #[should_panic(expected = "PathStack evaluates path queries")]
    fn rejects_branching_patterns() {
        let idx = idx();
        let pattern = parse_query("//book[title][year]").unwrap();
        evaluate(&idx, &pattern);
    }

    #[test]
    fn predicates_flow_through_streams() {
        let idx = idx();
        let pattern = parse_query("//book[year >= 2000]").unwrap();
        // This is a twig (book + year); use a pure path with predicate:
        let pattern2 = parse_query(r#"//book/title[. ~ "xml"]"#).unwrap();
        assert_eq!(evaluate(&idx, &pattern2).len(), 1);
        let _ = pattern;
    }
}
