//! TJFast (Lu, Ling, Chan & Chen, VLDB 2005): twig matching from *leaf
//! streams only*, using extended Dewey labels.
//!
//! For every leaf query node, the algorithm scans just that node's element
//! stream. Each element's extended Dewey label decodes (via the tag FST)
//! into its full root-to-node tag path, so every internal query node of the
//! root-to-leaf query path can be matched against label *prefixes* without
//! ever opening the internal nodes' streams — the defining advantage over
//! TwigStack, which scans a stream per query node. Per-leaf path solutions
//! are merged exactly as in TwigStack.
//!
//! Internal-node value predicates (which a pure label scan cannot see) are
//! verified on the merged matches as a final filter.

use crate::matcher::{
    match_is_valid, merge_path_solutions_guarded, node_columns, PathSolution, TwigMatch,
};
use crate::pattern::{Axis, NodeTest, QNodeId, TwigPattern};
use lotusx_guard::QueryGuard;
use lotusx_index::IndexedDocument;
use lotusx_xml::{NodeId, Symbol};

/// Evaluates any twig pattern scanning only its leaf streams.
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, &QueryGuard::unlimited())
}

/// [`evaluate`] under a budget: one node visit per leaf-stream element
/// decoded; on trip the remaining stream suffixes are skipped and the
/// solutions found so far are merged (and post-verified as usual, so
/// partial output is valid).
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let paths = pattern.root_to_leaf_paths();
    let mut ticker = guard.ticker();
    let mut per_leaf: Vec<Vec<PathSolution>> = Vec::with_capacity(paths.len());
    for qpath in &paths {
        let leaf = *qpath.last().expect("non-empty path");
        let mut solutions = Vec::new();
        // Only the node-id column is touched: the label decode supplies
        // everything else, so the region columns stay cold in cache.
        let columns = node_columns(idx, pattern, leaf, false);
        for &node in columns.view().nodes() {
            if ticker.tick(1) {
                break;
            }
            solutions.extend(match_leaf_element(idx, pattern, qpath, node));
        }
        per_leaf.push(solutions);
    }
    let merged = merge_path_solutions_guarded(pattern, &paths, &per_leaf, guard);
    // Internal predicates were invisible to the label scan; verify now.
    let needs_verify = pattern
        .node_ids()
        .any(|q| !pattern.node(q).children.is_empty() && pattern.node(q).predicate.is_some());
    if needs_verify {
        merged
            .into_iter()
            .filter(|m| match_is_valid(idx, pattern, m))
            .collect()
    } else {
        merged
    }
}

/// All assignments of the query path onto the ancestor chain of one leaf
/// element, derived from its decoded tag path.
fn match_leaf_element(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    qpath: &[QNodeId],
    leaf_element: NodeId,
) -> Vec<PathSolution> {
    let labels = idx.labels();
    let tag_path: Vec<Symbol> = labels
        .extended(leaf_element)
        .tag_path(labels.fst())
        .expect("labels derived from this document");
    // Ancestor chain by depth: ancestors[d] is the element at depth d+1.
    let mut chain: Vec<NodeId> = idx.document().ancestors(leaf_element).collect();
    chain.reverse();
    chain.push(leaf_element);
    debug_assert_eq!(chain.len(), tag_path.len());

    // Dynamic programming over (query path position, depth): qpath[i] can
    // be assigned to depth d (1-based index d-1 in `chain`) iff the node
    // test matches tag_path[d-1] and the axis from qpath[i-1] is satisfied
    // by some valid assignment of the prefix.
    let symbols = idx.document().symbols();
    let test_matches = |q: QNodeId, depth_idx: usize| -> bool {
        match &pattern.node(q).test {
            NodeTest::Wildcard => true,
            NodeTest::Tag(name) => symbols
                .get(name)
                .map(|sym| tag_path[depth_idx] == sym)
                .unwrap_or(false),
        }
    };

    let k = qpath.len();
    let n = tag_path.len();
    let mut out = Vec::new();
    if n < k {
        return out;
    }
    // Backtracking enumeration (paths are short).
    let mut assignment: Vec<usize> = Vec::with_capacity(k);
    enumerate(
        pattern,
        qpath,
        &test_matches,
        k,
        n,
        0,
        &mut assignment,
        &mut out,
        &chain,
    );
    // The leaf must be the element itself: keep only assignments ending at
    // the last depth.
    out.retain(|sol| sol.nodes.last() == Some(&leaf_element));
    out
}

#[allow(clippy::too_many_arguments)]
fn enumerate(
    pattern: &TwigPattern,
    qpath: &[QNodeId],
    test_matches: &dyn Fn(QNodeId, usize) -> bool,
    k: usize,
    n: usize,
    pos: usize,
    assignment: &mut Vec<usize>,
    out: &mut Vec<PathSolution>,
    chain: &[NodeId],
) {
    if pos == k {
        out.push(PathSolution {
            nodes: assignment.iter().map(|&d| chain[d]).collect(),
        });
        return;
    }
    let q = qpath[pos];
    let axis = pattern.node(q).axis;
    let candidates: Vec<usize> = if pos == 0 {
        match axis {
            Axis::Child => vec![0],
            Axis::Descendant => (0..n).collect(),
        }
    } else {
        let prev = assignment[pos - 1];
        match axis {
            Axis::Child => vec![prev + 1],
            Axis::Descendant => (prev + 1..n).collect(),
        }
    };
    for d in candidates {
        if d >= n || !test_matches(q, d) {
            continue;
        }
        // Remaining query nodes must fit below depth d.
        if n - 1 - d < k - 1 - pos {
            continue;
        }
        assignment.push(d);
        enumerate(
            pattern,
            qpath,
            test_matches,
            k,
            n,
            pos + 1,
            assignment,
            out,
            chain,
        );
        assignment.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><author>Abiteboul</author>\
                     <author>Buneman</author><year>1999</year></book>\
               <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
               <article><title>TwigStack</title><author>Bruno</author><year>2002</year></article>\
             </bib>",
        )
        .unwrap()
    }

    fn check(idx: &IndexedDocument, q: &str) {
        let pattern = parse_query(q).unwrap();
        assert_eq!(
            naive::evaluate(idx, &pattern),
            evaluate(idx, &pattern),
            "query {q}"
        );
    }

    #[test]
    fn agrees_with_naive_on_paths_and_twigs() {
        let idx = idx();
        for q in [
            "//author",
            "//book/title",
            "//bib//author",
            "//book[title][author]/year",
            "//book[year >= 2000]/title",
            "//*[title][author]",
            "/bib/book/author",
            "//bib/*/title",
        ] {
            check(&idx, q);
        }
    }

    #[test]
    fn agrees_with_naive_on_recursive_documents() {
        let idx = IndexedDocument::from_str(
            "<s><s><t>1</t><u>a</u><s><t>2</t></s></s><t>3</t><u>b</u></s>",
        )
        .unwrap();
        for q in [
            "//s//t",
            "//s/t",
            "//s[t][u]",
            "//s//s[t]",
            "//s[s/t]//u",
            "//s/s//t",
        ] {
            check(&idx, q);
        }
    }

    #[test]
    fn internal_predicate_is_verified() {
        // The branch node `book` carries its own value predicate — invisible
        // to a leaf-only scan, so the post-verification must handle it.
        let idx = IndexedDocument::from_str(
            "<bib><book>keyword<title>X</title></book><book><title>Y</title></book></bib>",
        )
        .unwrap();
        let pattern = parse_query(r#"//book[. ~ "keyword"]/title"#).unwrap();
        assert_eq!(evaluate(&idx, &pattern).len(), 1);
        check(&idx, r#"//book[. ~ "keyword"]/title"#);
    }

    #[test]
    fn wildcard_leaf_scans_all_elements() {
        let idx = idx();
        check(&idx, "//book/*");
    }

    #[test]
    fn absent_tags_yield_empty() {
        let idx = idx();
        let pattern = parse_query("//book/publisher").unwrap();
        assert!(evaluate(&idx, &pattern).is_empty());
    }
}
