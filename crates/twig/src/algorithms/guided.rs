//! Guided TwigStack: position-aware stream pruning.
//!
//! LotusX's position-awareness applied to execution: before the holistic
//! join runs, every query node's stream is intersected with the set of
//! DataGuide positions that can *structurally* participate in a match.
//! An `author` stream for `//article/author` then no longer contains the
//! authors of books and inproceedings — they are discarded by one O(1)
//! guide-id test per entry instead of surviving into the join.
//!
//! Admissible guide positions are computed in `O(|Q| · |G|)` by two
//! sweeps over the guide (children are created after their parents, so a
//! reverse index order is a bottom-up traversal):
//!
//! 1. **bottom-up satisfiability** — `sat[q][g]`: the subtree of the
//!    pattern rooted at `q` can be embedded at guide position `g`;
//! 2. **top-down admissibility** — `adm[q][g]`: additionally, `g` is
//!    reachable from an admissible position of `q`'s parent via the
//!    connecting axis.

use super::twigstack;
use crate::matcher::{filtered_stream, TwigMatch};
use crate::pattern::{Axis, NodeTest, QNodeId, TwigPattern};
use lotusx_guard::QueryGuard;
use lotusx_index::{DataGuide, ElementEntry, GuideNodeId, IndexedDocument};

/// Per-query-node admissible DataGuide positions.
pub struct GuideAdmissibility {
    /// `adm[q.index()][g.index()]`.
    adm: Vec<Vec<bool>>,
}

impl GuideAdmissibility {
    /// True if query node `q` may bind elements at guide position `g`.
    pub fn admits(&self, q: QNodeId, g: GuideNodeId) -> bool {
        self.adm[q.index()][g.index()]
    }

    /// Number of admissible positions for `q`.
    pub fn admissible_count(&self, q: QNodeId) -> usize {
        self.adm[q.index()].iter().filter(|b| **b).count()
    }
}

/// Computes the admissible guide positions for every query node.
pub fn admissibility(idx: &IndexedDocument, pattern: &TwigPattern) -> GuideAdmissibility {
    let guide = idx.guide();
    let symbols = idx.document().symbols();
    let n = guide.node_count();
    let nq = pattern.len();

    // Resolve node tests to symbols once; an unknown tag admits nothing.
    let tests: Vec<Option<Option<lotusx_xml::Symbol>>> = pattern
        .node_ids()
        .map(|q| match &pattern.node(q).test {
            NodeTest::Wildcard => Some(None),
            NodeTest::Tag(name) => symbols.get(name).map(Some),
        })
        .collect();

    // ---- bottom-up: sat[q][g] -------------------------------------
    let mut sat = vec![vec![false; n]; nq];
    // Query nodes are created parent-before-child, so reverse order is
    // bottom-up over the pattern.
    for q in pattern.node_ids().rev() {
        let node = pattern.node(q);
        let Some(test) = &tests[q.index()] else {
            continue; // unknown tag: sat stays all-false
        };
        // Helper arrays per child: does g have a satisfying child /
        // descendant for that child query node?
        let mut child_ok: Vec<Vec<bool>> = Vec::with_capacity(node.children.len());
        for &qc in &node.children {
            let ok = match pattern.node(qc).axis {
                Axis::Child => has_satisfying_child(guide, &sat[qc.index()]),
                Axis::Descendant => has_satisfying_descendant(guide, &sat[qc.index()]),
            };
            child_ok.push(ok);
        }
        for g_idx in 1..n {
            let g = guide_id(g_idx);
            let tag_ok = match test {
                None => true,
                Some(sym) => guide.tag(g) == Some(*sym),
            };
            sat[q.index()][g_idx] = tag_ok && child_ok.iter().all(|ok| ok[g_idx]);
        }
    }

    // ---- top-down: adm[q][g] ---------------------------------------
    let mut adm = vec![vec![false; n]; nq];
    let root = pattern.root();
    let root_axis = pattern.node(root).axis;
    for g_idx in 1..n {
        let g = guide_id(g_idx);
        let axis_ok = match root_axis {
            Axis::Child => guide.depth(g) == 1,
            Axis::Descendant => true,
        };
        adm[root.index()][g_idx] = axis_ok && sat[root.index()][g_idx];
    }
    for q in pattern.node_ids() {
        let node = pattern.node(q);
        let Some(parent) = node.parent else { continue };
        // Reachability from the parent's admissible set.
        let reachable = match node.axis {
            Axis::Child => parent_marked(guide, &adm[parent.index()]),
            Axis::Descendant => ancestor_marked(guide, &adm[parent.index()]),
        };
        for g_idx in 1..n {
            adm[q.index()][g_idx] = sat[q.index()][g_idx] && reachable[g_idx];
        }
    }

    GuideAdmissibility { adm }
}

fn guide_id(index: usize) -> GuideNodeId {
    GuideNodeId::from_index(index)
}

/// `out[g] = ∃ child c of g with set[c]`.
fn has_satisfying_child(guide: &DataGuide, set: &[bool]) -> Vec<bool> {
    let mut out = vec![false; set.len()];
    for (g_idx, slot) in out.iter_mut().enumerate() {
        let g = guide_id(g_idx);
        *slot = guide.children(g).iter().any(|(_, c)| set[c.index()]);
    }
    out
}

/// `out[g] = ∃ proper descendant d of g with set[d]` — one reverse sweep
/// (children have larger indexes than their parents).
fn has_satisfying_descendant(guide: &DataGuide, set: &[bool]) -> Vec<bool> {
    let mut out = vec![false; set.len()];
    for g_idx in (1..set.len()).rev() {
        let g = guide_id(g_idx);
        if let Some(parent) = guide.parent(g) {
            if set[g_idx] || out[g_idx] {
                out[parent.index()] = true;
            }
        }
    }
    out
}

/// `out[g] = parent of g is marked`.
fn parent_marked(guide: &DataGuide, marked: &[bool]) -> Vec<bool> {
    let mut out = vec![false; marked.len()];
    for (g_idx, slot) in out.iter_mut().enumerate().skip(1) {
        let g = guide_id(g_idx);
        if let Some(p) = guide.parent(g) {
            *slot = marked[p.index()];
        }
    }
    out
}

/// `out[g] = some proper ancestor of g is marked` — one forward sweep
/// (parents have smaller indexes).
fn ancestor_marked(guide: &DataGuide, marked: &[bool]) -> Vec<bool> {
    let mut out = vec![false; marked.len()];
    for g_idx in 1..marked.len() {
        let g = guide_id(g_idx);
        if let Some(p) = guide.parent(g) {
            out[g_idx] = marked[p.index()] || out[p.index()];
        }
    }
    out
}

/// The guide-pruned stream for one query node.
pub fn pruned_stream(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    q: QNodeId,
    adm: &GuideAdmissibility,
) -> Vec<ElementEntry> {
    filtered_stream(idx, pattern, q)
        .into_iter()
        .filter(|e| adm.admits(q, idx.guide_node(e.node)))
        .collect()
}

/// Evaluates the pattern with TwigStack over guide-pruned streams.
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, &QueryGuard::unlimited())
}

/// [`evaluate`] under a budget: the admissibility sweeps charge their
/// `O(|Q| · |G|)` cost up front, then the pruned join runs under the
/// same guard (see [`twigstack::evaluate_with_streams_guarded`]).
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let mut ticker = guard.ticker();
    let sweep_cost = (idx.guide().node_count() * pattern.len()) as u64;
    if ticker.tick(sweep_cost) {
        return Vec::new();
    }
    let adm = admissibility(idx, pattern);
    // Fast reject: a query node with no admissible position cannot match.
    if pattern.node_ids().any(|q| adm.admissible_count(q) == 0) {
        return Vec::new();
    }
    let streams: Vec<Vec<ElementEntry>> = pattern
        .node_ids()
        .map(|q| pruned_stream(idx, pattern, q, &adm))
        .collect();
    twigstack::evaluate_with_streams_guarded(idx, pattern, streams, guard)
}

/// Total stream entries before and after pruning (reported by E9d).
pub fn pruning_stats(idx: &IndexedDocument, pattern: &TwigPattern) -> (usize, usize) {
    let adm = admissibility(idx, pattern);
    let mut before = 0usize;
    let mut after = 0usize;
    for q in pattern.node_ids() {
        let full = filtered_stream(idx, pattern, q);
        before += full.len();
        after += full
            .iter()
            .filter(|e| adm.admits(q, idx.guide_node(e.node)))
            .count();
    }
    (before, after)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<dblp>\
               <article><author>a1</author><title>t1</title></article>\
               <article><author>a2</author><title>t2</title></article>\
               <book><author>a3</author><publisher>p1</publisher></book>\
               <inproceedings><author>a4</author><booktitle>b1</booktitle></inproceedings>\
             </dblp>",
        )
        .unwrap()
    }

    #[test]
    fn pruning_removes_impossible_context_entries() {
        let idx = idx();
        let pattern = parse_query("//article/author").unwrap();
        let (before, after) = pruning_stats(&idx, &pattern);
        // author stream has 4 entries; only 2 sit under articles.
        assert_eq!(before, 2 + 4);
        assert_eq!(after, 2 + 2);
    }

    #[test]
    fn agrees_with_naive_on_twigs() {
        let idx = idx();
        for q in [
            "//article/author",
            "//dblp//author",
            "//article[author][title]",
            "//book[publisher]/author",
            "//*[author]",
            "/dblp/article/title",
            "//article/publisher",
        ] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                evaluate(&idx, &pattern),
                naive::evaluate(&idx, &pattern),
                "query {q}"
            );
        }
    }

    #[test]
    fn unknown_tags_short_circuit() {
        let idx = idx();
        let pattern = parse_query("//nosuch[author]").unwrap();
        assert!(evaluate(&idx, &pattern).is_empty());
    }

    #[test]
    fn agrees_on_recursive_structures() {
        let idx = IndexedDocument::from_str(
            "<s><s><t>1</t><u>a</u><s><t>2</t></s></s><t>3</t><u>b</u></s>",
        )
        .unwrap();
        for q in ["//s[t][u]", "//s//s[t]", "//s/s/t", "//s[s/t]//u"] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                evaluate(&idx, &pattern),
                naive::evaluate(&idx, &pattern),
                "query {q}"
            );
        }
    }

    #[test]
    fn admissibility_counts_are_sane() {
        let idx = idx();
        let pattern = parse_query("//article/author").unwrap();
        let adm = admissibility(&idx, &pattern);
        // article can only sit at one guide position; its author likewise.
        assert_eq!(adm.admissible_count(pattern.root()), 1);
        let author = pattern.node(pattern.root()).children[0];
        assert_eq!(adm.admissible_count(author), 1);
    }
}
