//! Stack machinery shared by the holistic algorithms (PathStack/TwigStack).

use crate::matcher::PathSolution;
use crate::pattern::{Axis, QNodeId, TwigPattern};
use lotusx_index::ElementEntry;

/// One entry on a query node's stack: an element plus the height of the
/// parent query node's stack at push time. By the nesting invariant, every
/// parent-stack entry below that height is an ancestor of this element.
#[derive(Clone, Copy, Debug)]
pub(crate) struct StackEntry {
    pub entry: ElementEntry,
    pub parent_top: usize,
}

/// Pops entries whose region ends before `next_start` — they can no longer
/// be ancestors of anything still ahead in any stream.
pub(crate) fn clean_stack(stack: &mut Vec<StackEntry>, next_start: u32) {
    while let Some(top) = stack.last() {
        if top.entry.region.end < next_start {
            stack.pop();
        } else {
            break;
        }
    }
}

/// Enumerates all root-to-leaf path solutions ending at a just-pushed leaf
/// element.
///
/// `qpath` is the root-to-leaf query path; `stacks[q.index()]` the per-node
/// stacks; the leaf element is `leaf` with `leaf_parent_top` parent entries
/// visible. Parent-child edges are verified by level here (streams were
/// processed under ancestor-descendant semantics).
pub(crate) fn expand_solutions(
    pattern: &TwigPattern,
    qpath: &[QNodeId],
    stacks: &[Vec<StackEntry>],
    leaf: ElementEntry,
    leaf_parent_top: usize,
) -> Vec<PathSolution> {
    let mut out = Vec::new();
    // suffix holds bindings from position `depth` (exclusive) down to the
    // leaf, built leaf-upwards.
    let leaf_pos = qpath.len() - 1;
    let mut suffix = vec![leaf.node];
    recurse(
        pattern,
        qpath,
        stacks,
        leaf_pos,
        leaf,
        leaf_parent_top,
        &mut suffix,
        &mut out,
    );
    out
}

#[allow(clippy::too_many_arguments)]
fn recurse(
    pattern: &TwigPattern,
    qpath: &[QNodeId],
    stacks: &[Vec<StackEntry>],
    pos: usize,
    element: ElementEntry,
    parent_top: usize,
    suffix: &mut Vec<lotusx_xml::NodeId>,
    out: &mut Vec<PathSolution>,
) {
    if pos == 0 {
        let mut nodes = suffix.clone();
        nodes.reverse();
        out.push(PathSolution { nodes });
        return;
    }
    let q = qpath[pos];
    let axis = pattern.node(q).axis;
    let parent_q = qpath[pos - 1];
    let parent_stack = &stacks[parent_q.index()];
    for candidate in parent_stack.iter().take(parent_top).copied() {
        let ok = match axis {
            Axis::Descendant => candidate.entry.region.is_ancestor_of(&element.region),
            Axis::Child => candidate.entry.region.is_parent_of(&element.region),
        };
        if !ok {
            continue;
        }
        suffix.push(candidate.entry.node);
        recurse(
            pattern,
            qpath,
            stacks,
            pos - 1,
            candidate.entry,
            candidate.parent_top,
            suffix,
            out,
        );
        suffix.pop();
    }
}
