//! TwigStack (Bruno, Koudas & Srivastava, SIGMOD 2002): the holistic twig
//! join.
//!
//! `get_next` only lets an element onto the stacks when it (recursively)
//! has matching descendants for the whole query subtree, which makes the
//! algorithm worst-case optimal for ancestor-descendant-only twigs. Path
//! solutions are emitted per leaf and merged into full matches at the end.
//! Parent-child edges are processed under ancestor-descendant semantics
//! and verified during path-solution expansion, the standard (correct but
//! sub-optimal) treatment.
//!
//! Two engineering additions over the paper's pseudo-code:
//!
//! * a query subtree whose leaf streams are all exhausted is marked *dead*
//!   and skipped by `get_next`. Dead subtrees can never contribute new
//!   path solutions (a future element cannot be the ancestor of an
//!   already-consumed one), and skipping them prevents the stall the
//!   textbook pseudo-code hits when one branch drains before the others;
//! * the streams are the index's struct-of-arrays region columns
//!   ([`lotusx_index::TagColumns`]), and `get_next`'s skip loop — "advance
//!   q until its head's subtree reaches the furthest child head" — is a
//!   single O(log n) seek over the per-stream end-maxima tree instead of
//!   an element-by-element walk. On low-selectivity streams this skips
//!   millions of elements per probe. [`evaluate_entrywise_guarded`] keeps
//!   the pre-columnar walk alive as the reference the benchmarks compare
//!   against.

use super::holistic_common::{clean_stack, expand_solutions, StackEntry};
use crate::matcher::{
    filtered_stream, merge_path_solutions_guarded, node_columns, NodeColumns, PathSolution,
    TwigMatch,
};
use crate::pattern::{QNodeId, TwigPattern};
use lotusx_guard::{QueryGuard, Ticker};
use lotusx_index::{
    ColumnCursor, ColumnView, ElementEntry, IndexedDocument, OwnedColumns, TagStream,
};

/// Evaluates any twig pattern holistically.
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, &QueryGuard::unlimited())
}

/// [`evaluate`] under a budget.
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let columns: Vec<NodeColumns<'_>> = pattern
        .node_ids()
        .map(|q| node_columns(idx, pattern, q, false))
        .collect();
    let views: Vec<ColumnView<'_>> = columns.iter().map(|c| c.view()).collect();
    run_guarded(pattern, &views, guard)
}

/// Evaluates with caller-provided per-node streams (document-ordered).
/// Used by the guided variant, which prunes streams first.
pub fn evaluate_with_streams(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    stream_data: Vec<Vec<ElementEntry>>,
) -> Vec<TwigMatch> {
    evaluate_with_streams_guarded(idx, pattern, stream_data, &QueryGuard::unlimited())
}

/// [`evaluate_with_streams`] under a budget: the main loop charges one
/// node visit per element processed and the `getNext` skip seek charges
/// one per element skipped, so truncation economics match the
/// element-by-element walk; on trip the scan stops and the path solutions
/// found so far are merged (each emitted solution is a verified
/// root-to-leaf chain, so partial output stays valid).
pub fn evaluate_with_streams_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    stream_data: Vec<Vec<ElementEntry>>,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let _ = idx;
    let owned: Vec<OwnedColumns> = stream_data
        .iter()
        .map(|s| OwnedColumns::from_entries_without_end_tree(s))
        .collect();
    let views: Vec<ColumnView<'_>> = owned.iter().map(|o| o.view()).collect();
    run_guarded(pattern, &views, guard)
}

fn run_guarded(
    pattern: &TwigPattern,
    views: &[ColumnView<'_>],
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let mut state = State {
        pattern,
        cursors: views.iter().map(|v| v.cursor()).collect(),
        stacks: vec![Vec::new(); pattern.len()],
        paths: pattern.root_to_leaf_paths(),
        solutions: vec![Vec::new(); pattern.len()],
        ticker: guard.ticker(),
    };

    while state.subtree_alive(pattern.root()) {
        if state.ticker.tick(1) {
            break;
        }
        let qact = state.get_next(pattern.root());
        let entry = match state.cursors[qact.index()].head() {
            Some(e) => e,
            // Defensive: an alive node always has a head; bail if not.
            None => break,
        };
        let parent = pattern.node(qact).parent;
        if let Some(p) = parent {
            clean_stack(&mut state.stacks[p.index()], entry.region.start);
        }
        let parent_ok = match parent {
            None => true,
            Some(p) => !state.stacks[p.index()].is_empty(),
        };
        if parent_ok {
            clean_stack(&mut state.stacks[qact.index()], entry.region.start);
            let parent_top = parent.map(|p| state.stacks[p.index()].len()).unwrap_or(0);
            state.stacks[qact.index()].push(StackEntry { entry, parent_top });
            if pattern.node(qact).children.is_empty() {
                let qpath = state
                    .paths
                    .iter()
                    .find(|p| *p.last().expect("non-empty") == qact)
                    .expect("every leaf has a path")
                    .clone();
                let sols = expand_solutions(pattern, &qpath, &state.stacks, entry, parent_top);
                state.solutions[qact.index()].extend(sols);
                state.stacks[qact.index()].pop();
            }
        }
        state.cursors[qact.index()].advance();
    }

    let per_leaf: Vec<Vec<PathSolution>> = state
        .paths
        .iter()
        .map(|p| state.solutions[p.last().expect("non-empty").index()].clone())
        .collect();
    merge_path_solutions_guarded(pattern, &state.paths, &per_leaf, guard)
}

struct State<'a, 'p> {
    pattern: &'p TwigPattern,
    cursors: Vec<ColumnCursor<'a>>,
    stacks: Vec<Vec<StackEntry>>,
    paths: Vec<Vec<QNodeId>>,
    /// Emitted path solutions, indexed by leaf query node.
    solutions: Vec<Vec<PathSolution>>,
    /// Budget checkpoint shared by the main loop and the skip seek.
    ticker: Ticker,
}

impl State<'_, '_> {
    /// Next start of a node's stream (`u32::MAX` once exhausted).
    fn next_l(&self, q: QNodeId) -> u32 {
        self.cursors[q.index()].head_start()
    }

    /// True while the subtree below `q` can still emit path solutions:
    /// at least one of its leaf streams has elements left.
    fn subtree_alive(&self, q: QNodeId) -> bool {
        let node = self.pattern.node(q);
        if node.children.is_empty() {
            return !self.cursors[q.index()].is_exhausted();
        }
        node.children.iter().any(|c| self.subtree_alive(*c))
    }

    /// The paper's `getNext`, restricted to alive subtrees.
    fn get_next(&mut self, q: QNodeId) -> QNodeId {
        let children: Vec<QNodeId> = self.pattern.node(q).children.clone();
        let alive: Vec<QNodeId> = children
            .iter()
            .copied()
            .filter(|c| self.subtree_alive(*c))
            .collect();
        if alive.is_empty() {
            // Leaf, or an interior node whose branches are all dead —
            // behaves like a leaf.
            return q;
        }
        for &qi in &alive {
            let ni = self.get_next(qi);
            if ni != qi {
                return ni;
            }
        }
        let nmin = alive
            .iter()
            .copied()
            .min_by_key(|c| self.next_l(*c))
            .expect("non-empty");
        let nmax_l = alive
            .iter()
            .map(|c| self.next_l(*c))
            .max()
            .expect("non-empty");
        // Skip q-elements that end before the furthest child element
        // starts: they cannot contain a full set of child matches. One
        // seek over the end-maxima tree replaces the element-by-element
        // walk; the budget is still charged per element skipped, so a
        // tripped query stops within the same work envelope.
        let skipped = self.cursors[q.index()].seek_end_at_least(nmax_l);
        if skipped > 0 {
            self.ticker.tick(skipped as u64);
        }
        if self.next_l(q) < self.next_l(nmin) {
            q
        } else {
            nmin
        }
    }
}

/// The pre-columnar TwigStack: identical logic over the array-of-structs
/// [`TagStream`]s, advancing element by element in the skip loop. Kept as
/// the measured baseline for the columnar engine (`join_bench` reports it
/// as `twigstack-entrywise`) and as an equivalence oracle in tests; not
/// reachable through [`crate::exec::Algorithm`].
pub fn evaluate_entrywise_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let stream_data: Vec<Vec<ElementEntry>> = pattern
        .node_ids()
        .map(|q| filtered_stream(idx, pattern, q))
        .collect();
    let mut state = EntrywiseState {
        pattern,
        streams: stream_data.iter().map(|s| TagStream::new(s)).collect(),
        stacks: vec![Vec::new(); pattern.len()],
        paths: pattern.root_to_leaf_paths(),
        solutions: vec![Vec::new(); pattern.len()],
        ticker: guard.ticker(),
    };

    while state.subtree_alive(pattern.root()) {
        if state.ticker.tick(1) {
            break;
        }
        let qact = state.get_next(pattern.root());
        let entry = match state.streams[qact.index()].head() {
            Some(e) => e,
            None => break,
        };
        let parent = pattern.node(qact).parent;
        if let Some(p) = parent {
            clean_stack(&mut state.stacks[p.index()], entry.region.start);
        }
        let parent_ok = match parent {
            None => true,
            Some(p) => !state.stacks[p.index()].is_empty(),
        };
        if parent_ok {
            clean_stack(&mut state.stacks[qact.index()], entry.region.start);
            let parent_top = parent.map(|p| state.stacks[p.index()].len()).unwrap_or(0);
            state.stacks[qact.index()].push(StackEntry { entry, parent_top });
            if pattern.node(qact).children.is_empty() {
                let qpath = state
                    .paths
                    .iter()
                    .find(|p| *p.last().expect("non-empty") == qact)
                    .expect("every leaf has a path")
                    .clone();
                let sols = expand_solutions(pattern, &qpath, &state.stacks, entry, parent_top);
                state.solutions[qact.index()].extend(sols);
                state.stacks[qact.index()].pop();
            }
        }
        state.streams[qact.index()].advance();
    }

    let per_leaf: Vec<Vec<PathSolution>> = state
        .paths
        .iter()
        .map(|p| state.solutions[p.last().expect("non-empty").index()].clone())
        .collect();
    merge_path_solutions_guarded(pattern, &state.paths, &per_leaf, guard)
}

struct EntrywiseState<'a> {
    pattern: &'a TwigPattern,
    streams: Vec<TagStream<'a>>,
    stacks: Vec<Vec<StackEntry>>,
    paths: Vec<Vec<QNodeId>>,
    solutions: Vec<Vec<PathSolution>>,
    ticker: Ticker,
}

impl EntrywiseState<'_> {
    fn next_l(&self, q: QNodeId) -> u32 {
        self.streams[q.index()]
            .head()
            .map(|e| e.region.start)
            .unwrap_or(u32::MAX)
    }

    fn next_r(&self, q: QNodeId) -> u32 {
        self.streams[q.index()]
            .head()
            .map(|e| e.region.end)
            .unwrap_or(u32::MAX)
    }

    fn subtree_alive(&self, q: QNodeId) -> bool {
        let node = self.pattern.node(q);
        if node.children.is_empty() {
            return !self.streams[q.index()].is_exhausted();
        }
        node.children.iter().any(|c| self.subtree_alive(*c))
    }

    fn get_next(&mut self, q: QNodeId) -> QNodeId {
        let children: Vec<QNodeId> = self.pattern.node(q).children.clone();
        let alive: Vec<QNodeId> = children
            .iter()
            .copied()
            .filter(|c| self.subtree_alive(*c))
            .collect();
        if alive.is_empty() {
            return q;
        }
        for &qi in &alive {
            let ni = self.get_next(qi);
            if ni != qi {
                return ni;
            }
        }
        let nmin = alive
            .iter()
            .copied()
            .min_by_key(|c| self.next_l(*c))
            .expect("non-empty");
        let nmax_l = alive
            .iter()
            .map(|c| self.next_l(*c))
            .max()
            .expect("non-empty");
        while self.next_r(q) < nmax_l {
            self.streams[q.index()].advance();
            if self.ticker.tick(1) {
                break;
            }
        }
        if self.next_l(q) < self.next_l(nmin) {
            q
        } else {
            nmin
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algorithms::naive;
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><author>Abiteboul</author>\
                     <author>Buneman</author><year>1999</year></book>\
               <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
               <article><title>TwigStack</title><author>Bruno</author><year>2002</year></article>\
             </bib>",
        )
        .unwrap()
    }

    fn check(idx: &IndexedDocument, q: &str) {
        let pattern = parse_query(q).unwrap();
        let reference = naive::evaluate(idx, &pattern);
        assert_eq!(reference, evaluate(idx, &pattern), "query {q}");
        assert_eq!(
            reference,
            evaluate_entrywise_guarded(idx, &pattern, &QueryGuard::unlimited()),
            "entrywise reference, query {q}"
        );
    }

    #[test]
    fn agrees_with_naive_on_twigs() {
        let idx = idx();
        for q in [
            "//book",
            "//book[title][author]",
            "//book[title][author]/year",
            "//bib[book][article]",
            "//book[year >= 2000]/title",
            "//*[title][author]",
            "//bib//book[author][title][year]",
            "/bib/book[author]",
        ] {
            check(&idx, q);
        }
    }

    #[test]
    fn agrees_with_naive_on_recursive_documents() {
        let idx = IndexedDocument::from_str(
            "<s><s><t>1</t><u>a</u><s><t>2</t></s></s><t>3</t><u>b</u></s>",
        )
        .unwrap();
        for q in [
            "//s[t][u]",
            "//s[s/t]//u",
            "//s[s][t]",
            "//s//s[t]",
            "//s[t]/s[t]",
        ] {
            check(&idx, q);
        }
    }

    #[test]
    fn drained_branch_does_not_stall_or_lose_solutions() {
        // x occurs once, early; b elements keep coming afterwards. The
        // a//x branch dies, yet //r[a//x][b] must still pair the old x
        // solution with the later b's.
        let idx =
            IndexedDocument::from_str("<r><a><x>1</x></a><b>1</b><b>2</b><b>3</b></r>").unwrap();
        check(&idx, "//r[a//x][b]");
        let pattern = parse_query("//r[a//x][b]").unwrap();
        assert_eq!(evaluate(&idx, &pattern).len(), 3);
    }

    #[test]
    fn cross_product_branches() {
        let idx = IndexedDocument::from_str(
            "<r><p><c1>1</c1><c1>2</c1><c2>x</c2><c2>y</c2><c2>z</c2></p></r>",
        )
        .unwrap();
        let pattern = parse_query("//p[c1][c2]").unwrap();
        assert_eq!(evaluate(&idx, &pattern).len(), 6);
        check(&idx, "//p[c1][c2]");
    }

    #[test]
    fn empty_streams_give_empty_results() {
        let idx = idx();
        let pattern = parse_query("//book[nosuch][author]").unwrap();
        assert!(evaluate(&idx, &pattern).is_empty());
    }

    #[test]
    fn single_node_pattern() {
        let idx = idx();
        let pattern = parse_query("//author").unwrap();
        assert_eq!(evaluate(&idx, &pattern).len(), 4);
    }

    #[test]
    fn columnar_and_entrywise_agree_on_deep_recursion() {
        // Heavily nested same-tag regions exercise the end-maxima seek
        // against the scalar skip walk.
        let mut xml = String::new();
        for _ in 0..30 {
            xml.push_str("<s><t>x</t>");
        }
        xml.push_str("<u>y</u>");
        for _ in 0..30 {
            xml.push_str("</s>");
        }
        let idx = IndexedDocument::from_str(&xml).unwrap();
        for q in ["//s[t][u]", "//s[s/t]//u", "//s//s[t]", "//s[t]/s[t]"] {
            let pattern = parse_query(q).unwrap();
            assert_eq!(
                evaluate(&idx, &pattern),
                evaluate_entrywise_guarded(&idx, &pattern, &QueryGuard::unlimited()),
                "query {q}"
            );
        }
    }
}
