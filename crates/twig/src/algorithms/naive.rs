//! Navigational baseline: top-down recursive matching over the tree.
//!
//! For every candidate binding of the query root, recursively enumerate
//! bindings of each child query node among the element's children (child
//! axis) or descendants (descendant axis), taking the cross product of the
//! per-child binding sets. Exponential in the worst case — exactly the
//! baseline the structural/holistic join literature improves on.

use crate::matcher::{filtered_stream, predicate_matches, TwigMatch};
use crate::pattern::{Axis, NodeTest, QNodeId, TwigPattern};
use lotusx_guard::{QueryGuard, Ticker};
use lotusx_index::IndexedDocument;
use lotusx_xml::NodeId;

/// Evaluates `pattern` navigationally, returning all full matches.
pub fn evaluate(idx: &IndexedDocument, pattern: &TwigPattern) -> Vec<TwigMatch> {
    evaluate_partitioned(idx, pattern, 1)
}

/// Evaluates `pattern` navigationally with the root candidate stream
/// partitioned across `threads` workers.
///
/// Each root binding expands independently of every other, so the stream
/// splits into contiguous chunks with no shared state. Chunk boundaries
/// balance estimated work, not item count: a root's expansion cost scales
/// with its subtree, whose size is exactly its region width, so workers
/// split on cumulative width and a few huge subtrees no longer serialize
/// behind one worker. The final global sort + dedup (which the serial
/// path performs anyway) makes the result identical for every thread
/// count and chunking.
pub fn evaluate_partitioned(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    threads: usize,
) -> Vec<TwigMatch> {
    evaluate_guarded(idx, pattern, threads, &QueryGuard::unlimited())
}

/// [`evaluate_partitioned`] under a budget. Every worker charges one
/// node visit per candidate binding it examines (amortized through a
/// per-chunk [`Ticker`]); on trip each worker finishes its in-flight
/// recursion step and stops expanding new root candidates. Only fully
/// bound assignments are ever emitted, so partial output is valid.
pub fn evaluate_guarded(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    threads: usize,
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    let roots = filtered_stream(idx, pattern, pattern.root());
    let weight = |e: &lotusx_index::ElementEntry| u64::from(e.region.end - e.region.start);
    let chunks = lotusx_par::par_chunks_weighted(&roots, threads, weight, |_, chunk| {
        let mut out = Vec::new();
        let mut bindings = vec![NodeId::DOCUMENT; pattern.len()];
        let mut ticker = guard.ticker();
        for entry in chunk {
            if ticker.tick(1) {
                break;
            }
            bindings[pattern.root().index()] = entry.node;
            extend(
                idx,
                pattern,
                pattern.root(),
                entry.node,
                &mut bindings,
                &mut out,
                &mut ticker,
            );
        }
        out
    });
    let mut out: Vec<TwigMatch> = chunks.into_iter().flatten().collect();
    out.sort();
    out.dedup();
    out
}

/// Recursively binds the children of query node `q` (already bound to
/// `element`), appending every completed assignment to `out`.
#[allow(clippy::too_many_arguments)]
fn extend(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    q: QNodeId,
    element: NodeId,
    bindings: &mut Vec<NodeId>,
    out: &mut Vec<TwigMatch>,
    ticker: &mut Ticker,
) {
    let children = &pattern.node(q).children;
    bind_children(idx, pattern, element, children, 0, bindings, out, ticker);
}

#[allow(clippy::too_many_arguments)]
fn bind_children(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    element: NodeId,
    children: &[QNodeId],
    at: usize,
    bindings: &mut Vec<NodeId>,
    out: &mut Vec<TwigMatch>,
    ticker: &mut Ticker,
) {
    if at == children.len() {
        // All children of this level bound; if no unresolved nodes remain
        // this is only called from a fully-recursive chain, so record.
        out.push(TwigMatch {
            bindings: bindings.clone(),
        });
        return;
    }
    let qchild = children[at];
    for candidate in candidates(idx, pattern, qchild, element) {
        // Budget checkpoint: one visit per candidate binding examined.
        if ticker.tick(1) {
            return;
        }
        bindings[qchild.index()] = candidate;
        // Recurse into the subtree of qchild first; for each completion of
        // that subtree, continue with the next sibling.
        let mut sub = Vec::new();
        extend(idx, pattern, qchild, candidate, bindings, &mut sub, ticker);
        for m in sub {
            *bindings = m.bindings;
            bind_children(
                idx,
                pattern,
                element,
                children,
                at + 1,
                bindings,
                out,
                ticker,
            );
        }
    }
}

/// Document elements that can bind query node `q` under the already-bound
/// `parent_element`.
fn candidates(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    q: QNodeId,
    parent_element: NodeId,
) -> Vec<NodeId> {
    let doc = idx.document();
    let node = pattern.node(q);
    let iter: Vec<NodeId> = match node.axis {
        Axis::Child => doc.element_children(parent_element).collect(),
        Axis::Descendant => doc
            .descendants_or_self(parent_element)
            .skip(1)
            .filter(|&n| doc.is_element(n))
            .collect(),
    };
    iter.into_iter()
        .filter(|&n| match &node.test {
            NodeTest::Tag(name) => doc.tag_name(n) == Some(name.as_str()),
            NodeTest::Wildcard => true,
        })
        .filter(|&n| {
            node.predicate
                .as_ref()
                .map(|p| predicate_matches(idx, n, p))
                .unwrap_or(true)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::{TwigBuilder, ValuePredicate};
    use crate::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><author>Abiteboul</author>\
                     <author>Buneman</author><year>1999</year></book>\
               <book><title>XML Handbook</title><author>Goldfarb</author><year>2003</year></book>\
               <article><title>TwigStack</title><author>Bruno</author></article>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn single_node_query_matches_all_occurrences() {
        let idx = idx();
        let q = parse_query("//author").unwrap();
        assert_eq!(evaluate(&idx, &q).len(), 4);
    }

    #[test]
    fn path_query_respects_axes() {
        let idx = idx();
        assert_eq!(
            evaluate(&idx, &parse_query("//book/title").unwrap()).len(),
            2
        );
        assert_eq!(
            evaluate(&idx, &parse_query("//bib//title").unwrap()).len(),
            3
        );
        assert_eq!(
            evaluate(&idx, &parse_query("/bib/book/title").unwrap()).len(),
            2
        );
        assert_eq!(
            evaluate(&idx, &parse_query("/book").unwrap()).len(),
            0,
            "book is not the root"
        );
    }

    #[test]
    fn branching_twig_takes_cross_products() {
        let idx = idx();
        // First book has 2 authors × 1 title → 2 matches; second book 1.
        let q = parse_query("//book[title][author]").unwrap();
        assert_eq!(evaluate(&idx, &q).len(), 3);
    }

    #[test]
    fn predicates_filter_matches() {
        let idx = idx();
        let q = parse_query("//book[year >= 2000]/title").unwrap();
        let matches = evaluate(&idx, &q);
        assert_eq!(matches.len(), 1);
        let q = parse_query(r#"//book[author = "Goldfarb"]"#).unwrap();
        assert_eq!(evaluate(&idx, &q).len(), 1);
        let q = parse_query(r#"//book[author ~ "nosuchperson"]"#).unwrap();
        assert_eq!(evaluate(&idx, &q).len(), 0);
    }

    #[test]
    fn wildcard_nodes() {
        let idx = idx();
        let q = parse_query("//*[title][author]").unwrap();
        // book, book, article all have title+author children.
        assert_eq!(
            evaluate(&idx, &q)
                .iter()
                .map(|m| m.binding(q.root()))
                .collect::<std::collections::HashSet<_>>()
                .len(),
            3
        );
    }

    #[test]
    fn deep_descendant_axis() {
        let idx = IndexedDocument::from_str("<a><b><c><b><c>x</c></b></c></b></a>").unwrap();
        let q = parse_query("//b//c").unwrap();
        // b1 pairs with c1, c2; b2 pairs with c2 → 3.
        assert_eq!(evaluate(&idx, &q).len(), 3);
    }

    #[test]
    fn recursive_same_tag_nesting() {
        let idx = IndexedDocument::from_str("<s><s><s/></s></s>").unwrap();
        let q = parse_query("//s//s").unwrap();
        assert_eq!(evaluate(&idx, &q).len(), 3);
        let q = parse_query("//s/s").unwrap();
        assert_eq!(evaluate(&idx, &q).len(), 2);
    }

    #[test]
    fn builder_and_parser_agree() {
        let idx = idx();
        let mut b = TwigBuilder::root("book");
        let root = b.root_id();
        let year = b.child(root, "year");
        b.predicate(
            year,
            ValuePredicate::Range {
                low: 2000.0,
                high: f64::INFINITY,
            },
        );
        let built = b.build();
        let parsed = parse_query("//book[year >= 2000]").unwrap();
        assert_eq!(evaluate(&idx, &built), evaluate(&idx, &parsed));
    }
}
