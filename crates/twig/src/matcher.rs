//! Shared evaluation plumbing: filtered streams, predicate checks, the
//! match representation, and the path-solution merge used by the holistic
//! algorithms.

use crate::pattern::{Axis, NodeTest, QNodeId, TwigPattern, ValuePredicate};
use lotusx_guard::QueryGuard;
use lotusx_index::{ColumnView, ElementEntry, IndexedDocument, OwnedColumns};
use lotusx_xml::{NodeId, NodeKind};
use std::collections::{HashMap, HashSet};

/// One complete twig match: a binding for every query node.
#[derive(Clone, Debug, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TwigMatch {
    /// `bindings[q.index()]` is the element bound to query node `q`.
    pub bindings: Vec<NodeId>,
}

impl TwigMatch {
    /// The binding of query node `q`.
    pub fn binding(&self, q: QNodeId) -> NodeId {
        self.bindings[q.index()]
    }

    /// Projects the match onto the pattern's output nodes.
    pub fn project(&self, pattern: &TwigPattern) -> Vec<NodeId> {
        pattern
            .output_nodes()
            .into_iter()
            .map(|q| self.binding(q))
            .collect()
    }
}

/// Evaluates a value predicate directly against an element's content.
pub fn predicate_matches(idx: &IndexedDocument, node: NodeId, pred: &ValuePredicate) -> bool {
    let doc = idx.document();
    match pred {
        ValuePredicate::Equals(v) => doc.direct_text(node).trim().eq_ignore_ascii_case(v.trim()),
        ValuePredicate::Contains(v) => {
            let needles = lotusx_index::tokenize(v);
            if needles.is_empty() {
                return true;
            }
            let mut content = doc.direct_text(node);
            if let NodeKind::Element { attributes, .. } = doc.kind(node) {
                for (_, value) in attributes {
                    content.push(' ');
                    content.push_str(value);
                }
            }
            let haystack: HashSet<String> = lotusx_index::tokenize(&content).into_iter().collect();
            needles.iter().all(|t| haystack.contains(t))
        }
        ValuePredicate::Range { low, high } => doc
            .direct_text(node)
            .trim()
            .parse::<f64>()
            .map(|n| *low <= n && n <= *high)
            .unwrap_or(false),
        ValuePredicate::AttrEquals { name, value } => doc
            .attribute(node, name)
            .map(|v| v.trim().eq_ignore_ascii_case(value.trim()))
            .unwrap_or(false),
        ValuePredicate::AttrContains { name, value } => doc
            .attribute(node, name)
            .map(|v| {
                let haystack: HashSet<String> = lotusx_index::tokenize(v).into_iter().collect();
                lotusx_index::tokenize(value)
                    .iter()
                    .all(|t| haystack.contains(t))
            })
            .unwrap_or(false),
        ValuePredicate::AttrRange { name, low, high } => doc
            .attribute(node, name)
            .and_then(|v| v.trim().parse::<f64>().ok())
            .map(|n| *low <= n && n <= *high)
            .unwrap_or(false),
        ValuePredicate::AttrExists { name } => doc.attribute(node, name).is_some(),
    }
}

/// The document-ordered stream of elements matching a query node's test and
/// predicate — the input every join algorithm consumes for that node.
///
/// Predicates are pushed into the index: `Equals` and `Range` resolve to
/// candidate sets from the value index which are then intersected with the
/// tag stream, so a selective predicate shrinks the stream before any join
/// work happens.
pub fn filtered_stream(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    q: QNodeId,
) -> Vec<ElementEntry> {
    let node = pattern.node(q);
    let base: &[ElementEntry] = match &node.test {
        NodeTest::Tag(name) => match idx.document().symbols().get(name) {
            Some(sym) => idx.tags().stream(sym),
            None => &[],
        },
        NodeTest::Wildcard => idx.all_elements(),
    };
    // A child-axis query root can only bind the document's root element.
    if node.parent.is_none() && node.axis == Axis::Child {
        let mut out: Vec<ElementEntry> = base
            .iter()
            .filter(|e| e.region.level == 1)
            .copied()
            .collect();
        if let Some(pred) = &node.predicate {
            out.retain(|e| predicate_matches(idx, e.node, pred));
        }
        return out;
    }
    match &node.predicate {
        None => base.to_vec(),
        // Attribute predicates and term containment have no dedicated
        // candidate index; they filter the tag stream directly.
        Some(
            pred @ (ValuePredicate::Contains(_)
            | ValuePredicate::AttrEquals { .. }
            | ValuePredicate::AttrContains { .. }
            | ValuePredicate::AttrRange { .. }
            | ValuePredicate::AttrExists { .. }),
        ) => base
            .iter()
            .filter(|e| predicate_matches(idx, e.node, pred))
            .copied()
            .collect(),
        Some(ValuePredicate::Equals(v)) => {
            let allowed: HashSet<NodeId> = idx.values().exact_matches(v).iter().copied().collect();
            base.iter()
                .filter(|e| allowed.contains(&e.node))
                .copied()
                .collect()
        }
        Some(ValuePredicate::Range { low, high }) => {
            let allowed: HashSet<NodeId> = idx
                .values()
                .range_matches(*low, *high)
                .into_iter()
                .collect();
            base.iter()
                .filter(|e| allowed.contains(&e.node))
                .copied()
                .collect()
        }
    }
}

/// The columnar stream for one query node: a zero-copy borrow of the
/// index-resident column arenas when the node carries no predicate (the
/// overwhelmingly common case — the join then scans the index's own
/// memory), or an owned transpose of its [`filtered_stream`] otherwise.
pub enum NodeColumns<'a> {
    /// Index-resident columns, borrowed.
    Borrowed(ColumnView<'a>),
    /// Filtered stream, transposed and owned.
    Owned(OwnedColumns),
}

impl NodeColumns<'_> {
    /// The column slices to scan.
    pub fn view(&self) -> ColumnView<'_> {
        match self {
            NodeColumns::Borrowed(view) => *view,
            NodeColumns::Owned(cols) => cols.view(),
        }
    }
}

/// Resolves the columnar stream for a query node, borrowing from the
/// index wherever [`filtered_stream`] would have copied the tag stream
/// verbatim (no predicate, and not the level-filtered child-axis root).
///
/// `with_end_seeks` says whether the caller will use
/// `ColumnCursor::seek_end_at_least` on this stream: only the binary
/// structural join does, and only it should pay for building the end
/// max-segment-tree when the stream has to be owned. (Borrowed index
/// columns carry their trees for free — built once at index time.)
pub fn node_columns<'a>(
    idx: &'a IndexedDocument,
    pattern: &TwigPattern,
    q: QNodeId,
    with_end_seeks: bool,
) -> NodeColumns<'a> {
    let node = pattern.node(q);
    let level_filtered_root = node.parent.is_none() && node.axis == Axis::Child;
    if node.predicate.is_none() && !level_filtered_root {
        let view = match &node.test {
            NodeTest::Tag(name) => match idx.document().symbols().get(name) {
                Some(sym) => idx.columns().view(sym),
                None => ColumnView::empty(),
            },
            NodeTest::Wildcard => idx.columns().all_elements(),
        };
        NodeColumns::Borrowed(view)
    } else {
        let stream = filtered_stream(idx, pattern, q);
        NodeColumns::Owned(if with_end_seeks {
            OwnedColumns::from_entries(&stream)
        } else {
            OwnedColumns::from_entries_without_end_tree(&stream)
        })
    }
}

/// Checks the structural edge between a bound parent and child element.
pub fn edge_satisfied(idx: &IndexedDocument, axis: Axis, parent: NodeId, child: NodeId) -> bool {
    let labels = idx.labels();
    match axis {
        Axis::Child => labels.is_parent(parent, child),
        Axis::Descendant => labels.is_ancestor(parent, child),
    }
}

/// A root-to-leaf path solution: bindings for the query nodes along one
/// root-to-leaf path of the pattern, in path order.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PathSolution {
    /// Bindings, aligned with the query path.
    pub nodes: Vec<NodeId>,
}

/// Merges per-leaf path solutions into full twig matches.
///
/// `paths[i]` is the i-th root-to-leaf query path; `solutions[i]` its
/// solutions. Two solutions are joinable iff they agree on every query node
/// the two paths share (their common prefix plus any other shared nodes —
/// for a tree pattern, shared nodes are exactly the common prefix).
pub fn merge_path_solutions(
    pattern: &TwigPattern,
    paths: &[Vec<QNodeId>],
    solutions: &[Vec<PathSolution>],
) -> Vec<TwigMatch> {
    merge_path_solutions_guarded(pattern, paths, solutions, &QueryGuard::unlimited())
}

/// How many partial assignments the merge keeps alive once the budget
/// trips. The survivors are still joined against every remaining leaf,
/// so each emitted match is a complete, valid twig match — the cap only
/// bounds how much longer a tripped query runs.
const TRIPPED_PARTIAL_CAP: usize = 64;

/// [`merge_path_solutions`] with a budget: the intermediate partial
/// product is the classic blow-up site of path-solution merging, so the
/// merge charges one node visit per partial examined and, once the guard
/// trips, shrinks the frontier to [`TRIPPED_PARTIAL_CAP`] survivors
/// while still completing their joins with every remaining leaf path —
/// truncated output, but only true matches in it.
pub fn merge_path_solutions_guarded(
    pattern: &TwigPattern,
    paths: &[Vec<QNodeId>],
    solutions: &[Vec<PathSolution>],
    guard: &QueryGuard,
) -> Vec<TwigMatch> {
    assert_eq!(paths.len(), solutions.len());
    if paths.is_empty() {
        return Vec::new();
    }
    let mut ticker = guard.ticker();
    // Partial assignments: query-node -> element, grown one leaf at a time.
    let mut partials: Vec<HashMap<QNodeId, NodeId>> = solutions[0]
        .iter()
        .map(|sol| {
            paths[0]
                .iter()
                .copied()
                .zip(sol.nodes.iter().copied())
                .collect()
        })
        .collect();
    if ticker.tick(partials.len() as u64) {
        partials.truncate(TRIPPED_PARTIAL_CAP);
    }

    for (path, sols) in paths.iter().zip(solutions.iter()).skip(1) {
        if partials.is_empty() {
            return Vec::new();
        }
        // Index the new leaf's solutions by their bindings on the query
        // nodes already assigned (the shared prefix with previous paths).
        let shared: Vec<usize> = path
            .iter()
            .enumerate()
            .filter(|(_, q)| partials[0].contains_key(q))
            .map(|(i, _)| i)
            .collect();
        let mut by_key: HashMap<Vec<NodeId>, Vec<&PathSolution>> = HashMap::new();
        for sol in sols {
            let key: Vec<NodeId> = shared.iter().map(|&i| sol.nodes[i]).collect();
            by_key.entry(key).or_default().push(sol);
        }
        let mut next: Vec<HashMap<QNodeId, NodeId>> = Vec::new();
        'grow: for partial in &partials {
            if ticker.tick(1) && next.len() >= TRIPPED_PARTIAL_CAP {
                break 'grow;
            }
            let key: Vec<NodeId> = shared.iter().map(|&i| partial[&path[i]]).collect();
            if let Some(matching) = by_key.get(&key) {
                for sol in matching {
                    let mut extended = partial.clone();
                    for (q, n) in path.iter().zip(sol.nodes.iter()) {
                        extended.insert(*q, *n);
                    }
                    next.push(extended);
                    if ticker.stopped() && next.len() >= TRIPPED_PARTIAL_CAP {
                        break 'grow;
                    }
                }
            }
        }
        partials = next;
    }

    let mut out: Vec<TwigMatch> = partials
        .into_iter()
        .map(|assignment| TwigMatch {
            bindings: pattern.node_ids().map(|q| assignment[&q]).collect(),
        })
        .collect();
    out.sort();
    out.dedup();
    out
}

/// Verifies a full match against every edge, test and predicate — the
/// ground-truth validity check used by tests and post-filters.
pub fn match_is_valid(idx: &IndexedDocument, pattern: &TwigPattern, m: &TwigMatch) -> bool {
    let doc = idx.document();
    for q in pattern.node_ids() {
        let node = pattern.node(q);
        let bound = m.binding(q);
        if !doc.is_element(bound) {
            return false;
        }
        if let NodeTest::Tag(name) = &node.test {
            if doc.tag_name(bound) != Some(name.as_str()) {
                return false;
            }
        }
        if let Some(pred) = &node.predicate {
            if !predicate_matches(idx, bound, pred) {
                return false;
            }
        }
        match node.parent {
            Some(p) => {
                if !edge_satisfied(idx, node.axis, m.binding(p), bound) {
                    return false;
                }
            }
            None => {
                // Root edge: Child means the query root binds the document
                // root element; Descendant allows any element.
                if node.axis == Axis::Child && doc.parent(bound) != Some(NodeId::DOCUMENT) {
                    return false;
                }
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pattern::TwigBuilder;
    use lotusx_index::IndexedDocument;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>Data on the Web</title><year>1999</year></book>\
               <book><title>XML Handbook</title><year>2003</year></book>\
             </bib>",
        )
        .unwrap()
    }

    fn nth_element(idx: &IndexedDocument, tag: &str, n: usize) -> NodeId {
        let sym = idx.document().symbols().get(tag).unwrap();
        idx.tags().stream(sym)[n].node
    }

    #[test]
    fn filtered_stream_by_tag() {
        let idx = idx();
        let b = TwigBuilder::root("book");
        let p = b.build();
        let stream = filtered_stream(&idx, &p, p.root());
        assert_eq!(stream.len(), 2);
    }

    #[test]
    fn filtered_stream_unknown_tag_is_empty() {
        let idx = idx();
        let b = TwigBuilder::root("nosuchtag");
        let p = b.build();
        assert!(filtered_stream(&idx, &p, p.root()).is_empty());
    }

    #[test]
    fn filtered_stream_wildcard_sees_everything() {
        let idx = idx();
        let b = TwigBuilder::wildcard_root();
        let p = b.build();
        assert_eq!(
            filtered_stream(&idx, &p, p.root()).len(),
            idx.stats().element_count
        );
    }

    #[test]
    fn filtered_stream_applies_predicates() {
        let idx = idx();
        let mut b = TwigBuilder::root("year");
        b.predicate(
            b.root_id(),
            ValuePredicate::Range {
                low: 2000.0,
                high: f64::INFINITY,
            },
        );
        let p = b.build();
        let stream = filtered_stream(&idx, &p, p.root());
        assert_eq!(stream.len(), 1);

        let mut b = TwigBuilder::root("title");
        b.predicate(b.root_id(), ValuePredicate::Contains("xml".into()));
        let p = b.build();
        assert_eq!(filtered_stream(&idx, &p, p.root()).len(), 1);

        let mut b = TwigBuilder::root("title");
        b.predicate(
            b.root_id(),
            ValuePredicate::Equals("data on the web".into()),
        );
        let p = b.build();
        assert_eq!(filtered_stream(&idx, &p, p.root()).len(), 1);
    }

    #[test]
    fn predicate_matches_semantics() {
        let idx = idx();
        let title0 = nth_element(&idx, "title", 0);
        assert!(predicate_matches(
            &idx,
            title0,
            &ValuePredicate::Equals("Data on the Web".into())
        ));
        assert!(predicate_matches(
            &idx,
            title0,
            &ValuePredicate::Contains("web data".into())
        ));
        assert!(!predicate_matches(
            &idx,
            title0,
            &ValuePredicate::Contains("xml".into())
        ));
        let year0 = nth_element(&idx, "year", 0);
        assert!(predicate_matches(
            &idx,
            year0,
            &ValuePredicate::Range {
                low: 1999.0,
                high: 1999.0
            }
        ));
        assert!(!predicate_matches(
            &idx,
            year0,
            &ValuePredicate::Range {
                low: 2000.0,
                high: 2400.0
            }
        ));
    }

    #[test]
    fn attribute_predicates_match_attributes() {
        let idx = IndexedDocument::from_str(
            r#"<bib><book year="1999" lang="en"/><book year="2003"/></bib>"#,
        )
        .unwrap();
        let book0 = nth_element(&idx, "book", 0);
        let book1 = nth_element(&idx, "book", 1);
        assert!(predicate_matches(
            &idx,
            book0,
            &ValuePredicate::AttrEquals {
                name: "lang".into(),
                value: "EN".into()
            }
        ));
        assert!(!predicate_matches(
            &idx,
            book1,
            &ValuePredicate::AttrExists {
                name: "lang".into()
            }
        ));
        assert!(predicate_matches(
            &idx,
            book1,
            &ValuePredicate::AttrRange {
                name: "year".into(),
                low: 2000.0,
                high: 2400.0
            }
        ));
        assert!(!predicate_matches(
            &idx,
            book0,
            &ValuePredicate::AttrRange {
                name: "year".into(),
                low: 2000.0,
                high: 2400.0
            }
        ));
        assert!(predicate_matches(
            &idx,
            book0,
            &ValuePredicate::AttrContains {
                name: "lang".into(),
                value: "en".into()
            }
        ));

        // Through the stream filter and a full query:
        let mut b = TwigBuilder::root("book");
        b.predicate(
            b.root_id(),
            ValuePredicate::AttrRange {
                name: "year".into(),
                low: 2000.0,
                high: f64::INFINITY,
            },
        );
        let p = b.build();
        let stream = filtered_stream(&idx, &p, p.root());
        assert_eq!(stream.len(), 1);
        assert_eq!(stream[0].node, book1);
    }

    #[test]
    fn merge_joins_on_shared_prefix() {
        let idx = idx();
        // //book[/title][/year]
        let mut b = TwigBuilder::root("book");
        let root = b.root_id();
        let title = b.child(root, "title");
        let year = b.child(root, "year");
        let p = b.build();
        let paths = p.root_to_leaf_paths();
        assert_eq!(paths, vec![vec![root, title], vec![root, year]]);

        let book0 = nth_element(&idx, "book", 0);
        let book1 = nth_element(&idx, "book", 1);
        let t0 = nth_element(&idx, "title", 0);
        let t1 = nth_element(&idx, "title", 1);
        let y0 = nth_element(&idx, "year", 0);
        let y1 = nth_element(&idx, "year", 1);

        let sols_title = vec![
            PathSolution {
                nodes: vec![book0, t0],
            },
            PathSolution {
                nodes: vec![book1, t1],
            },
        ];
        let sols_year = vec![
            PathSolution {
                nodes: vec![book0, y0],
            },
            PathSolution {
                nodes: vec![book1, y1],
            },
        ];
        let merged = merge_path_solutions(&p, &paths, &[sols_title, sols_year]);
        assert_eq!(merged.len(), 2);
        for m in &merged {
            assert!(match_is_valid(&idx, &p, m));
        }
        // Cross-book combinations must not appear.
        assert!(!merged
            .iter()
            .any(|m| m.binding(root) == book0 && m.binding(year) == y1));
    }

    #[test]
    fn merge_with_empty_leaf_solutions_is_empty() {
        let mut b = TwigBuilder::root("book");
        let root = b.root_id();
        b.child(root, "title");
        b.child(root, "year");
        let p = b.build();
        let paths = p.root_to_leaf_paths();
        let merged = merge_path_solutions(&p, &paths, &[vec![], vec![]]);
        assert!(merged.is_empty());
    }

    #[test]
    fn match_is_valid_checks_everything() {
        let idx = idx();
        let mut b = TwigBuilder::root("book");
        let root = b.root_id();
        b.child(root, "title");
        let p = b.build();
        let book0 = nth_element(&idx, "book", 0);
        let t0 = nth_element(&idx, "title", 0);
        let t1 = nth_element(&idx, "title", 1);
        assert!(match_is_valid(
            &idx,
            &p,
            &TwigMatch {
                bindings: vec![book0, t0]
            }
        ));
        // Title of the other book fails the child edge.
        assert!(!match_is_valid(
            &idx,
            &p,
            &TwigMatch {
                bindings: vec![book0, t1]
            }
        ));
    }
}
