//! The twig pattern model.
//!
//! A twig pattern is a small tree: every node carries a node test (tag or
//! wildcard) and optionally a value predicate; every edge is either
//! parent-child (`/`) or ancestor-descendant (`//`). One or more nodes are
//! marked as *output* nodes (the GUI's highlighted nodes); the pattern may
//! additionally be *order-sensitive*, in which case sibling query nodes
//! must bind to elements in document order.

use std::fmt;

/// Index of a query node within its [`TwigPattern`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QNodeId(u32);

impl QNodeId {
    /// Dense index of this query node.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Builds a query-node id from a raw index.
    pub fn from_index(index: usize) -> Self {
        QNodeId(index as u32)
    }
}

/// The node test of a query node.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub enum NodeTest {
    /// Match elements with this tag name.
    Tag(String),
    /// Match any element (`*`).
    Wildcard,
}

impl NodeTest {
    /// The tag name, if this is a tag test.
    pub fn tag_name(&self) -> Option<&str> {
        match self {
            NodeTest::Tag(t) => Some(t),
            NodeTest::Wildcard => None,
        }
    }
}

/// The axis of an edge between two query nodes (or between the document
/// root and the query root).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Axis {
    /// Parent-child (`/`).
    Child,
    /// Ancestor-descendant (`//`).
    Descendant,
}

/// A value predicate attached to a query node.
///
/// The first three variants interpret the element's direct content (text
/// plus attribute values); the `Attr*` variants target one named
/// attribute (`@year >= 2000` in the textual syntax).
#[derive(Clone, Debug, PartialEq)]
pub enum ValuePredicate {
    /// Trimmed direct text equals the string (case-insensitive).
    Equals(String),
    /// All tokenized terms of the string occur in the element's content.
    Contains(String),
    /// The element's numeric value lies in `[low, high]` (either bound may
    /// be infinite).
    Range {
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
    /// The named attribute exists and its trimmed value equals the string
    /// (case-insensitive).
    AttrEquals {
        /// Attribute name.
        name: String,
        /// Expected value.
        value: String,
    },
    /// The named attribute exists and contains all tokenized terms.
    AttrContains {
        /// Attribute name.
        name: String,
        /// Terms to find.
        value: String,
    },
    /// The named attribute exists and parses to a number in `[low, high]`.
    AttrRange {
        /// Attribute name.
        name: String,
        /// Inclusive lower bound.
        low: f64,
        /// Inclusive upper bound.
        high: f64,
    },
    /// The named attribute exists (any value).
    AttrExists {
        /// Attribute name.
        name: String,
    },
}

/// One node of a twig pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct QNode {
    /// The node test.
    pub test: NodeTest,
    /// Optional value predicate.
    pub predicate: Option<ValuePredicate>,
    /// Whether this node's binding is part of the query result.
    pub output: bool,
    /// The axis connecting this node to its parent (for the root: to the
    /// document root).
    pub axis: Axis,
    /// Parent query node.
    pub parent: Option<QNodeId>,
    /// Child query nodes, in the user's (GUI) order — significant when the
    /// pattern is order-sensitive.
    pub children: Vec<QNodeId>,
}

/// A twig pattern.
#[derive(Clone, Debug, PartialEq)]
pub struct TwigPattern {
    nodes: Vec<QNode>,
    ordered: bool,
}

impl TwigPattern {
    /// Creates a pattern containing only a root node.
    pub fn new(root_test: NodeTest, root_axis: Axis) -> Self {
        TwigPattern {
            nodes: vec![QNode {
                test: root_test,
                predicate: None,
                output: false,
                axis: root_axis,
                parent: None,
                children: Vec::new(),
            }],
            ordered: false,
        }
    }

    /// The root query node.
    pub fn root(&self) -> QNodeId {
        QNodeId(0)
    }

    /// Adds a child node under `parent`, returning its id.
    pub fn add_child(&mut self, parent: QNodeId, axis: Axis, test: NodeTest) -> QNodeId {
        let id = QNodeId(self.nodes.len() as u32);
        self.nodes.push(QNode {
            test,
            predicate: None,
            output: false,
            axis,
            parent: Some(parent),
            children: Vec::new(),
        });
        self.nodes[parent.index()].children.push(id);
        id
    }

    /// Sets the value predicate of a node.
    pub fn set_predicate(&mut self, id: QNodeId, predicate: Option<ValuePredicate>) {
        self.nodes[id.index()].predicate = predicate;
    }

    /// Marks (or unmarks) a node as an output node.
    pub fn set_output(&mut self, id: QNodeId, output: bool) {
        self.nodes[id.index()].output = output;
    }

    /// Replaces the node test of a node (used by rewriting).
    pub fn set_test(&mut self, id: QNodeId, test: NodeTest) {
        self.nodes[id.index()].test = test;
    }

    /// Replaces the axis of a node's incoming edge (used by rewriting).
    pub fn set_axis(&mut self, id: QNodeId, axis: Axis) {
        self.nodes[id.index()].axis = axis;
    }

    /// Makes the pattern order-sensitive (or not).
    pub fn set_ordered(&mut self, ordered: bool) {
        self.ordered = ordered;
    }

    /// Whether the pattern is order-sensitive.
    pub fn is_ordered(&self) -> bool {
        self.ordered
    }

    /// Access a node.
    pub fn node(&self, id: QNodeId) -> &QNode {
        &self.nodes[id.index()]
    }

    /// Number of query nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// A pattern always has at least a root.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Iterates over all node ids in creation (preorder-compatible) order.
    pub fn node_ids(&self) -> impl DoubleEndedIterator<Item = QNodeId> + ExactSizeIterator {
        (0..self.nodes.len()).map(|i| QNodeId(i as u32))
    }

    /// Leaf query nodes.
    pub fn leaves(&self) -> Vec<QNodeId> {
        self.node_ids()
            .filter(|id| self.node(*id).children.is_empty())
            .collect()
    }

    /// True if the pattern is a linear path (no branching).
    pub fn is_path(&self) -> bool {
        self.node_ids().all(|id| self.node(id).children.len() <= 1)
    }

    /// The output nodes; if none was marked, the root is the default
    /// output (what the GUI highlights when the user marks nothing).
    pub fn output_nodes(&self) -> Vec<QNodeId> {
        let marked: Vec<QNodeId> = self.node_ids().filter(|id| self.node(*id).output).collect();
        if marked.is_empty() {
            vec![self.root()]
        } else {
            marked
        }
    }

    /// All root-to-leaf paths (each starts with the root).
    pub fn root_to_leaf_paths(&self) -> Vec<Vec<QNodeId>> {
        self.leaves()
            .into_iter()
            .map(|leaf| {
                let mut path = vec![leaf];
                let mut cur = leaf;
                while let Some(p) = self.node(cur).parent {
                    path.push(p);
                    cur = p;
                }
                path.reverse();
                path
            })
            .collect()
    }

    /// The root-to-node path of query node `id` (inclusive).
    pub fn path_to(&self, id: QNodeId) -> Vec<QNodeId> {
        let mut path = vec![id];
        let mut cur = id;
        while let Some(p) = self.node(cur).parent {
            path.push(p);
            cur = p;
        }
        path.reverse();
        path
    }

    /// Depth of a query node (root = 1).
    pub fn depth(&self, id: QNodeId) -> usize {
        self.path_to(id).len()
    }

    /// True if any node carries a value predicate.
    pub fn has_predicates(&self) -> bool {
        self.nodes.iter().any(|n| n.predicate.is_some())
    }

    /// Number of edges with [`Axis::Child`] (excluding the root edge).
    pub fn parent_child_edge_count(&self) -> usize {
        self.nodes
            .iter()
            .skip(1)
            .filter(|n| n.axis == Axis::Child)
            .count()
    }
}

fn write_range(f: &mut fmt::Formatter<'_>, target: &str, low: f64, high: f64) -> fmt::Result {
    if high.is_infinite() {
        write!(f, "[{target} >= {low}]")
    } else if low.is_infinite() {
        write!(f, "[{target} <= {high}]")
    } else {
        write!(f, "[{target} in {low}..{high}]")
    }
}

impl fmt::Display for TwigPattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fn write_node(pat: &TwigPattern, id: QNodeId, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            let node = pat.node(id);
            write!(f, "{}", if node.axis == Axis::Child { "/" } else { "//" })?;
            match &node.test {
                NodeTest::Tag(t) => write!(f, "{t}")?,
                NodeTest::Wildcard => write!(f, "*")?,
            }
            if node.output {
                write!(f, "!")?;
            }
            match &node.predicate {
                Some(ValuePredicate::Equals(v)) => write!(f, "[. = \"{v}\"]")?,
                Some(ValuePredicate::Contains(v)) => write!(f, "[. ~ \"{v}\"]")?,
                Some(ValuePredicate::Range { low, high }) => write_range(f, ".", *low, *high)?,
                Some(ValuePredicate::AttrEquals { name, value }) => {
                    write!(f, "[@{name} = \"{value}\"]")?
                }
                Some(ValuePredicate::AttrContains { name, value }) => {
                    write!(f, "[@{name} ~ \"{value}\"]")?
                }
                Some(ValuePredicate::AttrRange { name, low, high }) => {
                    let target = format!("@{name}");
                    write_range(f, &target, *low, *high)?
                }
                Some(ValuePredicate::AttrExists { name }) => write!(f, "[@{name}]")?,
                None => {}
            }
            for &child in &node.children {
                write!(f, "[")?;
                write_node(pat, child, f)?;
                write!(f, "]")?;
            }
            Ok(())
        }
        if self.ordered {
            write!(f, "ordered ")?;
        }
        write_node(self, self.root(), f)
    }
}

/// Convenience builder used by tests and the canvas.
#[derive(Clone, Debug)]
pub struct TwigBuilder {
    pattern: TwigPattern,
}

impl TwigBuilder {
    /// Starts a pattern with a descendant-axis root (`//tag`).
    pub fn root(tag: &str) -> Self {
        TwigBuilder {
            pattern: TwigPattern::new(NodeTest::Tag(tag.to_string()), Axis::Descendant),
        }
    }

    /// Starts a pattern with a wildcard root.
    pub fn wildcard_root() -> Self {
        TwigBuilder {
            pattern: TwigPattern::new(NodeTest::Wildcard, Axis::Descendant),
        }
    }

    /// Adds a child-axis child under `parent`.
    pub fn child(&mut self, parent: QNodeId, tag: &str) -> QNodeId {
        self.pattern
            .add_child(parent, Axis::Child, NodeTest::Tag(tag.to_string()))
    }

    /// Adds a descendant-axis child under `parent`.
    pub fn descendant(&mut self, parent: QNodeId, tag: &str) -> QNodeId {
        self.pattern
            .add_child(parent, Axis::Descendant, NodeTest::Tag(tag.to_string()))
    }

    /// The root node id.
    pub fn root_id(&self) -> QNodeId {
        self.pattern.root()
    }

    /// Sets a predicate.
    pub fn predicate(&mut self, id: QNodeId, p: ValuePredicate) -> &mut Self {
        self.pattern.set_predicate(id, Some(p));
        self
    }

    /// Marks an output node.
    pub fn output(&mut self, id: QNodeId) -> &mut Self {
        self.pattern.set_output(id, true);
        self
    }

    /// Makes the pattern order-sensitive.
    pub fn ordered(&mut self) -> &mut Self {
        self.pattern.set_ordered(true);
        self
    }

    /// Finishes the pattern.
    pub fn build(self) -> TwigPattern {
        self.pattern
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn book_twig() -> TwigPattern {
        // //book[/title][//author]
        let mut b = TwigBuilder::root("book");
        let root = b.root_id();
        let title = b.child(root, "title");
        b.descendant(root, "author");
        b.output(title);
        b.build()
    }

    #[test]
    fn structure_accessors() {
        let p = book_twig();
        assert_eq!(p.len(), 3);
        assert!(!p.is_path());
        assert_eq!(p.leaves().len(), 2);
        assert_eq!(p.root_to_leaf_paths().len(), 2);
        assert_eq!(p.depth(p.root()), 1);
        let title = QNodeId::from_index(1);
        assert_eq!(p.depth(title), 2);
        assert_eq!(p.node(title).axis, Axis::Child);
        assert_eq!(p.path_to(title), vec![p.root(), title]);
    }

    #[test]
    fn output_defaults_to_root() {
        let b = TwigBuilder::root("a");
        let p = b.build();
        assert_eq!(p.output_nodes(), vec![p.root()]);
        let p2 = book_twig();
        assert_eq!(p2.output_nodes(), vec![QNodeId::from_index(1)]);
    }

    #[test]
    fn path_detection() {
        let mut b = TwigBuilder::root("a");
        let r = b.root_id();
        let x = b.child(r, "b");
        b.descendant(x, "c");
        let p = b.build();
        assert!(p.is_path());
        assert_eq!(p.root_to_leaf_paths().len(), 1);
        assert_eq!(p.root_to_leaf_paths()[0].len(), 3);
    }

    #[test]
    fn display_roundtrips_structure() {
        let p = book_twig();
        assert_eq!(p.to_string(), "//book[/title!][//author]");
        let mut b = TwigBuilder::root("year");
        b.predicate(
            b.root_id(),
            ValuePredicate::Range {
                low: 2000.0,
                high: f64::INFINITY,
            },
        );
        assert_eq!(b.build().to_string(), "//year[. >= 2000]");
    }

    #[test]
    fn ordered_flag() {
        let mut b = TwigBuilder::root("a");
        b.ordered();
        let p = b.build();
        assert!(p.is_ordered());
        assert!(p.to_string().starts_with("ordered "));
    }

    #[test]
    fn pc_edge_count() {
        let p = book_twig();
        assert_eq!(p.parent_child_edge_count(), 1);
    }

    #[test]
    fn predicates_flag() {
        let mut p = book_twig();
        assert!(!p.has_predicates());
        p.set_predicate(
            QNodeId::from_index(1),
            Some(ValuePredicate::Equals("XML".into())),
        );
        assert!(p.has_predicates());
    }
}
