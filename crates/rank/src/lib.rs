//! # lotusx-rank
//!
//! The "new ranking strategy" of LotusX, reconstructed: every twig match is
//! scored by combining
//!
//! 1. **structural tightness** — matches whose ancestor-descendant edges
//!    bind close together (small depth slack) outrank loose ones;
//! 2. **content relevance** — TF-IDF of the query's `contains` terms in
//!    the bound elements;
//! 3. **position specificity** — bindings on rare DataGuide paths (highly
//!    selective positions) outrank bindings on ubiquitous paths.
//!
//! The combination weights live in [`score::RankWeights`]; the experiment
//! harness compares the full score against the document-order and
//! frequency-only baselines with the retrieval metrics in [`metrics`].

#![warn(missing_docs)]

pub mod metrics;
pub mod score;
pub mod topk;

pub use metrics::{mrr, ndcg_at_k, precision_at_k};
pub use score::{RankWeights, Ranker, ScoredMatch};
pub use topk::{OrderedTopK, TopK};
