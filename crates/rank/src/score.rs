//! Match scoring: the reconstructed LotusScore.

use crate::topk::OrderedTopK;
use lotusx_index::IndexedDocument;
use lotusx_twig::matcher::TwigMatch;
use lotusx_twig::pattern::{Axis, TwigPattern, ValuePredicate};

/// Weights of the three score components. Defaults follow the intuition of
/// the demo: structure first, content second, specificity as a tiebreak.
#[derive(Clone, Copy, Debug)]
pub struct RankWeights {
    /// Weight of structural tightness.
    pub structure: f64,
    /// Weight of content (TF-IDF) relevance.
    pub content: f64,
    /// Weight of position specificity.
    pub specificity: f64,
}

impl Default for RankWeights {
    fn default() -> Self {
        RankWeights {
            structure: 0.5,
            content: 0.35,
            specificity: 0.15,
        }
    }
}

/// A match together with its score.
#[derive(Clone, Debug)]
pub struct ScoredMatch {
    /// The match.
    pub m: TwigMatch,
    /// Its LotusScore (higher is better).
    pub score: f64,
}

/// Scores matches of one pattern over one document.
pub struct Ranker<'a> {
    idx: &'a IndexedDocument,
    weights: RankWeights,
}

impl<'a> Ranker<'a> {
    /// Creates a ranker with default weights.
    pub fn new(idx: &'a IndexedDocument) -> Self {
        Self::with_weights(idx, RankWeights::default())
    }

    /// Creates a ranker with explicit weights.
    pub fn with_weights(idx: &'a IndexedDocument, weights: RankWeights) -> Self {
        Ranker { idx, weights }
    }

    /// The full LotusScore of one match.
    pub fn score(&self, pattern: &TwigPattern, m: &TwigMatch) -> f64 {
        let w = self.weights;
        w.structure * self.structure_score(pattern, m)
            + w.content * self.content_score(pattern, m)
            + w.specificity * self.specificity_score(pattern, m)
    }

    /// Structural tightness in `(0, 1]`: 1 when every A-D edge binds at
    /// minimal distance, decaying with the total extra depth (slack).
    pub fn structure_score(&self, pattern: &TwigPattern, m: &TwigMatch) -> f64 {
        let doc = self.idx.document();
        let mut slack = 0u32;
        for q in pattern.node_ids() {
            let node = pattern.node(q);
            let Some(parent) = node.parent else { continue };
            if node.axis == Axis::Descendant {
                let d_child = doc.depth(m.binding(q));
                let d_parent = doc.depth(m.binding(parent));
                slack += d_child.saturating_sub(d_parent + 1);
            }
        }
        1.0 / (1.0 + slack as f64)
    }

    /// TF-IDF sum over the `contains` terms of every predicate, squashed
    /// into `[0, 1)`. Matches without content predicates score 0 here.
    pub fn content_score(&self, pattern: &TwigPattern, m: &TwigMatch) -> f64 {
        let values = self.idx.values();
        let n = values.content_element_count().max(1) as f64;
        let mut sum = 0.0;
        for q in pattern.node_ids() {
            let text = match &pattern.node(q).predicate {
                Some(ValuePredicate::Contains(text)) => text,
                Some(ValuePredicate::AttrContains { value, .. }) => value,
                _ => continue,
            };
            let bound = m.binding(q);
            for term in lotusx_index::tokenize(text) {
                let postings = values.postings(&term);
                let Some(p) = postings.iter().find(|p| p.node == bound) else {
                    continue;
                };
                let df = postings.len().max(1) as f64;
                let idf = (1.0 + n / df).ln();
                sum += (1.0 + f64::from(p.tf).ln_1p()) * idf;
            }
        }
        sum / (1.0 + sum)
    }

    /// Position specificity in `(0, 1]`: the rarer the bindings' DataGuide
    /// paths, the higher. Averaged over all bound query nodes.
    pub fn specificity_score(&self, pattern: &TwigPattern, m: &TwigMatch) -> f64 {
        let guide = self.idx.guide();
        let mut sum = 0.0;
        let mut n = 0usize;
        for q in pattern.node_ids() {
            let g = self.idx.guide_node(m.binding(q));
            sum += 1.0 / (1.0 + (guide.count(g) as f64).ln_1p());
            n += 1;
        }
        if n == 0 {
            0.0
        } else {
            sum / n as f64
        }
    }

    /// Scores and sorts matches, best first; ties broken by document order
    /// of the bindings (stable, deterministic output).
    pub fn rank(&self, pattern: &TwigPattern, matches: Vec<TwigMatch>) -> Vec<ScoredMatch> {
        let mut scored: Vec<ScoredMatch> = matches
            .into_iter()
            .map(|m| ScoredMatch {
                score: self.score(pattern, &m),
                m,
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then_with(|| a.m.cmp(&b.m))
        });
        scored
    }

    /// Scores matches across `threads` workers and returns the best `k`.
    ///
    /// Exactly equal to `self.rank(pattern, matches)` truncated to `k`
    /// for every thread count: the (score descending, document-order
    /// ascending) tie-break is a total order, so per-chunk bounded
    /// [`OrderedTopK`] collectors merge to the exact global top-k, and
    /// scoring a match is pure — the same match yields bit-identical
    /// scores on any thread.
    pub fn rank_top_k(
        &self,
        pattern: &TwigPattern,
        matches: Vec<TwigMatch>,
        k: usize,
        threads: usize,
    ) -> Vec<ScoredMatch> {
        self.rank_top_k_spanned(pattern, matches, k, threads, None)
    }

    /// Like [`Self::rank_top_k`], recording the score/select and merge
    /// phases as timed children of `span` when one is supplied. The span
    /// never changes the ranking.
    pub fn rank_top_k_spanned(
        &self,
        pattern: &TwigPattern,
        matches: Vec<TwigMatch>,
        k: usize,
        threads: usize,
        span: Option<&lotusx_obs::Span>,
    ) -> Vec<ScoredMatch> {
        self.rank_top_k_budgeted(
            pattern,
            matches,
            k,
            threads,
            span,
            &lotusx_guard::QueryGuard::unlimited(),
        )
    }

    /// Like [`Self::rank_top_k_spanned`], under a budget: each worker
    /// charges one node visit per match scored and stops scoring once
    /// the guard trips. The matches handed in are already verified, so
    /// the truncated top-k is an exact top-k over the scored prefix —
    /// every returned hit is a true hit.
    pub fn rank_top_k_budgeted(
        &self,
        pattern: &TwigPattern,
        matches: Vec<TwigMatch>,
        k: usize,
        threads: usize,
        span: Option<&lotusx_obs::Span>,
        qguard: &lotusx_guard::QueryGuard,
    ) -> Vec<ScoredMatch> {
        let guard = span.map(|p| {
            let g = p.child("score-select");
            g.annotate("candidates", matches.len());
            g.annotate("k", k);
            g
        });
        let collector = lotusx_par::par_chunks(&matches, threads, |_, chunk| {
            let mut acc = OrderedTopK::new(k);
            let mut ticker = qguard.ticker();
            for m in chunk {
                if ticker.tick(1) {
                    break;
                }
                acc.push(self.score(pattern, m), m.clone());
            }
            acc
        })
        .into_iter()
        .reduce(|mut a, b| {
            a.merge(b);
            a
        })
        .unwrap_or_else(|| OrderedTopK::new(k));
        drop(guard);
        let _sort = span.map(|p| p.child("sort"));
        collector
            .into_sorted()
            .into_iter()
            .map(|(score, m)| ScoredMatch { m, score })
            .collect()
    }
}

/// Baseline: document order (the first match in the document first).
pub fn rank_by_document_order(matches: Vec<TwigMatch>) -> Vec<TwigMatch> {
    let mut m = matches;
    m.sort();
    m
}

/// Baseline: frequency-only — matches whose root binding sits on a COMMON
/// DataGuide path first (what a naive popularity ranking would do).
pub fn rank_by_frequency(
    idx: &IndexedDocument,
    pattern: &TwigPattern,
    matches: Vec<TwigMatch>,
) -> Vec<TwigMatch> {
    let mut m = matches;
    m.sort_by_key(|x| {
        let g = idx.guide_node(x.binding(pattern.root()));
        std::cmp::Reverse(idx.guide().count(g))
    });
    m
}

#[cfg(test)]
mod tests {
    use super::*;
    use lotusx_twig::exec::{execute, Algorithm};
    use lotusx_twig::xpath::parse_query;

    fn idx() -> IndexedDocument {
        IndexedDocument::from_str(
            "<bib>\
               <book><title>xml twig joins</title><info><author>lu</author></info></book>\
               <book><title>relational systems</title><author>codd</author></book>\
             </bib>",
        )
        .unwrap()
    }

    #[test]
    fn tighter_structure_scores_higher() {
        let idx = idx();
        let pattern = parse_query("//book//author").unwrap();
        let matches = execute(&idx, &pattern, Algorithm::TwigStack);
        assert_eq!(matches.len(), 2);
        let ranker = Ranker::new(&idx);
        let ranked = ranker.rank(&pattern, matches);
        // codd is a direct child (slack 0); lu sits under info (slack 1).
        let top_author = ranked[0].m.bindings[1];
        assert_eq!(idx.document().direct_text(top_author), "codd");
        assert!(ranked[0].score > ranked[1].score);
    }

    #[test]
    fn content_relevance_boosts_term_matches() {
        let idx = idx();
        let pattern = parse_query(r#"//book[title ~ "twig"]"#).unwrap();
        let matches = execute(&idx, &pattern, Algorithm::TwigStack);
        assert_eq!(matches.len(), 1);
        let ranker = Ranker::new(&idx);
        let with_term = ranker.content_score(&pattern, &matches[0]);
        assert!(with_term > 0.0);

        // A pattern without content predicates has zero content score.
        let plain = parse_query("//book").unwrap();
        let m = execute(&idx, &plain, Algorithm::TwigStack);
        assert_eq!(ranker.content_score(&plain, &m[0]), 0.0);
    }

    #[test]
    fn scores_are_in_unit_range() {
        let idx = idx();
        let ranker = Ranker::new(&idx);
        for q in [
            "//book//author",
            "//book/title",
            r#"//book[title ~ "xml twig"]"#,
        ] {
            let pattern = parse_query(q).unwrap();
            for sm in ranker.rank(&pattern, execute(&idx, &pattern, Algorithm::TwigStack)) {
                assert!(sm.score > 0.0 && sm.score <= 1.0, "{q}: {}", sm.score);
            }
        }
    }

    #[test]
    fn specificity_prefers_rare_paths() {
        let idx = IndexedDocument::from_str("<r><common/><common/><common/><common/><rare/></r>")
            .unwrap();
        let ranker = Ranker::new(&idx);
        let p_common = parse_query("//common").unwrap();
        let p_rare = parse_query("//rare").unwrap();
        let m_common = execute(&idx, &p_common, Algorithm::Naive);
        let m_rare = execute(&idx, &p_rare, Algorithm::Naive);
        assert!(
            ranker.specificity_score(&p_rare, &m_rare[0])
                > ranker.specificity_score(&p_common, &m_common[0])
        );
    }

    #[test]
    fn ranking_is_deterministic() {
        let idx = idx();
        let pattern = parse_query("//book//author").unwrap();
        let matches = execute(&idx, &pattern, Algorithm::TwigStack);
        let ranker = Ranker::new(&idx);
        let a: Vec<f64> = ranker
            .rank(&pattern, matches.clone())
            .iter()
            .map(|s| s.score)
            .collect();
        let b: Vec<f64> = ranker
            .rank(&pattern, matches)
            .iter()
            .map(|s| s.score)
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn rank_top_k_equals_full_rank_truncated() {
        let idx = idx();
        let ranker = Ranker::new(&idx);
        for q in ["//book//author", "//book/title", "//book", "//bib//title"] {
            let pattern = parse_query(q).unwrap();
            let matches = execute(&idx, &pattern, Algorithm::TwigStack);
            let full = ranker.rank(&pattern, matches.clone());
            for k in [0, 1, 2, 100] {
                let mut expect = full.clone();
                expect.truncate(k);
                for threads in [1, 2, 8] {
                    let got = ranker.rank_top_k(&pattern, matches.clone(), k, threads);
                    assert_eq!(got.len(), expect.len(), "{q} k={k} t={threads}");
                    for (g, e) in got.iter().zip(&expect) {
                        assert_eq!(g.m, e.m, "{q} k={k} t={threads}");
                        assert_eq!(g.score, e.score, "{q} k={k} t={threads}");
                    }
                }
            }
        }
    }

    #[test]
    fn baselines_order_matches() {
        let idx = idx();
        let pattern = parse_query("//book//author").unwrap();
        let matches = execute(&idx, &pattern, Algorithm::TwigStack);
        let doc_order = rank_by_document_order(matches.clone());
        assert!(doc_order[0] <= doc_order[1]);
        let by_freq = rank_by_frequency(&idx, &pattern, matches);
        assert_eq!(by_freq.len(), 2);
    }
}
