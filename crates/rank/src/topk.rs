//! A bounded top-k collector.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Keeps the `k` items with the highest scores seen so far.
///
/// Internally a min-heap of size ≤ k: pushing is `O(log k)` and the
/// threshold (worst retained score) is available in `O(1)`, which lets
/// producers skip work for items that cannot make the cut.
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

struct Entry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score → BinaryHeap becomes a min-heap. On equal
        // scores the LATEST insertion is "greatest" (popped first), so
        // earlier items win ties.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl<T> TopK<T> {
    /// Creates a collector that retains the best `k` items.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an item; it is kept iff it beats the current threshold.
    pub fn push(&mut self, score: f64, item: T) {
        if self.k == 0 {
            return;
        }
        let seq = self.heap.len() as u64;
        self.heap.push(Entry { score, seq, item });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The lowest retained score, if the collector is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finishes, returning `(score, item)` pairs best-first.
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut items: Vec<Entry<T>> = self.heap.into_vec();
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.seq.cmp(&b.seq))
        });
        items.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_best_k() {
        let mut topk = TopK::new(3);
        for (s, v) in [(0.1, "a"), (0.9, "b"), (0.5, "c"), (0.7, "d"), (0.2, "e")] {
            topk.push(s, v);
        }
        let out = topk.into_sorted();
        let items: Vec<&str> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec!["b", "d", "c"]);
    }

    #[test]
    fn threshold_reports_cutoff_when_full() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), None);
        topk.push(0.5, 1);
        assert_eq!(topk.threshold(), None, "not full yet");
        topk.push(0.8, 2);
        assert_eq!(topk.threshold(), Some(0.5));
        topk.push(0.9, 3);
        assert_eq!(topk.threshold(), Some(0.8));
    }

    #[test]
    fn fewer_items_than_k() {
        let mut topk = TopK::new(10);
        topk.push(0.3, "x");
        let out = topk.into_sorted();
        assert_eq!(out.len(), 1);
        assert!(!out.is_empty());
    }

    #[test]
    fn zero_k_retains_nothing() {
        let mut topk = TopK::new(0);
        topk.push(1.0, "x");
        assert!(topk.is_empty());
        assert!(topk.into_sorted().is_empty());
    }

    #[test]
    fn equal_scores_keep_insertion_order() {
        let mut topk = TopK::new(2);
        topk.push(0.5, "first");
        topk.push(0.5, "second");
        topk.push(0.5, "third");
        let out = topk.into_sorted();
        let items: Vec<&str> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec!["first", "second"]);
    }
}
