//! A bounded top-k collector.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Keeps the `k` items with the highest scores seen so far.
///
/// Internally a min-heap of size ≤ k: pushing is `O(log k)` and the
/// threshold (worst retained score) is available in `O(1)`, which lets
/// producers skip work for items that cannot make the cut.
pub struct TopK<T> {
    k: usize,
    heap: BinaryHeap<Entry<T>>,
}

struct Entry<T> {
    score: f64,
    seq: u64,
    item: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.score == other.score && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse on score → BinaryHeap becomes a min-heap. On equal
        // scores the LATEST insertion is "greatest" (popped first), so
        // earlier items win ties.
        other
            .score
            .partial_cmp(&self.score)
            .unwrap_or(Ordering::Equal)
            .then_with(|| self.seq.cmp(&other.seq))
    }
}

impl<T> TopK<T> {
    /// Creates a collector that retains the best `k` items.
    pub fn new(k: usize) -> Self {
        TopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an item; it is kept iff it beats the current threshold.
    pub fn push(&mut self, score: f64, item: T) {
        if self.k == 0 {
            return;
        }
        let seq = self.heap.len() as u64;
        self.heap.push(Entry { score, seq, item });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The lowest retained score, if the collector is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Finishes, returning `(score, item)` pairs best-first.
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut items: Vec<Entry<T>> = self.heap.into_vec();
        items.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(Ordering::Equal)
                .then_with(|| a.seq.cmp(&b.seq))
        });
        items.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

/// A bounded top-k collector over a TOTAL order: entries compare by
/// (score descending, item ascending), so the retained set — and the
/// sorted output — is exactly the first `k` of the globally sorted input,
/// independent of insertion order. That makes collectors over disjoint
/// input partitions mergeable: merging per-chunk collectors yields the
/// exact global top-k, which the parallel ranker relies on.
///
/// Contrast with [`TopK`], which breaks score ties by insertion order and
/// is therefore only deterministic for a fixed insertion sequence.
pub struct OrderedTopK<T: Ord> {
    k: usize,
    heap: BinaryHeap<OrderedEntry<T>>,
}

struct OrderedEntry<T> {
    score: f64,
    item: T,
}

/// Ranking order: `Less` when `a` outranks `b`.
fn rank_cmp<T: Ord>(a: &OrderedEntry<T>, b: &OrderedEntry<T>) -> Ordering {
    b.score
        .partial_cmp(&a.score)
        .unwrap_or(Ordering::Equal)
        .then_with(|| a.item.cmp(&b.item))
}

impl<T: Ord> PartialEq for OrderedEntry<T> {
    fn eq(&self, other: &Self) -> bool {
        rank_cmp(self, other) == Ordering::Equal
    }
}
impl<T: Ord> Eq for OrderedEntry<T> {}
impl<T: Ord> PartialOrd for OrderedEntry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<T: Ord> Ord for OrderedEntry<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // The heap's max is the WORST retained entry, so the collector is
        // a min-heap under the ranking order.
        rank_cmp(self, other)
    }
}

impl<T: Ord> OrderedTopK<T> {
    /// Creates a collector that retains the best `k` items.
    pub fn new(k: usize) -> Self {
        OrderedTopK {
            k,
            heap: BinaryHeap::with_capacity(k + 1),
        }
    }

    /// Offers an item; it is kept iff it is among the best `k` seen.
    pub fn push(&mut self, score: f64, item: T) {
        if self.k == 0 {
            return;
        }
        self.heap.push(OrderedEntry { score, item });
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// The lowest retained score, if the collector is full.
    pub fn threshold(&self) -> Option<f64> {
        if self.heap.len() == self.k {
            self.heap.peek().map(|e| e.score)
        } else {
            None
        }
    }

    /// Number of retained items.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True when nothing was retained.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Absorbs another collector built over a disjoint input partition.
    pub fn merge(&mut self, other: OrderedTopK<T>) {
        for e in other.heap {
            self.heap.push(e);
            if self.heap.len() > self.k {
                self.heap.pop();
            }
        }
    }

    /// Finishes, returning `(score, item)` pairs best-first.
    pub fn into_sorted(self) -> Vec<(f64, T)> {
        let mut items: Vec<OrderedEntry<T>> = self.heap.into_vec();
        items.sort_by(rank_cmp);
        items.into_iter().map(|e| (e.score, e.item)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn keeps_the_best_k() {
        let mut topk = TopK::new(3);
        for (s, v) in [(0.1, "a"), (0.9, "b"), (0.5, "c"), (0.7, "d"), (0.2, "e")] {
            topk.push(s, v);
        }
        let out = topk.into_sorted();
        let items: Vec<&str> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec!["b", "d", "c"]);
    }

    #[test]
    fn threshold_reports_cutoff_when_full() {
        let mut topk = TopK::new(2);
        assert_eq!(topk.threshold(), None);
        topk.push(0.5, 1);
        assert_eq!(topk.threshold(), None, "not full yet");
        topk.push(0.8, 2);
        assert_eq!(topk.threshold(), Some(0.5));
        topk.push(0.9, 3);
        assert_eq!(topk.threshold(), Some(0.8));
    }

    #[test]
    fn fewer_items_than_k() {
        let mut topk = TopK::new(10);
        topk.push(0.3, "x");
        let out = topk.into_sorted();
        assert_eq!(out.len(), 1);
        assert!(!out.is_empty());
    }

    #[test]
    fn zero_k_retains_nothing() {
        let mut topk = TopK::new(0);
        topk.push(1.0, "x");
        assert!(topk.is_empty());
        assert!(topk.into_sorted().is_empty());
    }

    #[test]
    fn equal_scores_keep_insertion_order() {
        let mut topk = TopK::new(2);
        topk.push(0.5, "first");
        topk.push(0.5, "second");
        topk.push(0.5, "third");
        let out = topk.into_sorted();
        let items: Vec<&str> = out.iter().map(|(_, v)| *v).collect();
        assert_eq!(items, vec!["first", "second"]);
    }

    #[test]
    fn ordered_topk_is_insertion_order_independent() {
        let entries = [(0.5, 3u32), (0.9, 1), (0.5, 2), (0.7, 4), (0.5, 1)];
        let mut forward = OrderedTopK::new(3);
        for &(s, v) in &entries {
            forward.push(s, v);
        }
        let mut backward = OrderedTopK::new(3);
        for &(s, v) in entries.iter().rev() {
            backward.push(s, v);
        }
        let expect = vec![(0.9, 1), (0.7, 4), (0.5, 1)];
        assert_eq!(forward.into_sorted(), expect);
        assert_eq!(backward.into_sorted(), expect);
    }

    #[test]
    fn ordered_topk_merge_equals_global() {
        // Split a stream into chunks, collect per chunk, merge — must
        // equal one global collector over the whole stream.
        let items: Vec<(f64, u32)> = (0..50)
            .map(|i| (((i * 37) % 11) as f64 / 10.0, (i * 13) % 50))
            .collect();
        let mut global = OrderedTopK::new(7);
        for &(s, v) in &items {
            global.push(s, v);
        }
        let mut merged = OrderedTopK::new(7);
        for chunk in items.chunks(9) {
            let mut part = OrderedTopK::new(7);
            for &(s, v) in chunk {
                part.push(s, v);
            }
            merged.merge(part);
        }
        assert_eq!(merged.into_sorted(), global.into_sorted());
    }

    #[test]
    fn ordered_topk_threshold_and_counts() {
        let mut topk = OrderedTopK::new(2);
        assert!(topk.is_empty());
        assert_eq!(topk.threshold(), None);
        topk.push(0.5, 1);
        topk.push(0.8, 2);
        assert_eq!(topk.len(), 2);
        assert_eq!(topk.threshold(), Some(0.5));
        let mut zero = OrderedTopK::new(0);
        zero.push(1.0, 9);
        assert!(zero.is_empty());
    }
}
