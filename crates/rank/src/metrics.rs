//! Retrieval-quality metrics for the ranking experiments.

use std::collections::HashMap;
use std::hash::Hash;

/// Precision@k: fraction of the first `k` ranked items that are relevant
/// (graded relevance > 0 counts as relevant).
pub fn precision_at_k<T: Eq + Hash>(ranked: &[T], relevance: &HashMap<T, f64>, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let considered = ranked.iter().take(k);
    let hits = considered
        .filter(|item| relevance.get(item).copied().unwrap_or(0.0) > 0.0)
        .count();
    hits as f64 / k.min(ranked.len().max(1)) as f64
}

/// Mean reciprocal rank of the first relevant item (0 if none is ranked).
pub fn mrr<T: Eq + Hash>(ranked: &[T], relevance: &HashMap<T, f64>) -> f64 {
    for (i, item) in ranked.iter().enumerate() {
        if relevance.get(item).copied().unwrap_or(0.0) > 0.0 {
            return 1.0 / (i as f64 + 1.0);
        }
    }
    0.0
}

/// NDCG@k with graded relevance: DCG of the ranking divided by the DCG of
/// the ideal ordering.
pub fn ndcg_at_k<T: Eq + Hash>(ranked: &[T], relevance: &HashMap<T, f64>, k: usize) -> f64 {
    let dcg: f64 = ranked
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, item)| {
            let rel = relevance.get(item).copied().unwrap_or(0.0);
            (2f64.powf(rel) - 1.0) / (i as f64 + 2.0).log2()
        })
        .sum();
    let mut ideal: Vec<f64> = relevance.values().copied().filter(|r| *r > 0.0).collect();
    ideal.sort_by(|a, b| b.partial_cmp(a).unwrap_or(std::cmp::Ordering::Equal));
    let idcg: f64 = ideal
        .iter()
        .take(k)
        .enumerate()
        .map(|(i, rel)| (2f64.powf(*rel) - 1.0) / (i as f64 + 2.0).log2())
        .sum();
    if idcg == 0.0 {
        0.0
    } else {
        dcg / idcg
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rel(pairs: &[(&'static str, f64)]) -> HashMap<&'static str, f64> {
        pairs.iter().copied().collect()
    }

    #[test]
    fn perfect_ranking_gets_ndcg_one() {
        let relevance = rel(&[("a", 3.0), ("b", 2.0), ("c", 1.0)]);
        let ranked = vec!["a", "b", "c", "d"];
        assert!((ndcg_at_k(&ranked, &relevance, 4) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverted_ranking_scores_below_one() {
        let relevance = rel(&[("a", 3.0), ("b", 2.0), ("c", 1.0)]);
        let inverted = vec!["c", "b", "a"];
        let score = ndcg_at_k(&inverted, &relevance, 3);
        assert!(score < 1.0 && score > 0.0);
    }

    #[test]
    fn ndcg_without_relevant_items_is_zero() {
        let relevance: HashMap<&str, f64> = HashMap::new();
        assert_eq!(ndcg_at_k(&["a", "b"], &relevance, 2), 0.0);
    }

    #[test]
    fn precision_counts_relevant_prefix() {
        let relevance = rel(&[("a", 1.0), ("c", 1.0)]);
        let ranked = vec!["a", "b", "c", "d"];
        assert!((precision_at_k(&ranked, &relevance, 2) - 0.5).abs() < 1e-12);
        assert!((precision_at_k(&ranked, &relevance, 4) - 0.5).abs() < 1e-12);
        assert_eq!(precision_at_k(&ranked, &relevance, 0), 0.0);
    }

    #[test]
    fn precision_with_short_ranking() {
        let relevance = rel(&[("a", 1.0)]);
        // Only one item ranked but k=5: denominator is the ranking length.
        assert!((precision_at_k(&["a"], &relevance, 5) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn mrr_finds_first_relevant() {
        let relevance = rel(&[("x", 1.0)]);
        assert!((mrr(&["a", "b", "x"], &relevance) - 1.0 / 3.0).abs() < 1e-12);
        assert!((mrr(&["x"], &relevance) - 1.0).abs() < 1e-12);
        assert_eq!(mrr(&["a", "b"], &relevance), 0.0);
    }
}
