//! Bit-identity guarantees for the columnar join engine: every
//! algorithm (including the adaptive chooser and the pre-columnar
//! entrywise TwigStack baseline) returns exactly the same match vector
//! on the canonical corpora, under generous budgets, and across thread
//! counts — and a starved budget only ever shrinks the result to a
//! valid subset, never corrupts it.

use lotusx_bench::fixture;
use lotusx_datagen::{queries::queries, Dataset};
use lotusx_guard::{Budget, QueryGuard};
use lotusx_twig::algorithms::twigstack;
use lotusx_twig::matcher::match_is_valid;
use lotusx_twig::xpath::parse_query;
use lotusx_twig::{execute, execute_budgeted, execute_parallel, Algorithm};

const SCALES: [u32; 2] = [1, 2];

/// Every concrete algorithm, the auto policy, and the entrywise
/// baseline produce bit-identical (not merely equal-length) match
/// vectors on every canonical dataset × query × scale.
#[test]
fn all_algorithms_are_bit_identical_on_canonical_corpora() {
    for ds in Dataset::ALL {
        for scale in SCALES {
            let idx = fixture(ds, scale);
            for q in queries(ds) {
                let pattern = parse_query(q.text).unwrap();
                let reference = execute(&idx, &pattern, Algorithm::Naive);
                for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
                    let got = execute(&idx, &pattern, algo);
                    assert_eq!(got, reference, "{ds} s{scale} {} via {algo}", q.id);
                }
                let entrywise =
                    twigstack::evaluate_entrywise_guarded(&idx, &pattern, &QueryGuard::unlimited());
                assert_eq!(entrywise, reference, "{ds} s{scale} {} entrywise", q.id);
            }
        }
    }
}

/// A budget generous enough to never trip must not change a single byte
/// of the result, for every algorithm.
#[test]
fn generous_budget_is_bit_identical_to_unbudgeted() {
    for ds in Dataset::ALL {
        let idx = fixture(ds, 1);
        let budget = Budget::unlimited().with_node_quota(u64::MAX / 2);
        for q in queries(ds) {
            let pattern = parse_query(q.text).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
                let guard = QueryGuard::new(&budget);
                let got = execute_budgeted(&idx, &pattern, algo, 1, None, &guard);
                assert_eq!(got, reference, "{ds} {} via {algo}", q.id);
                assert!(!guard.is_tripped(), "{ds} {} via {algo} tripped", q.id);
            }
        }
    }
}

/// A starved budget may truncate, but whatever comes back is a subset
/// of the full answer and every emitted match is individually valid.
#[test]
fn starved_budget_returns_a_valid_subset() {
    for ds in Dataset::ALL {
        let idx = fixture(ds, 1);
        for q in queries(ds) {
            let pattern = parse_query(q.text).unwrap();
            let reference = execute(&idx, &pattern, Algorithm::Naive);
            for algo in Algorithm::ALL.into_iter().chain([Algorithm::Auto]) {
                for quota in [1u64, 16, 256] {
                    let guard = QueryGuard::new(&Budget::unlimited().with_node_quota(quota));
                    let got = execute_budgeted(&idx, &pattern, algo, 1, None, &guard);
                    assert!(
                        got.len() <= reference.len(),
                        "{ds} {} via {algo} quota {quota}",
                        q.id
                    );
                    for m in &got {
                        assert!(
                            reference.contains(m),
                            "{ds} {} via {algo} quota {quota}: spurious match",
                            q.id
                        );
                        assert!(
                            match_is_valid(&idx, &pattern, m),
                            "{ds} {} via {algo} quota {quota}: invalid match",
                            q.id
                        );
                    }
                }
            }
        }
    }
}

/// The weighted parallel partitioning keeps every thread count
/// bit-identical to serial, for the algorithms that parallelize and the
/// ones that ignore `threads` alike.
#[test]
fn parallel_execution_is_bit_identical_across_thread_counts() {
    for ds in Dataset::ALL {
        for scale in SCALES {
            let idx = fixture(ds, scale);
            for q in queries(ds) {
                let pattern = parse_query(q.text).unwrap();
                let reference = execute(&idx, &pattern, Algorithm::Naive);
                for algo in [Algorithm::Naive, Algorithm::Auto] {
                    for threads in [1usize, 2, 8] {
                        let got = execute_parallel(&idx, &pattern, algo, threads);
                        assert_eq!(
                            got, reference,
                            "{ds} s{scale} {} via {algo} x{threads}",
                            q.id
                        );
                    }
                }
            }
        }
    }
}
