//! Ignored-by-default diagnostics for calibrating the adaptive chooser:
//! dump every (dataset, scale, query) decision with its cost estimates,
//! print the treebank pair statistics the model leans on, and measure
//! the auto policy's per-query overhead against pinned execution.
//!
//! Run with:
//! `cargo test --release -p lotusx-bench --test choice_debug -- --ignored --nocapture`

use lotusx_bench::fixture;
use lotusx_datagen::{queries::queries, Dataset};
use lotusx_twig::xpath::parse_query;
use lotusx_twig::{choose_algorithm, execute, Algorithm};

#[test]
#[ignore]
fn dump_choices() {
    for ds in Dataset::ALL {
        for scale in [1u32, 2, 8] {
            let idx = fixture(ds, scale);
            for q in queries(ds) {
                let p = parse_query(q.text).unwrap();
                let c = choose_algorithm(&idx, &p);
                println!(
                    "{} s{} {:4} {:45} -> {:15} nav={:>10} bin={:>10} path={:>20} hol={:>10}",
                    ds.name(),
                    scale,
                    q.id,
                    q.text,
                    c.algorithm.name(),
                    c.nav_cost,
                    c.binary_cost,
                    if c.path_cost == u64::MAX {
                        "MAX".to_string()
                    } else {
                        c.path_cost.to_string()
                    },
                    c.holistic_cost
                );
            }
        }
    }
}

#[test]
#[ignore]
fn time_auto_overhead() {
    use lotusx_bench::min_time;
    let idx = fixture(Dataset::TreebankLike, 1);
    for q in queries(Dataset::TreebankLike) {
        let p = parse_query(q.text).unwrap();
        let pick = choose_algorithm(&idx, &p).algorithm;
        let (t_choose, _) = min_time(200, || choose_algorithm(&idx, &p));
        let (t_pinned, _) = min_time(50, || execute(&idx, &p, pick));
        let (t_auto, _) = min_time(50, || execute(&idx, &p, Algorithm::Auto));
        println!(
            "{:4} pick={:15} choose={:>10?} pinned={:>10?} auto={:>10?} delta={:>10?}",
            q.id,
            pick.name(),
            t_choose,
            t_pinned,
            t_auto,
            t_auto.saturating_sub(t_pinned)
        );
    }
}

#[test]
#[ignore]
fn dump_treebank_stats() {
    let idx = fixture(Dataset::TreebankLike, 1);
    let js = idx.join_stats();
    for tag in ["s", "vp", "np", "pp", "nn", "vb", "dt"] {
        let Some(sym) = idx.document().symbols().get(tag) else {
            continue;
        };
        println!(
            "{:4} freq={:>6} children_total={:>7} subtree_weight={:>8}",
            tag,
            js.tag_frequency(sym),
            js.children_total(sym),
            js.subtree_weight(sym)
        );
    }
    for (a, d) in [
        ("vp", "pp"),
        ("pp", "nn"),
        ("vp", "vb"),
        ("s", "np"),
        ("s", "vp"),
        ("vp", "nn"),
        ("s", "s"),
        ("np", "dt"),
        ("np", "nn"),
    ] {
        let (Some(sa), Some(sd)) = (
            idx.document().symbols().get(a),
            idx.document().symbols().get(d),
        ) else {
            continue;
        };
        println!(
            "{}->{}: child_pairs={} desc_pairs={} desc_mult={}",
            a,
            d,
            js.child_pairs(sa, sd),
            js.descendant_pairs(sa, sd),
            js.descendant_pair_multiplicity(sa, sd)
        );
    }
}
