//! Shared fixtures and timing helpers for the benchmarks and the
//! experiments harness.

#![warn(missing_docs)]

use lotusx::{CorpusSource, LotusX};
use lotusx_datagen::Dataset;
use lotusx_index::IndexedDocument;
use std::time::{Duration, Instant};

/// The seed every experiment uses, for reproducibility.
pub const SEED: u64 = 2012;

/// Builds the indexed document for a dataset at a scale, through the
/// unified [`LotusX::open`] corpus entry point.
pub fn fixture(dataset: Dataset, scale: u32) -> IndexedDocument {
    LotusX::open(&CorpusSource::Spec {
        dataset,
        scale,
        seed: SEED,
    })
    .expect("generated corpora always open")
    .into_index()
}

/// Times `f` once, returning (elapsed, result).
pub fn time_once<T>(f: impl FnOnce() -> T) -> (Duration, T) {
    let start = Instant::now();
    let out = f();
    (start.elapsed(), out)
}

/// Median wall time of `reps` runs of `f` (result of the last run kept).
pub fn median_time<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(reps > 0);
    let mut times = Vec::with_capacity(reps);
    let mut last = None;
    for _ in 0..reps {
        let (t, out) = time_once(&mut f);
        times.push(t);
        last = Some(out);
    }
    times.sort();
    (times[times.len() / 2], last.expect("reps > 0"))
}

/// Minimum wall time of `reps` runs of `f` (result of the last run kept).
///
/// On a noisy shared host the minimum is the robust estimator for
/// CPU-bound work: every source of interference only ever adds time, so
/// the smallest observation is the closest to the true cost.
pub fn min_time<T>(reps: usize, mut f: impl FnMut() -> T) -> (Duration, T) {
    assert!(reps > 0);
    let mut best = Duration::MAX;
    let mut last = None;
    for _ in 0..reps {
        let (t, out) = time_once(&mut f);
        best = best.min(t);
        last = Some(out);
    }
    (best, last.expect("reps > 0"))
}

/// Formats a duration compactly for tables (µs below 1 ms, ms otherwise).
pub fn fmt_duration(d: Duration) -> String {
    let us = d.as_secs_f64() * 1e6;
    if us < 1000.0 {
        format!("{us:.1}µs")
    } else if us < 1_000_000.0 {
        format!("{:.2}ms", us / 1000.0)
    } else {
        format!("{:.2}s", us / 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_build_for_all_datasets() {
        for ds in Dataset::ALL {
            let idx = fixture(ds, 1);
            assert!(idx.stats().element_count > 1000, "{ds}");
        }
    }

    #[test]
    fn median_time_is_monotone_sane() {
        let (t, v) = median_time(3, || 21 * 2);
        assert_eq!(v, 42);
        assert!(t < Duration::from_secs(1));
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_micros(500)), "500.0µs");
        assert_eq!(fmt_duration(Duration::from_millis(12)), "12.00ms");
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
    }
}
