//! Serial vs parallel pipeline benchmark.
//!
//! Compares the serial (1-thread) and parallel (4-thread) code paths for
//! index build, batch twig search and completion precompute on XMark-scale
//! synthetic data, verifies the outputs are identical, and writes the
//! measurements to `BENCH_parallel.json` in the current directory.
//!
//! ```sh
//! cargo run --release -p lotusx-bench --bin parallel
//! ```
//!
//! Speedups are *measured on the current host* — `host_cpus` is recorded
//! in the output so a single-core container (where every ratio is ≈ 1.0
//! by construction) is distinguishable from a genuine multi-core run.

use lotusx::{LotusX, QueryRequest};
use lotusx_autocomplete::ValueTrieCache;
use lotusx_bench::{median_time, SEED};
use lotusx_datagen::{generate, Dataset};
use lotusx_index::{BuildOptions, IndexedDocument};
use std::time::Duration;

const REPS: usize = 5;
const PARALLEL_THREADS: usize = 4;
const HOT_TAGS: usize = 16;

const QUERIES: [&str; 8] = [
    "//item/name",
    "//*[name][payment]",
    "//person[name]//emailaddress",
    "//open_auction//bidder",
    "//item[payment]/name",
    "ordered //person[name][emailaddress]",
    "//closed_auction/price",
    "//regions//item",
];

fn secs(d: Duration) -> f64 {
    d.as_secs_f64()
}

fn ratio(serial: f64, parallel: f64) -> f64 {
    if parallel > 0.0 {
        serial / parallel
    } else {
        0.0
    }
}

fn main() {
    let host_cpus = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let scale = 8u32;
    let doc = generate(Dataset::XmarkLike, scale, SEED);
    eprintln!("dataset: xmark-like scale {scale}, host_cpus {host_cpus}");

    // --- Index build: serial vs partitioned. --------------------------
    let (t_build_1, idx1) = median_time(REPS, || {
        IndexedDocument::build_with(doc.clone(), &BuildOptions { threads: 1 })
    });
    let (t_build_n, idxn) = median_time(REPS, || {
        IndexedDocument::build_with(
            doc.clone(),
            &BuildOptions {
                threads: PARALLEL_THREADS,
            },
        )
    });
    let elements = idx1.stats().element_count;
    let build_equivalent = idx1.all_elements() == idxn.all_elements();
    eprintln!(
        "index build: serial {:.1}ms, {PARALLEL_THREADS}t {:.1}ms",
        secs(t_build_1) * 1e3,
        secs(t_build_n) * 1e3
    );

    // --- Batch search: serial vs partitioned engine. ------------------
    // `search_pattern` bypasses the query cache, so every repetition
    // does the full execute + rank pipeline.
    let mut serial = LotusX::load_document(doc.clone());
    let config = serial.config().clone().threads(1).auto_algorithm();
    serial.reconfigure(config).unwrap();
    let mut parallel = LotusX::load_document(doc.clone());
    let config = parallel
        .config()
        .clone()
        .threads(PARALLEL_THREADS)
        .auto_algorithm();
    parallel.reconfigure(config).unwrap();
    let patterns: Vec<_> = QUERIES
        .iter()
        .map(|q| lotusx_twig::parse_query(q).unwrap())
        .collect();
    let run_all = |system: &LotusX| -> usize {
        patterns
            .iter()
            .map(|p| system.search_pattern(p).total_matches)
            .sum()
    };
    let (t_search_1, matches_1) = median_time(REPS, || run_all(&serial));
    let (t_search_n, matches_n) = median_time(REPS, || run_all(&parallel));
    let search_equivalent = patterns.iter().all(|p| {
        let a = serial.search_pattern(p);
        let b = parallel.search_pattern(p);
        a.total_matches == b.total_matches
            && a.results.len() == b.results.len()
            && a.results
                .iter()
                .zip(&b.results)
                .all(|(x, y)| x.score.to_bits() == y.score.to_bits() && x.bindings == y.bindings)
    });
    eprintln!(
        "batch search ({} queries, {matches_1} matches): serial {:.1}ms, {PARALLEL_THREADS}t {:.1}ms",
        QUERIES.len(),
        secs(t_search_1) * 1e3,
        secs(t_search_n) * 1e3
    );

    // --- Completion precompute: serial vs parallel trie builds. -------
    let (t_prec_1, built_1) = median_time(REPS, || {
        let cache = ValueTrieCache::new();
        cache.precompute_hottest(&idx1, HOT_TAGS, 1)
    });
    let (t_prec_n, built_n) = median_time(REPS, || {
        let cache = ValueTrieCache::new();
        cache.precompute_hottest(&idx1, HOT_TAGS, PARALLEL_THREADS)
    });
    eprintln!(
        "completion precompute ({built_1} tries): serial {:.1}ms, {PARALLEL_THREADS}t {:.1}ms",
        secs(t_prec_1) * 1e3,
        secs(t_prec_n) * 1e3
    );

    // --- Query-result cache: uncached pipeline vs warm repeat. --------
    let system = LotusX::load_document(doc.clone());
    let hot_query = "//person[name]//emailaddress";
    let hot_pattern = lotusx_twig::parse_query(hot_query).unwrap();
    // `search_pattern` bypasses the cache: the full execute + rank cost.
    let (t_uncached, _) = median_time(REPS, || system.search_pattern(&hot_pattern).total_matches);
    let _ = system.query(&QueryRequest::twig(hot_query)); // populate the cache
    let (t_warm, _) = median_time(REPS, || {
        system
            .query(&QueryRequest::twig(hot_query))
            .unwrap()
            .total_matches
    });
    let cache_stats = system.query_cache_stats();
    eprintln!(
        "query cache: uncached {:.3}ms, cached {:.3}ms ({} hits / {} misses)",
        secs(t_uncached) * 1e3,
        secs(t_warm) * 1e3,
        cache_stats.hits,
        cache_stats.misses
    );

    let equivalent = build_equivalent && search_equivalent && matches_1 == matches_n;
    let json = format!(
        "{{\n  \"experiment\": \"serial vs parallel pipeline\",\n  \"dataset\": \"xmark-like\",\n  \"scale\": {scale},\n  \"elements\": {elements},\n  \"seed\": {SEED},\n  \"reps\": {REPS},\n  \"host_cpus\": {host_cpus},\n  \"parallel_threads\": {PARALLEL_THREADS},\n  \"index_build\": {{\n    \"serial_ms\": {:.3},\n    \"parallel_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"batch_search\": {{\n    \"queries\": {},\n    \"total_matches\": {matches_1},\n    \"serial_ms\": {:.3},\n    \"parallel_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"completion_precompute\": {{\n    \"tries\": {built_n},\n    \"serial_ms\": {:.3},\n    \"parallel_ms\": {:.3},\n    \"speedup\": {:.3}\n  }},\n  \"query_cache\": {{\n    \"uncached_ms\": {:.4},\n    \"cached_ms\": {:.4},\n    \"cache_speedup\": {:.1}\n  }},\n  \"equivalent_outputs\": {equivalent}\n}}\n",
        secs(t_build_1) * 1e3,
        secs(t_build_n) * 1e3,
        ratio(secs(t_build_1), secs(t_build_n)),
        QUERIES.len(),
        secs(t_search_1) * 1e3,
        secs(t_search_n) * 1e3,
        ratio(secs(t_search_1), secs(t_search_n)),
        secs(t_prec_1) * 1e3,
        secs(t_prec_n) * 1e3,
        ratio(secs(t_prec_1), secs(t_prec_n)),
        secs(t_uncached) * 1e3,
        secs(t_warm) * 1e3,
        ratio(secs(t_uncached), secs(t_warm)),
    );
    std::fs::write("BENCH_parallel.json", &json).expect("write BENCH_parallel.json");
    println!("{json}");
    eprintln!("wrote BENCH_parallel.json");
}
